//! Flow-correlated trace records and their exporters.
//!
//! A [`TraceRecord`] is the exporter-facing form of a simulator trace
//! event: virtual-time stamp, event kind, topology location (node and/or
//! link), and flow correlation (packet id, flow id, MMT sequence number,
//! MMT config id). Two exporters are provided:
//!
//! * [`to_jsonl`] — one JSON object per line, stable field order, easy to
//!   grep and to load into dataframes.
//! * [`to_chrome_trace`] — Chrome Trace Event Format (the JSON array
//!   flavour wrapped in `{"traceEvents": [...]}`), loadable in
//!   `chrome://tracing` or Perfetto. Virtual nanoseconds are rendered as
//!   fractional microseconds with integer math so output is
//!   byte-for-byte deterministic.

use crate::json::{self, JsonObject};
use std::collections::BTreeMap;

/// Synthetic Chrome-trace tid base for events that carry a link but no
/// node (e.g. loss on the wire).
pub const LINK_TID_BASE: u64 = 1000;

/// One flow-correlated trace event, stamped with virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time in nanoseconds.
    pub ts_ns: u64,
    /// Event kind (e.g. `enqueue`, `arrive`, `queue_drop`).
    pub kind: String,
    /// Node index where the event happened, if node-local.
    pub node: Option<u64>,
    /// Human-readable node name, if known.
    pub node_name: Option<String>,
    /// Link id involved, if any.
    pub link: Option<u64>,
    /// Simulator-assigned packet id.
    pub packet_id: u64,
    /// Flow id (experiment/config discriminator at the netsim layer).
    pub flow: u64,
    /// MMT sequence number, when the packet carried a parsed MMT header.
    pub seq: Option<u64>,
    /// MMT config id, when known.
    pub config: Option<u64>,
    /// Wire length of the packet in bytes.
    pub len_bytes: u64,
}

impl TraceRecord {
    /// Render this record as a single JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new()
            .u64("ts_ns", self.ts_ns)
            .str("kind", &self.kind)
            .opt_u64("node", self.node);
        if let Some(name) = &self.node_name {
            obj = obj.str("node_name", name);
        }
        obj.opt_u64("link", self.link)
            .u64("packet_id", self.packet_id)
            .u64("flow", self.flow)
            .opt_u64("seq", self.seq)
            .opt_u64("config", self.config)
            .u64("len_bytes", self.len_bytes)
            .finish()
    }

    /// The Chrome-trace thread id for this record: the node index when
    /// node-local, otherwise [`LINK_TID_BASE`]` + link` for on-wire
    /// events, and 0 as a last resort.
    pub fn chrome_tid(&self) -> u64 {
        match (self.node, self.link) {
            (Some(n), _) => n,
            (None, Some(l)) => LINK_TID_BASE + l,
            (None, None) => 0,
        }
    }
}

/// Format virtual nanoseconds as Chrome-trace microseconds with
/// sub-microsecond precision, using only integer math (`1500` ns →
/// `"1.500"`).
pub fn ns_to_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Export records as JSON Lines: one object per event, in input order,
/// each line terminated with `\n`.
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    out
}

/// Export records in Chrome Trace Event Format.
///
/// Each event becomes an instant event (`ph: "i"`, thread scope) on a
/// pid/tid lane: pid 1, tid = node index (or `LINK_TID_BASE + link` for
/// on-wire events). A `thread_name` metadata event labels each lane using
/// the first node name seen for that tid.
pub fn to_chrome_trace(records: &[TraceRecord]) -> String {
    // First node/link name seen per tid labels that lane.
    let mut lanes: BTreeMap<u64, String> = BTreeMap::new();
    for r in records {
        let tid = r.chrome_tid();
        lanes
            .entry(tid)
            .or_insert_with(|| match (&r.node_name, r.node, r.link) {
                (Some(name), _, _) => name.clone(),
                (None, Some(n), _) => format!("node{n}"),
                (None, None, Some(l)) => format!("link{l}"),
                (None, None, None) => "sim".to_string(),
            });
    }
    let mut events: Vec<String> = Vec::with_capacity(lanes.len() + records.len());
    for (tid, name) in &lanes {
        events.push(
            JsonObject::new()
                .str("name", "thread_name")
                .str("ph", "M")
                .u64("pid", 1)
                .u64("tid", *tid)
                .raw("args", &JsonObject::new().str("name", name).finish())
                .finish(),
        );
    }
    for r in records {
        let mut args = JsonObject::new()
            .u64("packet_id", r.packet_id)
            .u64("flow", r.flow)
            .opt_u64("seq", r.seq)
            .opt_u64("config", r.config)
            .u64("len_bytes", r.len_bytes)
            .opt_u64("link", r.link);
        if let Some(name) = &r.node_name {
            args = args.str("node_name", name);
        }
        events.push(
            JsonObject::new()
                .str("name", &r.kind)
                .str("ph", "i")
                .str("s", "t")
                .raw("ts", &ns_to_us(r.ts_ns))
                .u64("pid", 1)
                .u64("tid", r.chrome_tid())
                .raw("args", &args.finish())
                .finish(),
        );
    }
    format!(
        "{{\"traceEvents\":{},\"displayTimeUnit\":\"ns\"}}",
        json::array(events)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts: u64, kind: &str, node: Option<u64>, link: Option<u64>) -> TraceRecord {
        TraceRecord {
            ts_ns: ts,
            kind: kind.to_string(),
            node,
            node_name: node.map(|n| format!("n{n}")),
            link,
            packet_id: 1,
            flow: 7,
            seq: Some(3),
            config: Some(1),
            len_bytes: 64,
        }
    }

    #[test]
    fn jsonl_one_line_per_event() {
        let out = to_jsonl(&[
            rec(5, "enqueue", Some(0), Some(2)),
            rec(9, "arrive", Some(1), None),
        ]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"ts_ns\":5,\"kind\":\"enqueue\""));
        assert!(lines[0].contains("\"node\":0"));
        assert!(lines[0].contains("\"node_name\":\"n0\""));
        assert!(lines[0].contains("\"seq\":3"));
        assert!(lines[1].contains("\"kind\":\"arrive\""));
        assert!(out.ends_with('\n'));
    }

    #[test]
    fn optional_fields_omitted() {
        let mut r = rec(1, "loss", None, Some(4));
        r.seq = None;
        r.config = None;
        let line = r.to_json();
        assert!(!line.contains("\"node\""));
        assert!(!line.contains("\"seq\""));
        assert!(!line.contains("\"config\""));
        assert!(line.contains("\"link\":4"));
    }

    #[test]
    fn chrome_trace_shape() {
        let out = to_chrome_trace(&[rec(1_500, "enqueue", Some(0), Some(2)), {
            let mut r = rec(2_000, "corruption_loss", None, Some(2));
            r.node_name = None;
            r
        }]);
        assert!(out.starts_with("{\"traceEvents\":["));
        assert!(out.ends_with("\"displayTimeUnit\":\"ns\"}"));
        // Lane metadata for node 0 and link lane 1002.
        assert!(out.contains("\"thread_name\""));
        assert!(out.contains("\"tid\":0"));
        assert!(out.contains("\"tid\":1002"));
        assert!(out.contains("\"name\":\"link2\""));
        // Instant event with integer-math microsecond timestamp.
        assert!(out.contains("\"ph\":\"i\""));
        assert!(out.contains("\"ts\":1.500"));
        assert!(out.contains("\"ts\":2.000"));
    }

    #[test]
    fn ns_to_us_integer_math() {
        assert_eq!(ns_to_us(0), "0.000");
        assert_eq!(ns_to_us(999), "0.999");
        assert_eq!(ns_to_us(1_000), "1.000");
        assert_eq!(ns_to_us(1_234_567), "1234.567");
    }

    #[test]
    fn tid_assignment() {
        assert_eq!(rec(0, "x", Some(3), Some(9)).chrome_tid(), 3);
        assert_eq!(rec(0, "x", None, Some(9)).chrome_tid(), 1009);
        assert_eq!(rec(0, "x", None, None).chrome_tid(), 0);
    }
}
