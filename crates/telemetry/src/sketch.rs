//! A fixed-size online quantile sketch for integer latency streams.
//!
//! [`QuantileSketch`] is a log₂ histogram with 32 sub-buckets per octave:
//! values below 32 land in exact unit buckets, and a value `v ≥ 32` lands
//! in the bucket spanning `[(32+s) << o, (32+s+1) << o)` where
//! `o = ⌊log₂ v⌋ − 5`. Quantile queries return the **upper edge** of the
//! bucket holding the nearest-rank sample (clamped to the observed
//! min/max), so for any quantile `q` with true nearest-rank value `v`:
//!
//! ```text
//! v ≤ estimate ≤ v + ⌊v / 32⌋        (≤ 3.125 % relative error,
//!                                     exact for v < 32)
//! ```
//!
//! The estimate never under-reports — a deliberate bias for latency
//! telemetry, where an optimistic tail is the dangerous direction.
//!
//! Memory is fixed at construction (1920 × `u64` buckets ≈ 15 KiB per
//! sketch) regardless of how many samples are recorded, which is what
//! lets the hot path drop its cached full-sample vectors. Merging is an
//! element-wise bucket add — commutative and associative — so sharded
//! runs can fold per-group sketches in any order and still produce
//! byte-identical quantiles and digests. Everything is integer-only
//! except the quantile rank computation, which mirrors the nearest-rank
//! definition used by the exact path (`round((n − 1) · q)`; NaN `q`
//! degrades to 0, out-of-range `q` is clamped).

/// log₂ of the sub-buckets per octave (32 ⇒ ≤ 1/32 relative error).
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave; values below this are stored exactly.
const SUB: usize = 1 << SUB_BITS;
/// Octaves covered: exponents `SUB_BITS..=63`.
const OCTAVES: usize = 64 - SUB_BITS as usize;
/// Total buckets: `SUB` exact unit buckets plus `OCTAVES × SUB` log ones.
const NUM_BUCKETS: usize = SUB + OCTAVES * SUB;

/// FNV-1a 64-bit offset basis (local copy; telemetry stays dep-free).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Bucket index for a value (total order preserved across buckets).
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let octave = (exp - SUB_BITS) as usize;
    let sub = ((v >> octave) as usize) - SUB;
    SUB + octave * SUB + sub
}

/// Inclusive upper edge of a bucket (the quantile estimate it yields).
fn bucket_upper_edge(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let octave = (idx - SUB) / SUB;
    let sub = (idx - SUB) % SUB;
    let lower = ((SUB + sub) as u64) << octave;
    lower + ((1u64 << octave) - 1)
}

/// A deterministic fixed-memory quantile sketch over `u64` samples.
///
/// See the module docs for the error bound and merge semantics. `count`,
/// `sum`, `min`, and `max` are tracked exactly; only quantiles are
/// approximate (biased upward, never below the true value).
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    sum_sq: u128,
    min: u64,
    max: u64,
}

impl Default for QuantileSketch {
    fn default() -> QuantileSketch {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    /// The documented worst-case relative error of a quantile estimate.
    pub const MAX_RELATIVE_ERROR: f64 = 1.0 / SUB as f64;

    /// An empty sketch (allocates its full fixed bucket array up front).
    pub fn new() -> QuantileSketch {
        QuantileSketch {
            buckets: vec![0u64; NUM_BUCKETS],
            count: 0,
            sum: 0,
            sum_sq: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample. O(1), no allocation.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(u128::from(v));
        self.sum_sq = self.sum_sq.saturating_add(u128::from(v) * u128::from(v));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded (exact).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether the sketch has seen no samples.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples (saturating at `u128::MAX`).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact minimum, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact integer mean (`sum / count`), or `None` when empty.
    pub fn mean(&self) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        Some((self.sum / u128::from(self.count)) as u64)
    }

    /// Population standard deviation from exact sum / sum-of-squares
    /// accumulators (0.0 with fewer than two samples).
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let mean = self.sum as f64 / n;
        let var = (self.sum_sq as f64 / n) - mean * mean;
        var.max(0.0).sqrt()
    }

    /// The nearest-rank `q`-quantile estimate, or `None` when empty.
    ///
    /// Returns the upper edge of the bucket holding the rank-`⌊(n−1)·q⌉`
    /// sample, clamped into `[min, max]` — so `v ≤ estimate ≤ v + v/32`
    /// for the true nearest-rank value `v`. NaN `q` degrades to 0 and
    /// out-of-range `q` is clamped, matching the exact path.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((self.count as f64 - 1.0) * q).round() as u64;
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum > rank {
                return Some(bucket_upper_edge(idx).clamp(self.min, self.max));
            }
        }
        // Unreachable while bucket counts sum to `count`; degrade to max.
        Some(self.max)
    }

    /// Merge another sketch into this one (element-wise bucket add):
    /// commutative and associative, so shard merge order cannot leak
    /// into quantiles or digests.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.sum_sq = self.sum_sq.saturating_add(other.sum_sq);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        // An empty `other` carries min = u64::MAX / max = 0 sentinels,
        // which min/max folding absorbs without observable effect.
    }

    /// FNV-1a 64 digest over the sketch's observable state (count,
    /// min/max, and every non-empty bucket). Equal digests mean
    /// identical quantile behavior.
    pub fn digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        let mut absorb = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        absorb(self.count);
        absorb(if self.count == 0 { 0 } else { self.min });
        absorb(self.max);
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                absorb(idx as u64);
                absorb(n);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut s = QuantileSketch::new();
        for v in 0..32u64 {
            s.record(v);
        }
        for (i, q) in [(0u64, 0.0), (16, 0.5), (31, 1.0)] {
            assert_eq!(s.quantile(q), Some(i));
        }
        assert_eq!(s.min(), Some(0));
        assert_eq!(s.max(), Some(31));
        assert_eq!(s.mean(), Some(15));
    }

    #[test]
    fn empty_sketch_edges() {
        let s = QuantileSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn bucket_mapping_is_monotone_and_in_range() {
        let mut probes: Vec<u64> = Vec::new();
        for shift in 0..64u32 {
            let v = 1u64 << shift;
            probes.extend([v.saturating_sub(1), v, v.saturating_add(1)]);
        }
        probes.push(u64::MAX);
        probes.sort_unstable();
        let mut prev = 0usize;
        for probe in probes {
            let idx = bucket_index(probe);
            assert!(idx < NUM_BUCKETS, "index {idx} for {probe}");
            assert!(idx >= prev, "index must be monotone in the value");
            prev = idx;
            assert!(bucket_upper_edge(idx) >= probe);
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_upper_edge(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn error_bound_holds_for_every_value_bucket() {
        // For any v, the upper edge of v's bucket is within v/32.
        for shift in 0..63u32 {
            for off in [0u64, 1, 3, 7] {
                let v = (1u64 << shift).saturating_add(off << shift.saturating_sub(3));
                let est = bucket_upper_edge(bucket_index(v));
                assert!(est >= v, "under-estimate for {v}");
                assert!(
                    u128::from(est) <= u128::from(v) + u128::from(v / 32),
                    "estimate {est} exceeds bound for {v}"
                );
            }
        }
    }

    #[test]
    fn quantile_matches_nearest_rank_within_bound() {
        let mut s = QuantileSketch::new();
        let mut samples: Vec<u64> = Vec::new();
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for _ in 0..10_000 {
            // SplitMix64 step: deterministic pseudo-random samples.
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            let v = (z ^ (z >> 31)) % 50_000_000;
            s.record(v);
            samples.push(v);
        }
        samples.sort_unstable();
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((samples.len() as f64 - 1.0) * q).round() as usize;
            let exact = samples[rank];
            let est = s.quantile(q).unwrap();
            assert!(est >= exact, "q={q}: {est} < exact {exact}");
            assert!(
                u128::from(est) <= u128::from(exact) + u128::from(exact / 32),
                "q={q}: {est} breaks bound vs {exact}"
            );
        }
    }

    #[test]
    fn merge_is_commutative_and_digest_stable() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for v in [1u64, 100, 10_000, u64::MAX] {
            a.record(v);
        }
        for v in [5u64, 5, 5, 1_000_000] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.digest(), ba.digest());
        assert_eq!(ab.count(), 8);
        assert_eq!(ab.quantile(0.5), ba.quantile(0.5));
        assert_eq!(ab.min(), Some(1));
        assert_eq!(ab.max(), Some(u64::MAX));
        // Distinct streams produce distinct digests.
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn nan_and_out_of_range_q_degrade() {
        let mut s = QuantileSketch::new();
        for v in [10u64, 20, 30] {
            s.record(v);
        }
        assert_eq!(s.quantile(f64::NAN), s.quantile(0.0));
        assert_eq!(s.quantile(-4.0), s.quantile(0.0));
        assert_eq!(s.quantile(9.0), s.quantile(1.0));
        assert_eq!(s.quantile(1.0), Some(30), "max clamps the top bucket");
    }

    #[test]
    fn stddev_matches_closed_form() {
        let mut s = QuantileSketch::new();
        s.record(10);
        s.record(20);
        assert!((s.stddev() - 5.0).abs() < 1e-9);
        assert_eq!(s.mean(), Some(15));
    }
}
