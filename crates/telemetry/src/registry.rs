//! The labeled metric registry.
//!
//! Hot-path discipline: a fleet-scale export emits tens of thousands of
//! series per run, so the key machinery is zero-copy. Metric names are
//! `&'static str` (every caller passes a literal) stored borrowed in a
//! [`Cow`], and label pairs live in a shared, immutable [`LabelSet`]
//! whose clone is a reference-count bump. Storage is a two-level map —
//! name first, then label set — so walking the tree never re-compares
//! the long, common-prefixed metric names against every label set.
//! Exporters that emit many series for one entity (a link, a node, a
//! group) build the label set once and reuse it for every series, so
//! the per-series cost is one ordered-map insert — no string allocation
//! at all.

use crate::histogram::NsHistogram;
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::Arc;

/// An immutable, shareable set of label pairs, sorted by key.
///
/// Building one allocates; cloning one (and therefore attaching it to
/// any number of series) is a reference-count bump. This is the
/// zero-copy analogue of passing `&[(&str, &str)]` to every call.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelSet(Arc<[(String, String)]>);

impl LabelSet {
    /// Build a label set from unsorted pairs.
    pub fn new(labels: &[(&str, &str)]) -> LabelSet {
        let mut pairs: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        pairs.sort();
        LabelSet(pairs.into())
    }

    /// The empty label set.
    pub fn empty() -> LabelSet {
        LabelSet(Arc::from([]))
    }

    /// The sorted pairs.
    pub fn pairs(&self) -> &[(String, String)] {
        &self.0
    }
}

impl Default for LabelSet {
    fn default() -> LabelSet {
        LabelSet::empty()
    }
}

/// One metric's current value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(u64),
    /// Point-in-time gauge.
    Gauge(f64),
    /// Latency histogram (nanosecond samples).
    Histogram(NsHistogram),
}

type SeriesMap = BTreeMap<LabelSet, MetricValue>;

/// A registry of named, labeled metrics with deterministic iteration
/// (name order, then label order).
///
/// Disabled registries drop every write at a single branch, so
/// instrumented code paths cost one predictable-taken compare when
/// telemetry is off.
#[derive(Debug, Clone, Default)]
pub struct MetricRegistry {
    enabled: bool,
    metrics: BTreeMap<Cow<'static, str>, SeriesMap>,
    /// HELP strings, keyed by metric name.
    help: BTreeMap<String, String>,
}

impl MetricRegistry {
    /// An enabled, empty registry.
    pub fn new() -> MetricRegistry {
        MetricRegistry {
            enabled: true,
            ..MetricRegistry::default()
        }
    }

    /// A registry that silently discards every write (zero cost).
    pub fn disabled() -> MetricRegistry {
        MetricRegistry::default()
    }

    /// Whether writes are recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Attach a HELP description to a metric name (shown by the
    /// Prometheus exporter).
    pub fn describe(&mut self, name: &str, help: &str) {
        if self.enabled {
            self.help.insert(name.to_string(), help.to_string());
        }
    }

    /// The HELP description for a name, if any.
    pub fn help(&self, name: &str) -> Option<&str> {
        self.help.get(name).map(String::as_str)
    }

    /// Add `delta` to a counter identified by a shared label set
    /// (creating it at zero first). The allocation-free write path.
    pub fn counter_add_set(&mut self, name: &'static str, labels: &LabelSet, delta: u64) {
        if !self.enabled {
            return;
        }
        let entry = self
            .metrics
            .entry(Cow::Borrowed(name))
            .or_default()
            .entry(labels.clone())
            .or_insert(MetricValue::Counter(0));
        match entry {
            MetricValue::Counter(v) => *v += delta,
            _ => panic!("metric {name} is not a counter"), // mmt-lint: allow(P1, "API-misuse guard; metric names are compile-time constants")
        }
    }

    /// Add `delta` to a counter (creating it at zero first).
    pub fn counter_add(&mut self, name: &'static str, labels: &[(&str, &str)], delta: u64) {
        if !self.enabled {
            return;
        }
        self.counter_add_set(name, &LabelSet::new(labels), delta);
    }

    /// Increment a counter by one.
    pub fn counter_inc(&mut self, name: &'static str, labels: &[(&str, &str)]) {
        self.counter_add(name, labels, 1);
    }

    /// Set a gauge identified by a shared label set. The
    /// allocation-free write path.
    pub fn gauge_set_set(&mut self, name: &'static str, labels: &LabelSet, value: f64) {
        if !self.enabled {
            return;
        }
        self.metrics
            .entry(Cow::Borrowed(name))
            .or_default()
            .insert(labels.clone(), MetricValue::Gauge(value));
    }

    /// Set a gauge to a value.
    pub fn gauge_set(&mut self, name: &'static str, labels: &[(&str, &str)], value: f64) {
        if !self.enabled {
            return;
        }
        self.gauge_set_set(name, &LabelSet::new(labels), value);
    }

    /// Record one nanosecond observation into a histogram.
    pub fn observe_ns(&mut self, name: &'static str, labels: &[(&str, &str)], ns: u64) {
        if !self.enabled {
            return;
        }
        let entry = self
            .metrics
            .entry(Cow::Borrowed(name))
            .or_default()
            .entry(LabelSet::new(labels))
            .or_insert_with(|| MetricValue::Histogram(NsHistogram::new()));
        match entry {
            MetricValue::Histogram(h) => h.record(ns),
            _ => panic!("metric {name} is not a histogram"), // mmt-lint: allow(P1, "API-misuse guard; metric names are compile-time constants")
        }
    }

    /// Merge a whole histogram into a metric.
    pub fn observe_histogram(
        &mut self,
        name: &'static str,
        labels: &[(&str, &str)],
        hist: &NsHistogram,
    ) {
        if !self.enabled {
            return;
        }
        let entry = self
            .metrics
            .entry(Cow::Borrowed(name))
            .or_default()
            .entry(LabelSet::new(labels))
            .or_insert_with(|| MetricValue::Histogram(NsHistogram::new()));
        match entry {
            MetricValue::Histogram(h) => h.merge(hist),
            _ => panic!("metric {name} is not a histogram"), // mmt-lint: allow(P1, "API-misuse guard; metric names are compile-time constants")
        }
    }

    fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        self.metrics.get(name)?.get(&LabelSet::new(labels))
    }

    /// Read a counter (0 when absent) — mainly for tests and reports.
    /// Sparse exporters omit zero-valued series, so "absent" and "zero"
    /// are deliberately indistinguishable here.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.get(name, labels) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Read a gauge, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.get(name, labels) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Read a histogram, if present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&NsHistogram> {
        match self.get(name, labels) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Number of distinct (name, labels) series.
    pub fn len(&self) -> usize {
        self.metrics.values().map(SeriesMap::len).sum()
    }

    /// Whether the registry holds no series.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Iterate series in deterministic (name, labels) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &LabelSet, &MetricValue)> {
        self.metrics.iter().flat_map(|(name, series)| {
            series
                .iter()
                .map(move |(labels, value)| (name.as_ref(), labels, value))
        })
    }

    /// Merge every series from `other` into this registry (counters add,
    /// gauges overwrite, histograms merge). The common shapes are cheap:
    /// absorbing into an empty registry clones whole sorted maps without
    /// a single key comparison, and a name seen for the first time clones
    /// its entire series map. Only genuinely overlapping series pay a
    /// per-entry merge — and even there keys clone by bumping a refcount.
    pub fn absorb(&mut self, other: &MetricRegistry) {
        if !self.enabled {
            return;
        }
        if self.metrics.is_empty() {
            self.metrics = other.metrics.clone();
        } else {
            for (name, series) in &other.metrics {
                let mine = self.metrics.entry(name.clone()).or_default();
                if mine.is_empty() {
                    *mine = series.clone();
                    continue;
                }
                for (labels, value) in series {
                    match mine.entry(labels.clone()) {
                        std::collections::btree_map::Entry::Vacant(slot) => {
                            slot.insert(value.clone());
                        }
                        std::collections::btree_map::Entry::Occupied(mut slot) => {
                            match (slot.get_mut(), value) {
                                (MetricValue::Counter(mine), MetricValue::Counter(v)) => *mine += v,
                                (MetricValue::Gauge(mine), MetricValue::Gauge(v)) => *mine = *v,
                                (MetricValue::Histogram(mine), MetricValue::Histogram(h)) => {
                                    mine.merge(h)
                                }
                                _ => panic!("metric {name} changed kind during absorb"), // mmt-lint: allow(P1, "API-misuse guard; merged registries share one schema")
                            }
                        }
                    }
                }
            }
        }
        for (name, help) in &other.help {
            self.help
                .entry(name.clone())
                .or_insert_with(|| help.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let mut reg = MetricRegistry::disabled();
        reg.counter_inc("c", &[]);
        reg.gauge_set("g", &[], 1.0);
        reg.observe_ns("h", &[], 5);
        reg.describe("c", "help");
        assert!(reg.is_empty());
        assert!(!reg.is_enabled());
        assert_eq!(reg.counter("c", &[]), 0);
    }

    #[test]
    fn counters_accumulate_per_label_set() {
        let mut reg = MetricRegistry::new();
        reg.counter_add("tx", &[("link", "0")], 2);
        reg.counter_inc("tx", &[("link", "0")]);
        reg.counter_inc("tx", &[("link", "1")]);
        assert_eq!(reg.counter("tx", &[("link", "0")]), 3);
        assert_eq!(reg.counter("tx", &[("link", "1")]), 1);
        assert_eq!(reg.counter("tx", &[("link", "9")]), 0);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn label_order_does_not_matter() {
        let mut reg = MetricRegistry::new();
        reg.counter_inc("m", &[("a", "1"), ("b", "2")]);
        reg.counter_inc("m", &[("b", "2"), ("a", "1")]);
        assert_eq!(reg.counter("m", &[("a", "1"), ("b", "2")]), 2);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn shared_label_set_path_matches_slice_path() {
        let mut reg = MetricRegistry::new();
        let ls = LabelSet::new(&[("b", "2"), ("a", "1")]);
        reg.counter_add_set("tx", &ls, 2);
        reg.counter_add("tx", &[("a", "1"), ("b", "2")], 3);
        reg.gauge_set_set("g", &ls, 4.5);
        assert_eq!(reg.counter("tx", &[("a", "1"), ("b", "2")]), 5);
        assert_eq!(reg.gauge("g", &[("a", "1"), ("b", "2")]), Some(4.5));
        assert_eq!(reg.len(), 2, "both paths address the same series");
        assert_eq!(ls.pairs()[0].0, "a", "label sets sort on construction");
    }

    #[test]
    fn gauges_overwrite_histograms_accumulate() {
        let mut reg = MetricRegistry::new();
        reg.gauge_set("g", &[], 1.0);
        reg.gauge_set("g", &[], 2.5);
        assert_eq!(reg.gauge("g", &[]), Some(2.5));
        reg.observe_ns("h", &[], 10);
        reg.observe_ns("h", &[], 20);
        let h = reg.histogram("h", &[]).unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(10));
    }

    #[test]
    fn iteration_is_sorted() {
        let mut reg = MetricRegistry::new();
        reg.counter_inc("zz", &[]);
        reg.counter_inc("aa", &[("x", "2")]);
        reg.counter_inc("aa", &[("x", "1")]);
        let names: Vec<String> = reg
            .iter()
            .map(|(name, labels, _)| format!("{name}{:?}", labels.pairs()))
            .collect();
        assert!(names[0].starts_with("aa") && names[0].contains('1'));
        assert!(names[1].starts_with("aa") && names[1].contains('2'));
        assert!(names[2].starts_with("zz"));
    }

    #[test]
    fn absorb_merges_all_kinds() {
        let mut a = MetricRegistry::new();
        let mut b = MetricRegistry::new();
        a.counter_add("c", &[], 1);
        b.counter_add("c", &[], 2);
        b.gauge_set("g", &[], 9.0);
        b.observe_ns("h", &[], 7);
        b.describe("c", "a counter");
        a.absorb(&b);
        assert_eq!(a.counter("c", &[]), 3);
        assert_eq!(a.gauge("g", &[]), Some(9.0));
        assert_eq!(a.histogram("h", &[]).unwrap().count(), 1);
        assert_eq!(a.help("c"), Some("a counter"));
    }

    #[test]
    fn absorb_into_empty_is_a_clone() {
        let mut b = MetricRegistry::new();
        b.counter_add("c", &[("g", "0")], 2);
        b.gauge_set("g", &[], 1.5);
        b.describe("c", "a counter");
        let mut a = MetricRegistry::new();
        a.absorb(&b);
        assert_eq!(a.counter("c", &[("g", "0")]), 2);
        assert_eq!(a.gauge("g", &[]), Some(1.5));
        assert_eq!(a.help("c"), Some("a counter"));
        assert_eq!(a.len(), b.len());
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_confusion_panics() {
        let mut reg = MetricRegistry::new();
        reg.gauge_set("m", &[], 1.0);
        reg.counter_inc("m", &[]);
    }
}
