//! The labeled metric registry.

use crate::histogram::NsHistogram;
use std::collections::BTreeMap;

/// A metric's identity: name plus sorted label pairs.
///
/// Ordering (name, then labels) fixes the iteration order of the whole
/// registry, which makes every export deterministic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (Prometheus-style, e.g. `mmt_link_tx_packets_total`).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Build a key from a name and unsorted label pairs.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

/// One metric's current value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(u64),
    /// Point-in-time gauge.
    Gauge(f64),
    /// Latency histogram (nanosecond samples).
    Histogram(NsHistogram),
}

/// A registry of named, labeled metrics with deterministic iteration.
///
/// Disabled registries drop every write at a single branch, so
/// instrumented code paths cost one predictable-taken compare when
/// telemetry is off.
#[derive(Debug, Clone, Default)]
pub struct MetricRegistry {
    enabled: bool,
    metrics: BTreeMap<MetricKey, MetricValue>,
    /// HELP strings, keyed by metric name.
    help: BTreeMap<String, String>,
}

impl MetricRegistry {
    /// An enabled, empty registry.
    pub fn new() -> MetricRegistry {
        MetricRegistry {
            enabled: true,
            ..MetricRegistry::default()
        }
    }

    /// A registry that silently discards every write (zero cost).
    pub fn disabled() -> MetricRegistry {
        MetricRegistry::default()
    }

    /// Whether writes are recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Attach a HELP description to a metric name (shown by the
    /// Prometheus exporter).
    pub fn describe(&mut self, name: &str, help: &str) {
        if self.enabled {
            self.help.insert(name.to_string(), help.to_string());
        }
    }

    /// The HELP description for a name, if any.
    pub fn help(&self, name: &str) -> Option<&str> {
        self.help.get(name).map(String::as_str)
    }

    /// Add `delta` to a counter (creating it at zero first).
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        if !self.enabled {
            return;
        }
        let entry = self
            .metrics
            .entry(MetricKey::new(name, labels))
            .or_insert(MetricValue::Counter(0));
        match entry {
            MetricValue::Counter(v) => *v += delta,
            _ => panic!("metric {name} is not a counter"), // mmt-lint: allow(P1, "API-misuse guard; metric names are compile-time constants")
        }
    }

    /// Increment a counter by one.
    pub fn counter_inc(&mut self, name: &str, labels: &[(&str, &str)]) {
        self.counter_add(name, labels, 1);
    }

    /// Set a gauge to a value.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        if !self.enabled {
            return;
        }
        self.metrics
            .insert(MetricKey::new(name, labels), MetricValue::Gauge(value));
    }

    /// Record one nanosecond observation into a histogram.
    pub fn observe_ns(&mut self, name: &str, labels: &[(&str, &str)], ns: u64) {
        if !self.enabled {
            return;
        }
        let entry = self
            .metrics
            .entry(MetricKey::new(name, labels))
            .or_insert_with(|| MetricValue::Histogram(NsHistogram::new()));
        match entry {
            MetricValue::Histogram(h) => h.record(ns),
            _ => panic!("metric {name} is not a histogram"), // mmt-lint: allow(P1, "API-misuse guard; metric names are compile-time constants")
        }
    }

    /// Merge a whole histogram into a metric.
    pub fn observe_histogram(&mut self, name: &str, labels: &[(&str, &str)], hist: &NsHistogram) {
        if !self.enabled {
            return;
        }
        let entry = self
            .metrics
            .entry(MetricKey::new(name, labels))
            .or_insert_with(|| MetricValue::Histogram(NsHistogram::new()));
        match entry {
            MetricValue::Histogram(h) => h.merge(hist),
            _ => panic!("metric {name} is not a histogram"), // mmt-lint: allow(P1, "API-misuse guard; metric names are compile-time constants")
        }
    }

    /// Read a counter (0 when absent) — mainly for tests and reports.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.metrics.get(&MetricKey::new(name, labels)) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Read a gauge, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.metrics.get(&MetricKey::new(name, labels)) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Read a histogram, if present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&NsHistogram> {
        match self.metrics.get(&MetricKey::new(name, labels)) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Number of distinct (name, labels) series.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry holds no series.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Iterate series in deterministic (name, labels) order.
    pub fn iter(&self) -> impl Iterator<Item = (&MetricKey, &MetricValue)> {
        self.metrics.iter()
    }

    /// Merge every series from `other` into this registry (counters add,
    /// gauges overwrite, histograms merge).
    pub fn absorb(&mut self, other: &MetricRegistry) {
        if !self.enabled {
            return;
        }
        for (key, value) in other.iter() {
            let labels: Vec<(&str, &str)> = key
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            match value {
                MetricValue::Counter(v) => self.counter_add(&key.name, &labels, *v),
                MetricValue::Gauge(v) => self.gauge_set(&key.name, &labels, *v),
                MetricValue::Histogram(h) => self.observe_histogram(&key.name, &labels, h),
            }
        }
        for (name, help) in &other.help {
            self.help
                .entry(name.clone())
                .or_insert_with(|| help.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let mut reg = MetricRegistry::disabled();
        reg.counter_inc("c", &[]);
        reg.gauge_set("g", &[], 1.0);
        reg.observe_ns("h", &[], 5);
        reg.describe("c", "help");
        assert!(reg.is_empty());
        assert!(!reg.is_enabled());
        assert_eq!(reg.counter("c", &[]), 0);
    }

    #[test]
    fn counters_accumulate_per_label_set() {
        let mut reg = MetricRegistry::new();
        reg.counter_add("tx", &[("link", "0")], 2);
        reg.counter_inc("tx", &[("link", "0")]);
        reg.counter_inc("tx", &[("link", "1")]);
        assert_eq!(reg.counter("tx", &[("link", "0")]), 3);
        assert_eq!(reg.counter("tx", &[("link", "1")]), 1);
        assert_eq!(reg.counter("tx", &[("link", "9")]), 0);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn label_order_does_not_matter() {
        let mut reg = MetricRegistry::new();
        reg.counter_inc("m", &[("a", "1"), ("b", "2")]);
        reg.counter_inc("m", &[("b", "2"), ("a", "1")]);
        assert_eq!(reg.counter("m", &[("a", "1"), ("b", "2")]), 2);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn gauges_overwrite_histograms_accumulate() {
        let mut reg = MetricRegistry::new();
        reg.gauge_set("g", &[], 1.0);
        reg.gauge_set("g", &[], 2.5);
        assert_eq!(reg.gauge("g", &[]), Some(2.5));
        reg.observe_ns("h", &[], 10);
        reg.observe_ns("h", &[], 20);
        let h = reg.histogram("h", &[]).unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(10));
    }

    #[test]
    fn iteration_is_sorted() {
        let mut reg = MetricRegistry::new();
        reg.counter_inc("zz", &[]);
        reg.counter_inc("aa", &[("x", "2")]);
        reg.counter_inc("aa", &[("x", "1")]);
        let names: Vec<String> = reg
            .iter()
            .map(|(k, _)| format!("{}{:?}", k.name, k.labels))
            .collect();
        assert!(names[0].starts_with("aa") && names[0].contains('1'));
        assert!(names[1].starts_with("aa") && names[1].contains('2'));
        assert!(names[2].starts_with("zz"));
    }

    #[test]
    fn absorb_merges_all_kinds() {
        let mut a = MetricRegistry::new();
        let mut b = MetricRegistry::new();
        a.counter_add("c", &[], 1);
        b.counter_add("c", &[], 2);
        b.gauge_set("g", &[], 9.0);
        b.observe_ns("h", &[], 7);
        b.describe("c", "a counter");
        a.absorb(&b);
        assert_eq!(a.counter("c", &[]), 3);
        assert_eq!(a.gauge("g", &[]), Some(9.0));
        assert_eq!(a.histogram("h", &[]).unwrap().count(), 1);
        assert_eq!(a.help("c"), Some("a counter"));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_confusion_panics() {
        let mut reg = MetricRegistry::new();
        reg.gauge_set("m", &[], 1.0);
        reg.counter_inc("m", &[]);
    }
}
