//! A minimal deterministic JSON writer.
//!
//! Library crates must stay dependency-free, so exports are built by hand:
//! fields are written in call order, floats use Rust's shortest-roundtrip
//! formatting, and strings are escaped per RFC 8259. Output for the same
//! inputs is byte-for-byte identical across runs.

/// Escape a string for inclusion inside JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number (no NaN/Inf — those become `null`).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Ensure integral floats still read as numbers with a decimal
        // point is unnecessary in JSON; shortest-roundtrip is fine.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Builder for one JSON object, fields in call order.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Start an object.
    pub fn new() -> JsonObject {
        JsonObject { buf: String::new() }
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
    }

    /// Add a string field.
    pub fn str(mut self, key: &str, value: &str) -> JsonObject {
        self.sep();
        self.buf
            .push_str(&format!("\"{}\":\"{}\"", escape(key), escape(value)));
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> JsonObject {
        self.sep();
        self.buf.push_str(&format!("\"{}\":{}", escape(key), value));
        self
    }

    /// Add a float field.
    pub fn f64(mut self, key: &str, value: f64) -> JsonObject {
        self.sep();
        self.buf
            .push_str(&format!("\"{}\":{}", escape(key), number(value)));
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> JsonObject {
        self.sep();
        self.buf.push_str(&format!("\"{}\":{}", escape(key), value));
        self
    }

    /// Add a pre-rendered JSON value (object, array, `null`, …).
    pub fn raw(mut self, key: &str, value: &str) -> JsonObject {
        self.sep();
        self.buf.push_str(&format!("\"{}\":{}", escape(key), value));
        self
    }

    /// Add a field only when the value is present.
    pub fn opt_u64(self, key: &str, value: Option<u64>) -> JsonObject {
        match value {
            Some(v) => self.u64(key, v),
            None => self,
        }
    }

    /// Finish: the rendered `{...}`.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Render a JSON array from pre-rendered element strings.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn object_field_order_and_types() {
        let s = JsonObject::new()
            .str("name", "x")
            .u64("n", 3)
            .f64("f", 0.5)
            .bool("ok", true)
            .raw("arr", "[1,2]")
            .opt_u64("absent", None)
            .opt_u64("present", Some(9))
            .finish();
        assert_eq!(
            s,
            "{\"name\":\"x\",\"n\":3,\"f\":0.5,\"ok\":true,\"arr\":[1,2],\"present\":9}"
        );
    }

    #[test]
    fn array_rendering() {
        assert_eq!(array(vec!["1".to_string(), "2".to_string()]), "[1,2]");
        assert_eq!(array(Vec::<String>::new()), "[]");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(2.0), "2");
    }
}
