//! # `mmt-telemetry` — the unified telemetry substrate
//!
//! The paper's central claims (hop-by-hop recovery latency, age budgets,
//! deadline misses, backpressure behaviour — §4.1/§5.3) are observability
//! claims, so this workspace carries a first-class telemetry layer rather
//! than ad-hoc per-crate counters. Three pieces:
//!
//! * [`MetricRegistry`] — named counters / gauges / latency histograms
//!   with label sets (link, node, mode, experiment slice). Iteration order
//!   is deterministic (sorted by name, then labels) so every export is
//!   byte-for-byte reproducible for a given seed, which makes the
//!   telemetry layer itself a correctness oracle: two runs with the same
//!   seed must export identical bytes.
//! * [`TraceRecord`] — a flow-correlated structured event (virtual-time
//!   stamp, node/link, packet id, flow id, MMT sequence, config id) that a
//!   packet-level trace resolves into, so one packet can be followed
//!   across segments, mode transitions, NAK recovery, and duplication.
//! * Exporters — [`prometheus::render`] (Prometheus text format),
//!   [`trace::to_jsonl`] (one JSON object per event), and
//!   [`trace::to_chrome_trace`] (Chrome Trace Event Format, loadable in
//!   `chrome://tracing` / Perfetto as a virtual-time timeline).
//!
//! The streaming half adds [`QuantileSketch`] (fixed-memory online
//! quantiles with a documented ≤ 1/32 upward error bound and a
//! commutative merge), [`SeriesRow`] / [`series::to_jsonl`]
//! (deterministic virtual-time series samples), and [`flight::render`]
//! (flight-recorder dumps of the bounded trace ring on failure).
//!
//! Everything is pure `std` — no dependencies — so library crates that
//! embed telemetry hooks stay dependency-free, and all timestamps are
//! virtual-time `u64` nanoseconds.
//!
//! ## Example
//!
//! ```
//! use mmt_telemetry::{MetricRegistry, prometheus};
//!
//! let mut reg = MetricRegistry::new();
//! reg.counter_add("mmt_link_tx_packets_total", &[("link", "0")], 42);
//! reg.gauge_set("mmt_link_utilization", &[("link", "0")], 0.5);
//! reg.observe_ns("mmt_e2e_latency_ns", &[], 1_500);
//! let text = prometheus::render(&reg);
//! assert!(text.contains("mmt_link_tx_packets_total{link=\"0\"} 42"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
mod histogram;
pub mod json;
pub mod prometheus;
mod registry;
pub mod series;
mod sketch;
pub mod trace;

pub use histogram::NsHistogram;
pub use registry::{LabelSet, MetricRegistry, MetricValue};
pub use series::{SeriesRow, SeriesValue};
pub use sketch::QuantileSketch;
pub use trace::TraceRecord;
