//! Flight-recorder dump rendering: a failure becomes a replayable
//! artifact instead of a bare seed.
//!
//! The simulator keeps a bounded ring of recent trace events (see
//! `Trace::with_capacity` in `mmt-netsim`); when a chaos invariant
//! trips, a node crashes, or the sim panics, the driver renders the
//! ring through [`render`]: one JSON header line carrying the trigger
//! context (`reason`, seed, virtual time, events processed, record
//! count) followed by the retained [`TraceRecord`]s as JSONL in the
//! exact [`crate::trace::to_jsonl`] format. Output is deterministic for
//! a given run, so two identical runs produce byte-identical dumps —
//! the regression property the test suite pins.

use crate::json::JsonObject;
use crate::trace::{self, TraceRecord};

/// Render a flight-recorder dump: a `{"flight":"v1",...}` header line
/// plus the retained trace records as JSONL.
pub fn render(
    reason: &str,
    seed: u64,
    now_ns: u64,
    events: u64,
    records: &[TraceRecord],
) -> String {
    let header = JsonObject::new()
        .str("flight", "v1")
        .str("reason", reason)
        .u64("seed", seed)
        .u64("now_ns", now_ns)
        .u64("events", events)
        .u64("records", records.len() as u64)
        .finish();
    let mut out = header;
    out.push('\n');
    out.push_str(&trace::to_jsonl(records));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_has_header_then_records() {
        let rec = TraceRecord {
            ts_ns: 5,
            kind: "node_crash".to_string(),
            node: Some(1),
            node_name: Some("dtn1".to_string()),
            link: None,
            packet_id: 0,
            flow: 0,
            seq: None,
            config: None,
            len_bytes: 0,
        };
        let out = render("node_crash", 7, 5_000, 42, &[rec]);
        let mut lines = out.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("{\"flight\":\"v1\",\"reason\":\"node_crash\""));
        assert!(header.contains("\"seed\":7"));
        assert!(header.contains("\"records\":1"));
        assert!(lines.next().unwrap().contains("\"kind\":\"node_crash\""));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn empty_ring_still_renders_header() {
        let out = render("panic", 1, 0, 0, &[]);
        assert_eq!(out.lines().count(), 1);
        assert!(out.contains("\"reason\":\"panic\""));
        assert!(out.contains("\"records\":0"));
    }
}
