//! Deterministic time-series rows: the streaming counterpart of the
//! end-of-run [`crate::MetricRegistry`] snapshot.
//!
//! A [`SeriesRow`] is one `(virtual time, metric, labels, value)` sample
//! emitted by the simulator's periodic sampler. Rendering is strict
//! JSONL with a fixed field order (`t_ns`, `name`, `labels`, `value`),
//! so a run's series output is byte-for-byte reproducible for a given
//! seed — and byte-identical across shard/worker counts when per-group
//! rows are merged in ascending group order, mirroring
//! `MetricRegistry::absorb`.

use crate::json::JsonObject;

/// The sampled value of one series point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SeriesValue {
    /// A monotone counter sample.
    Counter(u64),
    /// An instantaneous gauge sample.
    Gauge(f64),
}

/// One time-series sample: virtual-time stamp, metric name, label set
/// (rendered in stored order), and value.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesRow {
    /// Virtual time of the sample in nanoseconds.
    pub t_ns: u64,
    /// Metric name (Prometheus-style).
    pub name: String,
    /// Label pairs, rendered in stored order.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: SeriesValue,
}

impl SeriesRow {
    /// A counter sample.
    pub fn counter(t_ns: u64, name: &str, labels: &[(&str, &str)], value: u64) -> SeriesRow {
        SeriesRow {
            t_ns,
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value: SeriesValue::Counter(value),
        }
    }

    /// A gauge sample.
    pub fn gauge(t_ns: u64, name: &str, labels: &[(&str, &str)], value: f64) -> SeriesRow {
        SeriesRow {
            t_ns,
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value: SeriesValue::Gauge(value),
        }
    }

    /// Render as a single JSON object with fixed field order.
    pub fn to_json(&self) -> String {
        let mut labels = JsonObject::new();
        for (k, v) in &self.labels {
            labels = labels.str(k, v);
        }
        let obj = JsonObject::new()
            .u64("t_ns", self.t_ns)
            .str("name", &self.name)
            .raw("labels", &labels.finish());
        match self.value {
            SeriesValue::Counter(v) => obj.u64("value", v),
            SeriesValue::Gauge(v) => obj.f64("value", v),
        }
        .finish()
    }
}

/// Render rows as JSON Lines, one object per sample in input order.
pub fn to_jsonl(rows: &[SeriesRow]) -> String {
    let mut out = String::new();
    for r in rows {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_rendering_is_fixed_order() {
        let c = SeriesRow::counter(1_000, "mmt_sim_events_total", &[], 42);
        assert_eq!(
            c.to_json(),
            "{\"t_ns\":1000,\"name\":\"mmt_sim_events_total\",\"labels\":{},\"value\":42}"
        );
        let g = SeriesRow::gauge(
            2_000,
            "mmt_link_queue_occupancy_bytes",
            &[("link", "3")],
            0.5,
        );
        assert_eq!(
            g.to_json(),
            "{\"t_ns\":2000,\"name\":\"mmt_link_queue_occupancy_bytes\",\
             \"labels\":{\"link\":\"3\"},\"value\":0.5}"
        );
    }

    #[test]
    fn jsonl_one_line_per_row() {
        let rows = vec![
            SeriesRow::counter(0, "a", &[], 1),
            SeriesRow::counter(10, "a", &[], 2),
        ];
        let out = to_jsonl(&rows);
        assert_eq!(out.lines().count(), 2);
        assert!(out.ends_with('\n'));
        assert_eq!(to_jsonl(&[]), "");
    }
}
