//! Exact nanosecond histograms for virtual-time latencies.

/// A sample-keeping histogram over `u64` nanosecond values.
///
/// Simulations produce at most millions of samples, so keeping them all
/// and sorting on demand is both exact and fast enough; no approximate
/// sketch is needed. Quantiles use the **nearest-rank** definition: for
/// `n` samples the `q`-quantile is the sample at sorted index
/// `round((n − 1) · q)` — with one sample every quantile is that sample,
/// and `q = 0` / `q = 1` are the exact min / max.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NsHistogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl NsHistogram {
    /// An empty histogram.
    pub fn new() -> NsHistogram {
        NsHistogram::default()
    }

    /// Record one value.
    pub fn record(&mut self, ns: u64) {
        self.samples.push(ns);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.samples.iter().map(|&v| u128::from(v)).sum()
    }

    /// Minimum, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        self.samples.iter().min().copied()
    }

    /// Maximum, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().max().copied()
    }

    /// Mean, or `None` if empty (truncated to whole nanoseconds).
    pub fn mean(&self) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        Some((self.sum() / self.samples.len() as u128) as u64)
    }

    /// Population standard deviation (0.0 with fewer than two samples).
    pub fn stddev(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.sum() as f64 / n as f64;
        let var = self
            .samples
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        var.sqrt()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// The `q`-quantile (clamped to 0.0–1.0) by nearest rank, or `None`
    /// if empty.
    pub fn quantile(&mut self, q: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.samples.len() as f64 - 1.0) * q).round() as usize;
        Some(self.samples[rank])
    }

    /// Merge another histogram's samples into this one.
    pub fn merge(&mut self, other: &NsHistogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let mut h = NsHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.stddev(), 0.0);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut h = NsHistogram::new();
        h.record(7);
        for q in [0.0, 0.25, 0.5, 0.999, 1.0] {
            assert_eq!(h.quantile(q), Some(7));
        }
        assert_eq!(h.mean(), Some(7));
        assert_eq!(h.stddev(), 0.0);
    }

    #[test]
    fn two_samples() {
        let mut h = NsHistogram::new();
        h.record(10);
        h.record(20);
        // Nearest rank: round((2−1)·q) picks index 0 below 0.5, 1 at ≥0.5.
        assert_eq!(h.quantile(0.0), Some(10));
        assert_eq!(h.quantile(0.49), Some(10));
        assert_eq!(h.quantile(0.5), Some(20));
        assert_eq!(h.quantile(1.0), Some(20));
        assert_eq!(h.mean(), Some(15));
        assert!((h.stddev() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_and_merge() {
        let mut a = NsHistogram::new();
        let mut b = NsHistogram::new();
        for v in 1..=50u64 {
            a.record(v);
        }
        for v in 51..=100u64 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert_eq!(a.quantile(0.0), Some(1));
        assert_eq!(a.quantile(1.0), Some(100));
        assert_eq!(a.quantile(0.99), Some(99));
        assert_eq!(a.sum(), 5050);
        assert_eq!(a.mean(), Some(50));
    }
}
