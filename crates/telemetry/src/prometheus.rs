//! Prometheus text-format exporter (exposition format 0.0.4).
//!
//! Counters and gauges render as plain series; histograms render as
//! Prometheus *summaries*: nearest-rank quantile series (0.5 / 0.9 /
//! 0.99 / 0.999) plus `_sum`, `_count`, `_min`, and `_max`. The output
//! is deterministic: series are sorted by name then labels, and numbers
//! use integer or shortest-roundtrip formatting.

use crate::registry::{MetricRegistry, MetricValue};

/// Quantiles emitted for every histogram series.
pub const SUMMARY_QUANTILES: [(f64, &str); 4] =
    [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")];

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Render the registry as Prometheus exposition text.
pub fn render(reg: &MetricRegistry) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for (name, labels, value) in reg.iter() {
        if last_name != Some(name) {
            if let Some(help) = reg.help(name) {
                out.push_str(&format!("# HELP {} {}\n", name, help));
            }
            let kind = match value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "summary",
            };
            out.push_str(&format!("# TYPE {} {}\n", name, kind));
            last_name = Some(name);
        }
        match value {
            MetricValue::Counter(v) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    name,
                    render_labels(labels.pairs(), None),
                    v
                ));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    name,
                    render_labels(labels.pairs(), None),
                    fmt_f64(*v)
                ));
            }
            MetricValue::Histogram(h) => {
                let mut sorted = h.clone();
                for (q, qname) in SUMMARY_QUANTILES {
                    if let Some(v) = sorted.quantile(q) {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            name,
                            render_labels(labels.pairs(), Some(("quantile", qname))),
                            v
                        ));
                    }
                }
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    name,
                    render_labels(labels.pairs(), None),
                    h.sum()
                ));
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    name,
                    render_labels(labels.pairs(), None),
                    h.count()
                ));
                if let (Some(min), Some(max)) = (h.min(), h.max()) {
                    out.push_str(&format!(
                        "{}_min{} {}\n",
                        name,
                        render_labels(labels.pairs(), None),
                        min
                    ));
                    out.push_str(&format!(
                        "{}_max{} {}\n",
                        name,
                        render_labels(labels.pairs(), None),
                        max
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_gauges_and_summaries() {
        let mut reg = MetricRegistry::new();
        reg.describe("tx_total", "packets transmitted");
        reg.counter_add("tx_total", &[("link", "0")], 5);
        reg.counter_add("tx_total", &[("link", "1")], 7);
        reg.gauge_set("util", &[], 0.25);
        for v in [10u64, 20, 30] {
            reg.observe_ns("lat_ns", &[("node", "rx")], v);
        }
        let text = render(&reg);
        assert!(text.contains("# HELP tx_total packets transmitted"));
        assert!(text.contains("# TYPE tx_total counter"));
        assert!(text.contains("tx_total{link=\"0\"} 5"));
        assert!(text.contains("tx_total{link=\"1\"} 7"));
        assert!(text.contains("# TYPE util gauge"));
        assert!(text.contains("util 0.25"));
        assert!(text.contains("# TYPE lat_ns summary"));
        assert!(text.contains("lat_ns{node=\"rx\",quantile=\"0.5\"} 20"));
        assert!(text.contains("lat_ns_sum{node=\"rx\"} 60"));
        assert!(text.contains("lat_ns_count{node=\"rx\"} 3"));
        assert!(text.contains("lat_ns_min{node=\"rx\"} 10"));
        assert!(text.contains("lat_ns_max{node=\"rx\"} 30"));
        // TYPE line appears once per name even with several label sets.
        assert_eq!(text.matches("# TYPE tx_total").count(), 1);
    }

    #[test]
    fn output_is_deterministic() {
        let build = || {
            let mut reg = MetricRegistry::new();
            reg.counter_inc("b_total", &[("x", "2")]);
            reg.counter_inc("a_total", &[]);
            reg.gauge_set("g", &[("k", "v")], 1.5);
            render(&reg)
        };
        assert_eq!(build(), build());
        let text = build();
        let a = text.find("a_total").unwrap();
        let b = text.find("b_total").unwrap();
        assert!(a < b, "series must sort by name");
    }

    #[test]
    fn label_values_escaped() {
        let mut reg = MetricRegistry::new();
        reg.counter_inc("m", &[("k", "a\"b")]);
        assert!(render(&reg).contains("m{k=\"a\\\"b\"} 1"));
    }
}
