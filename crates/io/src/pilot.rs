//! The `io-pilot` scenario: the pilot sender→DTN→receiver chain over
//! real UDP sockets.
//!
//! Three runners share one loop shape:
//!
//! - [`run_loopback`] — both endpoints in one process over a loopback
//!   socket pair. This is the CI shape: deterministic-enough, no peer
//!   coordination, exercises the full recovery path.
//! - [`run_connect`] — the sending half (sensor + border DTN), aimed at
//!   a remote receiver.
//! - [`run_listen`] — the receiving half, bound to an address, peer
//!   learned from the first datagram.
//!
//! Faults are injected on the *data* direction only (at the sending
//! socket); the NAK path stays clean, modelling a lossy WAN with a
//! protected control channel. The receiver's NAK retry interval is driven
//! by the [`RtoEstimator`]: each NAK→recovery round-trip feeds a sample,
//! each barren retry backs the timeout off, and an exhausted retry budget
//! degrades the flow early. A [`Watchdog`] ladder guards the configured
//! deadline: shed → degrade → abort-with-flight-dump.

use std::net::UdpSocket;

use mmt_core::{MmtReceiver, MmtSender, ReceiverConfig, RetransmitBuffer, SenderConfig};
use mmt_netsim::{Packet, Time};
use mmt_telemetry::{flight, MetricRegistry, TraceRecord};
use mmt_wire::mmt::ExperimentId;
use mmt_wire::Ipv4Address;

use crate::clock::IoClock;
use crate::driver::{ReceiverSide, SenderSide};
use crate::fault::{FaultInjector, FaultPlan, FaultStats};
use crate::rto::RtoEstimator;
use crate::socket::{FaultySocket, SocketStats};
use crate::watchdog::{Watchdog, WatchdogStage};
use crate::IoError;

/// Idle sleep granularity: short enough to keep µs-scale schedules
/// honest, long enough not to spin a core.
const IDLE_SLEEP: std::time::Duration = std::time::Duration::from_micros(100);

/// Configuration for an io-pilot run.
#[derive(Debug, Clone)]
pub struct IoPilotConfig {
    /// Messages the sender emits.
    pub messages: u64,
    /// Payload bytes per message.
    pub message_len: usize,
    /// Gap between scheduled messages.
    pub gap: Time,
    /// Injected drop probability on the data direction.
    pub loss: f64,
    /// Injected duplication probability on the data direction.
    pub dup: f64,
    /// Injected fixed delay on the data direction.
    pub delay: Time,
    /// Seed for the fault injector rng.
    pub seed: u64,
    /// RTO floor.
    pub rto_min: Time,
    /// RTO ceiling.
    pub rto_max: Time,
    /// Per-sequence NAK retry budget (also the RTO backoff budget).
    pub nak_retries: u32,
    /// Total flow deadline (drives the watchdog ladder).
    pub deadline: Time,
    /// Flight-recorder ring capacity.
    pub flight_cap: usize,
}

impl IoPilotConfig {
    /// Defaults sized for a loopback smoke run: 200 × 1 KiB messages at
    /// a 50 µs pace, 5 ms RTO floor, 2 s deadline.
    pub fn defaults() -> IoPilotConfig {
        IoPilotConfig {
            messages: 200,
            message_len: 1024,
            gap: Time::from_micros(50),
            loss: 0.0,
            dup: 0.0,
            delay: Time::ZERO,
            seed: 1,
            rto_min: Time::from_millis(5),
            rto_max: Time::from_millis(500),
            nak_retries: 16,
            deadline: Time::from_secs(2),
            flight_cap: 4096,
        }
    }

    fn plan(&self) -> FaultPlan {
        FaultPlan {
            drop: self.loss,
            dup: self.dup,
            delay: self.delay,
        }
    }
}

/// Outcome of an io-pilot run.
#[derive(Debug, Clone)]
pub struct IoPilotReport {
    /// Messages the run expected end-to-end.
    pub messages: u64,
    /// Deduplicated deliveries at the receiver (0 on the connect side,
    /// which has no receiver).
    pub delivered: u64,
    /// Duplicate packets the receiver suppressed.
    pub duplicates: u64,
    /// NAKs the receiver sent.
    pub naks_sent: u64,
    /// Sequences recovered via NAK.
    pub recovered: u64,
    /// Sequences abandoned as lost.
    pub lost: u64,
    /// Sequences abandoned because their retry budget ran out.
    pub nak_retries_exhausted: u64,
    /// Datagrams the sender emitted.
    pub sent: u64,
    /// Whether the flow completed (every expected message delivered).
    pub completed: bool,
    /// Wall time consumed.
    pub elapsed: Time,
    /// Final watchdog stage.
    pub watchdog_stage: WatchdogStage,
    /// Watchdog transitions taken, with their times.
    pub watchdog_transitions: Vec<(Time, WatchdogStage)>,
    /// Final smoothed RTT estimate (ns; 0 if no sample).
    pub srtt_ns: u64,
    /// Final effective RTO (ns).
    pub rto_ns: u64,
    /// RTT samples folded into the estimator.
    pub rto_samples: u64,
    /// Fault-injection counters from the data direction.
    pub faults: FaultStats,
    /// Kernel-level counters for the data-direction socket.
    pub data_socket: SocketStats,
    /// Kernel-level counters for the control-direction socket.
    pub control_socket: SocketStats,
    /// Flight-recorder records accumulated during the run.
    pub flight: Vec<TraceRecord>,
    /// Fault-injector seed (stamped into flight dumps).
    pub seed: u64,
    /// Order-sensitive FNV digest of `(msg_index, seq)` deliveries —
    /// comparable against a sim receiver's
    /// [`MmtReceiver::delivery_digest`] for driver equivalence (0 on the
    /// connect side, which has no receiver).
    pub delivery_digest: u64,
}

impl IoPilotReport {
    /// Exactly-once delivery: every expected message delivered, nothing
    /// abandoned. (Duplicate *packets* may well have arrived — the
    /// receiver's dedup is what this property tests.)
    pub fn exactly_once(&self) -> bool {
        self.delivered == self.messages && self.lost == 0
    }

    /// Render the flight recorder for this run.
    pub fn render_flight(&self, reason: &str) -> String {
        flight::render(
            reason,
            self.seed,
            self.elapsed.as_nanos(),
            self.flight.len() as u64,
            &self.flight,
        )
    }

    /// Export run counters into a metric registry under the `io_pilot`
    /// node label, alongside whatever the machines themselves export.
    pub fn export_metrics(&self, reg: &mut MetricRegistry) {
        let labels = [("node", "io_pilot")];
        for (name, help, value) in [
            (
                "mmt_io_sent_total",
                "Datagrams emitted by the sending endpoint.",
                self.sent,
            ),
            (
                "mmt_io_delivered_total",
                "Messages delivered (deduplicated).",
                self.delivered,
            ),
            (
                "mmt_io_recovered_total",
                "Sequences recovered via NAK over the real path.",
                self.recovered,
            ),
            (
                "mmt_io_lost_total",
                "Sequences abandoned as lost.",
                self.lost,
            ),
            (
                "mmt_io_faults_dropped_total",
                "Datagrams dropped by the socket fault injector.",
                self.faults.dropped,
            ),
            (
                "mmt_io_faults_duplicated_total",
                "Datagrams duplicated by the socket fault injector.",
                self.faults.duplicated,
            ),
            (
                "mmt_io_rto_samples_total",
                "RTT samples folded into the RTO estimator.",
                self.rto_samples,
            ),
        ] {
            reg.describe(name, help);
            reg.counter_add(name, &labels, value);
        }
        reg.describe(
            "mmt_io_srtt_ns",
            "Final smoothed RTT estimate in nanoseconds.",
        );
        reg.gauge_set("mmt_io_srtt_ns", &labels, self.srtt_ns as f64);
        reg.describe("mmt_io_rto_ns", "Final effective RTO in nanoseconds.");
        reg.gauge_set("mmt_io_rto_ns", &labels, self.rto_ns as f64);
    }
}

/// Bounded flight recorder for io runs.
struct Flight {
    records: Vec<TraceRecord>,
    cap: usize,
    dropped: u64,
    next_id: u64,
}

impl Flight {
    fn new(cap: usize) -> Flight {
        Flight {
            records: Vec::new(),
            cap,
            dropped: 0,
            next_id: 0,
        }
    }

    fn event(&mut self, now: Time, kind: &str, len_bytes: u64) {
        self.next_id += 1;
        if self.records.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.records.push(TraceRecord {
            ts_ns: now.as_nanos(),
            kind: kind.to_string(),
            node: None,
            node_name: Some("io_pilot".to_string()),
            link: None,
            packet_id: self.next_id,
            flow: 0,
            seq: None,
            config: None,
            len_bytes,
        });
    }
}

/// Receiver-side control bookkeeping: RTO feeding, backoff, degrade.
struct RxGovernor {
    rto: RtoEstimator,
    last_recovered: u64,
    last_naks: u64,
    nak_outstanding: Option<Time>,
    degraded: bool,
}

impl RxGovernor {
    fn new(cfg: &IoPilotConfig) -> RxGovernor {
        RxGovernor {
            rto: RtoEstimator::new(cfg.rto_min, cfg.rto_max, cfg.nak_retries),
            last_recovered: 0,
            last_naks: 0,
            nak_outstanding: None,
            degraded: false,
        }
    }

    /// Collapse retry budgets so outstanding gaps exhaust quickly and
    /// are accounted instead of retried past the deadline.
    fn degrade(&mut self, rx: &mut ReceiverSide, now: Time, flight: &mut Flight) {
        if self.degraded {
            return;
        }
        self.degraded = true;
        let rcfg = rx.receiver_mut().config_mut();
        rcfg.max_nak_retries = 1;
        rcfg.give_up_after = self.rto.current();
        flight.event(now, "io_degrade", 0);
    }

    /// Fold the receiver's counters into RTO state after an iteration.
    fn after_iter(&mut self, now: Time, rx: &mut ReceiverSide, flight: &mut Flight) {
        let stats = rx.receiver().stats;
        if stats.recovered > self.last_recovered {
            if let Some(t0) = self.nak_outstanding.take() {
                self.rto.observe(now.saturating_sub(t0));
                flight.event(now, "io_rto_sample", self.rto.srtt_ns());
            }
            self.last_recovered = stats.recovered;
            self.apply(rx);
        }
        if stats.naks_sent > self.last_naks {
            if self.nak_outstanding.is_some() {
                // A retry round passed with no recovery: back off.
                if !self.rto.back_off() {
                    self.degrade(rx, now, flight);
                }
                flight.event(now, "io_rto_backoff", self.rto.current().as_nanos());
            } else {
                self.nak_outstanding = Some(now);
            }
            self.last_naks = stats.naks_sent;
            self.apply(rx);
        }
    }

    /// Push the current RTO estimate into the receiver's NAK interval.
    fn apply(&self, rx: &mut ReceiverSide) {
        rx.receiver_mut().config_mut().nak_interval = self.rto.current();
    }
}

fn apply_watchdog_stage(
    stage: WatchdogStage,
    rx: Option<&mut ReceiverSide>,
    gov: Option<&mut RxGovernor>,
    now: Time,
    flight: &mut Flight,
) {
    match stage {
        WatchdogStage::Shed => {
            flight.event(now, "io_watchdog_shed", 0);
            if let Some(rx) = rx {
                // Reduce retry pressure on the struggling path.
                let rcfg = rx.receiver_mut().config_mut();
                rcfg.nak_interval = rcfg.nak_interval * 2;
            }
        }
        WatchdogStage::Degraded => {
            flight.event(now, "io_watchdog_degrade", 0);
            if let (Some(rx), Some(gov)) = (rx, gov) {
                gov.degrade(rx, now, flight);
            }
        }
        WatchdogStage::Aborted => flight.event(now, "io_watchdog_abort", 0),
        WatchdogStage::Healthy => {}
    }
}

fn abort_error(flight: &Flight, seed: u64, now: Time) -> IoError {
    IoError::WatchdogAbort {
        flight: flight::render(
            "watchdog_abort",
            seed,
            now.as_nanos(),
            flight.records.len() as u64 + flight.dropped,
            &flight.records,
        ),
        elapsed_ns: now.as_nanos(),
    }
}

fn build_sender_side(cfg: &IoPilotConfig) -> SenderSide {
    let exp = ExperimentId::new(2, 0);
    let sender = MmtSender::new(SenderConfig::regular(
        exp,
        cfg.message_len,
        cfg.gap,
        cfg.messages as usize,
    ));
    let buffer = RetransmitBuffer::with_defaults(
        exp,
        Ipv4Address::new(10, 0, 0, 5),
        cfg.deadline.as_nanos(),
        1 << 30,
    )
    .with_retx_holdoff(cfg.rto_min / 2);
    SenderSide::new(sender, buffer)
}

fn build_receiver_side(cfg: &IoPilotConfig) -> ReceiverSide {
    let exp = ExperimentId::new(2, 0);
    let mut rcfg = ReceiverConfig::wan_defaults(exp, Ipv4Address::new(10, 0, 0, 8));
    rcfg.expect_messages = Some(cfg.messages);
    rcfg.reorder_delay = (cfg.rto_min / 8).max(Time::from_micros(100));
    // The NAK interval starts at the pre-sample RTO and is re-tuned by
    // the governor as samples arrive.
    rcfg.nak_interval = RtoEstimator::new(cfg.rto_min, cfg.rto_max, cfg.nak_retries).current();
    rcfg.nak_interval_max = cfg.deadline.max(rcfg.nak_interval);
    rcfg.max_nak_retries = cfg.nak_retries;
    // Time-based give-up is the watchdog's job out here.
    rcfg.give_up_after = cfg.deadline;
    ReceiverSide::new(MmtReceiver::new(rcfg))
}

fn sleep_until_next(now: Time, candidates: &[Option<Time>]) {
    let next = candidates.iter().flatten().min().copied();
    let budget = match next {
        Some(at) if at > now => {
            let gap_ns = at.saturating_sub(now).as_nanos();
            std::time::Duration::from_nanos(gap_ns).min(IDLE_SLEEP)
        }
        Some(_) => return, // something is already due — loop again now
        None => IDLE_SLEEP,
    };
    std::thread::sleep(budget);
}

/// Run both endpoints in one process over a loopback socket pair.
pub fn run_loopback(cfg: &IoPilotConfig) -> Result<IoPilotReport, IoError> {
    let data_sock = UdpSocket::bind(("127.0.0.1", 0))?;
    let ctrl_sock = UdpSocket::bind(("127.0.0.1", 0))?;
    let data_addr = data_sock.local_addr()?;
    let ctrl_addr = ctrl_sock.local_addr()?;
    let mut s_tx = FaultySocket::new(
        data_sock,
        Some(ctrl_addr),
        FaultInjector::new(cfg.seed, cfg.plan()),
    )?;
    let mut s_rx = FaultySocket::new(
        ctrl_sock,
        Some(data_addr),
        FaultInjector::new(cfg.seed ^ 0x5ca1ab1e, FaultPlan::clean()),
    )?;

    let mut tx = build_sender_side(cfg);
    let mut rx = build_receiver_side(cfg);
    let mut gov = RxGovernor::new(cfg);
    let mut watchdog = Watchdog::new(cfg.deadline);
    let mut flight = Flight::new(cfg.flight_cap);

    let clock = IoClock::start();
    let mut wire_tx: Vec<Packet> = Vec::new();
    let mut wire_rx: Vec<Packet> = Vec::new();
    let mut buf = vec![0u8; 65536];
    tx.start(clock.now(), &mut wire_tx);
    flight.event(Time::ZERO, "io_start", 0);

    let (completed, elapsed) = loop {
        let now = clock.now();
        if let Some(stage) = watchdog.check(now) {
            apply_watchdog_stage(stage, Some(&mut rx), Some(&mut gov), now, &mut flight);
            if stage == WatchdogStage::Aborted {
                return Err(abort_error(&flight, cfg.seed, now));
            }
        }
        tx.poll_timers(now, &mut wire_tx);
        rx.poll_timers(now, &mut wire_rx);

        let mut moved = false;
        while let Some(n) = s_tx.recv(&mut buf)? {
            moved = true;
            flight.event(now, "io_rx_nak", n as u64);
            tx.wire_in(now, buf[..n].to_vec(), &mut wire_tx);
        }
        while let Some(n) = s_rx.recv(&mut buf)? {
            moved = true;
            rx.wire_in(now, buf[..n].to_vec(), &mut wire_rx);
        }
        for pkt in wire_tx.drain(..) {
            moved = true;
            s_tx.send(now, &pkt.bytes)?;
        }
        for pkt in wire_rx.drain(..) {
            moved = true;
            flight.event(now, "io_tx_nak", pkt.bytes.len() as u64);
            s_rx.send(now, &pkt.bytes)?;
        }
        s_tx.flush(now)?;
        s_rx.flush(now)?;

        gov.after_iter(now, &mut rx, &mut flight);

        if rx.receiver().is_complete() {
            break (true, now);
        }
        let stats = rx.receiver().stats;
        if tx.sender().is_complete() && stats.delivered + stats.lost >= cfg.messages {
            // Degraded completion: everything expected is accounted for,
            // some of it as losses.
            break (false, now);
        }
        if !moved {
            sleep_until_next(
                now,
                &[
                    tx.next_wake(),
                    rx.next_wake(),
                    s_tx.next_release(),
                    s_rx.next_release(),
                    watchdog.next_threshold(),
                ],
            );
        }
    };

    flight.event(elapsed, "io_done", 0);
    let stats = rx.receiver().stats;
    Ok(IoPilotReport {
        messages: cfg.messages,
        delivered: stats.delivered,
        duplicates: stats.duplicates,
        naks_sent: stats.naks_sent,
        recovered: stats.recovered,
        lost: stats.lost,
        nak_retries_exhausted: stats.nak_retries_exhausted,
        sent: tx.sender().stats.sent,
        completed,
        elapsed,
        watchdog_stage: watchdog.stage(),
        watchdog_transitions: watchdog.transitions.clone(),
        srtt_ns: gov.rto.srtt_ns(),
        rto_ns: gov.rto.current().as_nanos(),
        rto_samples: gov.rto.samples(),
        faults: s_tx.fault_stats(),
        data_socket: s_tx.stats,
        control_socket: s_rx.stats,
        flight: flight.records,
        seed: cfg.seed,
        delivery_digest: rx.receiver().delivery_digest(),
    })
}

/// Run the sending half against a remote receiver at `addr`.
pub fn run_connect(cfg: &IoPilotConfig, addr: &str) -> Result<IoPilotReport, IoError> {
    let peer: std::net::SocketAddr = addr.parse().map_err(|_| IoError::Addr(addr.to_string()))?;
    let sock = UdpSocket::bind(("0.0.0.0", 0))?;
    let mut s_tx = FaultySocket::new(sock, Some(peer), FaultInjector::new(cfg.seed, cfg.plan()))?;
    let mut tx = build_sender_side(cfg);
    let mut watchdog = Watchdog::new(cfg.deadline);
    let mut flight = Flight::new(cfg.flight_cap);
    // Keep serving NAKs until the wire has been quiet this long.
    let linger = (cfg.rto_min * 4).max(Time::from_millis(200));

    let clock = IoClock::start();
    let mut wire_tx: Vec<Packet> = Vec::new();
    let mut buf = vec![0u8; 65536];
    tx.start(clock.now(), &mut wire_tx);
    flight.event(Time::ZERO, "io_start", 0);
    let mut last_traffic = Time::ZERO;

    let elapsed = loop {
        let now = clock.now();
        if let Some(stage) = watchdog.check(now) {
            apply_watchdog_stage(stage, None, None, now, &mut flight);
            if stage == WatchdogStage::Aborted {
                return Err(abort_error(&flight, cfg.seed, now));
            }
        }
        tx.poll_timers(now, &mut wire_tx);
        let mut moved = false;
        while let Some(n) = s_tx.recv(&mut buf)? {
            moved = true;
            flight.event(now, "io_rx_nak", n as u64);
            tx.wire_in(now, buf[..n].to_vec(), &mut wire_tx);
        }
        for pkt in wire_tx.drain(..) {
            moved = true;
            s_tx.send(now, &pkt.bytes)?;
        }
        s_tx.flush(now)?;
        if moved {
            last_traffic = now;
        }
        if tx.sender().is_complete() && now.saturating_sub(last_traffic) >= linger {
            break now;
        }
        if !moved {
            sleep_until_next(
                now,
                &[
                    tx.next_wake(),
                    s_tx.next_release(),
                    watchdog.next_threshold(),
                    last_traffic.checked_add(linger),
                ],
            );
        }
    };

    flight.event(elapsed, "io_done", 0);
    Ok(IoPilotReport {
        messages: cfg.messages,
        delivered: 0,
        duplicates: 0,
        naks_sent: 0,
        recovered: 0,
        lost: 0,
        nak_retries_exhausted: 0,
        sent: tx.sender().stats.sent,
        completed: tx.sender().is_complete(),
        elapsed,
        watchdog_stage: watchdog.stage(),
        watchdog_transitions: watchdog.transitions.clone(),
        srtt_ns: 0,
        rto_ns: 0,
        rto_samples: 0,
        faults: s_tx.fault_stats(),
        data_socket: s_tx.stats,
        control_socket: SocketStats::default(),
        flight: flight.records,
        seed: cfg.seed,
        delivery_digest: 0,
    })
}

/// Run the receiving half, bound to `addr`; the peer is learned from the
/// first datagram.
pub fn run_listen(cfg: &IoPilotConfig, addr: &str) -> Result<IoPilotReport, IoError> {
    let bound: std::net::SocketAddr = addr.parse().map_err(|_| IoError::Addr(addr.to_string()))?;
    let sock = UdpSocket::bind(bound)?;
    let mut s_rx = FaultySocket::new(
        sock,
        None,
        FaultInjector::new(cfg.seed ^ 0x5ca1ab1e, FaultPlan::clean()),
    )?;
    let mut rx = build_receiver_side(cfg);
    let mut gov = RxGovernor::new(cfg);
    let mut watchdog = Watchdog::new(cfg.deadline);
    let mut flight = Flight::new(cfg.flight_cap);

    let clock = IoClock::start();
    let mut wire_rx: Vec<Packet> = Vec::new();
    let mut buf = vec![0u8; 65536];
    flight.event(Time::ZERO, "io_start", 0);
    let mut seen_any = false;

    let (completed, elapsed) = loop {
        let now = clock.now();
        if let Some(stage) = watchdog.check(now) {
            apply_watchdog_stage(stage, Some(&mut rx), Some(&mut gov), now, &mut flight);
            if stage == WatchdogStage::Aborted {
                if !seen_any {
                    return Err(IoError::NoPeer);
                }
                return Err(abort_error(&flight, cfg.seed, now));
            }
        }
        rx.poll_timers(now, &mut wire_rx);
        let mut moved = false;
        while let Some(n) = s_rx.recv(&mut buf)? {
            moved = true;
            seen_any = true;
            rx.wire_in(now, buf[..n].to_vec(), &mut wire_rx);
        }
        for pkt in wire_rx.drain(..) {
            moved = true;
            flight.event(now, "io_tx_nak", pkt.bytes.len() as u64);
            s_rx.send(now, &pkt.bytes)?;
        }
        s_rx.flush(now)?;
        gov.after_iter(now, &mut rx, &mut flight);

        if rx.receiver().is_complete() {
            break (true, now);
        }
        let stats = rx.receiver().stats;
        if seen_any && stats.delivered + stats.lost >= cfg.messages {
            break (false, now);
        }
        if !moved {
            sleep_until_next(now, &[rx.next_wake(), watchdog.next_threshold()]);
        }
    };

    flight.event(elapsed, "io_done", 0);
    let stats = rx.receiver().stats;
    Ok(IoPilotReport {
        messages: cfg.messages,
        delivered: stats.delivered,
        duplicates: stats.duplicates,
        naks_sent: stats.naks_sent,
        recovered: stats.recovered,
        lost: stats.lost,
        nak_retries_exhausted: stats.nak_retries_exhausted,
        sent: 0,
        completed,
        elapsed,
        watchdog_stage: watchdog.stage(),
        watchdog_transitions: watchdog.transitions.clone(),
        srtt_ns: gov.rto.srtt_ns(),
        rto_ns: gov.rto.current().as_nanos(),
        rto_samples: gov.rto.samples(),
        faults: FaultStats::default(),
        data_socket: SocketStats::default(),
        control_socket: s_rx.stats,
        flight: flight.records,
        seed: cfg.seed,
        delivery_digest: rx.receiver().delivery_digest(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_clean_run_delivers_exactly_once() {
        let mut cfg = IoPilotConfig::defaults();
        cfg.messages = 50;
        cfg.gap = Time::from_micros(20);
        let report = run_loopback(&cfg).expect("loopback run");
        assert!(report.completed, "clean run completes: {report:?}");
        assert!(report.exactly_once());
        assert_eq!(report.delivered, 50);
        assert_eq!(report.lost, 0);
    }

    #[test]
    fn loopback_with_loss_recovers_via_nak() {
        let mut cfg = IoPilotConfig::defaults();
        cfg.messages = 100;
        cfg.gap = Time::from_micros(20);
        cfg.loss = 0.1;
        cfg.seed = 7;
        cfg.rto_min = Time::from_millis(2);
        let report = run_loopback(&cfg).expect("lossy run");
        assert!(report.completed, "lossy run completes: {report:?}");
        assert!(report.exactly_once());
        assert!(
            report.faults.dropped > 0,
            "the injector actually dropped something"
        );
        assert!(report.recovered > 0, "recovery went through the NAK path");
        assert!(report.naks_sent > 0);
    }

    #[test]
    fn impossible_deadline_aborts_with_flight_dump() {
        let mut cfg = IoPilotConfig::defaults();
        cfg.messages = 50;
        cfg.loss = 1.0; // nothing ever arrives
        cfg.deadline = Time::from_millis(50);
        match run_loopback(&cfg) {
            Err(IoError::WatchdogAbort { flight, elapsed_ns }) => {
                assert!(flight.contains("\"flight\":\"v1\""));
                assert!(flight.contains("watchdog_abort"));
                assert!(elapsed_ns >= Time::from_millis(50).as_nanos());
            }
            other => panic!("expected watchdog abort, got {other:?}"),
        }
    }
}
