//! Nonblocking UDP with fault injection on the send path.
//!
//! [`FaultySocket`] owns a `std::net::UdpSocket` in nonblocking mode and
//! routes every outbound datagram through a [`FaultInjector`] before it
//! reaches `sendto`. Receives are plain — faults are injected exactly
//! once, at the sending socket, so a loopback pair with one faulty
//! direction models a lossy WAN with a clean control path.

use std::net::{SocketAddr, UdpSocket};

use mmt_netsim::Time;

use crate::fault::FaultInjector;
use crate::IoError;

/// Datagram counters for one socket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SocketStats {
    /// Datagrams handed to the kernel.
    pub sent: u64,
    /// Bytes handed to the kernel.
    pub sent_bytes: u64,
    /// Datagrams received.
    pub received: u64,
    /// Bytes received.
    pub received_bytes: u64,
}

/// A nonblocking UDP socket whose sends pass through a fault injector.
#[derive(Debug)]
pub struct FaultySocket {
    sock: UdpSocket,
    peer: Option<SocketAddr>,
    injector: FaultInjector,
    ready: Vec<Vec<u8>>,
    /// Counters.
    pub stats: SocketStats,
}

impl FaultySocket {
    /// Wrap a bound socket. The socket is switched to nonblocking mode.
    /// `peer` may be `None` on a listen side — it is learned from the
    /// first received datagram.
    pub fn new(
        sock: UdpSocket,
        peer: Option<SocketAddr>,
        injector: FaultInjector,
    ) -> Result<FaultySocket, IoError> {
        sock.set_nonblocking(true)?;
        Ok(FaultySocket {
            sock,
            peer,
            injector,
            ready: Vec::new(),
            stats: SocketStats::default(),
        })
    }

    /// The local address the kernel assigned.
    pub fn local_addr(&self) -> Result<SocketAddr, IoError> {
        Ok(self.sock.local_addr()?)
    }

    /// The current peer, if known.
    pub fn peer(&self) -> Option<SocketAddr> {
        self.peer
    }

    /// Queue a datagram for the peer, subject to the fault plan. Copies
    /// that survive (and are not delayed) go to the kernel immediately.
    pub fn send(&mut self, now: Time, datagram: &[u8]) -> Result<(), IoError> {
        self.injector.admit(now, datagram, &mut self.ready);
        self.flush(now)
    }

    /// Release delay-held copies that are due and push everything ready
    /// to the kernel.
    pub fn flush(&mut self, now: Time) -> Result<(), IoError> {
        self.injector.release_due(now, &mut self.ready);
        let Some(peer) = self.peer else {
            // No peer yet (listen side, nothing received): hold output.
            return Ok(());
        };
        for datagram in self.ready.drain(..) {
            match self.sock.send_to(&datagram, peer) {
                Ok(n) => {
                    self.stats.sent += 1;
                    self.stats.sent_bytes += n as u64;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // Kernel buffer full: treat as wire loss. The NAK
                    // path recovers it like any other drop.
                    self.injector.stats.dropped += 1;
                }
                Err(e) => return Err(IoError::Socket(e)),
            }
        }
        Ok(())
    }

    /// Try to receive one datagram. Returns `Ok(None)` when the socket
    /// has nothing pending. Learns the peer from the first arrival if it
    /// was unknown.
    pub fn recv(&mut self, buf: &mut [u8]) -> Result<Option<usize>, IoError> {
        match self.sock.recv_from(buf) {
            Ok((n, from)) => {
                if self.peer.is_none() {
                    self.peer = Some(from);
                }
                self.stats.received += 1;
                self.stats.received_bytes += n as u64;
                Ok(Some(n))
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(IoError::Socket(e)),
        }
    }

    /// When the injector will next release a held copy, if any.
    pub fn next_release(&self) -> Option<Time> {
        self.injector.next_release()
    }

    /// Fault counters accumulated on this socket's send path.
    pub fn fault_stats(&self) -> crate::fault::FaultStats {
        self.injector.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    fn loopback_pair() -> (FaultySocket, FaultySocket) {
        let a = UdpSocket::bind(("127.0.0.1", 0)).expect("bind a");
        let b = UdpSocket::bind(("127.0.0.1", 0)).expect("bind b");
        let a_addr = a.local_addr().expect("addr a");
        let b_addr = b.local_addr().expect("addr b");
        let fa = FaultySocket::new(a, Some(b_addr), FaultInjector::new(1, FaultPlan::clean()))
            .expect("wrap a");
        let fb = FaultySocket::new(b, Some(a_addr), FaultInjector::new(2, FaultPlan::clean()))
            .expect("wrap b");
        (fa, fb)
    }

    #[test]
    fn clean_roundtrip_over_loopback() {
        let (mut a, mut b) = loopback_pair();
        a.send(Time::ZERO, b"hello").expect("send");
        let mut buf = [0u8; 64];
        let mut got = None;
        for _ in 0..100 {
            if let Some(n) = b.recv(&mut buf).expect("recv") {
                got = Some(buf[..n].to_vec());
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got.as_deref(), Some(&b"hello"[..]));
        assert_eq!(a.stats.sent, 1);
        assert_eq!(b.stats.received, 1);
    }

    #[test]
    fn full_drop_plan_sends_nothing() {
        let a = UdpSocket::bind(("127.0.0.1", 0)).expect("bind");
        let peer = a.local_addr().expect("addr");
        let plan = FaultPlan {
            drop: 1.0,
            dup: 0.0,
            delay: Time::ZERO,
        };
        let mut s = FaultySocket::new(a, Some(peer), FaultInjector::new(3, plan)).expect("wrap");
        for _ in 0..10 {
            s.send(Time::ZERO, b"x").expect("send");
        }
        assert_eq!(s.stats.sent, 0);
        assert_eq!(s.fault_stats().dropped, 10);
    }
}
