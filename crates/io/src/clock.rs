//! Wall-clock time, read in exactly one place.
//!
//! The sans-io machines speak [`Time`] — nanoseconds on an arbitrary
//! monotonic axis. In the simulator that axis is virtual; here it is
//! `Instant` elapsed time since the run started. Everything downstream of
//! this module (machines, timers, RTO, watchdogs) stays clock-agnostic.

use std::time::Instant;

use mmt_netsim::Time;

/// A monotonic clock anchored at run start. `now()` is the elapsed time
/// since [`IoClock::start`], so a fresh run always begins at `Time::ZERO`
/// — the same origin the simulator uses, which keeps schedules (message
/// `i` at `gap * i`) meaningful without translation.
#[derive(Debug, Clone, Copy)]
pub struct IoClock {
    epoch: Instant,
}

impl IoClock {
    /// Anchor a new clock at the current instant.
    pub fn start() -> IoClock {
        IoClock {
            epoch: Instant::now(),
        }
    }

    /// Elapsed time since the anchor, as machine time.
    pub fn now(&self) -> Time {
        let elapsed = self.epoch.elapsed();
        Time::from_nanos(elapsed.as_nanos() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_and_starts_near_zero() {
        let clock = IoClock::start();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
        // Starting near zero keeps sender schedules anchored correctly.
        assert!(a < Time::from_secs(1));
    }
}
