//! `mmt-io` — the real I/O plane for the sans-io MMT machines.
//!
//! The protocol logic in [`mmt_core`] is expressed as [`mmt_core::Machine`]
//! state machines: `poll(now, input) -> outputs` with no clocks, sockets,
//! or threads. The simulator drives those machines in virtual time; this
//! crate drives the *identical* machines against wall clocks and real UDP
//! sockets. Nothing protocol-shaped lives here — only plumbing:
//!
//! | module       | role |
//! |--------------|------|
//! | [`clock`]    | the one place wall-clock time is read; maps `Instant` onto the same [`mmt_netsim::Time`] axis the machines already speak |
//! | [`rto`]      | RFC 6298-style integer RTO estimator with exponential backoff and a retry budget |
//! | [`fault`]    | seeded drop/duplicate/delay injection at the datagram boundary |
//! | [`socket`]   | nonblocking `std::net::UdpSocket` wrapper that routes every send through the fault injector |
//! | [`watchdog`] | per-flow deadline ladder: shed → degrade → abort |
//! | [`driver`]   | endpoint assemblies (sender+buffer, receiver) that route machine outputs between in-memory ports, timers, and the wire |
//! | [`pilot`]    | the `io-pilot` scenario: loopback (single process) and listen/connect (two process) runners |
//!
//! This is deliberately the *only* crate in the workspace where clock
//! reads, socket calls, and sleeps are permitted — `mmt-lint` rule D2
//! enforces that the sim-critical crates stay free of them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod driver;
pub mod fault;
pub mod pilot;
pub mod rto;
pub mod socket;
pub mod watchdog;

pub use clock::IoClock;
pub use driver::{ReceiverSide, SenderSide, TimerQueue};
pub use fault::{FaultInjector, FaultPlan, FaultStats};
pub use pilot::{run_connect, run_listen, run_loopback, IoPilotConfig, IoPilotReport};
pub use rto::RtoEstimator;
pub use socket::{FaultySocket, SocketStats};
pub use watchdog::{Watchdog, WatchdogStage};

/// Errors surfaced by the io plane.
#[derive(Debug)]
pub enum IoError {
    /// A socket operation failed.
    Socket(std::io::Error),
    /// A peer address could not be parsed.
    Addr(String),
    /// The deadline watchdog reached its abort stage. Carries a rendered
    /// flight-recorder dump so the caller can persist it before exiting
    /// nonzero.
    WatchdogAbort {
        /// Rendered flight-recorder JSON (header line + trace records).
        flight: String,
        /// Elapsed nanoseconds when the abort fired.
        elapsed_ns: u64,
    },
    /// The listen side saw no peer datagram before the deadline.
    NoPeer,
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Socket(e) => write!(f, "socket error: {e}"),
            IoError::Addr(a) => write!(f, "bad address: {a}"),
            IoError::WatchdogAbort { elapsed_ns, .. } => {
                write!(f, "watchdog abort after {elapsed_ns} ns")
            }
            IoError::NoPeer => write!(f, "no peer datagram arrived before the deadline"),
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> IoError {
        IoError::Socket(e)
    }
}
