//! Per-flow deadline watchdogs.
//!
//! A flow that cannot meet its deadline should fail *gracefully*, in
//! stages, with an audit trail — not hang. The ladder:
//!
//! 1. **Shed** (half the budget spent): reduce pressure — the driver
//!    widens the NAK retry interval so a struggling path is not hammered.
//! 2. **Degrade** (three quarters spent): give up on completeness —
//!    retry budgets collapse so outstanding gaps exhaust quickly and are
//!    counted `nak_retries_exhausted` instead of retried past the
//!    deadline.
//! 3. **Abort** (budget spent): stop — the driver dumps the flight
//!    recorder and exits nonzero.
//!
//! The watchdog itself is pure state over `now`: the driver polls it each
//! loop and applies the actions, so the ladder is testable without a
//! clock.

use mmt_netsim::Time;

/// Escalation stages, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WatchdogStage {
    /// Within budget; no intervention.
    Healthy,
    /// Half the budget spent: reduce retry pressure.
    Shed,
    /// Three quarters spent: collapse retry budgets, accept losses.
    Degraded,
    /// Budget spent: dump flight recorder and exit nonzero.
    Aborted,
}

impl WatchdogStage {
    /// Stable lowercase label for reports and flight records.
    pub fn label(&self) -> &'static str {
        match self {
            WatchdogStage::Healthy => "healthy",
            WatchdogStage::Shed => "shed",
            WatchdogStage::Degraded => "degraded",
            WatchdogStage::Aborted => "aborted",
        }
    }
}

/// A deadline ladder for one flow, measured from `Time::ZERO` (run start).
#[derive(Debug, Clone)]
pub struct Watchdog {
    deadline: Time,
    stage: WatchdogStage,
    /// Every transition taken, with the time it fired.
    pub transitions: Vec<(Time, WatchdogStage)>,
}

impl Watchdog {
    /// Create a watchdog with the given total deadline budget.
    pub fn new(deadline: Time) -> Watchdog {
        Watchdog {
            deadline,
            stage: WatchdogStage::Healthy,
            transitions: Vec::new(),
        }
    }

    /// The configured deadline.
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// The current stage.
    pub fn stage(&self) -> WatchdogStage {
        self.stage
    }

    /// Escalate if `now` has crossed a threshold. Returns the new stage
    /// on a transition, `None` otherwise. Stages only move forward —
    /// a recovered flow stays shed/degraded for audit honesty.
    pub fn check(&mut self, now: Time) -> Option<WatchdogStage> {
        let target = if now >= self.deadline {
            WatchdogStage::Aborted
        } else if now >= self.deadline * 3 / 4 {
            WatchdogStage::Degraded
        } else if now >= self.deadline / 2 {
            WatchdogStage::Shed
        } else {
            WatchdogStage::Healthy
        };
        if target > self.stage {
            self.stage = target;
            self.transitions.push((now, target));
            Some(target)
        } else {
            None
        }
    }

    /// When the next escalation threshold sits, if any remain.
    pub fn next_threshold(&self) -> Option<Time> {
        match self.stage {
            WatchdogStage::Healthy => Some(self.deadline / 2),
            WatchdogStage::Shed => Some(self.deadline * 3 / 4),
            WatchdogStage::Degraded => Some(self.deadline),
            WatchdogStage::Aborted => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_escalates_in_order() {
        let mut wd = Watchdog::new(Time::from_millis(100));
        assert_eq!(wd.check(Time::from_millis(10)), None);
        assert_eq!(wd.check(Time::from_millis(50)), Some(WatchdogStage::Shed));
        assert_eq!(wd.check(Time::from_millis(60)), None);
        assert_eq!(
            wd.check(Time::from_millis(75)),
            Some(WatchdogStage::Degraded)
        );
        assert_eq!(
            wd.check(Time::from_millis(100)),
            Some(WatchdogStage::Aborted)
        );
        assert_eq!(wd.transitions.len(), 3);
    }

    #[test]
    fn skipped_thresholds_jump_straight_to_abort() {
        let mut wd = Watchdog::new(Time::from_millis(100));
        // A stalled loop that wakes late crosses every threshold at once.
        assert_eq!(
            wd.check(Time::from_millis(250)),
            Some(WatchdogStage::Aborted)
        );
        assert_eq!(wd.transitions.len(), 1);
    }

    #[test]
    fn stages_never_regress() {
        let mut wd = Watchdog::new(Time::from_millis(100));
        wd.check(Time::from_millis(80));
        assert_eq!(wd.stage(), WatchdogStage::Degraded);
        assert_eq!(wd.check(Time::from_millis(10)), None);
        assert_eq!(wd.stage(), WatchdogStage::Degraded);
    }

    #[test]
    fn next_threshold_tracks_stage() {
        let mut wd = Watchdog::new(Time::from_millis(100));
        assert_eq!(wd.next_threshold(), Some(Time::from_millis(50)));
        wd.check(Time::from_millis(50));
        assert_eq!(wd.next_threshold(), Some(Time::from_millis(75)));
        wd.check(Time::from_millis(100));
        assert_eq!(wd.next_threshold(), None);
    }
}
