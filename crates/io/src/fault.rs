//! Seeded fault injection at the datagram boundary.
//!
//! The simulator injects loss on links; the real plane injects it at the
//! socket: every outbound datagram rolls against a seeded [`SimRng`]
//! before it reaches `sendto`. Drop, duplicate, and fixed-delay shapes
//! compose, and because the generator is the same splitmix/xorshift rng
//! the sim uses, a chaos run's fault pattern is reproducible from its
//! seed (given the same datagram order).

use std::collections::VecDeque;

use mmt_netsim::{SimRng, Time};

/// What to do to outbound datagrams.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Probability a datagram is silently dropped.
    pub drop: f64,
    /// Probability a datagram is sent twice.
    pub dup: f64,
    /// Fixed extra delay applied to every surviving copy.
    pub delay: Time,
}

impl FaultPlan {
    /// A plan that passes everything through untouched.
    pub fn clean() -> FaultPlan {
        FaultPlan {
            drop: 0.0,
            dup: 0.0,
            delay: Time::ZERO,
        }
    }

    /// Whether the plan can alter traffic at all.
    pub fn is_clean(&self) -> bool {
        self.drop <= 0.0 && self.dup <= 0.0 && self.delay == Time::ZERO
    }
}

/// Counters for injected faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Datagrams passed through immediately.
    pub passed: u64,
    /// Datagrams silently dropped.
    pub dropped: u64,
    /// Extra copies created by duplication.
    pub duplicated: u64,
    /// Copies held back by the delay shape.
    pub delayed: u64,
}

/// Applies a [`FaultPlan`] to outbound datagrams. Delayed copies are held
/// in an internal queue; the driver flushes them with
/// [`release_due`](FaultInjector::release_due) each loop iteration.
#[derive(Debug)]
pub struct FaultInjector {
    rng: SimRng,
    plan: FaultPlan,
    held: VecDeque<(Time, Vec<u8>)>,
    /// Counters.
    pub stats: FaultStats,
}

impl FaultInjector {
    /// Create an injector with its own seeded rng stream.
    pub fn new(seed: u64, plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            rng: SimRng::new(seed),
            plan,
            held: VecDeque::new(),
            stats: FaultStats::default(),
        }
    }

    /// Admit an outbound datagram: copies to transmit *now* are pushed to
    /// `ready`; delayed copies are queued internally until due.
    pub fn admit(&mut self, now: Time, datagram: &[u8], ready: &mut Vec<Vec<u8>>) {
        if self.plan.drop > 0.0 && self.rng.chance(self.plan.drop) {
            self.stats.dropped += 1;
            return;
        }
        let copies = if self.plan.dup > 0.0 && self.rng.chance(self.plan.dup) {
            self.stats.duplicated += 1;
            2
        } else {
            1
        };
        for _ in 0..copies {
            if self.plan.delay > Time::ZERO {
                self.stats.delayed += 1;
                self.held
                    .push_back((now + self.plan.delay, datagram.to_vec()));
            } else {
                self.stats.passed += 1;
                ready.push(datagram.to_vec());
            }
        }
    }

    /// Move every held copy whose release time has arrived into `ready`.
    pub fn release_due(&mut self, now: Time, ready: &mut Vec<Vec<u8>>) {
        while let Some((at, _)) = self.held.front() {
            if *at > now {
                break;
            }
            if let Some((_, bytes)) = self.held.pop_front() {
                self.stats.passed += 1;
                ready.push(bytes);
            }
        }
    }

    /// When the next held copy becomes due, if any.
    pub fn next_release(&self) -> Option<Time> {
        self.held.front().map(|(at, _)| *at)
    }

    /// Held copies not yet released.
    pub fn held_count(&self) -> usize {
        self.held.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plan_passes_everything_immediately() {
        let mut inj = FaultInjector::new(7, FaultPlan::clean());
        let mut ready = Vec::new();
        for i in 0..100u8 {
            inj.admit(Time::from_micros(u64::from(i)), &[i], &mut ready);
        }
        assert_eq!(ready.len(), 100);
        assert_eq!(inj.stats.passed, 100);
        assert_eq!(inj.stats.dropped, 0);
        assert_eq!(inj.held_count(), 0);
    }

    #[test]
    fn drop_rate_is_roughly_honoured_and_seeded() {
        let plan = FaultPlan {
            drop: 0.3,
            dup: 0.0,
            delay: Time::ZERO,
        };
        let mut a = FaultInjector::new(42, plan);
        let mut b = FaultInjector::new(42, plan);
        let mut ra = Vec::new();
        let mut rb = Vec::new();
        for i in 0..1000u16 {
            a.admit(Time::ZERO, &i.to_be_bytes(), &mut ra);
            b.admit(Time::ZERO, &i.to_be_bytes(), &mut rb);
        }
        // Same seed, same order → identical verdicts.
        assert_eq!(ra, rb);
        assert_eq!(a.stats.dropped, b.stats.dropped);
        // ~300 expected; generous bounds keep this deterministic-stable.
        assert!(a.stats.dropped > 200 && a.stats.dropped < 400);
    }

    #[test]
    fn dup_produces_extra_copies() {
        let plan = FaultPlan {
            drop: 0.0,
            dup: 1.0,
            delay: Time::ZERO,
        };
        let mut inj = FaultInjector::new(1, plan);
        let mut ready = Vec::new();
        inj.admit(Time::ZERO, &[9], &mut ready);
        assert_eq!(ready.len(), 2);
        assert_eq!(inj.stats.duplicated, 1);
    }

    #[test]
    fn delay_holds_until_due_in_fifo_order() {
        let plan = FaultPlan {
            drop: 0.0,
            dup: 0.0,
            delay: Time::from_millis(10),
        };
        let mut inj = FaultInjector::new(1, plan);
        let mut ready = Vec::new();
        inj.admit(Time::ZERO, &[1], &mut ready);
        inj.admit(Time::from_millis(1), &[2], &mut ready);
        assert!(ready.is_empty());
        assert_eq!(inj.next_release(), Some(Time::from_millis(10)));
        inj.release_due(Time::from_millis(9), &mut ready);
        assert!(ready.is_empty());
        inj.release_due(Time::from_millis(10), &mut ready);
        assert_eq!(ready, vec![vec![1]]);
        inj.release_due(Time::from_millis(11), &mut ready);
        assert_eq!(ready.len(), 2);
        assert_eq!(ready[1], vec![2]);
    }
}
