//! Endpoint assemblies: the glue between sans-io machines and the wire.
//!
//! A real deployment splits the pilot topology at the WAN: the sensor and
//! its border DTN share a host (the DAQ link is in-memory), the receiver
//! sits across the network. [`SenderSide`] therefore bundles an
//! [`MmtSender`] and a [`RetransmitBuffer`] and routes DAQ-port traffic
//! between them directly; only WAN-port output reaches the socket.
//! [`ReceiverSide`] wraps an [`MmtReceiver`] whose port 0 faces the wire.
//!
//! Both assemblies are themselves sans-io: they consume `(now, bytes)`
//! and produce outbound [`Packet`]s plus pending wakeups, so every
//! routing decision is unit-testable without a socket. The poll loop in
//! [`crate::pilot`] is the only place that touches the kernel.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mmt_core::buffer::{PORT_DAQ, PORT_WAN};
use mmt_core::machine::{Input, Machine, Output};
use mmt_core::{MmtReceiver, MmtSender, RetransmitBuffer};
use mmt_netsim::{Packet, PacketMeta, Time, TimerToken};

/// Machine slots inside an assembly.
const MACH_SENDER: u8 = 0;
const MACH_BUFFER: u8 = 1;
const MACH_RECEIVER: u8 = 2;

/// Deadline-ordered pending wakeups for one endpoint. Ties break by
/// insertion order so replayed schedules stay deterministic.
#[derive(Debug, Default)]
pub struct TimerQueue {
    heap: BinaryHeap<Reverse<(u64, u64, u8, TimerToken)>>,
    seq: u64,
}

impl TimerQueue {
    /// An empty queue.
    pub fn new() -> TimerQueue {
        TimerQueue::default()
    }

    /// Schedule `(mach, token)` to fire at `at`.
    pub fn push(&mut self, at: Time, mach: u8, token: TimerToken) {
        self.seq += 1;
        self.heap
            .push(Reverse((at.as_nanos(), self.seq, mach, token)));
    }

    /// The earliest pending deadline, if any.
    pub fn next_due(&self) -> Option<Time> {
        self.heap
            .peek()
            .map(|Reverse((at, _, _, _))| Time::from_nanos(*at))
    }

    /// Pop the earliest entry if it is due at `now`.
    pub fn pop_due(&mut self, now: Time) -> Option<(u8, TimerToken)> {
        match self.heap.peek() {
            Some(Reverse((at, _, _, _))) if *at <= now.as_nanos() => self
                .heap
                .pop()
                .map(|Reverse((_, _, mach, token))| (mach, token)),
            _ => None,
        }
    }

    /// Pending entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// The sending host: sensor machine + border DTN machine, DAQ link
/// in-memory, WAN link on the wire.
pub struct SenderSide {
    sender: MmtSender,
    buffer: RetransmitBuffer,
    timers: TimerQueue,
}

impl SenderSide {
    /// Assemble the sending host.
    pub fn new(sender: MmtSender, buffer: RetransmitBuffer) -> SenderSide {
        SenderSide {
            sender,
            buffer,
            timers: TimerQueue::new(),
        }
    }

    /// Feed `Input::Start` to both machines (arms the sender's pump).
    pub fn start(&mut self, now: Time, wire: &mut Vec<Packet>) {
        self.dispatch(now, MACH_SENDER, Input::Start, wire);
        self.dispatch(now, MACH_BUFFER, Input::Start, wire);
    }

    /// A datagram arrived from the WAN (a NAK or other control message):
    /// hand it to the buffer's WAN port.
    pub fn wire_in(&mut self, now: Time, bytes: Vec<u8>, wire: &mut Vec<Packet>) {
        let mut pkt = Packet::new(bytes);
        pkt.meta.created_at = now;
        self.dispatch(
            now,
            MACH_BUFFER,
            Input::Frame {
                port: PORT_WAN,
                pkt,
            },
            wire,
        );
    }

    /// Fire every timer due at `now`.
    pub fn poll_timers(&mut self, now: Time, wire: &mut Vec<Packet>) {
        while let Some((mach, token)) = self.timers.pop_due(now) {
            self.dispatch(now, mach, Input::Timer { token }, wire);
        }
    }

    /// The earliest pending wakeup.
    pub fn next_wake(&self) -> Option<Time> {
        self.timers.next_due()
    }

    /// The sensor machine.
    pub fn sender(&self) -> &MmtSender {
        &self.sender
    }

    /// The border DTN machine.
    pub fn buffer(&self) -> &RetransmitBuffer {
        &self.buffer
    }

    /// Route one input to one machine and recursively deliver the
    /// outputs: sender port 0 ↔ buffer DAQ port stay in-memory, buffer
    /// WAN output goes to `wire`, wakeups land in the timer queue.
    fn dispatch(&mut self, now: Time, mach: u8, input: Input, wire: &mut Vec<Packet>) {
        let mut out = Vec::new();
        match mach {
            MACH_SENDER => self.sender.poll(now, input, &mut out),
            _ => self.buffer.poll(now, input, &mut out),
        }
        for o in out {
            match (mach, o) {
                (MACH_SENDER, Output::Transmit { pkt, .. }) => {
                    // Sensor egress → DTN ingress, directly.
                    self.dispatch(
                        now,
                        MACH_BUFFER,
                        Input::Frame {
                            port: PORT_DAQ,
                            pkt,
                        },
                        wire,
                    );
                }
                (MACH_BUFFER, Output::Transmit { port, pkt }) if port == PORT_DAQ => {
                    // Backpressure credits flow back to the sensor.
                    self.dispatch(now, MACH_SENDER, Input::Frame { port: 0, pkt }, wire);
                }
                (_, Output::Transmit { pkt, .. }) => wire.push(pkt),
                (m, Output::WakeAt { at, token }) => self.timers.push(at, m, token),
                (_, Output::DeliverLocal { .. }) => {}
            }
        }
    }
}

/// The receiving host: one receiver machine, port 0 on the wire.
pub struct ReceiverSide {
    receiver: MmtReceiver,
    timers: TimerQueue,
}

impl ReceiverSide {
    /// Assemble the receiving host.
    pub fn new(receiver: MmtReceiver) -> ReceiverSide {
        ReceiverSide {
            receiver,
            timers: TimerQueue::new(),
        }
    }

    /// A datagram arrived: hand it to the receiver. Outbound packets
    /// (NAKs) land in `wire`.
    pub fn wire_in(&mut self, now: Time, bytes: Vec<u8>, wire: &mut Vec<Packet>) {
        let pkt = Packet {
            bytes,
            meta: PacketMeta {
                created_at: now,
                ..PacketMeta::default()
            },
        };
        self.dispatch(now, Input::Frame { port: 0, pkt }, wire);
    }

    /// Fire every timer due at `now`.
    pub fn poll_timers(&mut self, now: Time, wire: &mut Vec<Packet>) {
        while let Some((_, token)) = self.timers.pop_due(now) {
            self.dispatch(now, Input::Timer { token }, wire);
        }
    }

    /// The earliest pending wakeup.
    pub fn next_wake(&self) -> Option<Time> {
        self.timers.next_due()
    }

    /// The receiver machine.
    pub fn receiver(&self) -> &MmtReceiver {
        &self.receiver
    }

    /// Mutable access (the driver tunes `nak_interval` from its RTO
    /// estimate and collapses retry budgets on watchdog degrade).
    pub fn receiver_mut(&mut self) -> &mut MmtReceiver {
        &mut self.receiver
    }

    fn dispatch(&mut self, now: Time, input: Input, wire: &mut Vec<Packet>) {
        let mut out = Vec::new();
        self.receiver.poll(now, input, &mut out);
        for o in out {
            match o {
                Output::Transmit { pkt, .. } => wire.push(pkt),
                Output::WakeAt { at, token } => self.timers.push(at, MACH_RECEIVER, token),
                Output::DeliverLocal { .. } => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_core::{ReceiverConfig, SenderConfig};
    use mmt_wire::mmt::ExperimentId;
    use mmt_wire::Ipv4Address;

    fn exp() -> ExperimentId {
        ExperimentId::new(2, 0)
    }

    #[test]
    fn timer_queue_orders_by_deadline_then_insertion() {
        let mut q = TimerQueue::new();
        q.push(Time::from_millis(5), 0, 10);
        q.push(Time::from_millis(1), 1, 11);
        q.push(Time::from_millis(5), 2, 12);
        assert_eq!(q.next_due(), Some(Time::from_millis(1)));
        assert_eq!(q.pop_due(Time::from_millis(1)), Some((1, 11)));
        assert_eq!(q.pop_due(Time::from_millis(1)), None);
        assert_eq!(q.pop_due(Time::from_millis(5)), Some((0, 10)));
        assert_eq!(q.pop_due(Time::from_millis(5)), Some((2, 12)));
        assert!(q.is_empty());
    }

    #[test]
    fn sender_side_emits_wan_frames_for_the_whole_schedule() {
        let sender = MmtSender::new(SenderConfig::regular(exp(), 256, Time::from_micros(10), 5));
        let buffer = RetransmitBuffer::with_defaults(
            exp(),
            Ipv4Address::new(10, 0, 0, 5),
            Time::from_secs(10).as_nanos(),
            1 << 20,
        );
        let mut side = SenderSide::new(sender, buffer);
        let mut wire = Vec::new();
        side.start(Time::ZERO, &mut wire);
        // Message 0 is due at t=0; the rest arrive as timers fire.
        let mut now = Time::ZERO;
        for _ in 0..20 {
            now += Time::from_micros(10);
            side.poll_timers(now, &mut wire);
        }
        assert_eq!(wire.len(), 5, "every scheduled message reaches the WAN");
        assert!(side.sender().is_complete());
        assert_eq!(side.buffer().stored_count(), 5, "DTN retains copies");
    }

    #[test]
    fn wire_roundtrip_delivers_to_receiver_and_serves_naks() {
        let sender = MmtSender::new(SenderConfig::regular(exp(), 256, Time::from_micros(10), 3));
        let buffer = RetransmitBuffer::with_defaults(
            exp(),
            Ipv4Address::new(10, 0, 0, 5),
            Time::from_secs(10).as_nanos(),
            1 << 20,
        );
        let mut tx = SenderSide::new(sender, buffer);
        let mut rcfg = ReceiverConfig::wan_defaults(exp(), Ipv4Address::new(10, 0, 0, 8));
        rcfg.expect_messages = Some(3);
        rcfg.reorder_delay = Time::from_micros(50);
        let mut rx = ReceiverSide::new(MmtReceiver::new(rcfg));

        let mut wan = Vec::new();
        tx.start(Time::ZERO, &mut wan);
        let mut now = Time::ZERO;
        for _ in 0..10 {
            now += Time::from_micros(10);
            tx.poll_timers(now, &mut wan);
        }
        assert_eq!(wan.len(), 3);
        // Drop the middle datagram on the "wire"; deliver the rest.
        let mut naks = Vec::new();
        for (i, pkt) in wan.drain(..).enumerate() {
            if i != 1 {
                rx.wire_in(now, pkt.bytes, &mut naks);
            }
        }
        // Let the reorder-delay NAK timer fire.
        now += Time::from_millis(1);
        rx.poll_timers(now, &mut naks);
        assert_eq!(naks.len(), 1, "gap triggers one NAK");
        // Serve the NAK through the sender side; the retransmission
        // comes back out on the WAN.
        let mut retx = Vec::new();
        for nak in naks.drain(..) {
            tx.wire_in(now, nak.bytes, &mut retx);
        }
        assert_eq!(retx.len(), 1, "buffer serves the missing sequence");
        for pkt in retx.drain(..) {
            rx.wire_in(now, pkt.bytes, &mut naks);
        }
        assert!(rx.receiver().is_complete());
        assert_eq!(rx.receiver().stats.recovered, 1);
    }
}
