//! RFC 6298-style retransmission timeout estimation, in pure integers.
//!
//! The same shift arithmetic the TCP baseline uses (`mmt-transport`):
//! first sample seeds `srtt = s`, `rttvar = s/2`; afterwards
//! `rttvar ← ¾·rttvar + ¼·|srtt − s|` and `srtt ← ⅞·srtt + ⅛·s`, all in
//! integer nanoseconds so the estimator is deterministic and lint-clean
//! (no floats). On top of the estimate sits exponential backoff — each
//! barren retry doubles the effective timeout — and a retry budget so a
//! dead path exhausts in bounded time instead of retrying forever.
//!
//! This module is pure state: no clocks, no sockets. The io driver feeds
//! it samples and failures and reads back the current timeout.

use mmt_netsim::Time;

/// How far backoff may shift the timeout (2^16 ≈ 65k× is already far past
/// any usable deadline; the cap just keeps the shift arithmetic safe).
const MAX_BACKOFF_SHIFT: u32 = 16;

/// Integer RTO estimator with exponential backoff and a retry budget.
#[derive(Debug, Clone)]
pub struct RtoEstimator {
    srtt_ns: u64,
    rttvar_ns: u64,
    rto_min: Time,
    rto_max: Time,
    backoff_shift: u32,
    retry_budget: u32,
    retries_spent: u32,
    samples: u64,
}

impl RtoEstimator {
    /// Create an estimator clamped to `[rto_min, rto_max]` with a total
    /// retry budget. Before the first sample, [`current`](Self::current)
    /// reports `4 × rto_min` (a conservative stand-in for RFC 6298's
    /// fixed initial RTO, scaled to the configured floor).
    pub fn new(rto_min: Time, rto_max: Time, retry_budget: u32) -> RtoEstimator {
        RtoEstimator {
            srtt_ns: 0,
            rttvar_ns: 0,
            rto_min,
            rto_max: rto_max.max(rto_min),
            backoff_shift: 0,
            retry_budget,
            retries_spent: 0,
            samples: 0,
        }
    }

    /// Fold in a round-trip sample. Any successful sample also clears the
    /// backoff (RFC 6298 §5.7: new data acknowledged → collapse RTO back
    /// to the computed value).
    pub fn observe(&mut self, sample: Time) {
        let s = sample.as_nanos().max(1);
        if self.srtt_ns == 0 {
            self.srtt_ns = s;
            self.rttvar_ns = s / 2;
        } else {
            let err = self.srtt_ns.abs_diff(s);
            self.rttvar_ns = (3 * self.rttvar_ns + err) / 4;
            self.srtt_ns = (7 * self.srtt_ns + s) / 8;
        }
        self.samples += 1;
        self.backoff_shift = 0;
    }

    /// The smoothed estimate before backoff: `srtt + 4·rttvar`, floored
    /// at `rto_min` (or the pre-sample default).
    pub fn base(&self) -> Time {
        if self.srtt_ns == 0 {
            return (self.rto_min * 4).min(self.rto_max);
        }
        let rto_ns = self.srtt_ns.saturating_add(4 * self.rttvar_ns);
        Time::from_nanos(rto_ns).max(self.rto_min).min(self.rto_max)
    }

    /// The effective timeout: the base estimate shifted left once per
    /// outstanding backoff round, clamped to `rto_max`.
    pub fn current(&self) -> Time {
        let base = self.base().as_nanos();
        let shifted = base.checked_shl(self.backoff_shift).unwrap_or(u64::MAX);
        Time::from_nanos(shifted)
            .min(self.rto_max)
            .max(self.rto_min)
    }

    /// Record a barren retry round (timeout fired, nothing recovered):
    /// doubles the effective timeout and spends one unit of retry budget.
    /// Returns `false` once the budget is exhausted — the caller should
    /// stop retrying and degrade the flow.
    pub fn back_off(&mut self) -> bool {
        self.retries_spent = self.retries_spent.saturating_add(1);
        self.backoff_shift = (self.backoff_shift + 1).min(MAX_BACKOFF_SHIFT);
        self.retries_spent < self.retry_budget
    }

    /// Retries spent so far (monotonic; never reset by samples).
    pub fn retries_spent(&self) -> u32 {
        self.retries_spent
    }

    /// Whether the retry budget is exhausted.
    pub fn budget_exhausted(&self) -> bool {
        self.retries_spent >= self.retry_budget
    }

    /// Smoothed RTT in nanoseconds (0 before the first sample).
    pub fn srtt_ns(&self) -> u64 {
        self.srtt_ns
    }

    /// RTT variance in nanoseconds.
    pub fn rttvar_ns(&self) -> u64 {
        self.rttvar_ns
    }

    /// Samples folded in so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_seeds_srtt_and_var() {
        let mut rto = RtoEstimator::new(Time::from_millis(1), Time::from_secs(1), 8);
        rto.observe(Time::from_millis(10));
        assert_eq!(rto.srtt_ns(), 10_000_000);
        assert_eq!(rto.rttvar_ns(), 5_000_000);
        // srtt + 4·rttvar = 30ms.
        assert_eq!(rto.base(), Time::from_millis(30));
    }

    #[test]
    fn ewma_matches_rfc_shift_arithmetic() {
        let mut rto = RtoEstimator::new(Time::from_millis(1), Time::from_secs(10), 8);
        rto.observe(Time::from_millis(10));
        rto.observe(Time::from_millis(20));
        // err = 10ms; rttvar = (3·5 + 10)/4 = 6.25ms; srtt = (7·10+20)/8 = 11.25ms.
        assert_eq!(rto.rttvar_ns(), 6_250_000);
        assert_eq!(rto.srtt_ns(), 11_250_000);
    }

    #[test]
    fn pre_sample_default_is_four_times_floor() {
        let rto = RtoEstimator::new(Time::from_millis(5), Time::from_secs(1), 8);
        assert_eq!(rto.current(), Time::from_millis(20));
    }

    #[test]
    fn backoff_doubles_and_budget_exhausts() {
        let mut rto = RtoEstimator::new(Time::from_millis(1), Time::from_secs(60), 3);
        rto.observe(Time::from_millis(8));
        let base = rto.current();
        assert!(rto.back_off());
        assert_eq!(rto.current(), base * 2);
        assert!(rto.back_off());
        assert_eq!(rto.current(), base * 4);
        // Third retry spends the last unit.
        assert!(!rto.back_off());
        assert!(rto.budget_exhausted());
    }

    #[test]
    fn sample_collapses_backoff() {
        let mut rto = RtoEstimator::new(Time::from_millis(1), Time::from_secs(60), 8);
        rto.observe(Time::from_millis(8));
        rto.back_off();
        rto.back_off();
        assert!(rto.current() > rto.base());
        rto.observe(Time::from_millis(8));
        assert_eq!(rto.current(), rto.base());
    }

    #[test]
    fn clamps_to_min_and_max() {
        let mut rto = RtoEstimator::new(Time::from_millis(50), Time::from_millis(80), 8);
        rto.observe(Time::from_micros(10)); // tiny RTT → floor applies
        assert_eq!(rto.current(), Time::from_millis(50));
        for _ in 0..6 {
            rto.back_off();
        }
        assert_eq!(rto.current(), Time::from_millis(80)); // ceiling applies
    }
}
