//! The many-flow fleet topology: K sensors fanning into M DTNs.
//!
//! Every experiment elsewhere in this crate simulates a handful of flows;
//! the paper's premise is *fleets* — thousands of detector streams
//! converging on data-transfer nodes. This module builds that shape as
//! `M` independent **flow groups** (one DTN plus its share of the K
//! sensors, each group a private [`Simulator`]) so the whole fleet can be
//! executed serially or scaled out across threads by
//! [`ShardedSim`] with byte-identical results either way.
//!
//! Hot-path discipline: each group owns a [`PacketArena`]; sensors draw
//! frame buffers from it ([`PacketArena::frame`], which skips the
//! per-packet memset), encode a real MMT data header in place with the
//! zero-copy [`MmtRepr::encode_into`], and the DTN parses it back with
//! [`MmtRepr::decode_from`] before recycling the buffer — so in steady
//! state the group neither allocates nor copies per packet, and the
//! span profiler's encode/decode rows attribute real wire work.
//!
//! ## Flow-state layout: struct-of-arrays by default
//!
//! The default execution houses a group's sensors in one [`SensorFleet`]
//! node whose per-flow state (sequence cursor, remaining-packet counter,
//! delivery occupancy) lives in a dense [`FlowTable`] — tens of bytes per
//! flow — and whose frames carry their multi-KB payloads as *virtual
//! tails* (only the MMT header is resident; see
//! [`PacketArena::frame_virtual`]). The seed layout — one boxed
//! [`Sensor`] node per flow with physically allocated payloads — is kept
//! behind [`ManyFlowConfig::with_aos_sensors`] as the differential
//! reference: `tests/flowtable_equivalence.rs` holds the two layouts to
//! byte-identical Prometheus text, flow-keyed trace digests, and series
//! JSONL. Both paths draw identical RNG sequences (staggers in flow
//! order from the shared simulator stream, link parameters from the
//! frozen wiring stream) and push timers in identical insertion order,
//! which is what makes the equivalence exact rather than statistical.

use std::cell::RefCell;
use std::rc::Rc;

use mmt_core::flowtable::{FlowId, FlowTable};
use mmt_netsim::shard::{digest_trace_flow, Fnv64, GroupResult, ShardReport, ShardedSim};
use mmt_netsim::stats::LatencyHistogram;
use mmt_netsim::{
    Bandwidth, Context, LinkSpec, Node, NodeId, Packet, PacketArena, PortId, SimRng, Simulator,
    Stage, Time, TimerToken,
};
use mmt_telemetry::MetricRegistry;
use mmt_wire::mmt::{ExperimentId, MmtRepr};

/// Parameters of a many-flow run.
#[derive(Debug, Clone)]
pub struct ManyFlowConfig {
    /// Total sensors (K), distributed round-robin across the DTN groups.
    pub sensors: usize,
    /// DTN groups (M); the unit of shard parallelism.
    pub dtns: usize,
    /// Packets each sensor emits.
    pub packets_per_sensor: usize,
    /// Payload bytes per packet.
    pub payload_bytes: usize,
    /// Worker shards (1 = the serial reference execution).
    pub shards: usize,
    /// Root seed; group seeds derive from `(seed, group)` only.
    pub seed: u64,
    /// Record per-packet traces (needed for trace digests; costs memory,
    /// so benches at K = 10 000 turn it off).
    pub trace: bool,
    /// Sample deterministic time-series rows every interval of virtual
    /// time (`None` = sampler off).
    pub series_interval: Option<Time>,
    /// Retain exact latency samples instead of the fixed-memory sketch
    /// (honesty comparisons only; memory grows with packet count).
    pub exact_latency: bool,
    /// Enable the hot-path span profiler.
    pub profile: bool,
    /// Run every group on the legacy binary-heap event queue instead of
    /// the timing wheel (differential testing only; see
    /// [`Simulator::with_heap_scheduler`]).
    pub heap_scheduler: bool,
    /// Use the seed array-of-structs layout — one boxed [`Sensor`] node
    /// per flow, payloads physically allocated — instead of the default
    /// [`FlowTable`]-backed [`SensorFleet`] (differential testing only).
    pub aos_sensors: bool,
}

impl ManyFlowConfig {
    /// A small, fast fleet for tests and CI smoke: 64 sensors × 8 DTNs.
    pub fn quick(seed: u64) -> ManyFlowConfig {
        ManyFlowConfig {
            sensors: 64,
            dtns: 8,
            packets_per_sensor: 4,
            payload_bytes: 1500,
            shards: 1,
            seed,
            trace: true,
            series_interval: None,
            exact_latency: false,
            profile: false,
            heap_scheduler: false,
            aos_sensors: false,
        }
    }

    /// The E14/bench fleet shape: `sensors` across 16 DTN groups, jumbo
    /// payloads, traces off.
    pub fn fleet(sensors: usize, shards: usize, seed: u64) -> ManyFlowConfig {
        ManyFlowConfig {
            sensors,
            dtns: 16,
            packets_per_sensor: 8,
            payload_bytes: 8192,
            shards,
            seed,
            trace: false,
            series_interval: None,
            exact_latency: false,
            profile: false,
            heap_scheduler: false,
            aos_sensors: false,
        }
    }

    /// With a different shard count (group seeds are unaffected).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> ManyFlowConfig {
        self.shards = shards;
        self
    }

    /// With the time-series sampler on at `interval`.
    #[must_use]
    pub fn with_series(mut self, interval: Time) -> ManyFlowConfig {
        self.series_interval = Some(interval);
        self
    }

    /// With the span profiler on.
    #[must_use]
    pub fn with_profile(mut self) -> ManyFlowConfig {
        self.profile = true;
        self
    }

    /// With exact latency samples retained (sketch comparison runs).
    #[must_use]
    pub fn with_exact_latency(mut self) -> ManyFlowConfig {
        self.exact_latency = true;
        self
    }

    /// With the legacy heap scheduler (differential testing only).
    #[must_use]
    pub fn with_heap_scheduler(mut self) -> ManyFlowConfig {
        self.heap_scheduler = true;
        self
    }

    /// With the seed boxed-per-sensor layout (differential testing only).
    #[must_use]
    pub fn with_aos_sensors(mut self) -> ManyFlowConfig {
        self.aos_sensors = true;
        self
    }

    /// Sensors assigned to group `g` (round-robin remainder).
    pub fn sensors_in_group(&self, group: usize) -> usize {
        let dtns = self.dtns.max(1);
        let base = self.sensors / dtns;
        let extra = usize::from(group < self.sensors % dtns);
        base + extra
    }

    /// Total packets the fleet offers.
    pub fn offered_packets(&self) -> u64 {
        (self.sensors * self.packets_per_sensor) as u64
    }
}

/// Pacing gap between a sensor's packets.
const SENSOR_GAP: Time = Time::from_micros(100);

/// A detector stream: emits `remaining` MMT frames on a timer. Frame
/// buffers come from the group's arena without a re-zeroing pass; the
/// sequence-stamped data header is encoded in place over the front of
/// the slot buffer, and the payload region rides along untouched.
struct Sensor {
    flow: u64,
    remaining: usize,
    payload_bytes: usize,
    next_stamp: u64,
    /// Header template; per-packet emission adds the sequence number.
    header: MmtRepr,
    arena: Rc<RefCell<PacketArena>>,
}

impl Node for Sensor {
    fn on_packet(&mut self, _ctx: &mut Context<'_>, _port: PortId, _pkt: Packet) {}

    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if self.remaining > 0 {
            let stagger = Time::from_nanos(ctx.rng().next_bounded(SENSOR_GAP.as_nanos().max(1)));
            ctx.set_timer(stagger, 0);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: TimerToken) {
        if self.remaining == 0 {
            return;
        }
        let repr = self.header.with_sequence(self.next_stamp);
        let total = repr.header_len() + self.payload_bytes;
        let mut pkt = self.arena.borrow_mut().frame(total, self.flow);
        // Infallible: the buffer was sized from header_len one line up.
        if repr.encode_into(&mut pkt.bytes).is_err() {
            debug_assert!(false, "frame buffer sized from header_len");
            return;
        }
        pkt.meta.seq = Some(self.next_stamp);
        self.next_stamp = self.next_stamp.wrapping_add(1);
        ctx.send(0, pkt);
        self.remaining -= 1;
        if self.remaining > 0 {
            ctx.set_timer(SENSOR_GAP, 0);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The whole group's sensor population as ONE node: per-flow state lives
/// in the group's [`FlowTable`] (seq cursor and remaining counter as
/// dense columns), frames carry virtual payload tails, and timer tokens
/// address flows. Emission order, RNG draws, link traversal, and every
/// wire-observable byte match the boxed [`Sensor`] reference exactly —
/// only the node index on trace records (and the resident cost) differ.
struct SensorFleet {
    /// `(group << 32)`; flow `i`'s label is `base_flow | i`.
    base_flow: u64,
    payload_bytes: usize,
    /// Header template; per-packet emission adds the sequence number.
    header: MmtRepr,
    arena: Rc<RefCell<PacketArena>>,
    table: Rc<RefCell<FlowTable>>,
    /// Flow handles in sensor order: timer token `i` drives `flows[i]`,
    /// which sends on port `i` over the same link sensor `i` would own.
    flows: Vec<FlowId>,
}

impl Node for SensorFleet {
    fn on_packet(&mut self, _ctx: &mut Context<'_>, _port: PortId, _pkt: Packet) {}

    fn on_start(&mut self, ctx: &mut Context<'_>) {
        // Staggers drawn in flow order from the shared simulator stream —
        // the identical draw sequence the per-sensor nodes produce when
        // started in node-insertion order.
        for i in 0..self.flows.len() {
            let id = self.flows[i];
            if self.table.borrow().remaining(id).unwrap_or(0) > 0 {
                let stagger =
                    Time::from_nanos(ctx.rng().next_bounded(SENSOR_GAP.as_nanos().max(1)));
                ctx.set_timer(stagger, i as TimerToken);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: TimerToken) {
        let i = token as usize;
        let Some(&id) = self.flows.get(i) else {
            return;
        };
        let (seq, remaining) = {
            let t = self.table.borrow();
            match (t.seq(id), t.remaining(id)) {
                (Some(s), Some(r)) => (s, r),
                _ => return,
            }
        };
        if remaining == 0 {
            return;
        }
        let repr = self.header.with_sequence(seq);
        let header_len = repr.header_len();
        let total = header_len + self.payload_bytes;
        let mut pkt =
            self.arena
                .borrow_mut()
                .frame_virtual(header_len, total, self.base_flow | i as u64);
        // Infallible: the buffer was sized from header_len one line up.
        if repr.encode_into(&mut pkt.bytes).is_err() {
            debug_assert!(false, "frame buffer sized from header_len");
            return;
        }
        pkt.meta.seq = Some(seq);
        ctx.send(i, pkt);
        {
            let mut t = self.table.borrow_mut();
            t.set_seq(id, seq.wrapping_add(1));
            t.set_remaining(id, remaining - 1);
        }
        if remaining > 1 {
            ctx.set_timer(SENSOR_GAP, token);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The group's DTN: zero-copy-decodes, counts, and recycles every
/// arrival instead of storing it, so memory stays flat at any K.
struct Dtn {
    delivered: u64,
    /// Payload bytes consumed (header bytes excluded; counted from the
    /// wire length so virtual tails weigh the same as resident bytes).
    bytes: u64,
    /// Frames whose MMT header failed to parse (must stay zero on
    /// clean links; exported as `mmt_manyflow_decode_errors_total`).
    decode_errors: u64,
    latency: LatencyHistogram,
    arena: Rc<RefCell<PacketArena>>,
    /// Present on the flow-table path: per-flow delivery occupancy is
    /// mirrored into the table's occupancy column, keyed by the low
    /// 32 bits of the packet's flow label.
    table: Option<Rc<RefCell<FlowTable>>>,
    flows: Vec<FlowId>,
}

impl Node for Dtn {
    fn on_packet(&mut self, ctx: &mut Context<'_>, _port: PortId, pkt: Packet) {
        match MmtRepr::decode_from(&pkt.bytes) {
            Ok((header, _payload)) => {
                debug_assert_eq!(header.sequence(), pkt.meta.seq);
                self.delivered += 1;
                self.bytes += pkt.len().saturating_sub(header.header_len()) as u64;
                self.latency
                    .record(ctx.now().saturating_sub(pkt.meta.created_at));
                if let Some(table) = &self.table {
                    let s = (pkt.meta.flow & 0xFFFF_FFFF) as usize;
                    if let Some(&id) = self.flows.get(s) {
                        table.borrow_mut().add_occupancy(id, 1);
                    }
                }
            }
            Err(_) => self.decode_errors += 1,
        }
        self.arena.borrow_mut().recycle(pkt);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// One group's simulator plus the handles `run_group` (and the layout
/// tests) need after the run.
struct GroupSim {
    sim: Simulator,
    arena: Rc<RefCell<PacketArena>>,
    /// `Some` on the default flow-table path, `None` on the boxed
    /// reference path.
    table: Option<Rc<RefCell<FlowTable>>>,
    dtn: NodeId,
}

/// Build one flow group's simulator without running it. Node layout is
/// the only thing `cfg.aos_sensors` changes: link creation order, wiring
/// RNG draws, link specs, and port numbering are identical either way.
fn build_group(cfg: &ManyFlowConfig, group: usize, group_seed: u64) -> GroupSim {
    let sensors = cfg.sensors_in_group(group);
    let mut sim = Simulator::new(group_seed);
    if cfg.heap_scheduler {
        sim = sim.with_heap_scheduler();
    }
    if cfg.trace {
        sim.enable_trace();
    }
    if let Some(interval) = cfg.series_interval {
        sim.enable_series(interval);
    }
    if cfg.profile {
        sim.enable_profiler();
    }
    let arena = Rc::new(RefCell::new(PacketArena::new()));
    // One experiment id per group; the 24-bit field is masked rather than
    // checked so pathological group counts degrade to aliasing, not a
    // panic on the hot construction path.
    let experiment = ExperimentId::new(group as u32 & 0x00FF_FFFF, 0);
    let table = if cfg.aos_sensors {
        None
    } else {
        let mut t = FlowTable::with_capacity(sensors);
        let mut flows = Vec::with_capacity(sensors);
        for _ in 0..sensors {
            // Cannot exhaust: a group holds well under 2^32 flows.
            if let Some(id) = t.alloc() {
                t.set_remaining(id, cfg.packets_per_sensor.min(u32::MAX as usize) as u32);
                flows.push(id);
            }
        }
        Some((Rc::new(RefCell::new(t)), flows))
    };
    let latency = if cfg.exact_latency {
        LatencyHistogram::exact()
    } else {
        LatencyHistogram::new()
    };
    let dtn = sim.add_node(
        "dtn",
        Box::new(Dtn {
            delivered: 0,
            bytes: 0,
            decode_errors: 0,
            latency,
            arena: Rc::clone(&arena),
            table: table.as_ref().map(|(t, _)| Rc::clone(t)),
            flows: table.as_ref().map(|(_, f)| f.clone()).unwrap_or_default(),
        }),
    );
    // Per-sensor link heterogeneity comes from the group seed, not the
    // simulator's event stream, so wiring is reproducible by inspection.
    let mut wiring = SimRng::new(group_seed).fork_frozen(0x3EA5);
    let spec_for = |wiring: &mut SimRng| {
        let prop = Time::from_micros(50 + wiring.next_bounded(200));
        LinkSpec::new(Bandwidth::gbps(10), prop).with_mtu(9018)
    };
    let table = match table {
        Some((t, flows)) => {
            let fleet = sim.add_node(
                "sensor",
                Box::new(SensorFleet {
                    base_flow: (group as u64) << 32,
                    payload_bytes: cfg.payload_bytes,
                    header: MmtRepr::data(experiment),
                    arena: Rc::clone(&arena),
                    table: Rc::clone(&t),
                    flows,
                }),
            );
            for s in 0..sensors {
                let spec = spec_for(&mut wiring);
                sim.add_oneway(fleet, s, dtn, s, spec);
            }
            Some(t)
        }
        None => {
            for s in 0..sensors {
                let flow = (group as u64) << 32 | s as u64;
                let node = sim.add_node(
                    "sensor",
                    Box::new(Sensor {
                        flow,
                        remaining: cfg.packets_per_sensor,
                        payload_bytes: cfg.payload_bytes,
                        next_stamp: 0,
                        header: MmtRepr::data(experiment),
                        arena: Rc::clone(&arena),
                    }),
                );
                let spec = spec_for(&mut wiring);
                sim.add_oneway(node, 0, dtn, s, spec);
            }
            None
        }
    };
    GroupSim {
        sim,
        arena,
        table,
        dtn,
    }
}

/// Run one flow group (DTN `group` and its sensors) to completion and
/// fold its telemetry into a [`GroupResult`]. Pure in `(config, group,
/// group_seed)`; never consults the shard layout.
pub fn run_group(cfg: &ManyFlowConfig, group: usize, group_seed: u64) -> GroupResult {
    let sensors = cfg.sensors_in_group(group);
    let GroupSim {
        mut sim,
        arena,
        table,
        dtn,
    } = build_group(cfg, group, group_seed);
    sim.run();
    let (delivered, bytes, decode_errors, p50, p99, latency_sum_ns) =
        match sim.node_as_mut::<Dtn>(dtn) {
            Some(d) => (
                d.delivered,
                d.bytes,
                d.decode_errors,
                d.latency.median().unwrap_or(Time::ZERO),
                d.latency.p99().unwrap_or(Time::ZERO),
                d.latency.sum_ns(),
            ),
            None => (0, 0, 0, Time::ZERO, Time::ZERO, 0),
        };
    // The occupancy column is the flow table's view of delivery; it must
    // agree with the DTN's own counter flow-for-flow.
    if let Some(table) = &table {
        debug_assert_eq!(
            table.borrow().occupancy_total(),
            delivered,
            "flow-table occupancy diverged from DTN delivery count"
        );
    }
    let group_s = group.to_string();
    // Protocol-layer span attribution the core cannot see: every sensor
    // emission is one encode (instantaneous in virtual time — the model
    // serializes on the link, not in the sensor), every DTN consume is
    // one decode whose virtual time is the packet's end-to-end latency.
    if cfg.profile {
        let encodes = (sensors * cfg.packets_per_sensor) as u64;
        sim.profile_add(Stage::Encode, encodes, 0);
        sim.profile_add(Stage::Decode, delivered, latency_sum_ns);
    }
    let profile = sim.profiler().cloned().unwrap_or_default();
    // Prefix each sampled row with the group label so merged JSONL rows
    // stay attributable (and unique) after ascending-group-order concat.
    let mut series = sim.take_series();
    for row in &mut series {
        row.labels.insert(0, ("group".to_string(), group_s.clone()));
    }
    let mut registry = MetricRegistry::new();
    // Per-link cells ride back packed (~150 B/link) instead of as eager
    // registry rows (~1 kB/link); the sharded merge folds the blocks and
    // materializes real rows once, after the last group.
    let links = sim.export_metrics_split(&mut registry);
    let labels = [("group", group_s.as_str())];
    registry.describe(
        "mmt_manyflow_delivered_total",
        "packets the group's DTN consumed",
    );
    registry.counter_add("mmt_manyflow_delivered_total", &labels, delivered);
    registry.describe(
        "mmt_manyflow_bytes_total",
        "payload bytes the group's DTN consumed (MMT headers excluded)",
    );
    registry.counter_add("mmt_manyflow_bytes_total", &labels, bytes);
    registry.describe(
        "mmt_manyflow_decode_errors_total",
        "frames whose MMT header failed zero-copy decode at the DTN",
    );
    registry.counter_add("mmt_manyflow_decode_errors_total", &labels, decode_errors);
    registry.describe("mmt_manyflow_latency_p50_ns", "median sensor→DTN latency");
    registry.gauge_set(
        "mmt_manyflow_latency_p50_ns",
        &labels,
        p50.as_nanos() as f64,
    );
    registry.describe("mmt_manyflow_latency_p99_ns", "p99 sensor→DTN latency");
    registry.gauge_set(
        "mmt_manyflow_latency_p99_ns",
        &labels,
        p99.as_nanos() as f64,
    );
    let stats = arena.borrow().stats();
    registry.describe(
        "mmt_arena_packets_reused_total",
        "packet buffers served from the arena's spare pool",
    );
    registry.counter_add(
        "mmt_arena_packets_reused_total",
        &labels,
        stats.packets_reused,
    );
    registry.describe(
        "mmt_arena_packets_fresh_total",
        "packet buffers that had to be freshly allocated",
    );
    registry.counter_add(
        "mmt_arena_packets_fresh_total",
        &labels,
        stats.packets_fresh,
    );
    // Flow-keyed digest: every wire-observable field, minus the node
    // index — the one field the SoA/AoS layouts legitimately disagree on
    // (one fleet node vs. one node per sensor).
    let trace_digest = if cfg.trace {
        digest_trace_flow(&sim.trace_records())
    } else {
        // Traces off (bench mode): digest the group's observable outcome
        // instead, so differential runs still compare something real.
        let mut h = Fnv64::new();
        h.write_u64(delivered);
        h.write_u64(bytes);
        h.write_u64(sim.events_processed());
        h.write_u64(sim.now().as_nanos());
        h.write_u64(p50.as_nanos());
        h.write_u64(p99.as_nanos());
        h.finish()
    };
    GroupResult {
        registry,
        links,
        trace_digest,
        events: sim.events_processed(),
        packets: delivered,
        series,
        profile,
    }
}

/// The merged outcome of a many-flow run.
#[derive(Debug)]
pub struct ManyFlowReport {
    /// Merged telemetry, digest, totals, and per-shard loads.
    pub shard: ShardReport,
    /// Packets offered by the whole fleet.
    pub offered: u64,
    /// The configuration that produced this report.
    pub config: ManyFlowConfig,
}

impl ManyFlowReport {
    /// Delivered / offered (1.0 on clean links).
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered == 0 {
            return 1.0;
        }
        self.shard.packets as f64 / self.offered as f64
    }
}

/// Run the fleet described by `cfg` (serially when `cfg.shards == 1`).
pub fn run(cfg: &ManyFlowConfig) -> ManyFlowReport {
    let runner = ShardedSim::new(cfg.seed, cfg.shards);
    let shard = runner.run(cfg.dtns, |g, seed| run_group(cfg, g, seed));
    ManyFlowReport {
        shard,
        offered: cfg.offered_packets(),
        config: cfg.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensor_distribution_covers_k() {
        let cfg = ManyFlowConfig {
            sensors: 10,
            dtns: 4,
            ..ManyFlowConfig::quick(1)
        };
        let per_group: Vec<usize> = (0..4).map(|g| cfg.sensors_in_group(g)).collect();
        assert_eq!(per_group, vec![3, 3, 2, 2]);
        assert_eq!(per_group.iter().sum::<usize>(), 10);
    }

    #[test]
    fn quick_fleet_delivers_everything() {
        let report = run(&ManyFlowConfig::quick(11));
        assert_eq!(report.offered, 64 * 4);
        assert_eq!(report.shard.packets, report.offered, "clean links: no loss");
        assert!((report.delivery_ratio() - 1.0).abs() < 1e-12);
        assert!(report.shard.events > 0);
    }

    #[test]
    fn arena_reuse_dominates_after_warmup() {
        let mut cfg = ManyFlowConfig::quick(3);
        cfg.packets_per_sensor = 32;
        let report = run(&cfg);
        let reused = report
            .shard
            .registry
            .counter("mmt_arena_packets_reused_total", &[("group", "0")]);
        let fresh = report
            .shard
            .registry
            .counter("mmt_arena_packets_fresh_total", &[("group", "0")]);
        assert!(
            reused > fresh,
            "steady state must recycle more than it allocates ({reused} vs {fresh})"
        );
    }

    #[test]
    fn sharded_fleet_is_byte_identical_to_serial() {
        let serial = run(&ManyFlowConfig::quick(5));
        let sharded = run(&ManyFlowConfig::quick(5).with_shards(4));
        assert_eq!(serial.shard.trace_digest, sharded.shard.trace_digest);
        assert_eq!(
            mmt_telemetry::prometheus::render(&serial.shard.registry),
            mmt_telemetry::prometheus::render(&sharded.shard.registry)
        );
    }

    #[test]
    fn series_rows_carry_group_labels_and_shard_identically() {
        let cfg = ManyFlowConfig::quick(21).with_series(Time::from_micros(100));
        let serial = run(&cfg);
        let sharded = run(&cfg.clone().with_shards(4));
        let a = mmt_telemetry::series::to_jsonl(&serial.shard.series);
        let b = mmt_telemetry::series::to_jsonl(&sharded.shard.series);
        assert!(!a.is_empty(), "sampler on → rows out");
        assert_eq!(a, b, "series JSONL must ignore the shard count");
        let first = a.lines().next().unwrap_or("");
        assert!(
            first.contains("\"labels\":{\"group\":\"0\""),
            "group label leads, ascending group order: {first}"
        );
    }

    #[test]
    fn profile_covers_the_hot_path_stages() {
        let report = run(&ManyFlowConfig::quick(13).with_profile());
        let p = &report.shard.profile;
        let offered = report.offered;
        assert_eq!(p.get(Stage::Encode).events, offered);
        assert_eq!(p.get(Stage::Decode).events, offered, "clean links");
        assert!(p.get(Stage::Decode).vtime_ns > 0, "latency sum attributed");
        // One enqueue + one dequeue per packet.
        assert_eq!(p.get(Stage::QueueOps).events, 2 * offered);
        assert_eq!(p.get(Stage::LinkDelivery).events, offered);
        assert!(p.get(Stage::LinkDelivery).vtime_ns > 0);
        assert!(
            p.get(Stage::TimerDispatch).events >= offered,
            "sensor pacing timers"
        );
        // Profile must also ignore the shard count.
        let sharded = run(&ManyFlowConfig::quick(13).with_profile().with_shards(4));
        assert_eq!(*p, sharded.shard.profile);
    }

    #[test]
    fn soa_path_actually_uses_the_flow_table() {
        let cfg = ManyFlowConfig::quick(1);
        let soa = build_group(&cfg, 0, 42);
        let table = soa.table.expect("default path builds a flow table");
        assert_eq!(table.borrow().live(), cfg.sensors_in_group(0));
        assert_eq!(
            table.borrow().stats().fresh as usize,
            cfg.sensors_in_group(0)
        );
        let aos = build_group(&cfg.clone().with_aos_sensors(), 0, 42);
        assert!(aos.table.is_none(), "reference path keeps boxed sensors");
    }

    #[test]
    fn soa_and_aos_layouts_are_byte_identical() {
        for seed in [5, 29] {
            let cfg = ManyFlowConfig::quick(seed).with_series(Time::from_micros(100));
            let soa = run(&cfg);
            let aos = run(&cfg.clone().with_aos_sensors());
            assert_eq!(
                soa.shard.trace_digest, aos.shard.trace_digest,
                "flow-keyed trace digests must match (seed {seed})"
            );
            assert_eq!(
                mmt_telemetry::prometheus::render(&soa.shard.registry),
                mmt_telemetry::prometheus::render(&aos.shard.registry),
                "Prometheus text must match (seed {seed})"
            );
            assert_eq!(
                mmt_telemetry::series::to_jsonl(&soa.shard.series),
                mmt_telemetry::series::to_jsonl(&aos.shard.series),
                "series JSONL must match (seed {seed})"
            );
            assert_eq!(soa.shard.events, aos.shard.events);
            assert_eq!(soa.shard.packets, aos.shard.packets);
        }
    }

    #[test]
    fn exact_latency_mode_matches_sketch_mode_outcomes() {
        let sketch = run(&ManyFlowConfig::quick(17));
        let exact = run(&{
            let mut c = ManyFlowConfig::quick(17);
            c.exact_latency = true;
            c
        });
        assert_eq!(sketch.shard.packets, exact.shard.packets);
        // p50/p99 gauges may differ by the sketch bound but delivery
        // counters must be identical.
        assert_eq!(
            sketch
                .shard
                .registry
                .counter("mmt_manyflow_delivered_total", &[("group", "0")]),
            exact
                .shard
                .registry
                .counter("mmt_manyflow_delivered_total", &[("group", "0")]),
        );
    }
}
