//! # `mmt-pilot` — the pilot study (Fig. 4) and the experiment suite
//!
//! This crate assembles the pieces — detector workloads (`mmt-daq`),
//! programmable elements (`mmt-dataplane`), MMT endpoints (`mmt-core`),
//! and the TCP/UDP baselines (`mmt-transport`) — into runnable
//! experiments over the simulator (`mmt-netsim`).
//!
//! [`topology`] builds the pilot chain of Fig. 4:
//!
//! ```text
//! detector ──DAQ net──▶ DTN 1 ──▶ Tofino2 ══WAN══▶ DTN 2 switch ──▶ DTN 2 host
//! (sensor)             (Alveo:              (age    (Alveo: deadline   (receiver,
//!  mode 0/1)            border upgrade       update) check, mode 3)     NAKs)
//!                       + retransmit buffer)
//! ```
//!
//! [`experiments`] hosts one module per experiment in DESIGN.md's
//! per-experiment index (T1, F2/F3/F4, E1–E11, A1–A2); each returns a plain
//! result struct that `mmt-bench`'s `tables` binary formats into the
//! rows/series the paper's evaluation would report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod manyflow;
pub mod topology;

pub use topology::{Pilot, PilotConfig, PilotReport};
