//! The Fig. 4 pilot topology.

use mmt_core::buffer::{CreditConfig, RetransmitBufferStats};
use mmt_core::buffer::{RetransmitBuffer, PORT_DAQ, PORT_WAN};
use mmt_core::controller::{HealthSample, ModeController, ModeTransition};
use mmt_core::flowtable::{FlowId, FlowTable};
use mmt_core::receiver::{MmtReceiver, ReceiverConfig, ReceiverStats};
use mmt_core::sender::{MmtSender, SenderConfig, SenderStats};
use mmt_core::standby::{StandbyBuffer, StandbyBufferStats};
use mmt_dataplane::parser::build_eth_mmt_frame;
use mmt_dataplane::programs::{self, BorderConfig};
use mmt_dataplane::{DataplaneElement, ElementStats};
use mmt_netsim::stats::LatencyHistogram;
use mmt_netsim::{
    Bandwidth, FaultSpec, LinkId, LinkSpec, LossModel, NodeId, Packet, Simulator, SpanProfiler,
    Stage, Time,
};
use mmt_wire::mmt::{ControlRepr, ExperimentId, Features, MmtRepr, ModeChangeRepr};
use mmt_wire::{EthernetAddress, Ipv4Address};

/// Configuration for a pilot run.
#[derive(Debug, Clone)]
pub struct PilotConfig {
    /// Experiment identity (defaults to DUNE, experiment 2).
    pub experiment: ExperimentId,
    /// Message payload size, bytes.
    pub message_len: usize,
    /// Number of messages to stream.
    pub message_count: usize,
    /// Gap between message creations at the sensor.
    pub message_gap: Time,
    /// DAQ-network link rate (sensor → DTN 1).
    pub daq_bandwidth: Bandwidth,
    /// WAN link rate.
    pub wan_bandwidth: Bandwidth,
    /// WAN round-trip time (propagation split evenly per direction).
    pub wan_rtt: Time,
    /// WAN loss model (corruption; §4).
    pub wan_loss: LossModel,
    /// Fault injection on the WAN crossing (both directions, so the NAK
    /// reverse path suffers the same reordering/outages as data).
    pub wan_fault: FaultSpec,
    /// DTN 1 per-sequence retransmission holdoff (`Time::ZERO` = serve
    /// every NAK; see `RetransmitBuffer::with_retx_holdoff`).
    pub retx_holdoff: Time,
    /// Delivery budget from creation (the mode-2 deadline).
    pub deadline_budget: Time,
    /// Age threshold for the aged flag.
    pub max_age: Time,
    /// Enable backpressure credits from DTN 1 to the sensor.
    pub credit: Option<CreditConfig>,
    /// Whether the sensor honours credits.
    pub respect_backpressure: bool,
    /// Receiver loss-recovery tuning.
    pub receiver_nak_interval: Time,
    /// Give-up horizon for unrecoverable gaps.
    pub receiver_give_up: Time,
    /// NAK retry budget per sequence (`None` = receiver default).
    pub receiver_max_nak_retries: Option<u32>,
    /// Insert the standby retransmission buffer between DTN 1 and the
    /// Tofino (the re-homing target for failover runs).
    pub standby: bool,
    /// Name of a node to crash mid-run (`sensor`, `dtn1`, `standby`,
    /// `tofino2`, `dtn2-nic`, `dtn2-host`).
    pub crash_node: Option<String>,
    /// When the crash fires (used only with `crash_node`).
    pub crash_at: Time,
    /// When (if ever) the crashed node comes back.
    pub restart_at: Option<Time>,
    /// Simulation seed.
    pub seed: u64,
    /// Run on the legacy binary-heap event queue instead of the timing
    /// wheel (differential testing only; see
    /// [`mmt_netsim::Simulator::with_heap_scheduler`]).
    pub heap_scheduler: bool,
    /// House the pilot stream's adaptive state (mode word, deadline,
    /// occupancy, retransmit-source slot) in a [`FlowTable`] row instead
    /// of only inside the boxed controller. Behaviour-neutral: the
    /// controller's word is parked in the table between control
    /// intervals and thawed before each observation, so every decision
    /// is byte-identical either way. Off only for differential testing.
    pub flow_table: bool,
}

impl PilotConfig {
    /// Defaults matching the pilot: DUNE data, 8 KiB messages, 100 GbE
    /// everywhere, 10 ms WAN RTT, mild corruption loss.
    pub fn default_run() -> PilotConfig {
        PilotConfig {
            experiment: ExperimentId::new(2, 0),
            message_len: 8192,
            message_count: 2_000,
            message_gap: Time::from_micros(1),
            daq_bandwidth: Bandwidth::gbps(100),
            wan_bandwidth: Bandwidth::gbps(100),
            wan_rtt: Time::from_millis(10),
            wan_loss: LossModel::Random(1e-3),
            wan_fault: FaultSpec::none(),
            retx_holdoff: Time::ZERO,
            deadline_budget: Time::from_millis(50),
            max_age: Time::from_millis(40),
            credit: None,
            respect_backpressure: false,
            receiver_nak_interval: Time::from_millis(12),
            receiver_give_up: Time::from_secs(5),
            receiver_max_nak_retries: None,
            standby: false,
            crash_node: None,
            crash_at: Time::ZERO,
            restart_at: None,
            seed: 7,
            heap_scheduler: false,
            flow_table: true,
        }
    }
}

/// Addresses used by the pilot nodes.
pub mod addrs {
    use mmt_wire::Ipv4Address;
    /// The sensor / detector readout host.
    pub const SENSOR: Ipv4Address = Ipv4Address::new(10, 0, 0, 1);
    /// DTN 1 (buffer + border).
    pub const DTN1: Ipv4Address = Ipv4Address::new(10, 0, 0, 5);
    /// The standby retransmission buffer (re-homing target).
    pub const STANDBY: Ipv4Address = Ipv4Address::new(10, 0, 0, 6);
    /// DTN 2 (receiving host).
    pub const DTN2: Ipv4Address = Ipv4Address::new(10, 0, 0, 8);
}

/// NAK service port of the primary buffer (DTN 1).
pub const DTN1_NAK_PORT: u16 = 47_000;
/// NAK service port of the standby buffer.
pub const STANDBY_NAK_PORT: u16 = 47_001;

/// A built pilot: the simulator plus the node handles experiments poke.
pub struct Pilot {
    /// The simulator (run it, inspect it).
    pub sim: Simulator,
    /// The detector / sensor node.
    pub sensor: NodeId,
    /// DTN 1: border + retransmission buffer.
    pub dtn1: NodeId,
    /// The standby retransmission buffer, when the topology has one.
    pub standby: Option<NodeId>,
    /// The Tofino2-like WAN transit element.
    pub tofino: NodeId,
    /// The DTN 2-side programmable NIC (deadline check).
    pub dtn2_switch: NodeId,
    /// The receiving host.
    pub receiver: NodeId,
    /// The WAN link (tofino → dtn2 switch) for stats.
    pub wan_link: LinkId,
    /// The reverse WAN link (dtn2 switch → tofino) — the NAK path, where
    /// selective control loss bites.
    pub wan_link_rev: LinkId,
    /// DTN 1's WAN-facing egress link (dtn1 → tofino) — where drops land
    /// when the sensor overcommits the WAN (experiment E7).
    pub dtn1_egress: LinkId,
    /// Dense per-flow state for the pilot stream (`None` when
    /// `PilotConfig::flow_table` is off): the mode word is parked here
    /// between control intervals, the deadline column holds the mode-2
    /// budget, occupancy mirrors the retransmit buffer, and the
    /// retransmit-source slot records which buffer (0 = primary DTN 1,
    /// 1 = standby) currently serves NAKs.
    pub flow_table: Option<FlowTable>,
    /// The pilot stream's row in [`Pilot::flow_table`].
    pub stream_flow: Option<FlowId>,
    config: PilotConfig,
}

impl Pilot {
    /// The node at `id` downcast to the concrete type `build()` registered
    /// it with. Every id this struct holds is minted by `build()` together
    /// with its type, so the lookup is infallible.
    fn node<T: 'static>(&self, id: NodeId) -> &T {
        self.sim
            .node_as::<T>(id)
            .expect("node type fixed at build()") // mmt-lint: allow(P1, "ids are minted by build() with the matching concrete type; a miss is a construction bug, not a runtime condition")
    }

    /// Build the Fig. 4 chain.
    pub fn build(config: PilotConfig) -> Pilot {
        let mut sim = Simulator::new(config.seed);
        if config.heap_scheduler {
            sim = sim.with_heap_scheduler();
        }

        // --- nodes ---
        let mut sender_cfg = SenderConfig::regular(
            config.experiment,
            config.message_len,
            config.message_gap,
            config.message_count,
        );
        sender_cfg.respect_backpressure = config.respect_backpressure;
        let sensor = sim.add_node("sensor", Box::new(MmtSender::new(sender_cfg)));

        let border = BorderConfig {
            daq_port: PORT_DAQ,
            wan_port: PORT_WAN,
            retransmit_source: (addrs::DTN1, 47_000),
            deadline_budget_ns: config.deadline_budget.as_nanos(),
            notify_addr: addrs::SENSOR,
            priority_class: None,
        };
        let dtn1 = sim.add_node(
            "dtn1",
            Box::new(
                RetransmitBuffer::new(config.experiment, border, 256 * 1024 * 1024, config.credit)
                    .with_retx_holdoff(config.retx_holdoff),
            ),
        );

        let standby = if config.standby {
            Some(
                sim.add_node(
                    "standby",
                    Box::new(
                        StandbyBuffer::new(addrs::STANDBY, STANDBY_NAK_PORT, 256 * 1024 * 1024)
                            .with_retx_holdoff(config.retx_holdoff),
                    ),
                ),
            )
        } else {
            None
        };

        let tofino = sim.add_node(
            "tofino2",
            Box::new(DataplaneElement::new(programs::wan_transit(
                0,
                1,
                config.max_age.as_nanos(),
            ))),
        );

        let dtn2_switch = sim.add_node(
            "dtn2-nic",
            Box::new(DataplaneElement::new(programs::destination_check(0, 1, 0))),
        );

        let mut rcv_cfg = ReceiverConfig::wan_defaults(config.experiment, addrs::DTN2);
        rcv_cfg.nak_interval = config.receiver_nak_interval;
        rcv_cfg.give_up_after = config.receiver_give_up;
        rcv_cfg.expect_messages = Some(config.message_count as u64);
        if let Some(retries) = config.receiver_max_nak_retries {
            rcv_cfg.max_nak_retries = retries;
        }
        let receiver = sim.add_node("dtn2-host", Box::new(MmtReceiver::new(rcv_cfg)));

        // --- links ---
        let short = Time::from_micros(1);
        // DAQ network: capacity-planned, lossless.
        sim.connect(
            sensor,
            0,
            dtn1,
            PORT_DAQ,
            LinkSpec::new(config.daq_bandwidth, Time::from_micros(5)),
        );
        // DTN1 ↔ Tofino2 (same facility). This link runs at WAN rate, so
        // it is the first overcommit bottleneck. With a standby the chain
        // is DTN1 ↔ standby ↔ Tofino2; the standby taps in passing.
        let dtn1_egress = if let Some(sb) = standby {
            let (egress, _) = sim.connect(
                dtn1,
                PORT_WAN,
                sb,
                mmt_core::standby::PORT_UP,
                LinkSpec::new(config.wan_bandwidth, short),
            );
            sim.connect(
                sb,
                mmt_core::standby::PORT_DOWN,
                tofino,
                0,
                LinkSpec::new(config.wan_bandwidth, short),
            );
            egress
        } else {
            let (egress, _) = sim.connect(
                dtn1,
                PORT_WAN,
                tofino,
                0,
                LinkSpec::new(config.wan_bandwidth, short),
            );
            egress
        };
        // The WAN crossing: loss lives here.
        let (wan_link, wan_link_rev) = sim.connect(
            tofino,
            1,
            dtn2_switch,
            0,
            LinkSpec::new(config.wan_bandwidth, config.wan_rtt / 2)
                .with_loss(config.wan_loss)
                .with_fault(config.wan_fault),
        );
        // DTN2 NIC ↔ host.
        sim.connect(
            dtn2_switch,
            1,
            receiver,
            0,
            LinkSpec::new(config.wan_bandwidth, short),
        );

        // --- scheduled failure ---
        if let Some(name) = config.crash_node.as_deref() {
            let node = match name {
                "sensor" => Some(sensor),
                "dtn1" => Some(dtn1),
                "standby" => standby,
                "tofino2" => Some(tofino),
                "dtn2-nic" => Some(dtn2_switch),
                "dtn2-host" => Some(receiver),
                _ => None,
            };
            // The CLI validates names before building; reaching this with
            // an unknown name (or `standby` without the standby topology)
            // is a configuration bug.
            assert!(node.is_some(), "unknown crash node '{name}'");
            if let Some(node) = node {
                sim.schedule_crash(node, config.crash_at, config.restart_at);
            }
        }

        // --- flow-state row ---
        let (flow_table, stream_flow) = if config.flow_table {
            let mut table = FlowTable::with_capacity(1);
            let id = table.alloc();
            if let Some(id) = id {
                table.set_deadline_ns(id, config.deadline_budget.as_nanos());
                // Slot 0 = the primary retransmit buffer (DTN 1); a
                // re-home flips this to 1 (the standby).
                table.set_retx_slot(id, 0);
            }
            (Some(table), id)
        } else {
            (None, None)
        };

        Pilot {
            sim,
            sensor,
            dtn1,
            standby,
            tofino,
            dtn2_switch,
            receiver,
            wan_link,
            wan_link_rev,
            dtn1_egress,
            flow_table,
            stream_flow,
            config,
        }
    }

    /// Run until the stream completes (or `horizon` elapses).
    pub fn run(&mut self, horizon: Time) {
        self.sim.run_until(horizon);
    }

    /// Run with the closed adaptation loop engaged: every `interval` the
    /// controller observes the WAN segment's health (loss deltas, NAK
    /// retry exhaustion, deadline misses, buffer occupancy, primary
    /// liveness) and its transitions are pushed to the data plane as
    /// mode-change control messages. Stops early once the stream
    /// completes. Returns the number of transitions applied.
    ///
    /// Fully deterministic: sampling happens at fixed virtual times and
    /// the controller consumes no randomness.
    pub fn run_adaptive(
        &mut self,
        horizon: Time,
        interval: Time,
        controller: &mut ModeController,
    ) -> u64 {
        let mut prev_tx = 0u64;
        let mut prev_lost = 0u64;
        let mut prev_exhausted = 0u64;
        let mut prev_aged = 0u64;
        let mut applied = 0u64;
        // Seed the flow row from the incoming controller so the first
        // thaw below hands back exactly the state the caller passed in.
        if let (Some(table), Some(id)) = (&mut self.flow_table, self.stream_flow) {
            table.set_mode_word(id, controller.word());
        }
        while self.sim.now() < horizon {
            let t = (self.sim.now() + interval).min(horizon);
            self.sim.run_until(t);
            let wan = self.sim.link_stats(self.wan_link);
            let tx = wan.tx_packets;
            let lost = wan.corruption_losses + wan.flap_drops + wan.queue_drops;
            let rcv_stats = self.node::<MmtReceiver>(self.receiver).stats;
            let occupancy = self.node::<RetransmitBuffer>(self.dtn1).stored_bytes() as u64;
            let sample = HealthSample {
                wan_tx: tx.saturating_sub(prev_tx),
                wan_lost: lost.saturating_sub(prev_lost),
                nak_retries_exhausted: rcv_stats
                    .nak_retries_exhausted
                    .saturating_sub(prev_exhausted),
                deadline_misses: rcv_stats.aged_deliveries.saturating_sub(prev_aged),
                buffer_occupancy_bytes: occupancy,
                primary_alive: !self.sim.is_crashed(self.dtn1),
            };
            prev_tx = tx;
            prev_lost = lost;
            prev_exhausted = rcv_stats.nak_retries_exhausted;
            prev_aged = rcv_stats.aged_deliveries;
            // Thaw the parked mode word, decide, park it again — the
            // storage round-trip a flow-table-resident fleet performs per
            // control interval. The word written back is the word read
            // plus this observation, so decisions are byte-identical to
            // the controller-resident path.
            if let (Some(table), Some(id)) = (&mut self.flow_table, self.stream_flow) {
                if let Some(word) = table.mode_word(id) {
                    controller.load_word(word);
                }
            }
            let transitions = controller.observe(&sample);
            if let (Some(table), Some(id)) = (&mut self.flow_table, self.stream_flow) {
                table.set_mode_word(id, controller.word());
                table.set_occupancy(id, occupancy.min(u64::from(u32::MAX)) as u32);
                if transitions
                    .iter()
                    .any(|t| matches!(t, ModeTransition::ReHome { .. }))
                {
                    // The stream's NAK service moved to the standby.
                    table.set_retx_slot(id, 1);
                }
            }
            // Each closed-loop observation is one mode-control decision;
            // the control channel is out-of-band, so its virtual-time
            // cost in the model is zero.
            self.sim.profile_add(Stage::ModeControl, 1, 0);
            if !transitions.is_empty() {
                applied += transitions.len() as u64;
                self.apply_transitions(&transitions, controller);
            }
            if self.is_complete() {
                break;
            }
            if self.sim.now() < t {
                // The event queue drained before the sampling target: the
                // run is over (complete or abandoned) and `run_until`
                // cannot advance the clock further. An injected mode
                // change could not change that — nothing is in flight.
                break;
            }
        }
        applied
    }

    /// Push the controller's decisions into the data plane. The desired
    /// state is composed from the controller's *current* flags (not the
    /// individual deltas), so one message carries the whole mode.
    fn apply_transitions(&mut self, transitions: &[ModeTransition], controller: &ModeController) {
        let mut features = Features::SEQUENCE
            | Features::RETRANSMIT
            | Features::TIMELINESS
            | Features::AGE
            | Features::ACK_NAK;
        if controller.is_degraded() {
            features |= Features::DUPLICATED;
        }
        if controller.is_shedding() {
            features |= Features::BACKPRESSURE;
        }
        let window = if controller.is_shedding() {
            controller.config().shed_window
        } else {
            0
        };
        let rehome = transitions.iter().find_map(|t| match t {
            ModeTransition::ReHome { source, port } => Some((*source, *port)),
            _ => None,
        });
        let (source, port) = rehome.unwrap_or((Ipv4Address::UNSPECIFIED, 0));
        self.inject_mode_change(
            self.dtn1,
            PORT_WAN,
            ModeChangeRepr {
                config_id: 1,
                features,
                retransmit_source: source,
                retransmit_port: port,
                window,
            },
        );
        for tr in transitions {
            match tr {
                ModeTransition::ReHome { source, port } => {
                    if let Some(sb) = self.standby {
                        self.inject_mode_change(
                            sb,
                            mmt_core::standby::PORT_DOWN,
                            ModeChangeRepr {
                                config_id: 1,
                                features,
                                retransmit_source: *source,
                                retransmit_port: *port,
                                window,
                            },
                        );
                        self.sim.record_mode_change(sb, u64::from(features.bits()));
                    } else {
                        self.sim
                            .record_mode_change(self.dtn1, u64::from(features.bits()));
                    }
                }
                _ => self
                    .sim
                    .record_mode_change(self.dtn1, u64::from(features.bits())),
            }
        }
    }

    /// Deliver a mode-change control message to `node` at the current
    /// virtual time — the out-of-band SDN control channel.
    fn inject_mode_change(&mut self, node: NodeId, port: usize, mc: ModeChangeRepr) {
        let ctrl = ControlRepr::ModeChange(mc).emit_packet(self.config.experiment);
        // mmt-lint: allow(P1, "parsing bytes emitted one line above; emit/parse are inverses")
        let repr = MmtRepr::parse(&ctrl).expect("just built");
        let mut pkt = Packet::new(build_eth_mmt_frame(
            EthernetAddress([0x02, 0, 0, 0, 0, 0xCC]),
            EthernetAddress::BROADCAST,
            &repr,
            &ctrl[repr.header_len()..],
        ));
        pkt.meta.control = true;
        self.sim.inject(self.sim.now(), node, port, pkt);
    }

    /// Record every packet event (unbounded memory; see
    /// [`Pilot::enable_trace_bounded`] for long runs).
    pub fn enable_trace(&mut self) {
        self.sim.enable_trace();
    }

    /// Record packet events into a ring of the most recent `capacity`.
    pub fn enable_trace_bounded(&mut self, capacity: usize) {
        self.sim.enable_trace_bounded(capacity);
    }

    /// The run's trace as exporter-ready records (empty unless tracing
    /// was enabled before the run).
    pub fn trace_records(&self) -> Vec<mmt_telemetry::TraceRecord> {
        self.sim.trace_records()
    }

    /// Enable the deterministic time-series sampler: one row batch per
    /// `interval` of virtual time (see [`Simulator::enable_series`]).
    pub fn enable_series(&mut self, interval: Time) {
        self.sim.enable_series(interval);
    }

    /// Drain the sampled series rows accumulated so far.
    pub fn take_series(&mut self) -> Vec<mmt_telemetry::SeriesRow> {
        self.sim.take_series()
    }

    /// Enable the hot-path span profiler on the underlying simulator.
    pub fn enable_profiler(&mut self) {
        self.sim.enable_profiler();
    }

    /// The accumulated span profile with the protocol-layer stages the
    /// simulator cannot see folded in (`None` unless profiling is
    /// enabled): encode = sender emissions (instantaneous in virtual
    /// time), decode = receiver deliveries with the summed end-to-end
    /// latency as virtual time, retransmit-serve = buffer re-sends with
    /// the holdoff window as per-serve virtual time.
    pub fn profile(&self) -> Option<SpanProfiler> {
        let mut p = self.sim.profiler()?.clone();
        let report = self.report();
        p.add(Stage::Encode, report.sender.sent, 0);
        p.add(
            Stage::Decode,
            report.receiver.delivered,
            report.latency.sum_ns(),
        );
        p.add(
            Stage::RetransmitServe,
            report.buffer.retransmitted,
            report
                .buffer
                .retransmitted
                .saturating_mul(self.config.retx_holdoff.as_nanos()),
        );
        Some(p)
    }

    /// Render a flight-recorder dump of the retained trace ring: a
    /// `{"flight":"v1",...}` header carrying the trigger `reason`, then
    /// the ring as JSONL (see [`mmt_telemetry::flight::render`]).
    /// Deterministic for a fixed seed + config, so identical failures
    /// produce byte-identical dumps.
    pub fn flight_dump(&self, reason: &str) -> String {
        mmt_telemetry::flight::render(
            reason,
            self.config.seed,
            self.sim.now().as_nanos(),
            self.sim.events_processed(),
            &self.trace_records(),
        )
    }

    /// Snapshot every layer's counters into one registry: simulator/link
    /// state, both programmable elements, the DTN 1 buffer, and both
    /// endpoints. Deterministic: same seed + config ⇒ identical registry.
    pub fn metrics(&self) -> mmt_telemetry::MetricRegistry {
        let mut reg = mmt_telemetry::MetricRegistry::new();
        self.sim.export_metrics(&mut reg);
        self.node::<MmtSender>(self.sensor)
            .export_metrics(self.sim.node_name(self.sensor), &mut reg);
        self.node::<RetransmitBuffer>(self.dtn1)
            .export_metrics(self.sim.node_name(self.dtn1), &mut reg);
        if let Some(sb) = self.standby {
            self.node::<StandbyBuffer>(sb)
                .export_metrics(self.sim.node_name(sb), &mut reg);
        }
        self.node::<DataplaneElement>(self.tofino)
            .export_metrics(self.sim.node_name(self.tofino), &mut reg);
        self.node::<DataplaneElement>(self.dtn2_switch)
            .export_metrics(self.sim.node_name(self.dtn2_switch), &mut reg);
        self.node::<MmtReceiver>(self.receiver)
            .export_metrics(self.sim.node_name(self.receiver), &mut reg);
        reg
    }

    /// Whether the receiver saw every message.
    pub fn is_complete(&self) -> bool {
        self.node::<MmtReceiver>(self.receiver).is_complete()
    }

    /// Collect the run's report.
    pub fn report(&self) -> PilotReport {
        let sender: SenderStats = self.node::<MmtSender>(self.sensor).stats;
        let buffer: RetransmitBufferStats = self.node::<RetransmitBuffer>(self.dtn1).stats;
        let tofino: ElementStats = *self.node::<DataplaneElement>(self.tofino).stats();
        let dtn2: ElementStats = *self.node::<DataplaneElement>(self.dtn2_switch).stats();
        let standby: Option<StandbyBufferStats> =
            self.standby.map(|sb| self.node::<StandbyBuffer>(sb).stats);
        let rcv = self.node::<MmtReceiver>(self.receiver);
        let receiver: ReceiverStats = rcv.stats;
        let receiver_retransmit_source = rcv.retransmit_source();
        let mut latency = LatencyHistogram::new();
        for m in rcv.log() {
            latency.record(m.arrived_at.saturating_sub(m.created_at));
        }
        let wan = *self.sim.link_stats(self.wan_link);
        let wan_rev = *self.sim.link_stats(self.wan_link_rev);
        let dtn1_egress = *self.sim.link_stats(self.dtn1_egress);
        let elapsed = self.sim.now();
        PilotReport {
            sender,
            buffer,
            standby,
            tofino,
            dtn2_switch: dtn2,
            receiver,
            receiver_retransmit_source,
            completed_at: receiver.completed_at,
            latency,
            wan_corruption_losses: wan.corruption_losses,
            wan_queue_drops: wan.queue_drops,
            wan_tx_bytes: wan.tx_bytes,
            wan_flap_drops: wan.flap_drops,
            wan_control_drops: wan.control_drops,
            wan_dup_injected: wan.dup_injected,
            wan_reordered: wan.reordered,
            wan_rev_control_drops: wan_rev.control_drops,
            wan_rev_flap_drops: wan_rev.flap_drops,
            dtn1_egress_queue_drops: dtn1_egress.queue_drops,
            goodput_bps: {
                let bytes = receiver.delivered.saturating_sub(receiver.duplicates)
                    * self.config.message_len as u64;
                if elapsed == Time::ZERO {
                    0.0
                } else {
                    bytes as f64 * 8.0 / elapsed.as_secs_f64()
                }
            },
            elapsed,
        }
    }
}

/// Everything a pilot run measured.
#[derive(Debug, Clone)]
pub struct PilotReport {
    /// Sensor-side counters.
    pub sender: SenderStats,
    /// DTN 1 counters.
    pub buffer: RetransmitBufferStats,
    /// Standby buffer counters, when the topology has one.
    pub standby: Option<StandbyBufferStats>,
    /// Tofino2 element counters.
    pub tofino: ElementStats,
    /// DTN 2 NIC counters.
    pub dtn2_switch: ElementStats,
    /// Receiver counters.
    pub receiver: ReceiverStats,
    /// Where the receiver last learned to NAK — after a successful
    /// re-homing this names the standby.
    pub receiver_retransmit_source: Option<(Ipv4Address, u16)>,
    /// When the stream completed at the receiver.
    pub completed_at: Option<Time>,
    /// Per-message creation→delivery latency.
    pub latency: LatencyHistogram,
    /// Packets the WAN link corrupted.
    pub wan_corruption_losses: u64,
    /// Packets dropped by the WAN egress queue.
    pub wan_queue_drops: u64,
    /// Bytes the WAN link carried.
    pub wan_tx_bytes: u64,
    /// Packets lost to injected WAN outages (forward direction).
    pub wan_flap_drops: u64,
    /// Control packets dropped by selective control loss (forward
    /// direction; NAKs travel the reverse link).
    pub wan_control_drops: u64,
    /// Duplicate copies the fault layer injected on the forward WAN.
    pub wan_dup_injected: u64,
    /// Packets the fault layer delayed for reordering on the forward WAN.
    pub wan_reordered: u64,
    /// NAKs (and other control) dropped on the reverse WAN path.
    pub wan_rev_control_drops: u64,
    /// Packets lost to injected outages on the reverse WAN path.
    pub wan_rev_flap_drops: u64,
    /// Packets dropped at DTN 1's WAN-facing egress queue.
    pub dtn1_egress_queue_drops: u64,
    /// Receiver goodput over the whole run.
    pub goodput_bps: f64,
    /// Virtual time the run covered.
    pub elapsed: Time,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_pilot_delivers_everything_without_recovery() {
        let mut cfg = PilotConfig::default_run();
        cfg.wan_loss = LossModel::None;
        cfg.message_count = 500;
        let mut pilot = Pilot::build(cfg);
        pilot.run(Time::from_secs(10));
        assert!(pilot.is_complete());
        let r = pilot.report();
        assert_eq!(r.receiver.delivered, 500);
        assert_eq!(r.receiver.naks_sent, 0);
        assert_eq!(r.receiver.lost, 0);
        assert_eq!(r.sender.sent, 500);
        assert_eq!(r.buffer.forwarded, 500);
        assert_eq!(r.tofino.forwarded, 500);
        assert_eq!(r.wan_corruption_losses, 0);
        // End-to-end latency ≈ WAN one-way (5 ms) + serialization/hops.
        let mut lat = r.latency.clone();
        let p50 = lat.median().unwrap();
        assert!(p50 >= Time::from_millis(5), "{p50}");
        assert!(p50 < Time::from_millis(6), "{p50}");
    }

    #[test]
    fn lossy_pilot_recovers_from_dtn1() {
        let mut cfg = PilotConfig::default_run();
        cfg.wan_loss = LossModel::Random(5e-3);
        cfg.message_count = 2_000;
        let mut pilot = Pilot::build(cfg);
        pilot.run(Time::from_secs(30));
        let r = pilot.report();
        assert!(r.wan_corruption_losses > 0, "loss model must bite");
        assert!(pilot.is_complete(), "NAK recovery must fill every gap");
        assert!(r.receiver.naks_sent > 0);
        assert!(r.receiver.recovered > 0);
        assert_eq!(r.receiver.lost, 0);
        assert!(r.buffer.retransmitted >= r.receiver.recovered);
        // Age was tracked on the WAN.
        assert!(r.latency.count() > 0);
    }

    #[test]
    fn faulted_pilot_recovers_and_dedups() {
        let mut cfg = PilotConfig::default_run();
        cfg.message_count = 500;
        cfg.wan_fault = FaultSpec::none()
            .with_reorder(0.05, Time::from_micros(500))
            .with_duplication(0.05, Time::from_micros(50))
            .with_jitter(Time::from_micros(100));
        cfg.retx_holdoff = Time::from_millis(2);
        let mut pilot = Pilot::build(cfg);
        pilot.run(Time::from_secs(30));
        assert!(pilot.is_complete(), "faults must not break completeness");
        let r = pilot.report();
        assert_eq!(r.receiver.lost, 0);
        assert!(
            r.receiver.duplicates > 0,
            "injected duplicates must reach (and be suppressed by) the receiver"
        );
        assert_eq!(r.receiver.delivered, 500);
    }

    #[test]
    fn standby_passthrough_preserves_delivery_and_recovery() {
        let mut cfg = PilotConfig::default_run();
        cfg.wan_loss = LossModel::Random(5e-3);
        cfg.message_count = 1_000;
        cfg.standby = true;
        let mut pilot = Pilot::build(cfg);
        pilot.run(Time::from_secs(30));
        assert!(pilot.is_complete(), "standby tap must be transparent");
        let r = pilot.report();
        assert_eq!(r.receiver.lost, 0);
        let sb = r.standby.unwrap();
        assert_eq!(sb.tapped, 1_000, "standby taps every first copy");
        // Passive standby relays NAKs upstream and serves nothing.
        assert!(sb.naks_seen > 0);
        assert_eq!(sb.naks_forwarded, sb.naks_seen);
        assert_eq!(sb.served, 0);
        assert!(r.buffer.retransmitted > 0, "primary still serves NAKs");
        // The receiver still names the primary.
        assert_eq!(
            r.receiver_retransmit_source,
            Some((addrs::DTN1, DTN1_NAK_PORT))
        );
    }

    #[test]
    fn flow_table_row_is_behavior_neutral_and_mirrors_the_controller() {
        use mmt_core::controller::ControllerConfig;
        let mut cfg = PilotConfig::default_run();
        cfg.message_count = 300;
        cfg.wan_loss = LossModel::Random(0.05); // push the loss EWMA around
        let run = |cfg: PilotConfig| {
            let mut pilot = Pilot::build(cfg);
            let mut controller = ModeController::new(ControllerConfig::default());
            let applied =
                pilot.run_adaptive(Time::from_secs(5), Time::from_millis(5), &mut controller);
            (pilot, controller, applied)
        };
        let (with, c_with, applied_with) = run(cfg.clone());
        let (without, c_without, applied_without) = run({
            let mut c = cfg.clone();
            c.flow_table = false;
            c
        });
        // Behaviour-neutral: same decisions, same simulation, same
        // telemetry, byte for byte.
        assert_eq!(applied_with, applied_without);
        assert_eq!(c_with.word(), c_without.word());
        assert_eq!(*c_with.stats(), *c_without.stats());
        assert_eq!(with.sim.events_processed(), without.sim.events_processed());
        assert_eq!(
            mmt_telemetry::prometheus::render(&with.metrics()),
            mmt_telemetry::prometheus::render(&without.metrics())
        );
        // The table row mirrors the controller and the stream config.
        let table = with.flow_table.as_ref().expect("flow table on by default");
        let id = with.stream_flow.expect("stream row allocated");
        assert_eq!(table.mode_word(id), Some(c_with.word()));
        assert_eq!(table.deadline_ns(id), Some(cfg.deadline_budget.as_nanos()));
        assert_eq!(table.retx_slot(id), Some(0), "no re-home: still primary");
        assert!(without.flow_table.is_none());
    }

    #[test]
    fn deadline_misses_notify_the_source() {
        let mut cfg = PilotConfig::default_run();
        cfg.wan_loss = LossModel::None;
        cfg.message_count = 100;
        // Impossible budget: 1 ms against a 5 ms one-way WAN.
        cfg.deadline_budget = Time::from_millis(1);
        cfg.max_age = Time::from_millis(1);
        let mut pilot = Pilot::build(cfg);
        pilot.run(Time::from_secs(5));
        let r = pilot.report();
        assert!(pilot.is_complete(), "late data still delivered");
        assert_eq!(
            r.sender.deadline_notifications, 100,
            "every message misses the 1 ms budget and the sensor hears it"
        );
        assert_eq!(r.receiver.aged_deliveries, 100, "all marked aged");
    }

    #[test]
    fn generous_deadline_produces_no_notifications() {
        let mut cfg = PilotConfig::default_run();
        cfg.wan_loss = LossModel::None;
        cfg.message_count = 100;
        cfg.deadline_budget = Time::from_secs(1);
        cfg.max_age = Time::from_secs(1);
        let mut pilot = Pilot::build(cfg);
        pilot.run(Time::from_secs(5));
        let r = pilot.report();
        assert_eq!(r.sender.deadline_notifications, 0);
        assert_eq!(r.receiver.aged_deliveries, 0);
    }
}
