//! The Fig. 4 pilot topology.

use mmt_core::buffer::{CreditConfig, RetransmitBufferStats};
use mmt_core::buffer::{RetransmitBuffer, PORT_DAQ, PORT_WAN};
use mmt_core::receiver::{MmtReceiver, ReceiverConfig, ReceiverStats};
use mmt_core::sender::{MmtSender, SenderConfig, SenderStats};
use mmt_dataplane::programs::{self, BorderConfig};
use mmt_dataplane::{DataplaneElement, ElementStats};
use mmt_netsim::stats::LatencyHistogram;
use mmt_netsim::{Bandwidth, FaultSpec, LinkId, LinkSpec, LossModel, NodeId, Simulator, Time};
use mmt_wire::mmt::ExperimentId;

/// Configuration for a pilot run.
#[derive(Debug, Clone)]
pub struct PilotConfig {
    /// Experiment identity (defaults to DUNE, experiment 2).
    pub experiment: ExperimentId,
    /// Message payload size, bytes.
    pub message_len: usize,
    /// Number of messages to stream.
    pub message_count: usize,
    /// Gap between message creations at the sensor.
    pub message_gap: Time,
    /// DAQ-network link rate (sensor → DTN 1).
    pub daq_bandwidth: Bandwidth,
    /// WAN link rate.
    pub wan_bandwidth: Bandwidth,
    /// WAN round-trip time (propagation split evenly per direction).
    pub wan_rtt: Time,
    /// WAN loss model (corruption; §4).
    pub wan_loss: LossModel,
    /// Fault injection on the WAN crossing (both directions, so the NAK
    /// reverse path suffers the same reordering/outages as data).
    pub wan_fault: FaultSpec,
    /// DTN 1 per-sequence retransmission holdoff (`Time::ZERO` = serve
    /// every NAK; see `RetransmitBuffer::with_retx_holdoff`).
    pub retx_holdoff: Time,
    /// Delivery budget from creation (the mode-2 deadline).
    pub deadline_budget: Time,
    /// Age threshold for the aged flag.
    pub max_age: Time,
    /// Enable backpressure credits from DTN 1 to the sensor.
    pub credit: Option<CreditConfig>,
    /// Whether the sensor honours credits.
    pub respect_backpressure: bool,
    /// Receiver loss-recovery tuning.
    pub receiver_nak_interval: Time,
    /// Give-up horizon for unrecoverable gaps.
    pub receiver_give_up: Time,
    /// Simulation seed.
    pub seed: u64,
}

impl PilotConfig {
    /// Defaults matching the pilot: DUNE data, 8 KiB messages, 100 GbE
    /// everywhere, 10 ms WAN RTT, mild corruption loss.
    pub fn default_run() -> PilotConfig {
        PilotConfig {
            experiment: ExperimentId::new(2, 0),
            message_len: 8192,
            message_count: 2_000,
            message_gap: Time::from_micros(1),
            daq_bandwidth: Bandwidth::gbps(100),
            wan_bandwidth: Bandwidth::gbps(100),
            wan_rtt: Time::from_millis(10),
            wan_loss: LossModel::Random(1e-3),
            wan_fault: FaultSpec::none(),
            retx_holdoff: Time::ZERO,
            deadline_budget: Time::from_millis(50),
            max_age: Time::from_millis(40),
            credit: None,
            respect_backpressure: false,
            receiver_nak_interval: Time::from_millis(12),
            receiver_give_up: Time::from_secs(5),
            seed: 7,
        }
    }
}

/// Addresses used by the pilot nodes.
pub mod addrs {
    use mmt_wire::Ipv4Address;
    /// The sensor / detector readout host.
    pub const SENSOR: Ipv4Address = Ipv4Address::new(10, 0, 0, 1);
    /// DTN 1 (buffer + border).
    pub const DTN1: Ipv4Address = Ipv4Address::new(10, 0, 0, 5);
    /// DTN 2 (receiving host).
    pub const DTN2: Ipv4Address = Ipv4Address::new(10, 0, 0, 8);
}

/// A built pilot: the simulator plus the node handles experiments poke.
pub struct Pilot {
    /// The simulator (run it, inspect it).
    pub sim: Simulator,
    /// The detector / sensor node.
    pub sensor: NodeId,
    /// DTN 1: border + retransmission buffer.
    pub dtn1: NodeId,
    /// The Tofino2-like WAN transit element.
    pub tofino: NodeId,
    /// The DTN 2-side programmable NIC (deadline check).
    pub dtn2_switch: NodeId,
    /// The receiving host.
    pub receiver: NodeId,
    /// The WAN link (tofino → dtn2 switch) for stats.
    pub wan_link: LinkId,
    /// The reverse WAN link (dtn2 switch → tofino) — the NAK path, where
    /// selective control loss bites.
    pub wan_link_rev: LinkId,
    /// DTN 1's WAN-facing egress link (dtn1 → tofino) — where drops land
    /// when the sensor overcommits the WAN (experiment E7).
    pub dtn1_egress: LinkId,
    config: PilotConfig,
}

impl Pilot {
    /// Build the Fig. 4 chain.
    pub fn build(config: PilotConfig) -> Pilot {
        let mut sim = Simulator::new(config.seed);

        // --- nodes ---
        let mut sender_cfg = SenderConfig::regular(
            config.experiment,
            config.message_len,
            config.message_gap,
            config.message_count,
        );
        sender_cfg.respect_backpressure = config.respect_backpressure;
        let sensor = sim.add_node("sensor", Box::new(MmtSender::new(sender_cfg)));

        let border = BorderConfig {
            daq_port: PORT_DAQ,
            wan_port: PORT_WAN,
            retransmit_source: (addrs::DTN1, 47_000),
            deadline_budget_ns: config.deadline_budget.as_nanos(),
            notify_addr: addrs::SENSOR,
            priority_class: None,
        };
        let dtn1 = sim.add_node(
            "dtn1",
            Box::new(
                RetransmitBuffer::new(config.experiment, border, 256 * 1024 * 1024, config.credit)
                    .with_retx_holdoff(config.retx_holdoff),
            ),
        );

        let tofino = sim.add_node(
            "tofino2",
            Box::new(DataplaneElement::new(programs::wan_transit(
                0,
                1,
                config.max_age.as_nanos(),
            ))),
        );

        let dtn2_switch = sim.add_node(
            "dtn2-nic",
            Box::new(DataplaneElement::new(programs::destination_check(0, 1, 0))),
        );

        let mut rcv_cfg = ReceiverConfig::wan_defaults(config.experiment, addrs::DTN2);
        rcv_cfg.nak_interval = config.receiver_nak_interval;
        rcv_cfg.give_up_after = config.receiver_give_up;
        rcv_cfg.expect_messages = Some(config.message_count as u64);
        let receiver = sim.add_node("dtn2-host", Box::new(MmtReceiver::new(rcv_cfg)));

        // --- links ---
        let short = Time::from_micros(1);
        // DAQ network: capacity-planned, lossless.
        sim.connect(
            sensor,
            0,
            dtn1,
            PORT_DAQ,
            LinkSpec::new(config.daq_bandwidth, Time::from_micros(5)),
        );
        // DTN1 ↔ Tofino2 (same facility). This link runs at WAN rate, so
        // it is the first overcommit bottleneck.
        let (dtn1_egress, _) = sim.connect(
            dtn1,
            PORT_WAN,
            tofino,
            0,
            LinkSpec::new(config.wan_bandwidth, short),
        );
        // The WAN crossing: loss lives here.
        let (wan_link, wan_link_rev) = sim.connect(
            tofino,
            1,
            dtn2_switch,
            0,
            LinkSpec::new(config.wan_bandwidth, config.wan_rtt / 2)
                .with_loss(config.wan_loss)
                .with_fault(config.wan_fault),
        );
        // DTN2 NIC ↔ host.
        sim.connect(
            dtn2_switch,
            1,
            receiver,
            0,
            LinkSpec::new(config.wan_bandwidth, short),
        );

        Pilot {
            sim,
            sensor,
            dtn1,
            tofino,
            dtn2_switch,
            receiver,
            wan_link,
            wan_link_rev,
            dtn1_egress,
            config,
        }
    }

    /// Run until the stream completes (or `horizon` elapses).
    pub fn run(&mut self, horizon: Time) {
        self.sim.run_until(horizon);
    }

    /// Record every packet event (unbounded memory; see
    /// [`Pilot::enable_trace_bounded`] for long runs).
    pub fn enable_trace(&mut self) {
        self.sim.enable_trace();
    }

    /// Record packet events into a ring of the most recent `capacity`.
    pub fn enable_trace_bounded(&mut self, capacity: usize) {
        self.sim.enable_trace_bounded(capacity);
    }

    /// The run's trace as exporter-ready records (empty unless tracing
    /// was enabled before the run).
    pub fn trace_records(&self) -> Vec<mmt_telemetry::TraceRecord> {
        self.sim.trace_records()
    }

    /// Snapshot every layer's counters into one registry: simulator/link
    /// state, both programmable elements, the DTN 1 buffer, and both
    /// endpoints. Deterministic: same seed + config ⇒ identical registry.
    pub fn metrics(&self) -> mmt_telemetry::MetricRegistry {
        let mut reg = mmt_telemetry::MetricRegistry::new();
        self.sim.export_metrics(&mut reg);
        self.sim
            .node_as::<MmtSender>(self.sensor)
            .expect("sensor type") // mmt-lint: allow(P1, "node registered with this concrete type in build()")
            .export_metrics(self.sim.node_name(self.sensor), &mut reg);
        self.sim
            .node_as::<RetransmitBuffer>(self.dtn1)
            .expect("dtn1 type") // mmt-lint: allow(P1, "node registered with this concrete type in build()")
            .export_metrics(self.sim.node_name(self.dtn1), &mut reg);
        self.sim
            .node_as::<DataplaneElement>(self.tofino)
            .expect("tofino type") // mmt-lint: allow(P1, "node registered with this concrete type in build()")
            .export_metrics(self.sim.node_name(self.tofino), &mut reg);
        self.sim
            .node_as::<DataplaneElement>(self.dtn2_switch)
            .expect("dtn2 switch type") // mmt-lint: allow(P1, "node registered with this concrete type in build()")
            .export_metrics(self.sim.node_name(self.dtn2_switch), &mut reg);
        self.sim
            .node_as::<MmtReceiver>(self.receiver)
            .expect("receiver type") // mmt-lint: allow(P1, "node registered with this concrete type in build()")
            .export_metrics(self.sim.node_name(self.receiver), &mut reg);
        reg
    }

    /// Whether the receiver saw every message.
    pub fn is_complete(&self) -> bool {
        self.sim
            .node_as::<MmtReceiver>(self.receiver)
            .expect("receiver type") // mmt-lint: allow(P1, "node registered with this concrete type in build()")
            .is_complete()
    }

    /// Collect the run's report.
    pub fn report(&self) -> PilotReport {
        let sender: SenderStats = self.sim.node_as::<MmtSender>(self.sensor).unwrap().stats; // mmt-lint: allow(P1, "node registered with this concrete type in build()")
        let buffer: RetransmitBufferStats = self
            .sim
            .node_as::<RetransmitBuffer>(self.dtn1)
            .unwrap() // mmt-lint: allow(P1, "node registered with this concrete type in build()")
            .stats;
        let tofino: ElementStats = *self
            .sim
            .node_as::<DataplaneElement>(self.tofino)
            .unwrap() // mmt-lint: allow(P1, "node registered with this concrete type in build()")
            .stats();
        let dtn2: ElementStats = *self
            .sim
            .node_as::<DataplaneElement>(self.dtn2_switch)
            .unwrap() // mmt-lint: allow(P1, "node registered with this concrete type in build()")
            .stats();
        let rcv = self.sim.node_as::<MmtReceiver>(self.receiver).unwrap(); // mmt-lint: allow(P1, "node registered with this concrete type in build()")
        let receiver: ReceiverStats = rcv.stats;
        let mut latency = LatencyHistogram::new();
        for m in rcv.log() {
            latency.record(m.arrived_at.saturating_sub(m.created_at));
        }
        let wan = *self.sim.link_stats(self.wan_link);
        let wan_rev = *self.sim.link_stats(self.wan_link_rev);
        let dtn1_egress = *self.sim.link_stats(self.dtn1_egress);
        let elapsed = self.sim.now();
        PilotReport {
            sender,
            buffer,
            tofino,
            dtn2_switch: dtn2,
            receiver,
            completed_at: receiver.completed_at,
            latency,
            wan_corruption_losses: wan.corruption_losses,
            wan_queue_drops: wan.queue_drops,
            wan_tx_bytes: wan.tx_bytes,
            wan_flap_drops: wan.flap_drops,
            wan_control_drops: wan.control_drops,
            wan_dup_injected: wan.dup_injected,
            wan_reordered: wan.reordered,
            wan_rev_control_drops: wan_rev.control_drops,
            wan_rev_flap_drops: wan_rev.flap_drops,
            dtn1_egress_queue_drops: dtn1_egress.queue_drops,
            goodput_bps: {
                let bytes = receiver.delivered.saturating_sub(receiver.duplicates)
                    * self.config.message_len as u64;
                if elapsed == Time::ZERO {
                    0.0
                } else {
                    bytes as f64 * 8.0 / elapsed.as_secs_f64()
                }
            },
            elapsed,
        }
    }
}

/// Everything a pilot run measured.
#[derive(Debug, Clone)]
pub struct PilotReport {
    /// Sensor-side counters.
    pub sender: SenderStats,
    /// DTN 1 counters.
    pub buffer: RetransmitBufferStats,
    /// Tofino2 element counters.
    pub tofino: ElementStats,
    /// DTN 2 NIC counters.
    pub dtn2_switch: ElementStats,
    /// Receiver counters.
    pub receiver: ReceiverStats,
    /// When the stream completed at the receiver.
    pub completed_at: Option<Time>,
    /// Per-message creation→delivery latency.
    pub latency: LatencyHistogram,
    /// Packets the WAN link corrupted.
    pub wan_corruption_losses: u64,
    /// Packets dropped by the WAN egress queue.
    pub wan_queue_drops: u64,
    /// Bytes the WAN link carried.
    pub wan_tx_bytes: u64,
    /// Packets lost to injected WAN outages (forward direction).
    pub wan_flap_drops: u64,
    /// Control packets dropped by selective control loss (forward
    /// direction; NAKs travel the reverse link).
    pub wan_control_drops: u64,
    /// Duplicate copies the fault layer injected on the forward WAN.
    pub wan_dup_injected: u64,
    /// Packets the fault layer delayed for reordering on the forward WAN.
    pub wan_reordered: u64,
    /// NAKs (and other control) dropped on the reverse WAN path.
    pub wan_rev_control_drops: u64,
    /// Packets lost to injected outages on the reverse WAN path.
    pub wan_rev_flap_drops: u64,
    /// Packets dropped at DTN 1's WAN-facing egress queue.
    pub dtn1_egress_queue_drops: u64,
    /// Receiver goodput over the whole run.
    pub goodput_bps: f64,
    /// Virtual time the run covered.
    pub elapsed: Time,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_pilot_delivers_everything_without_recovery() {
        let mut cfg = PilotConfig::default_run();
        cfg.wan_loss = LossModel::None;
        cfg.message_count = 500;
        let mut pilot = Pilot::build(cfg);
        pilot.run(Time::from_secs(10));
        assert!(pilot.is_complete());
        let r = pilot.report();
        assert_eq!(r.receiver.delivered, 500);
        assert_eq!(r.receiver.naks_sent, 0);
        assert_eq!(r.receiver.lost, 0);
        assert_eq!(r.sender.sent, 500);
        assert_eq!(r.buffer.forwarded, 500);
        assert_eq!(r.tofino.forwarded, 500);
        assert_eq!(r.wan_corruption_losses, 0);
        // End-to-end latency ≈ WAN one-way (5 ms) + serialization/hops.
        let mut lat = r.latency.clone();
        let p50 = lat.median().unwrap();
        assert!(p50 >= Time::from_millis(5), "{p50}");
        assert!(p50 < Time::from_millis(6), "{p50}");
    }

    #[test]
    fn lossy_pilot_recovers_from_dtn1() {
        let mut cfg = PilotConfig::default_run();
        cfg.wan_loss = LossModel::Random(5e-3);
        cfg.message_count = 2_000;
        let mut pilot = Pilot::build(cfg);
        pilot.run(Time::from_secs(30));
        let r = pilot.report();
        assert!(r.wan_corruption_losses > 0, "loss model must bite");
        assert!(pilot.is_complete(), "NAK recovery must fill every gap");
        assert!(r.receiver.naks_sent > 0);
        assert!(r.receiver.recovered > 0);
        assert_eq!(r.receiver.lost, 0);
        assert!(r.buffer.retransmitted >= r.receiver.recovered);
        // Age was tracked on the WAN.
        assert!(r.latency.count() > 0);
    }

    #[test]
    fn faulted_pilot_recovers_and_dedups() {
        let mut cfg = PilotConfig::default_run();
        cfg.message_count = 500;
        cfg.wan_fault = FaultSpec::none()
            .with_reorder(0.05, Time::from_micros(500))
            .with_duplication(0.05, Time::from_micros(50))
            .with_jitter(Time::from_micros(100));
        cfg.retx_holdoff = Time::from_millis(2);
        let mut pilot = Pilot::build(cfg);
        pilot.run(Time::from_secs(30));
        assert!(pilot.is_complete(), "faults must not break completeness");
        let r = pilot.report();
        assert_eq!(r.receiver.lost, 0);
        assert!(
            r.receiver.duplicates > 0,
            "injected duplicates must reach (and be suppressed by) the receiver"
        );
        assert_eq!(r.receiver.delivered, 500);
    }

    #[test]
    fn deadline_misses_notify_the_source() {
        let mut cfg = PilotConfig::default_run();
        cfg.wan_loss = LossModel::None;
        cfg.message_count = 100;
        // Impossible budget: 1 ms against a 5 ms one-way WAN.
        cfg.deadline_budget = Time::from_millis(1);
        cfg.max_age = Time::from_millis(1);
        let mut pilot = Pilot::build(cfg);
        pilot.run(Time::from_secs(5));
        let r = pilot.report();
        assert!(pilot.is_complete(), "late data still delivered");
        assert_eq!(
            r.sender.deadline_notifications, 100,
            "every message misses the 1 ms budget and the sensor hears it"
        );
        assert_eq!(r.receiver.aged_deliveries, 100, "all marked aged");
    }

    #[test]
    fn generous_deadline_produces_no_notifications() {
        let mut cfg = PilotConfig::default_run();
        cfg.wan_loss = LossModel::None;
        cfg.message_count = 100;
        cfg.deadline_budget = Time::from_secs(1);
        cfg.max_age = Time::from_secs(1);
        let mut pilot = Pilot::build(cfg);
        pilot.run(Time::from_secs(5));
        let r = pilot.report();
        assert_eq!(r.sender.deadline_notifications, 0);
        assert_eq!(r.receiver.aged_deliveries, 0);
    }
}
