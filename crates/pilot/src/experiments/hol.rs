//! **E2** — head-of-line blocking: per-message latency of timestamped DAQ
//! messages over a lossy WAN, TCP bytestream vs MMT datagrams.
//!
//! §4.1 point 1: "TCP's strict, ordered bytestream ... causes unnecessary
//! head-of-line blocking when part of the bytestream arrives later."
//! MMT transports discrete datagrams (Req 7), so a lost packet delays
//! only itself (until NAK recovery); under TCP every message behind the
//! gap waits.

use mmt_core::buffer::{RetransmitBuffer, PORT_DAQ, PORT_WAN};
use mmt_core::receiver::{MmtReceiver, ReceiverConfig};
use mmt_core::sender::{MmtSender, SenderConfig};
use mmt_dataplane::programs::BorderConfig;
use mmt_netsim::stats::LatencyHistogram;
use mmt_netsim::{Bandwidth, LinkSpec, LossModel, Simulator, Time};
use mmt_transport::{CcProfile, TcpReceiver, TcpSender};
use mmt_wire::mmt::ExperimentId;
use mmt_wire::Ipv4Address;

const MSG: usize = 8192;

/// Parameters for one E2 run.
#[derive(Debug, Clone, Copy)]
pub struct HolParams {
    /// WAN round-trip time.
    pub rtt: Time,
    /// Loss probability on the WAN.
    pub loss: f64,
    /// Number of messages streamed.
    pub messages: usize,
    /// Creation gap between messages.
    pub gap: Time,
    /// Seed.
    pub seed: u64,
}

impl HolParams {
    /// Headline parameters: 20 ms RTT, 0.5% loss, 20k messages at 10 µs.
    pub fn default_run() -> HolParams {
        HolParams {
            rtt: Time::from_millis(20),
            loss: 5e-3,
            messages: 20_000,
            gap: Time::from_micros(10),
            seed: 21,
        }
    }
}

/// Distribution summary for one variant.
#[derive(Debug, Clone)]
pub struct HolResult {
    /// "TCP (tuned DTN)" or "MMT".
    pub variant: &'static str,
    /// Creation→delivery latency distribution.
    pub latency: LatencyHistogram,
    /// Fraction of messages delayed beyond the no-loss baseline latency
    /// plus one RTT (i.e. visibly impacted by a loss — their own or an
    /// earlier message's).
    pub impacted_fraction: f64,
    /// Messages delivered.
    pub delivered: usize,
}

/// Run the TCP side.
pub fn run_tcp(p: &HolParams) -> HolResult {
    let mut sim = Simulator::new(p.seed);
    // DAQ streams are long-lived; model a stream past its ramp by warming
    // the window to cover the offered-rate BDP (slow start would otherwise
    // dominate a short measurement window and obscure the HOL effect).
    let profile = CcProfile::tuned_dtn().warmed(4096);
    let schedule: Vec<Time> = (0..p.messages as u64).map(|i| p.gap * i).collect();
    let snd = sim.add_node(
        "snd",
        Box::new(TcpSender::new(profile, 1, MSG, schedule.clone())),
    );
    let rcv = sim.add_node(
        "rcv",
        Box::new(TcpReceiver::new(1, MSG, profile.max_window_bytes)),
    );
    sim.connect(
        snd,
        0,
        rcv,
        0,
        LinkSpec::new(Bandwidth::gbps(100), p.rtt / 2).with_loss(LossModel::Random(p.loss)),
    );
    sim.run_until(Time::from_secs(300));
    let receiver = sim.node_as::<TcpReceiver>(rcv).unwrap(); // mmt-lint: allow(P1, "node registered with this concrete type in build()")
    let mut latency = LatencyHistogram::new();
    let baseline = p.rtt / 2;
    let mut impacted = 0usize;
    for d in receiver.delivered() {
        let created = schedule[d.index as usize];
        let l = d.delivered_at.saturating_sub(created);
        latency.record(l);
        if l > baseline + p.rtt {
            impacted += 1;
        }
    }
    let delivered = receiver.delivered().len();
    HolResult {
        variant: "TCP (tuned DTN)",
        latency,
        impacted_fraction: impacted as f64 / delivered.max(1) as f64,
        delivered,
    }
}

/// Run the MMT side (sensor → DTN 1 → lossy WAN → receiver, NAK recovery
/// from DTN 1).
pub fn run_mmt(p: &HolParams) -> HolResult {
    let exp = ExperimentId::new(2, 0);
    let mut sim = Simulator::new(p.seed);
    let snd = sim.add_node(
        "sensor",
        Box::new(MmtSender::new(SenderConfig::regular(
            exp, MSG, p.gap, p.messages,
        ))),
    );
    let dtn1 = sim.add_node(
        "dtn1",
        Box::new(RetransmitBuffer::new(
            exp,
            BorderConfig {
                daq_port: PORT_DAQ,
                wan_port: PORT_WAN,
                retransmit_source: (Ipv4Address::new(10, 0, 0, 5), 47_000),
                deadline_budget_ns: Time::from_secs(10).as_nanos(),
                notify_addr: Ipv4Address::new(10, 0, 0, 1),
                priority_class: None,
            },
            1 << 30,
            None,
        )),
    );
    let mut rcfg = ReceiverConfig::wan_defaults(exp, Ipv4Address::new(10, 0, 0, 8));
    rcfg.expect_messages = Some(p.messages as u64);
    rcfg.nak_interval = p.rtt * 2;
    rcfg.reorder_delay = Time::from_micros(500);
    rcfg.give_up_after = Time::from_secs(60);
    let rcv = sim.add_node("receiver", Box::new(MmtReceiver::new(rcfg)));
    sim.connect(
        snd,
        0,
        dtn1,
        PORT_DAQ,
        LinkSpec::new(Bandwidth::gbps(100), Time::from_micros(5)),
    );
    sim.connect(
        dtn1,
        PORT_WAN,
        rcv,
        0,
        LinkSpec::new(Bandwidth::gbps(100), p.rtt / 2).with_loss(LossModel::Random(p.loss)),
    );
    sim.run_until(Time::from_secs(300));
    let receiver = sim.node_as::<MmtReceiver>(rcv).unwrap(); // mmt-lint: allow(P1, "node registered with this concrete type in build()")
    let mut latency = LatencyHistogram::new();
    let baseline = p.rtt / 2;
    let mut impacted = 0usize;
    for m in receiver.log() {
        let l = m.arrived_at.saturating_sub(m.created_at);
        latency.record(l);
        if l > baseline + p.rtt {
            impacted += 1;
        }
    }
    let delivered = receiver.log().len();
    HolResult {
        variant: "MMT",
        latency,
        impacted_fraction: impacted as f64 / delivered.max(1) as f64,
        delivered,
    }
}

/// Run both variants.
pub fn run_all(p: &HolParams) -> Vec<HolResult> {
    vec![run_mmt(p), run_tcp(p)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> HolParams {
        HolParams {
            rtt: Time::from_millis(20),
            loss: 5e-3,
            messages: 4_000,
            gap: Time::from_micros(10),
            seed: 3,
        }
    }

    #[test]
    fn mmt_impacts_only_lost_messages_tcp_impacts_many() {
        let p = small();
        let mmt = run_mmt(&p);
        let tcp = run_tcp(&p);
        assert_eq!(mmt.delivered, p.messages);
        assert!(tcp.delivered >= p.messages * 99 / 100);
        // With 0.5% loss, MMT's impacted fraction stays near the loss
        // rate; TCP's balloons because every message behind a gap stalls.
        assert!(
            mmt.impacted_fraction < 0.03,
            "MMT impacted {:.3}",
            mmt.impacted_fraction
        );
        assert!(
            tcp.impacted_fraction > mmt.impacted_fraction * 3.0,
            "TCP {:.3} vs MMT {:.3}",
            tcp.impacted_fraction,
            mmt.impacted_fraction
        );
    }

    #[test]
    fn tail_latencies_diverge_much_more_than_medians() {
        let p = small();
        let mut mmt = run_mmt(&p);
        let mut tcp = run_tcp(&p);
        let mmt_p50 = mmt.latency.median().unwrap();
        let tcp_p50 = tcp.latency.median().unwrap();
        let mmt_p99 = mmt.latency.quantile(0.99).unwrap();
        let tcp_p99 = tcp.latency.quantile(0.99).unwrap();
        // MMT's median sits at the one-way path delay and never degrades.
        assert!(
            mmt_p50 >= Time::from_millis(10) && mmt_p50 < Time::from_millis(11),
            "mmt p50 {mmt_p50}"
        );
        assert!(tcp_p50 >= mmt_p50, "p50: tcp {tcp_p50} mmt {mmt_p50}");
        // TCP's p99 blows up relative to MMT's (HOL + window collapse).
        assert!(tcp_p99 > mmt_p99 * 2, "p99: tcp {tcp_p99} vs mmt {mmt_p99}");
    }

    #[test]
    fn without_loss_both_deliver_at_propagation_delay() {
        let mut p = small();
        p.loss = 0.0;
        p.messages = 500;
        let mmt = run_mmt(&p);
        let tcp = run_tcp(&p);
        assert_eq!(mmt.impacted_fraction, 0.0);
        // TCP's handshake delays the very first messages by one RTT, so a
        // handful trip the threshold even without loss.
        assert!(tcp.impacted_fraction < 0.02, "{}", tcp.impacted_fraction);
        assert_eq!(mmt.delivered, 500);
        assert_eq!(tcp.delivered, 500);
    }
}
