//! **E7** — the no-congestion-control hypothesis and backpressure.
//!
//! §5.3: "We hypothesize that this transport does not require
//! sophisticated congestion control, since data transfers across
//! scientific networks are usually capacity-planned and scheduled."
//! §5.1: when an element does see downstream pressure, "it can relay a
//! back-pressure signal to the sender ①".
//!
//! Three conditions over the pilot topology:
//! 1. capacity-planned (offered < capacity): nothing needed — zero drops;
//! 2. overcommitted without backpressure: queue drops and a NAK storm;
//! 3. overcommitted with credit backpressure: the sender is paced to the
//!    bottleneck and drops vanish.

use crate::topology::{Pilot, PilotConfig};
use mmt_core::buffer::CreditConfig;
use mmt_netsim::{Bandwidth, LossModel, Time};

/// One row of the E7 table.
#[derive(Debug, Clone, Copy)]
pub struct BackpressureResult {
    /// Condition name.
    pub condition: &'static str,
    /// Offered load at the sensor.
    pub offered: Bandwidth,
    /// Bottleneck (WAN) capacity.
    pub capacity: Bandwidth,
    /// Packets dropped at the overcommitted queue.
    pub queue_drops: u64,
    /// NAKs the receiver sent.
    pub naks: u64,
    /// Sequences abandoned as lost.
    pub lost: u64,
    /// Messages delivered (of those sent).
    pub delivered: u64,
    /// Messages the sensor actually emitted.
    pub sent: u64,
}

fn base_config(offered: Bandwidth, capacity: Bandwidth, messages: usize) -> PilotConfig {
    let mut cfg = PilotConfig::default_run();
    cfg.message_count = messages;
    cfg.message_len = 8192;
    cfg.message_gap = offered.tx_time(cfg.message_len);
    // The DAQ link is fat; the WAN is the bottleneck.
    cfg.daq_bandwidth = Bandwidth::gbps(100);
    cfg.wan_bandwidth = capacity;
    cfg.wan_rtt = Time::from_millis(10);
    cfg.wan_loss = LossModel::None;
    cfg.deadline_budget = Time::from_secs(10);
    cfg.max_age = Time::from_secs(10);
    cfg.receiver_give_up = Time::from_millis(500);
    cfg.receiver_nak_interval = Time::from_millis(25);
    cfg
}

fn run_one(
    condition: &'static str,
    offered: Bandwidth,
    capacity: Bandwidth,
    credit: Option<CreditConfig>,
    messages: usize,
) -> BackpressureResult {
    let mut cfg = base_config(offered, capacity, messages);
    cfg.credit = credit;
    cfg.respect_backpressure = credit.is_some();
    let mut pilot = Pilot::build(cfg);
    pilot.run(Time::from_secs(120));
    let r = pilot.report();
    BackpressureResult {
        condition,
        offered,
        capacity,
        queue_drops: r.wan_queue_drops + r.dtn1_egress_queue_drops,
        naks: r.receiver.naks_sent,
        lost: r.receiver.lost,
        delivered: r.receiver.delivered,
        sent: r.sender.sent,
    }
}

/// Run the three conditions.
pub fn run_all(messages: usize) -> Vec<BackpressureResult> {
    let capacity = Bandwidth::gbps(10);
    vec![
        run_one(
            "capacity-planned",
            Bandwidth::gbps(8),
            capacity,
            None,
            messages,
        ),
        run_one(
            "overcommitted, no backpressure",
            Bandwidth::gbps(20),
            capacity,
            None,
            messages,
        ),
        run_one(
            "overcommitted, credit backpressure",
            Bandwidth::gbps(20),
            capacity,
            Some(CreditConfig {
                // 10 Gb/s of 8 KiB messages ≈ 152 msg/ms; grant per ms.
                grant: 150,
                interval: Time::from_millis(1),
            }),
            messages,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_planning_needs_no_congestion_control() {
        let rows = run_all(5_000);
        let planned = &rows[0];
        assert_eq!(planned.queue_drops, 0, "{planned:?}");
        assert_eq!(planned.naks, 0);
        assert_eq!(planned.lost, 0);
        assert_eq!(planned.delivered, planned.sent);
    }

    #[test]
    fn overcommit_without_backpressure_drops_and_storms() {
        let rows = run_all(5_000);
        let over = &rows[1];
        assert!(over.queue_drops > 0, "{over:?}");
        assert!(over.naks > 0, "receiver must try to recover");
    }

    #[test]
    fn credits_tame_the_overcommit() {
        let rows = run_all(5_000);
        let over = &rows[1];
        let credited = &rows[2];
        assert!(
            credited.queue_drops * 10 < over.queue_drops.max(10),
            "credits should kill ≥90% of drops: {} vs {}",
            credited.queue_drops,
            over.queue_drops
        );
        assert!(credited.lost <= over.lost);
        assert_eq!(credited.delivered, credited.sent, "everything sent arrives");
    }
}
