//! **E13** — DTN crash failover: re-homed recovery vs. static modes.
//!
//! The shape-shifting story so far assumes the retransmission buffer named
//! in the packet header stays alive. E13 kills it: DTN 1 crashes mid-run,
//! taking its retransmission store (and NAK service) with it. Two arms run
//! the same seeded scenario:
//!
//! * **static** — no adaptation. The receiver keeps NAKing the dead
//!   primary until its per-sequence retry budget exhausts; the gap
//!   sequences are abandoned as lost.
//! * **adaptive** — the closed-loop controller (sampling segment health
//!   every `adapt_interval`) notices the dead primary, re-homes the
//!   retransmit source to the standby buffer tapping the stream, and the
//!   same NAKs get served from the standby with re-stamped headers —
//!   delivery completes exactly-once.
//!
//! Reported per arm: completion, losses, NAK-retry exhaustion, whether
//! the receiver ended up re-homed, recovery latency (completion time
//! minus crash time), and goodput.

use crate::topology::{addrs, Pilot, PilotConfig, STANDBY_NAK_PORT};
use mmt_core::controller::{ControllerConfig, ModeController};
use mmt_netsim::Time;

/// Parameters for one E13 run.
#[derive(Debug, Clone, Copy)]
pub struct FailoverParams {
    /// Messages streamed.
    pub messages: usize,
    /// WAN corruption loss probability (creates the gaps whose recovery
    /// the crash interrupts).
    pub loss: f64,
    /// Seed.
    pub seed: u64,
    /// When DTN 1 crashes. The default (6 ms) lands after the send burst
    /// but before the first NAKs arrive: the store dies holding exactly
    /// the packets recovery needs.
    pub crash_at: Time,
    /// When (if ever) DTN 1 restarts. `None` = stays down.
    pub restart_at: Option<Time>,
    /// Controller sampling interval (adaptive arm).
    pub adapt_interval: Time,
    /// Per-sequence NAK retry budget (both arms — what the static arm
    /// exhausts against the dead primary).
    pub max_nak_retries: u32,
}

impl FailoverParams {
    /// Headline parameters: 2 000 messages, 5·10⁻³ loss (≈10 gaps for
    /// the dead store to matter), crash at 6 ms, no restart, 5 ms
    /// control interval, 6 NAK retries.
    pub fn default_run() -> FailoverParams {
        FailoverParams {
            messages: 2_000,
            loss: 5e-3,
            seed: 7,
            crash_at: Time::from_millis(6),
            restart_at: None,
            adapt_interval: Time::from_millis(5),
            max_nak_retries: 6,
        }
    }
}

/// What one arm measured.
#[derive(Debug, Clone)]
pub struct FailoverResult {
    /// Arm label (`static` / `adaptive`).
    pub name: &'static str,
    /// Whether every message reached the receiver.
    pub complete: bool,
    /// Messages delivered (deduplicated).
    pub delivered: u64,
    /// Sequences abandoned as lost.
    pub lost: u64,
    /// Sequences recovered via NAK.
    pub recovered: u64,
    /// NAK cycles that exhausted their retry budget.
    pub nak_retries_exhausted: u64,
    /// Whether the receiver ended the run NAKing the standby.
    pub rehomed: bool,
    /// Sequences the standby served.
    pub standby_served: u64,
    /// Mode transitions the controller applied (adaptive arm).
    pub transitions: u64,
    /// Completion time minus crash time, when the stream completed after
    /// the crash.
    pub recovery_latency: Option<Time>,
    /// Receiver goodput over the run.
    pub goodput_bps: f64,
    /// When the stream completed (virtual time), if it did.
    pub completed_at: Option<Time>,
}

fn config(p: &FailoverParams) -> PilotConfig {
    let mut cfg = PilotConfig::default_run();
    cfg.message_count = p.messages;
    cfg.wan_loss = mmt_netsim::LossModel::Random(p.loss);
    cfg.seed = p.seed;
    cfg.retx_holdoff = Time::from_millis(2);
    cfg.receiver_max_nak_retries = Some(p.max_nak_retries);
    cfg.standby = true;
    cfg.crash_node = Some("dtn1".to_string());
    cfg.crash_at = p.crash_at;
    cfg.restart_at = p.restart_at;
    cfg
}

/// The controller configuration the adaptive arm runs with.
pub fn controller_config() -> ControllerConfig {
    ControllerConfig {
        standby: Some((addrs::STANDBY, STANDBY_NAK_PORT)),
        ..ControllerConfig::default()
    }
}

fn result(
    name: &'static str,
    p: &FailoverParams,
    pilot: &Pilot,
    transitions: u64,
) -> FailoverResult {
    let r = pilot.report();
    FailoverResult {
        name,
        complete: pilot.is_complete(),
        delivered: r.receiver.delivered,
        lost: r.receiver.lost,
        recovered: r.receiver.recovered,
        nak_retries_exhausted: r.receiver.nak_retries_exhausted,
        rehomed: r.receiver_retransmit_source == Some((addrs::STANDBY, STANDBY_NAK_PORT)),
        standby_served: r.standby.map(|s| s.served).unwrap_or(0),
        transitions,
        recovery_latency: r
            .completed_at
            .filter(|&t| t > p.crash_at)
            .map(|t| t.saturating_sub(p.crash_at)),
        goodput_bps: r.goodput_bps,
        completed_at: r.completed_at,
    }
}

/// Run the static arm: the crash happens, nothing adapts.
pub fn run_static(p: &FailoverParams) -> FailoverResult {
    let mut pilot = Pilot::build(config(p));
    pilot.run(Time::from_secs(30));
    result("static", p, &pilot, 0)
}

/// Run the adaptive arm: the controller drives re-homing.
pub fn run_adaptive(p: &FailoverParams) -> (FailoverResult, ModeController) {
    let mut pilot = Pilot::build(config(p));
    let mut controller = ModeController::new(controller_config());
    let transitions = pilot.run_adaptive(Time::from_secs(30), p.adapt_interval, &mut controller);
    (result("adaptive", p, &pilot, transitions), controller)
}

/// Run both arms.
pub fn run_all(p: &FailoverParams) -> Vec<FailoverResult> {
    let stat = run_static(p);
    let (adap, _) = run_adaptive(p);
    vec![stat, adap]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_arm_survives_the_crash_the_static_arm_does_not() {
        let p = FailoverParams {
            messages: 400,
            loss: 1e-2, // enough gaps that the dead store matters
            ..FailoverParams::default_run()
        };

        let stat = run_static(&p);
        // Conservation even in failure: every message accounted for.
        assert_eq!(stat.delivered + stat.lost, 400);
        assert!(stat.lost > 0, "static arm must lose the crashed gaps");
        assert!(!stat.complete);
        assert!(
            stat.nak_retries_exhausted > 0,
            "losses must come from retry exhaustion against the dead primary"
        );
        assert!(!stat.rehomed);

        let (adap, controller) = run_adaptive(&p);
        assert!(adap.complete, "re-homed recovery must finish the stream");
        assert_eq!(adap.delivered, 400);
        assert_eq!(adap.lost, 0);
        assert!(adap.rehomed, "receiver must end up NAKing the standby");
        assert!(adap.standby_served > 0);
        assert_eq!(controller.stats().rehomes, 1, "re-home exactly once");
        assert!(adap.transitions >= 1);
        let lat = adap.recovery_latency.expect("completed after the crash");
        assert!(lat > Time::ZERO && lat < Time::from_secs(5), "{lat}");
    }
}
