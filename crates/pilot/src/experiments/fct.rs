//! **E1** — flow-completion time: hop-by-hop retransmission from a nearby
//! buffer vs retransmission from the source, vs the TCP baseline.
//!
//! Topology (two WAN hops; loss on the far hop):
//!
//! ```text
//! sensor → DTN1(border+buffer) ─WAN1 (rtt₁, clean)→ MID ─WAN2 (rtt₂, lossy)→ check → receiver
//! ```
//!
//! * `MmtNearestBuffer` — MID is a [`TransitBuffer`] that repoints the
//!   retransmission source at itself: recovery costs ≈ rtt₂.
//! * `MmtSourceRetransmit` — MID is a passthrough: every NAK travels all
//!   the way back to DTN 1: recovery costs ≈ rtt₁ + rtt₂.
//! * `TcpTuned` — the tuned-DTN TCP baseline end-to-end over the same
//!   path: source retransmission *plus* a congestion-window collapse per
//!   loss.

use mmt_core::buffer::{CreditConfig, RetransmitBuffer, PORT_DAQ, PORT_WAN};
use mmt_core::receiver::{MmtReceiver, ReceiverConfig};
use mmt_core::sender::{MmtSender, SenderConfig};
use mmt_core::transit::TransitBuffer;
use mmt_dataplane::programs::{self, BorderConfig};
use mmt_dataplane::DataplaneElement;
use mmt_netsim::{Bandwidth, LinkSpec, LossModel, Simulator, Time};
use mmt_transport::{CcProfile, Relay, TcpReceiver, TcpSender};
use mmt_wire::mmt::ExperimentId;
use mmt_wire::Ipv4Address;

const _: Option<CreditConfig> = None; // (type used via buffer API elsewhere)

/// Which system carries the transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FctVariant {
    /// MMT with the mid-path buffer repointing retransmission.
    MmtNearestBuffer,
    /// MMT with retransmission anchored at DTN 1 only.
    MmtSourceRetransmit,
    /// Tuned-DTN TCP end-to-end.
    TcpTuned,
}

impl FctVariant {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            FctVariant::MmtNearestBuffer => "MMT (nearest buffer)",
            FctVariant::MmtSourceRetransmit => "MMT (source retransmit)",
            FctVariant::TcpTuned => "TCP (tuned DTN)",
        }
    }
}

/// Parameters of one E1 run.
#[derive(Debug, Clone, Copy)]
pub struct FctParams {
    /// RTT of the first (clean) WAN hop.
    pub rtt1: Time,
    /// RTT of the second (lossy) WAN hop.
    pub rtt2: Time,
    /// Loss probability on the second hop.
    pub loss: f64,
    /// Transfer volume, bytes.
    pub transfer_bytes: u64,
    /// Link rate everywhere.
    pub bandwidth: Bandwidth,
    /// Seed.
    pub seed: u64,
}

impl FctParams {
    /// The defaults used by the headline table: a 60 ms path split 40/20,
    /// 1e-3 loss on the far hop, 100 MB at 100 GbE.
    pub fn default_run() -> FctParams {
        FctParams {
            rtt1: Time::from_millis(40),
            rtt2: Time::from_millis(20),
            loss: 1e-3,
            transfer_bytes: 100_000_000,
            bandwidth: Bandwidth::gbps(100),
            seed: 11,
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone, Copy)]
pub struct FctResult {
    /// Variant measured.
    pub variant: FctVariant,
    /// Flow-completion time (last message delivered at the receiver).
    pub fct: Time,
    /// Messages/segments retransmitted.
    pub retransmissions: u64,
    /// Messages lost in flight (before recovery).
    pub wire_losses: u64,
    /// Whether the transfer completed within the horizon.
    pub completed: bool,
}

const MSG: usize = 8192;

fn message_count(p: &FctParams) -> usize {
    (p.transfer_bytes as usize).div_ceil(MSG)
}

/// Pace at 90% of line rate: capacity-planned, no discovery needed (§4.1
/// point 4).
fn gap(p: &FctParams) -> Time {
    p.bandwidth.tx_time(MSG + 100) * 10 / 9
}

fn run_mmt(p: &FctParams, nearest: bool) -> FctResult {
    let exp = ExperimentId::new(2, 0);
    let mut sim = Simulator::new(p.seed);
    let count = message_count(p);
    let sensor = sim.add_node(
        "sensor",
        Box::new(MmtSender::new(SenderConfig::regular(
            exp,
            MSG,
            gap(p),
            count,
        ))),
    );
    let dtn1_addr = Ipv4Address::new(10, 0, 0, 5);
    let dtn1 = sim.add_node(
        "dtn1",
        Box::new(RetransmitBuffer::new(
            exp,
            BorderConfig {
                daq_port: PORT_DAQ,
                wan_port: PORT_WAN,
                retransmit_source: (dtn1_addr, 47_000),
                deadline_budget_ns: Time::from_secs(10).as_nanos(),
                notify_addr: Ipv4Address::new(10, 0, 0, 1),
                priority_class: None,
            },
            1 << 30,
            None,
        )),
    );
    let mid = sim.add_node(
        "mid",
        Box::new(if nearest {
            TransitBuffer::new(Ipv4Address::new(10, 0, 0, 7), 47_001, 1 << 30)
        } else {
            TransitBuffer::passthrough()
        }),
    );
    let check = sim.add_node(
        "check",
        Box::new(DataplaneElement::new(programs::destination_check(0, 1, 0))),
    );
    let mut rcfg = ReceiverConfig::wan_defaults(exp, Ipv4Address::new(10, 0, 0, 8));
    rcfg.expect_messages = Some(count as u64);
    // NAK retry spaced to the recovery RTT scale.
    rcfg.nak_interval = (p.rtt1 + p.rtt2) * 2;
    rcfg.reorder_delay = Time::from_millis(1);
    rcfg.give_up_after = Time::from_secs(60);
    let receiver = sim.add_node("receiver", Box::new(MmtReceiver::new(rcfg)));

    let short = LinkSpec::new(p.bandwidth, Time::from_micros(5));
    sim.connect(sensor, 0, dtn1, PORT_DAQ, short);
    let wan1 = LinkSpec::new(p.bandwidth, p.rtt1 / 2);
    sim.connect(dtn1, PORT_WAN, mid, 0, wan1);
    let wan2 = LinkSpec::new(p.bandwidth, p.rtt2 / 2).with_loss(LossModel::Random(p.loss));
    let (wan2_fwd, _) = sim.connect(mid, 1, check, 0, wan2);
    sim.connect(
        check,
        1,
        receiver,
        0,
        LinkSpec::new(p.bandwidth, Time::from_micros(1)),
    );

    let horizon = Time::from_secs(600);
    sim.run_until(horizon);
    let rcv = sim.node_as::<MmtReceiver>(receiver).unwrap(); // mmt-lint: allow(P1, "node registered with this concrete type in build()")
    let completed = rcv.is_complete();
    let fct = rcv.stats.completed_at.unwrap_or(horizon);
    let retransmissions = if nearest {
        let m = sim.node_as::<TransitBuffer>(mid).unwrap(); // mmt-lint: allow(P1, "node registered with this concrete type in build()")
        m.stats.served + m.stats.renaked
    } else {
        sim.node_as::<RetransmitBuffer>(dtn1)
            .unwrap() // mmt-lint: allow(P1, "node registered with this concrete type in build()")
            .stats
            .retransmitted
    };
    FctResult {
        variant: if nearest {
            FctVariant::MmtNearestBuffer
        } else {
            FctVariant::MmtSourceRetransmit
        },
        fct,
        retransmissions,
        wire_losses: sim.link_stats(wan2_fwd).corruption_losses,
        completed,
    }
}

fn run_tcp(p: &FctParams) -> FctResult {
    let mut sim = Simulator::new(p.seed);
    let profile = CcProfile::tuned_dtn();
    let count = message_count(p);
    let total = (count * MSG) as u64;
    let snd = sim.add_node("snd", Box::new(TcpSender::bulk(profile, 1, total, MSG)));
    let r1 = sim.add_node("r1", Box::new(Relay::new()));
    let r2 = sim.add_node("r2", Box::new(Relay::new()));
    let rcv = sim.add_node(
        "rcv",
        Box::new(TcpReceiver::new(1, MSG, profile.max_window_bytes)),
    );
    sim.connect(
        snd,
        0,
        r1,
        0,
        LinkSpec::new(p.bandwidth, Time::from_micros(5)),
    );
    sim.connect(r1, 1, r2, 0, LinkSpec::new(p.bandwidth, p.rtt1 / 2));
    let wan2 = LinkSpec::new(p.bandwidth, p.rtt2 / 2).with_loss(LossModel::Random(p.loss));
    let (wan2_fwd, _) = sim.connect(r2, 1, rcv, 0, wan2);
    let horizon = Time::from_secs(600);
    sim.run_until(horizon);
    let receiver = sim.node_as::<TcpReceiver>(rcv).unwrap(); // mmt-lint: allow(P1, "node registered with this concrete type in build()")
    let completed = receiver.delivered().len() >= count;
    let fct = receiver
        .delivered()
        .last()
        .map(|d| d.delivered_at)
        .filter(|_| completed)
        .unwrap_or(horizon);
    let s = sim.node_as::<TcpSender>(snd).unwrap(); // mmt-lint: allow(P1, "node registered with this concrete type in build()")
    FctResult {
        variant: FctVariant::TcpTuned,
        fct,
        retransmissions: s.stats.fast_retransmits + s.stats.rto_retransmits,
        wire_losses: sim.link_stats(wan2_fwd).corruption_losses,
        completed,
    }
}

/// Run one variant.
pub fn run(p: &FctParams, variant: FctVariant) -> FctResult {
    match variant {
        FctVariant::MmtNearestBuffer => run_mmt(p, true),
        FctVariant::MmtSourceRetransmit => run_mmt(p, false),
        FctVariant::TcpTuned => run_tcp(p),
    }
}

/// Run all three variants.
pub fn run_all(p: &FctParams) -> Vec<FctResult> {
    vec![
        run(p, FctVariant::MmtNearestBuffer),
        run(p, FctVariant::MmtSourceRetransmit),
        run(p, FctVariant::TcpTuned),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FctParams {
        FctParams {
            rtt1: Time::from_millis(40),
            rtt2: Time::from_millis(20),
            loss: 2e-3,
            transfer_bytes: 8_000_000, // ~977 messages
            bandwidth: Bandwidth::gbps(100),
            seed: 5,
        }
    }

    #[test]
    fn nearest_buffer_beats_source_beats_tcp() {
        let p = small();
        let nearest = run(&p, FctVariant::MmtNearestBuffer);
        let source = run(&p, FctVariant::MmtSourceRetransmit);
        let tcp = run(&p, FctVariant::TcpTuned);
        assert!(nearest.completed && source.completed && tcp.completed);
        assert!(nearest.wire_losses > 0, "loss must bite");
        // The ordering the paper predicts.
        assert!(
            nearest.fct <= source.fct,
            "nearest {} vs source {}",
            nearest.fct,
            source.fct
        );
        assert!(
            source.fct < tcp.fct,
            "MMT paced transfer beats TCP under loss: {} vs {}",
            source.fct,
            tcp.fct
        );
    }

    #[test]
    fn lossless_path_needs_no_retransmissions() {
        let mut p = small();
        p.loss = 0.0;
        for v in [
            FctVariant::MmtNearestBuffer,
            FctVariant::MmtSourceRetransmit,
        ] {
            let r = run(&p, v);
            assert!(r.completed);
            assert_eq!(r.retransmissions, 0);
            assert_eq!(r.wire_losses, 0);
        }
    }

    #[test]
    fn recovery_latency_scales_with_buffer_distance() {
        // With very few messages and guaranteed loss handling, the FCT gap
        // between the variants is about one extra rtt1 per recovery round.
        let mut p = small();
        p.transfer_bytes = 800_000; // ~98 messages
        p.loss = 0.01;
        let nearest = run(&p, FctVariant::MmtNearestBuffer);
        let source = run(&p, FctVariant::MmtSourceRetransmit);
        assert!(nearest.completed && source.completed);
        if nearest.wire_losses > 0 && source.wire_losses > 0 {
            assert!(nearest.fct < source.fct);
        }
    }
}
