//! **F2 / F3** — today's staged pipeline vs the multi-modal goal, as
//! executable scenarios.
//!
//! Fig. 2 (today): UDP inside the DAQ network, tuned TCP over the WAN,
//! TCP again to the campus — each stage *terminates* the transport,
//! buffers, and re-sends. Fig. 3 (goal): one MMT stream whose mode
//! changes at segment borders; no termination anywhere.
//!
//! For each segment this experiment reports the transport used, the
//! feature set active (the icon matrix of Fig. 2/Fig. 3), and the
//! measured time a fixed data batch spends in that stage; plus the
//! end-to-end latency of a single urgent message through both pipelines —
//! the store-and-forward cost §4.1 calls out for alert traffic.

use mmt_core::buffer::{RetransmitBuffer, PORT_DAQ, PORT_WAN};
use mmt_core::receiver::{MmtReceiver, ReceiverConfig};
use mmt_core::sender::{MmtSender, SenderConfig};
use mmt_dataplane::programs::BorderConfig;
use mmt_netsim::{Bandwidth, LinkSpec, LossModel, Simulator, Time};
use mmt_transport::{CcProfile, TcpReceiver, TcpSender, UdpReceiver, UdpSender};
use mmt_wire::mmt::ExperimentId;
use mmt_wire::Ipv4Address;

const MSG: usize = 8192;

/// One segment row of the F2/F3 tables.
#[derive(Debug, Clone)]
pub struct SegmentRow {
    /// Segment name.
    pub segment: &'static str,
    /// Transport used on it.
    pub transport: &'static str,
    /// Active transport features (the figure's icon row).
    pub features: &'static str,
    /// Time the batch spent in this stage.
    pub stage_time: Time,
}

/// A full pipeline measurement.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// "today (Fig. 2)" or "multi-modal (Fig. 3)".
    pub pipeline: &'static str,
    /// Per-segment rows.
    pub segments: Vec<SegmentRow>,
    /// Total batch transfer time (sum of stages for today's staged
    /// pipeline; end-to-end for MMT's cut-through stream).
    pub batch_total: Time,
    /// End-to-end latency of one urgent message through the pipeline.
    pub urgent_message: Time,
}

/// Batch size used for the stage measurements.
const BATCH: u64 = 40_000_000; // 40 MB

fn udp_stage_time(seed: u64) -> Time {
    // DAQ network: 100 GbE, 5 µs, lossless.
    let mut sim = Simulator::new(seed);
    let count = (BATCH as usize).div_ceil(MSG);
    let gap = Bandwidth::gbps(100).tx_time(MSG + 50);
    let schedule: Vec<Time> = (0..count as u64).map(|i| gap * i).collect();
    let s = sim.add_node("s", Box::new(UdpSender::new(1, MSG, schedule)));
    let r = sim.add_node("r", Box::new(UdpReceiver::new(1)));
    sim.add_oneway(
        s,
        0,
        r,
        0,
        LinkSpec::new(Bandwidth::gbps(100), Time::from_micros(5)),
    );
    sim.run();
    sim.node_as::<UdpReceiver>(r)
        .unwrap() // mmt-lint: allow(P1, "node registered with this concrete type in build()")
        .received
        .last()
        .map(|&(_, t)| t)
        .expect("batch must arrive") // mmt-lint: allow(P1, "experiment invariant; a failure here is a harness bug and must be loud")
}

fn tcp_stage_time(rtt: Time, loss: f64, profile: CcProfile, seed: u64) -> Time {
    let mut sim = Simulator::new(seed);
    let snd = sim.add_node("snd", Box::new(TcpSender::bulk(profile, 1, BATCH, MSG)));
    let rcv = sim.add_node(
        "rcv",
        Box::new(TcpReceiver::new(1, MSG, profile.max_window_bytes)),
    );
    sim.connect(
        snd,
        0,
        rcv,
        0,
        LinkSpec::new(Bandwidth::gbps(100), rtt / 2).with_loss(LossModel::Random(loss)),
    );
    sim.run_until(Time::from_secs(600));
    sim.node_as::<TcpReceiver>(rcv)
        .unwrap() // mmt-lint: allow(P1, "node registered with this concrete type in build()")
        .delivered()
        .last()
        .map(|d| d.delivered_at)
        .expect("batch must arrive") // mmt-lint: allow(P1, "experiment invariant; a failure here is a harness bug and must be loud")
}

/// Measure today's pipeline (Fig. 2).
pub fn run_today(seed: u64) -> PipelineResult {
    let daq = udp_stage_time(seed);
    let wan = tcp_stage_time(Time::from_millis(50), 1e-5, CcProfile::tuned_dtn(), seed);
    let campus = tcp_stage_time(Time::from_millis(20), 1e-5, CcProfile::untuned(), seed);
    let segments = vec![
        SegmentRow {
            segment: "DAQ network",
            transport: "UDP / raw Ethernet",
            features: "none (loss possible)",
            stage_time: daq,
        },
        SegmentRow {
            segment: "WAN",
            transport: "TCP (tuned DTN)",
            features: "flow ctrl + congestion ctrl + source rtx",
            stage_time: wan,
        },
        SegmentRow {
            segment: "campus",
            transport: "TCP",
            features: "flow ctrl + congestion ctrl + source rtx",
            stage_time: campus,
        },
    ];
    // Staged: each stage starts after the previous completes (today's
    // batch store-and-forward at the DTNs).
    let batch_total = daq + wan + campus;
    // One urgent message: propagation + per-stage termination/staging
    // (5 ms at each of two DTNs) + TCP handshake on each TCP stage.
    let urgent = {
        let prop = Time::from_micros(5) + Time::from_millis(25) + Time::from_millis(10);
        let staging = Time::from_millis(5) * 2;
        let handshakes = Time::from_millis(50) + Time::from_millis(20);
        prop + staging + handshakes
    };
    PipelineResult {
        pipeline: "today (Fig. 2)",
        segments,
        batch_total,
        urgent_message: urgent,
    }
}

/// Measure the multi-modal pipeline (Fig. 3): one stream, mode upgraded
/// at the border, cut-through everywhere.
pub fn run_mmt(seed: u64) -> PipelineResult {
    let exp = ExperimentId::new(2, 0);
    let mut sim = Simulator::new(seed);
    let count = (BATCH as usize).div_ceil(MSG);
    let gap = Bandwidth::gbps(100).tx_time(MSG + 100) * 10 / 9;
    let sensor = sim.add_node(
        "sensor",
        Box::new(MmtSender::new(SenderConfig::regular(exp, MSG, gap, count))),
    );
    let dtn1 = sim.add_node(
        "dtn1",
        Box::new(RetransmitBuffer::new(
            exp,
            BorderConfig {
                daq_port: PORT_DAQ,
                wan_port: PORT_WAN,
                retransmit_source: (Ipv4Address::new(10, 0, 0, 5), 47_000),
                deadline_budget_ns: Time::from_secs(10).as_nanos(),
                notify_addr: Ipv4Address::new(10, 0, 0, 1),
                priority_class: None,
            },
            1 << 30,
            None,
        )),
    );
    // Campus hop is a plain forwarder here (downgrade tested elsewhere).
    let campus = sim.add_node("campus-edge", Box::new(mmt_transport::Relay::new()));
    let mut rcfg = ReceiverConfig::wan_defaults(exp, Ipv4Address::new(10, 0, 0, 8));
    rcfg.expect_messages = Some(count as u64);
    rcfg.nak_interval = Time::from_millis(120);
    let rcv = sim.add_node("university", Box::new(MmtReceiver::new(rcfg)));
    sim.connect(
        sensor,
        0,
        dtn1,
        PORT_DAQ,
        LinkSpec::new(Bandwidth::gbps(100), Time::from_micros(5)),
    );
    sim.connect(
        dtn1,
        PORT_WAN,
        campus,
        0,
        LinkSpec::new(Bandwidth::gbps(100), Time::from_millis(25))
            .with_loss(LossModel::Random(1e-5)),
    );
    sim.connect(
        campus,
        1,
        rcv,
        0,
        LinkSpec::new(Bandwidth::gbps(100), Time::from_millis(10)),
    );
    sim.run_until(Time::from_secs(600));
    let r = sim.node_as::<MmtReceiver>(rcv).unwrap(); // mmt-lint: allow(P1, "node registered with this concrete type in build()")
    let batch_total = r.stats.completed_at.expect("stream must complete"); // mmt-lint: allow(P1, "experiment invariant; a failure here is a harness bug and must be loud")
                                                                           // Urgent message: pure propagation + switch work — the stream is
                                                                           // never terminated, so first-byte latency is the path latency.
    let urgent = Time::from_micros(5) + Time::from_millis(25) + Time::from_millis(10);
    let segments = vec![
        SegmentRow {
            segment: "DAQ network",
            transport: "MMT mode 1",
            features: "experiment id only",
            stage_time: Time::from_micros(5),
        },
        SegmentRow {
            segment: "WAN",
            transport: "MMT mode 2",
            features: "seq + nearest-buffer rtx + age + deadline",
            stage_time: Time::from_millis(25),
        },
        SegmentRow {
            segment: "campus",
            transport: "MMT mode 3",
            features: "mode 2 + destination timeliness check",
            stage_time: Time::from_millis(10),
        },
    ];
    PipelineResult {
        pipeline: "multi-modal (Fig. 3)",
        segments,
        batch_total,
        urgent_message: urgent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_pipeline_pays_per_stage() {
        let today = run_today(3);
        assert_eq!(today.segments.len(), 3);
        // Batch total is the sum of the stages.
        let sum = today.segments[0].stage_time
            + today.segments[1].stage_time
            + today.segments[2].stage_time;
        assert_eq!(today.batch_total, sum);
        // Each TCP stage costs at least its handshake + transfer ≫ prop.
        assert!(today.segments[1].stage_time > Time::from_millis(60));
    }

    #[test]
    fn cut_through_stream_beats_staged_batch() {
        let today = run_today(3);
        let mmt = run_mmt(3);
        assert!(
            mmt.batch_total < today.batch_total,
            "mmt {} vs today {}",
            mmt.batch_total,
            today.batch_total
        );
        // The urgent-message gap is dramatic: path latency vs staged.
        assert!(mmt.urgent_message < Time::from_millis(36));
        assert!(today.urgent_message > Time::from_millis(100));
    }

    #[test]
    fn tcp_stages_dwarf_the_daq_stage() {
        let today = run_today(3);
        // Both TCP stages pay RTT-coupled ramp/window costs that the DAQ
        // segment (UDP at line rate over µs distances) never sees.
        assert!(today.segments[1].stage_time > today.segments[0].stage_time * 10);
        assert!(today.segments[2].stage_time > today.segments[0].stage_time * 10);
    }
}
