//! **E11** — in-path payload processing (§6, challenge 2).
//!
//! "Beyond header processing, how do we integrate payload processing
//! along the path? For example, DPDK-capable or FPGA resources could be
//! used to generate multi-domain alerts from raw DAQ data or transcode
//! into other formats, such as HDF5."
//!
//! Two processors exercise both halves of that sentence:
//!
//! * [`StorageGateway`] — the archive edge transcodes the record stream
//!   into indexed storage containers (`mmt_daq::storage`), N records per
//!   object.
//! * [`InPathAlertMonitor`] — a mid-path element watches the *rate* of
//!   supernova-candidate records and emits the multi-domain alert the
//!   moment the burst is visible — upstream of the archive, saving the
//!   remaining WAN legs and the end-host detection delay.

use super::util::Sink;
use mmt_daq::storage::ContainerWriter;
use mmt_daq::supernova::BurstDetector;
use mmt_dataplane::parser::{build_eth_mmt_frame, ParsedPacket};
use mmt_netsim::{Bandwidth, Context, LinkSpec, Node, Packet, PortId, Simulator, Time, TimerToken};
use mmt_wire::daq::{DuneSubHeader, SubHeader, TriggerRecord};
use mmt_wire::mmt::{ExperimentId, MmtRepr};
use mmt_wire::EthernetAddress;

const DUNE_EXP: u32 = 2;

/// A sensor-side node that emits real encoded trigger records on a
/// schedule (mode 0, as sensors do).
pub struct RecordSender {
    experiment: ExperimentId,
    schedule: Vec<Time>,
    next: usize,
    /// Records emitted.
    pub sent: u64,
}

impl RecordSender {
    /// Create a sender from a creation schedule.
    pub fn new(experiment: ExperimentId, schedule: Vec<Time>) -> RecordSender {
        RecordSender {
            experiment,
            schedule,
            next: 0,
            sent: 0,
        }
    }

    fn pump(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        while self.next < self.schedule.len() && self.schedule[self.next] <= now {
            let record = TriggerRecord {
                run: 1,
                event: self.next as u64,
                timestamp_ns: self.schedule[self.next].as_nanos(),
                sub: SubHeader::Dune(DuneSubHeader {
                    crate_no: 1,
                    slot: 1,
                    link: 0,
                    first_channel: 0,
                    last_channel: 63,
                }),
                payload: vec![0xC4; 256],
            };
            let frame = build_eth_mmt_frame(
                EthernetAddress([2, 0, 0, 0, 0, 1]),
                EthernetAddress([2, 0, 0, 0, 0, 2]),
                &MmtRepr::data(self.experiment),
                &record.encode().expect("valid record"), // mmt-lint: allow(P1, "encode/decode of a record this experiment just built; inverse pair")
            );
            let mut pkt = Packet::with_flow(frame, u64::from(self.experiment.raw()));
            pkt.meta.created_at = self.schedule[self.next];
            ctx.send(0, pkt);
            self.sent += 1;
            self.next += 1;
        }
        if self.next < self.schedule.len() {
            ctx.set_timer(self.schedule[self.next] - now, 1);
        }
    }
}

impl Node for RecordSender {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.pump(ctx);
    }
    fn on_packet(&mut self, _: &mut Context<'_>, _: PortId, _: Packet) {}
    fn on_timer(&mut self, ctx: &mut Context<'_>, _: TimerToken) {
        self.pump(ctx);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The archive edge: decodes record payloads and transcodes them into
/// storage containers, `batch` records per object.
pub struct StorageGateway {
    batch: usize,
    writer: ContainerWriter,
    /// Finished container objects.
    pub containers: Vec<Vec<u8>>,
    /// Records ingested.
    pub records_in: u64,
    /// Frames whose payload failed to decode as a record.
    pub decode_failures: u64,
    /// Burst detector running at the end host (the baseline detection
    /// point for E11).
    pub detector: BurstDetector,
    /// When the end-host detector fired.
    pub detected_at: Option<Time>,
}

impl StorageGateway {
    /// Create a gateway batching `batch` records per container.
    pub fn new(batch: usize, window: Time, threshold: usize) -> StorageGateway {
        StorageGateway {
            batch,
            writer: ContainerWriter::new(),
            containers: Vec::new(),
            records_in: 0,
            decode_failures: 0,
            detector: BurstDetector::new(window, threshold),
            detected_at: None,
        }
    }

    /// Total records across finished containers.
    pub fn records_stored(&self) -> usize {
        self.containers
            .iter()
            .filter_map(|c| mmt_daq::storage::ContainerReader::open(c).ok())
            .map(|r| r.len())
            .sum()
    }
}

impl Node for StorageGateway {
    fn on_packet(&mut self, ctx: &mut Context<'_>, _: PortId, pkt: Packet) {
        let parsed = ParsedPacket::parse(pkt.bytes, 0);
        let Some(off) = parsed.layers.mmt_offset() else {
            return;
        };
        let Some(repr) = parsed.mmt_repr() else {
            return;
        };
        let payload = &parsed.bytes[off + repr.header_len()..];
        match TriggerRecord::decode(payload) {
            Ok(record) => {
                self.records_in += 1;
                if self.detected_at.is_none() {
                    if let Some(t) = self.detector.observe(ctx.now()) {
                        self.detected_at = Some(t);
                    }
                }
                self.writer.push(&record).expect("just decoded"); // mmt-lint: allow(P1, "encode/decode of a record this experiment just built; inverse pair")
                if self.writer.len() >= self.batch {
                    let full = std::mem::take(&mut self.writer);
                    self.containers.push(full.finish());
                }
            }
            Err(_) => self.decode_failures += 1,
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A mid-path payload processor: forwards the stream (port 0 → 1) while
/// watching the record rate; when the burst trigger fires it emits one
/// multi-domain alert out port 2 (toward the telescope).
pub struct InPathAlertMonitor {
    detector: BurstDetector,
    experiment: ExperimentId,
    /// When the in-path trigger fired.
    pub detected_at: Option<Time>,
    /// Records observed.
    pub observed: u64,
}

impl InPathAlertMonitor {
    /// Create a monitor with the given burst window/threshold.
    pub fn new(experiment: ExperimentId, window: Time, threshold: usize) -> InPathAlertMonitor {
        InPathAlertMonitor {
            detector: BurstDetector::new(window, threshold),
            experiment,
            detected_at: None,
            observed: 0,
        }
    }
}

impl Node for InPathAlertMonitor {
    fn on_packet(&mut self, ctx: &mut Context<'_>, port: PortId, pkt: Packet) {
        if port != 0 {
            ctx.send(0, pkt);
            return;
        }
        // Inspect, then forward unchanged.
        let parsed = ParsedPacket::parse(pkt.bytes.clone(), 0);
        if let (Some(off), Some(repr)) = (parsed.layers.mmt_offset(), parsed.mmt_repr()) {
            let payload = &parsed.bytes[off + repr.header_len()..];
            if TriggerRecord::decode(payload).is_ok() {
                self.observed += 1;
                if self.detected_at.is_none() {
                    if let Some(t) = self.detector.observe(ctx.now()) {
                        self.detected_at = Some(t);
                        // Emit the multi-domain alert with priority.
                        let mut rng = mmt_netsim::SimRng::new(ctx.now().as_nanos());
                        let alert = mmt_daq::supernova::SupernovaAlert::from_detection(t, &mut rng);
                        let repr = MmtRepr::data(self.experiment).with_priority(3);
                        let frame = build_eth_mmt_frame(
                            EthernetAddress([2, 0, 0, 0, 0, 0xF0]),
                            EthernetAddress::BROADCAST,
                            &repr,
                            &alert.encode(),
                        );
                        ctx.send(2, Packet::new(frame));
                    }
                }
            }
        }
        ctx.send(1, pkt);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// E11 results.
#[derive(Debug, Clone, Copy)]
pub struct PayloadResult {
    /// Records produced by the detector readout.
    pub records: u64,
    /// Records transcoded into containers at the archive.
    pub records_stored: u64,
    /// Containers written.
    pub containers: u64,
    /// When the in-path monitor detected the burst.
    pub inpath_detected_at: Option<Time>,
    /// When the end-host (archive) detector detected it.
    pub endhost_detected_at: Option<Time>,
    /// Alert arrival at the telescope via the in-path monitor.
    pub inpath_alert_at: Option<Time>,
    /// Alert arrival computed for end-host detection (archive → FNAL →
    /// telescope).
    pub endhost_alert_at: Option<Time>,
}

/// FNAL→archive one-way delay.
const FNAL_ARCHIVE: Time = Time::from_millis(35);
/// FNAL→telescope one-way delay.
const FNAL_RUBIN: Time = Time::from_millis(70);

/// Run E11: a DUNE record stream whose rate quintuples at t = 1 s
/// (the burst), through an in-path monitor at FNAL, to the archive.
pub fn run(seed: u64) -> PayloadResult {
    let exp = ExperimentId::new(DUNE_EXP, 0);
    // Schedule: 1 kHz for 1 s, then 5 kHz for 2 s.
    let mut schedule = Vec::new();
    let mut t = Time::ZERO;
    while t < Time::from_secs(1) {
        schedule.push(t);
        t += Time::from_millis(1);
    }
    while t < Time::from_secs(3) {
        schedule.push(t);
        t += Time::from_micros(200);
    }
    let records = schedule.len() as u64;

    let mut sim = Simulator::new(seed);
    let sender = sim.add_node("dune", Box::new(RecordSender::new(exp, schedule)));
    // Burst window 100 ms; normal rate gives ~100 candidates per window,
    // the burst ~500: threshold at 300.
    let monitor = sim.add_node(
        "fnal-monitor",
        Box::new(InPathAlertMonitor::new(exp, Time::from_millis(100), 300)),
    );
    let archive = sim.add_node(
        "archive",
        Box::new(StorageGateway::new(100, Time::from_millis(100), 300)),
    );
    let rubin = sim.add_node("rubin", Box::new(Sink));
    sim.connect(
        sender,
        0,
        monitor,
        0,
        LinkSpec::new(Bandwidth::gbps(100), Time::from_millis(13)),
    );
    sim.connect(
        monitor,
        1,
        archive,
        0,
        LinkSpec::new(Bandwidth::gbps(100), FNAL_ARCHIVE),
    );
    sim.connect(
        monitor,
        2,
        rubin,
        0,
        LinkSpec::new(Bandwidth::gbps(100), FNAL_RUBIN),
    );
    sim.run();

    let mon = sim.node_as::<InPathAlertMonitor>(monitor).unwrap(); // mmt-lint: allow(P1, "node registered with this concrete type in build()")
    let arch = sim.node_as::<StorageGateway>(archive).unwrap(); // mmt-lint: allow(P1, "node registered with this concrete type in build()")
    let inpath_alert_at = sim.local_deliveries(rubin).first().map(|(t, _)| *t);
    // Baseline: the archive detects, then the alert must travel archive →
    // FNAL → telescope.
    let endhost_alert_at = arch.detected_at.map(|t| t + FNAL_ARCHIVE + FNAL_RUBIN);
    PayloadResult {
        records,
        records_stored: arch.records_stored() as u64,
        containers: arch.containers.len() as u64,
        inpath_detected_at: mon.detected_at,
        endhost_detected_at: arch.detected_at,
        inpath_alert_at,
        endhost_alert_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transcoding_packs_every_record() {
        let r = run(3);
        assert_eq!(r.records, 1_000 + 10_000);
        // All full batches stored; the tail (<100) stays in the writer.
        assert_eq!(r.containers, r.records / 100);
        assert_eq!(r.records_stored, r.containers * 100);
    }

    #[test]
    fn inpath_detection_beats_endhost_by_the_extra_legs() {
        let r = run(3);
        let inpath = r.inpath_detected_at.expect("monitor fires");
        let endhost = r.endhost_detected_at.expect("archive fires");
        // Both detect shortly after the burst onset at t = 1 s (+13 ms
        // propagation to FNAL; +35 ms more to the archive).
        assert!(inpath > Time::from_secs(1));
        assert!(inpath < Time::from_millis(1_100), "{inpath}");
        // The archive sees the stream ~35 ms later.
        let lag = endhost - inpath;
        assert!(
            (Time::from_millis(34)..=Time::from_millis(36)).contains(&lag),
            "{lag}"
        );
        // Alert at the telescope: in-path saves the detection lag plus the
        // archive→FNAL return leg = ~70 ms.
        let a = r.inpath_alert_at.expect("alert arrives");
        let b = r.endhost_alert_at.expect("baseline computable");
        let saved = b - a;
        assert!(
            (Time::from_millis(69)..=Time::from_millis(71)).contains(&saved),
            "saved {saved}"
        );
    }

    #[test]
    fn deterministic() {
        let a = run(7);
        let b = run(7);
        assert_eq!(a.inpath_alert_at, b.inpath_alert_at);
        assert_eq!(a.records_stored, b.records_stored);
    }
}
