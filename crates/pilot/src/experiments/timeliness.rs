//! **E4** — timeliness enforcement: deadline budget sweep over the pilot.
//!
//! §5.3: "timely-behavior (Req 3) is ensured by explicit transport
//! deadlines that provide a signal for congestion and an input to active
//! queue management. The timeliness mode involves providing an IP address
//! to which 'deadline exceeded' messages are sent, to alert the source."
//! Sweeping the delivery budget across the WAN's one-way latency shows
//! the enforcement edge: budgets below the path latency flag everything,
//! budgets above it flag nothing, and the aged flag tracks exactly the
//! messages whose budget was genuinely blown.

use crate::topology::{Pilot, PilotConfig};
use mmt_netsim::{LossModel, Time};

/// One row of the E4 sweep.
#[derive(Debug, Clone, Copy)]
pub struct TimelinessResult {
    /// The delivery budget tested.
    pub budget: Time,
    /// Fraction of delivered messages carrying the aged flag.
    pub aged_fraction: f64,
    /// Deadline-exceeded notifications that reached the source.
    pub notifications: u64,
    /// Messages delivered.
    pub delivered: u64,
}

/// Run one budget point.
pub fn run(budget: Time, wan_rtt: Time, messages: usize, seed: u64) -> TimelinessResult {
    let mut cfg = PilotConfig::default_run();
    cfg.wan_rtt = wan_rtt;
    cfg.wan_loss = LossModel::None;
    cfg.message_count = messages;
    cfg.deadline_budget = budget;
    cfg.max_age = budget;
    cfg.seed = seed;
    let mut pilot = Pilot::build(cfg);
    pilot.run(Time::from_secs(60));
    let r = pilot.report();
    TimelinessResult {
        budget,
        aged_fraction: r.receiver.aged_deliveries as f64 / r.receiver.delivered.max(1) as f64,
        notifications: r.sender.deadline_notifications,
        delivered: r.receiver.delivered,
    }
}

/// The published sweep: budgets bracketing a 10 ms-RTT WAN's ~5 ms
/// one-way latency.
pub fn sweep(messages: usize) -> Vec<TimelinessResult> {
    [1u64, 2, 4, 5, 6, 8, 20, 50]
        .into_iter()
        .map(|ms| run(Time::from_millis(ms), Time::from_millis(10), messages, 13))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enforcement_edge_sits_at_path_latency() {
        let rows = sweep(300);
        // Tight budgets: everything aged and notified.
        let tight = &rows[0]; // 1 ms budget vs ~5 ms path
        assert!(tight.aged_fraction > 0.99, "{}", tight.aged_fraction);
        assert_eq!(tight.notifications, tight.delivered);
        // Generous budgets: nothing flagged.
        let loose = rows.last().unwrap(); // 50 ms
        assert_eq!(loose.aged_fraction, 0.0);
        assert_eq!(loose.notifications, 0);
        // Monotone non-increasing aged fraction along the sweep.
        for w in rows.windows(2) {
            assert!(
                w[0].aged_fraction >= w[1].aged_fraction - 1e-9,
                "{:?}",
                rows.iter().map(|r| r.aged_fraction).collect::<Vec<_>>()
            );
        }
        // All rows delivered everything: timeliness marks, never drops.
        assert!(rows.iter().all(|r| r.delivered == 300));
    }
}
