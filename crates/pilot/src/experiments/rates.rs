//! **T1** — regenerate Table 1: DAQ rates of the five instruments.
//!
//! The generators in `mmt-daq` are parameterized by the paper's rates; a
//! full-rate DUNE stream (120 Tb/s) is millions of records per
//! millisecond, so each instrument is generated at `1/scale` of its rate
//! (one readout link's worth) and the measured offered load is scaled
//! back up — exactly how the real instruments parallelize readout.

use mmt_daq::catalog::{Experiment, EXPERIMENTS};
use mmt_daq::workload::{offered_bps, RegularFlow};
use mmt_netsim::{Bandwidth, Time};

/// One regenerated Table 1 row.
#[derive(Debug, Clone)]
pub struct T1Row {
    /// Instrument name.
    pub name: &'static str,
    /// The paper's DAQ rate.
    pub paper_rate: Bandwidth,
    /// The rate reconstructed from the generated workload.
    pub generated_rate_bps: f64,
    /// Record size used.
    pub record_bytes: usize,
    /// Records per second at full rate.
    pub records_per_sec: f64,
    /// Parallelism used for generation.
    pub scale: u64,
}

impl T1Row {
    /// Relative error between generated and paper rate.
    pub fn relative_error(&self) -> f64 {
        let paper = self.paper_rate.as_bps() as f64;
        (self.generated_rate_bps - paper).abs() / paper
    }
}

fn row_for(exp: &Experiment) -> T1Row {
    // One generator lane carries at most ~10 Gb/s.
    let lane_cap = Bandwidth::gbps(10).as_bps();
    let scale = exp.daq_rate.as_bps().div_ceil(lane_cap);
    let lane_rate = Bandwidth::bps(exp.daq_rate.as_bps() / scale);
    let window = Time::from_millis(10);
    let mut flow = RegularFlow::new(exp.id(0), exp.record_bytes, lane_rate, Time::ZERO);
    let msgs = flow.take_until(window);
    let lane_bps = offered_bps(&msgs, window);
    T1Row {
        name: exp.name,
        paper_rate: exp.daq_rate,
        generated_rate_bps: lane_bps * scale as f64,
        record_bytes: exp.record_bytes,
        records_per_sec: exp.record_rate_hz(),
        scale,
    }
}

/// Regenerate every Table 1 row.
pub fn table1() -> Vec<T1Row> {
    EXPERIMENTS.iter().map(row_for).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_rates_match_table1_within_two_percent() {
        let rows = table1();
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(
                row.relative_error() < 0.02,
                "{}: paper {} vs generated {:.3e} bps",
                row.name,
                row.paper_rate,
                row.generated_rate_bps
            );
        }
    }

    #[test]
    fn order_matches_paper() {
        let names: Vec<&str> = table1().iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            vec![
                "CMS L1 Trigger",
                "DUNE",
                "ECCE detector",
                "Mu2e",
                "Vera Rubin"
            ]
        );
    }

    #[test]
    fn scale_reflects_instrument_size() {
        let rows = table1();
        let dune = rows.iter().find(|r| r.name == "DUNE").unwrap();
        let mu2e = rows.iter().find(|r| r.name == "Mu2e").unwrap();
        assert!(dune.scale > mu2e.scale, "DUNE needs far more lanes");
        assert_eq!(dune.scale, 12_000);
        assert_eq!(mu2e.scale, 16);
    }
}
