//! **A1/A2** — queueing ablations for the design choices in DESIGN.md.
//!
//! * **A1 — deadline-aware AQM**: §5.3 calls explicit deadlines "an input
//!   to active queue management", and Fig. 2's age-sensitivity icon means
//!   "the aging of transported data follows a pre-determined policy".
//!   When a bottleneck must shed, shedding already-aged packets first
//!   preserves the information that is still worth carrying. The ablation
//!   overloads a link with a 50/50 mix of aged and fresh packets and
//!   compares fresh-traffic survival under drop-tail vs deadline-aware
//!   queues.
//! * **A2 — priority for age-sensitive streams**: §5.3 "we can prioritize
//!   the processing of age-sensitive data". A 5.4 Gb/s alert burst shares
//!   a 10 Gb/s link with a bulk elephant; with the MMT priority class
//!   mapped to a strict-priority band the alert latency stays at
//!   propagation delay, without it the alerts queue behind the elephant.

use super::util::Sink;
use mmt_dataplane::classify;
use mmt_dataplane::parser::{build_eth_mmt_frame, ParsedPacket};
use mmt_netsim::{Bandwidth, LinkSpec, NodeId, Packet, QueueSpec, Simulator, Time};
use mmt_wire::mmt::{ExperimentId, MmtRepr};
use mmt_wire::EthernetAddress;

/// A1 result: fresh-traffic survival under overload.
#[derive(Debug, Clone, Copy)]
pub struct AqmResult {
    /// Queue discipline name.
    pub queue: &'static str,
    /// Fresh packets delivered / offered.
    pub fresh_delivery_ratio: f64,
    /// Aged packets delivered / offered.
    pub aged_delivery_ratio: f64,
    /// Total drops at the bottleneck.
    pub drops: u64,
}

fn mixed_frame(aged: bool, index: u64) -> Packet {
    let repr = MmtRepr::data(ExperimentId::new(2, 0))
        .with_sequence(index)
        .with_age(if aged { 60_000_000 } else { 1_000 }, aged);
    let mut payload = vec![0u8; 2048];
    payload[..8].copy_from_slice(&index.to_be_bytes());
    Packet::new(build_eth_mmt_frame(
        EthernetAddress([2, 0, 0, 0, 0, 1]),
        EthernetAddress([2, 0, 0, 0, 0, 2]),
        &repr,
        &payload,
    ))
}

fn count_kind(sim: &Simulator, node: NodeId, want_aged: bool) -> u64 {
    sim.local_deliveries(node)
        .iter()
        .filter(|(_, pkt)| {
            ParsedPacket::parse(pkt.bytes.clone(), 0)
                .mmt_repr()
                .and_then(|r| r.age())
                .map(|a| a.aged)
                == Some(want_aged)
        })
        .count() as u64
}

/// Run A1 with the given queue discipline.
pub fn run_aqm(deadline_aware: bool, packets_per_kind: usize, seed: u64) -> AqmResult {
    let mut sim = Simulator::new(seed);
    struct Blast {
        n: usize,
    }
    impl mmt_netsim::Node for Blast {
        fn on_packet(&mut self, _: &mut mmt_netsim::Context<'_>, _: usize, _: Packet) {}
        fn on_start(&mut self, ctx: &mut mmt_netsim::Context<'_>) {
            // Interleave aged and fresh, all at once: a worst-case burst
            // far above the queue capacity.
            for i in 0..self.n {
                ctx.send(0, mixed_frame(false, i as u64));
                ctx.send(0, mixed_frame(true, (self.n + i) as u64));
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
    let src = sim.add_node(
        "src",
        Box::new(Blast {
            n: packets_per_kind,
        }),
    );
    let dst = sim.add_node("dst", Box::new(Sink));
    // A queue that can hold all the fresh packets (with headroom) but
    // not the aged ones too: shedding policy decides who survives.
    let capacity = packets_per_kind * 2100 * 12 / 10;
    let queue = if deadline_aware {
        QueueSpec::DeadlineAware {
            capacity_bytes: capacity,
        }
    } else {
        QueueSpec::DropTailFifo {
            capacity_bytes: capacity,
        }
    };
    let link = sim.add_oneway(
        src,
        0,
        dst,
        0,
        LinkSpec::new(Bandwidth::gbps(1), Time::from_micros(10)).with_queue(queue),
    );
    if deadline_aware {
        sim.link_mut(link)
            .set_classifier(classify::aged_shed_classifier);
    }
    sim.run();
    let fresh = count_kind(&sim, dst, false);
    let aged = count_kind(&sim, dst, true);
    // The queue's own counter covers both tail drops and deadline-aware
    // sheds (a shed admits the arrival, so the link-level drop counter
    // alone would miss it).
    let drops = sim.link_mut(link).queue.dropped();
    AqmResult {
        queue: if deadline_aware {
            "deadline-aware"
        } else {
            "drop-tail"
        },
        fresh_delivery_ratio: fresh as f64 / packets_per_kind as f64,
        aged_delivery_ratio: aged as f64 / packets_per_kind as f64,
        drops,
    }
}

/// A2 result: alert latency sharing a link with a bulk elephant.
#[derive(Debug, Clone, Copy)]
pub struct PriorityResult {
    /// Queue discipline name.
    pub queue: &'static str,
    /// Worst alert delivery latency.
    pub alert_max_latency: Time,
    /// Alerts delivered.
    pub alerts_delivered: u64,
}

/// Run A2: a paced bulk stream saturating ~90% of a 10 Gb/s link plus a
/// burst of priority-class alerts arriving mid-stream.
pub fn run_priority(strict_priority: bool, seed: u64) -> PriorityResult {
    let mut sim = Simulator::new(seed);
    struct Mix;
    impl mmt_netsim::Node for Mix {
        fn on_packet(&mut self, _: &mut mmt_netsim::Context<'_>, _: usize, _: Packet) {}
        fn on_start(&mut self, ctx: &mut mmt_netsim::Context<'_>) {
            // 2000 bulk packets of 8 KiB back to back (the elephant's
            // queue backlog)…
            for i in 0..2000u64 {
                let repr = MmtRepr::data(ExperimentId::new(2, 0)).with_sequence(i);
                let payload = vec![0u8; 8192];
                ctx.send(
                    0,
                    Packet::new(build_eth_mmt_frame(
                        EthernetAddress([2, 0, 0, 0, 0, 1]),
                        EthernetAddress([2, 0, 0, 0, 0, 2]),
                        &repr,
                        &payload,
                    )),
                );
            }
            // …then 20 alert packets with priority class 3.
            for i in 0..20u64 {
                let repr = MmtRepr::data(ExperimentId::new(5, 0))
                    .with_sequence(i)
                    .with_priority(3);
                let payload = vec![0u8; 2048];
                ctx.send(
                    0,
                    Packet::new(build_eth_mmt_frame(
                        EthernetAddress([2, 0, 0, 0, 0, 1]),
                        EthernetAddress([2, 0, 0, 0, 0, 2]),
                        &repr,
                        &payload,
                    )),
                );
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
    let src = sim.add_node("src", Box::new(Mix));
    let dst = sim.add_node("dst", Box::new(Sink));
    let queue = if strict_priority {
        QueueSpec::StrictPriority {
            capacity_bytes: 64 * 1024 * 1024,
        }
    } else {
        QueueSpec::DropTailFifo {
            capacity_bytes: 64 * 1024 * 1024,
        }
    };
    let link = sim.add_oneway(
        src,
        0,
        dst,
        0,
        LinkSpec::new(Bandwidth::gbps(10), Time::from_micros(10)).with_queue(queue),
    );
    if strict_priority {
        sim.link_mut(link)
            .set_classifier(classify::priority_class_classifier);
    }
    sim.run();
    let mut worst = Time::ZERO;
    let mut alerts = 0u64;
    for (t, pkt) in sim.local_deliveries(dst) {
        let parsed = ParsedPacket::parse(pkt.bytes.clone(), 0);
        if parsed.mmt_repr().map(|r| r.experiment.experiment()) == Some(5) {
            alerts += 1;
            worst = worst.max(*t);
        }
    }
    PriorityResult {
        queue: if strict_priority {
            "strict-priority"
        } else {
            "drop-tail FIFO"
        },
        alert_max_latency: worst,
        alerts_delivered: alerts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_aware_saves_the_fresh_traffic() {
        let droptail = run_aqm(false, 400, 1);
        let aware = run_aqm(true, 400, 1);
        assert!(droptail.drops > 0 && aware.drops > 0);
        // Drop-tail sheds blindly: both kinds suffer roughly equally.
        assert!(droptail.fresh_delivery_ratio < 0.8, "{droptail:?}");
        // Deadline-aware sheds aged first: fresh survives (nearly) whole.
        assert!(aware.fresh_delivery_ratio > 0.95, "{aware:?}");
        assert!(
            aware.aged_delivery_ratio < droptail.aged_delivery_ratio,
            "aware {aware:?} vs droptail {droptail:?}"
        );
    }

    #[test]
    fn priority_band_shields_alert_latency() {
        let fifo = run_priority(false, 2);
        let prio = run_priority(true, 2);
        assert_eq!(fifo.alerts_delivered, 20);
        assert_eq!(prio.alerts_delivered, 20);
        // Behind 2000 × 8 KiB at 10 Gb/s the FIFO alerts wait ~13 ms;
        // the priority band cuts that by an order of magnitude.
        assert!(fifo.alert_max_latency > Time::from_millis(10), "{fifo:?}");
        assert!(
            prio.alert_max_latency * 5 < fifo.alert_max_latency,
            "prio {prio:?} vs fifo {fifo:?}"
        );
    }
}
