//! **E6** — the multi-domain supernova alert: DUNE → Vera Rubin (Req 10).
//!
//! "A supernova burst detected in DUNE would alert Vera Rubin on where to
//! expect photons to arrive from — since neutrinos escape the collapsing
//! star before photons are emitted" (§3). The chain:
//!
//! 1. a supernova burst elevates the DUNE event rate (`mmt-daq`);
//! 2. the burst detector fires after enough candidates in its window;
//! 3. the pointing alert crosses DUNE→FNAL→Rubin (two WAN hops,
//!    ~80 ms of propagation) either as a prioritized MMT datagram
//!    duplicated in-network, or via today's staged store-and-forward
//!    path (§4.1: "TCP termination and buffering at ④ is unsuitable for
//!    rapid inter-instrument coordination");
//! 4. success = the alert arrives with margin inside the delivery budget
//!    (1% of the minimum neutrino→photon lag: 600 ms).

use super::util::Sink;
use mmt_core::sender::{MmtSender, SenderConfig};
use mmt_daq::events::{EventGenerator, EventKind, EventRates};
use mmt_daq::supernova::{BurstDetector, SupernovaAlert};
use mmt_dataplane::programs;
use mmt_dataplane::DataplaneElement;
use mmt_netsim::{Bandwidth, LinkSpec, Simulator, Time};
use mmt_transport::relay::StoreAndForwardRelay;
use mmt_wire::mmt::ExperimentId;

/// Outcome of the end-to-end scenario.
#[derive(Debug, Clone, Copy)]
pub struct SupernovaResult {
    /// When the burst began (experiment time).
    pub burst_start: Time,
    /// When the DUNE trigger fired.
    pub detected_at: Time,
    /// Network latency of the MMT alert (detection → Rubin).
    pub mmt_alert_latency: Time,
    /// Network latency via today's staged path.
    pub staged_alert_latency: Time,
    /// The delivery budget (1% of the minimum photon lag).
    pub budget: Time,
    /// Did the MMT alert make the budget?
    pub mmt_within_budget: bool,
    /// Did the staged alert make the budget?
    pub staged_within_budget: bool,
}

const DUNE_EXP: u32 = 2;
/// One-way DUNE→FNAL propagation (South Dakota → Illinois).
const HOP1: Time = Time::from_millis(13);
/// One-way FNAL→Rubin propagation (Illinois → Chile).
const HOP2: Time = Time::from_millis(70);

/// Detect the burst in generated DUNE data; returns (burst_start,
/// detected_at, alert).
pub fn detect(seed: u64) -> (Time, Time, SupernovaAlert) {
    // Quiet running, then a burst starting at t = 2 s.
    let burst_start = Time::from_secs(2);
    let mut quiet = EventGenerator::new(EventRates::background(), 1280, seed);
    let mut detector = BurstDetector::dune_like();
    for ev in quiet.events_until(burst_start) {
        if ev.kind == EventKind::Supernova {
            detector.observe(ev.at);
        }
    }
    assert!(detector.fired_at().is_none(), "background must not trigger");
    let mut burst = EventGenerator::new(EventRates::supernova_burst(), 1280, seed ^ 0xBEEF);
    let mut detected = None;
    for ev in burst.events_until(Time::from_secs(12)) {
        if ev.kind != EventKind::Supernova {
            continue;
        }
        let at = burst_start + ev.at;
        if let Some(t) = detector.observe(at) {
            detected = Some(t);
            break;
        }
    }
    let detected_at = detected.expect("a real burst must fire the trigger"); // mmt-lint: allow(P1, "experiment invariant; a failure here is a harness bug and must be loud")
    let mut rng = mmt_netsim::SimRng::new(seed);
    let alert = SupernovaAlert::from_detection(detected_at, &mut rng);
    (burst_start, detected_at, alert)
}

/// Ship the alert over the MMT path: duplicated at the FNAL element to
/// Rubin and other observers, priority class riding the header.
fn mmt_latency(seed: u64) -> Time {
    let exp = ExperimentId::new(DUNE_EXP, 0);
    let mut sim = Simulator::new(seed);
    let dune = sim.add_node(
        "dune",
        Box::new(MmtSender::new(SenderConfig::regular(
            exp,
            1024,
            Time::from_micros(1),
            1,
        ))),
    );
    let fnal = sim.add_node(
        "fnal-switch",
        Box::new(DataplaneElement::new(programs::alert_duplicator(
            0,
            1,
            DUNE_EXP,
            &[2],
        ))),
    );
    let archive = sim.add_node("fnal-archive", Box::new(Sink));
    let rubin = sim.add_node("rubin", Box::new(Sink));
    sim.connect(dune, 0, fnal, 0, LinkSpec::new(Bandwidth::gbps(100), HOP1));
    sim.connect(
        fnal,
        1,
        archive,
        0,
        LinkSpec::new(Bandwidth::gbps(100), Time::from_micros(5)),
    );
    sim.connect(fnal, 2, rubin, 0, LinkSpec::new(Bandwidth::gbps(100), HOP2));
    sim.run();
    sim.local_deliveries(rubin)
        .first()
        .map(|(t, _)| *t)
        .expect("alert must arrive") // mmt-lint: allow(P1, "experiment invariant; a failure here is a harness bug and must be loud")
}

/// Ship the alert over today's staged path: TCP termination and
/// buffering at the FNAL DTN (modelled as 50 ms of staging — connection
/// handling, disk/broker buffering) before the second hop.
fn staged_latency(seed: u64) -> Time {
    let exp = ExperimentId::new(DUNE_EXP, 0);
    let mut sim = Simulator::new(seed);
    let dune = sim.add_node(
        "dune",
        Box::new(MmtSender::new(SenderConfig::regular(
            exp,
            1024,
            Time::from_micros(1),
            1,
        ))),
    );
    let fnal = sim.add_node(
        "fnal-dtn",
        Box::new(StoreAndForwardRelay::new(Time::from_millis(50))),
    );
    let rubin = sim.add_node("rubin", Box::new(Sink));
    sim.connect(dune, 0, fnal, 0, LinkSpec::new(Bandwidth::gbps(100), HOP1));
    sim.connect(fnal, 1, rubin, 0, LinkSpec::new(Bandwidth::gbps(100), HOP2));
    sim.run();
    sim.local_deliveries(rubin)
        .first()
        .map(|(t, _)| *t)
        .expect("alert must arrive") // mmt-lint: allow(P1, "experiment invariant; a failure here is a harness bug and must be loud")
}

/// Run the full scenario.
pub fn run(seed: u64) -> SupernovaResult {
    let (burst_start, detected_at, alert) = detect(seed);
    let budget = alert.delivery_budget();
    let mmt = mmt_latency(seed);
    let staged = staged_latency(seed);
    SupernovaResult {
        burst_start,
        detected_at,
        mmt_alert_latency: mmt,
        staged_alert_latency: staged,
        budget,
        mmt_within_budget: mmt < budget,
        staged_within_budget: staged < budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alert_arrives_well_inside_the_photon_window() {
        let r = run(2026);
        // Detection happens within ~a second of burst onset.
        assert!(r.detected_at >= r.burst_start);
        assert!(r.detected_at < r.burst_start + Time::from_secs(1));
        // MMT: two propagation hops ≈ 83 ms, well under the 600 ms budget.
        assert_eq!(r.budget, Time::from_millis(600));
        assert!(r.mmt_within_budget);
        assert!(
            r.mmt_alert_latency < Time::from_millis(90),
            "{}",
            r.mmt_alert_latency
        );
        // Staged path still arrives (600 ms is generous) but ~50 ms later.
        assert!(r.staged_alert_latency > r.mmt_alert_latency + Time::from_millis(45));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(7);
        let b = run(7);
        assert_eq!(a.detected_at, b.detected_at);
        assert_eq!(a.mmt_alert_latency, b.mmt_alert_latency);
    }
}
