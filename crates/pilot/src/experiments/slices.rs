//! **E9** — instrument slicing and header reuse across detectors.
//!
//! Req 8: "detectors may be partitioned for different simultaneous
//! experiments by different researchers, therefore the protocol must
//! indicate which 'slice' of the instrument produced the data" — the
//! slice rides the top byte of the experiment-id field, so a P4 table can
//! demultiplex streams *without touching payload*. Req 9: DUNE's
//! detectors "have specific headers but they all share a top-level DAQ
//! header" — shown by carrying DUNE- and Mu2e-sub-headered records
//! through the same machinery.

use super::util::Sink;
use mmt_core::sender::{MmtSender, SenderConfig};
use mmt_dataplane::pipeline::PipelineBuilder;
use mmt_dataplane::table::{FieldValue, MatchField, Table, TableEntry};
use mmt_dataplane::{Action, DataplaneElement};
use mmt_netsim::{Bandwidth, LinkSpec, NodeId, Simulator, Time};
use mmt_wire::daq::{DuneSubHeader, Mu2eSubHeader, SubHeader, TriggerRecord};
use mmt_wire::mmt::ExperimentId;

/// Result of the slicing experiment.
#[derive(Debug, Clone)]
pub struct SliceResult {
    /// Messages each slice's receiver got.
    pub per_slice_delivered: Vec<u64>,
    /// Messages that landed at the wrong slice's receiver.
    pub cross_deliveries: u64,
    /// DUNE-sub-headered records that decoded cleanly end to end.
    pub dune_records_ok: u64,
    /// Mu2e-sub-headered records that decoded cleanly end to end.
    pub mu2e_records_ok: u64,
}

/// Build a demux pipeline: slice s → port 1+s.
fn slice_demux(slices: u8) -> mmt_dataplane::Pipeline {
    let mut tbl = Table::new("slice_demux", vec![MatchField::MmtSlice]);
    for s in 0..slices {
        tbl.insert(TableEntry {
            key: vec![FieldValue::Exact(u64::from(s))],
            priority: 0,
            actions: vec![Action::Forward {
                port: 1 + s as usize,
            }],
        });
    }
    PipelineBuilder::new().table(tbl).latency_ns(400).build()
}

/// Run the demux: `slices` senders (one per slice), one switch, one
/// receiver per slice; plus a header-reuse check through the DAQ record
/// formats.
pub fn run(slices: u8, messages_per_slice: usize, seed: u64) -> SliceResult {
    let mut sim = Simulator::new(seed);
    let switch = sim.add_node(
        "demux",
        Box::new(DataplaneElement::new(slice_demux(slices))),
    );
    let mut receivers: Vec<NodeId> = Vec::new();
    let spec = LinkSpec::new(Bandwidth::gbps(100), Time::from_micros(1));
    for s in 0..slices {
        let rx = sim.add_node(&format!("slice-{s}-rx"), Box::new(Sink));
        sim.add_oneway(switch, 1 + s as usize, rx, 0, spec);
        receivers.push(rx);
    }
    // All senders feed the switch's port 0 through a mux link each; the
    // simulator needs distinct ports, so senders inject directly.
    for s in 0..slices {
        let exp = ExperimentId::new(2, s);
        let sender_cfg = SenderConfig::regular(exp, 512, Time::from_micros(2), messages_per_slice);
        let tx = sim.add_node(
            &format!("slice-{s}-tx"),
            Box::new(MmtSender::new(sender_cfg)),
        );
        // Each sender gets its own ingress port ≥ 1+slices on the switch.
        sim.add_oneway(tx, 0, switch, 0, spec);
        // NOTE: multiple links landing on the same (node, port) pair is
        // fine for ingress — ports are only exclusive for egress.
    }
    sim.run();
    let per_slice: Vec<u64> = receivers
        .iter()
        .map(|&r| sim.local_deliveries(r).len() as u64)
        .collect();
    // Cross-delivery check: every packet at receiver s must carry slice s.
    let mut cross = 0u64;
    for (s, &r) in receivers.iter().enumerate() {
        for (_, pkt) in sim.local_deliveries(r) {
            let parsed = mmt_dataplane::parser::ParsedPacket::parse(pkt.bytes.clone(), 0);
            let slice = parsed
                .mmt_repr()
                .map(|m| m.experiment.slice())
                .unwrap_or(255);
            if usize::from(slice) != s {
                cross += 1;
            }
        }
    }
    // Header-reuse: encode/decode both detector families' records.
    let mut dune_ok = 0u64;
    let mut mu2e_ok = 0u64;
    for i in 0..50u64 {
        let dune = TriggerRecord {
            run: 1,
            event: i,
            timestamp_ns: i * 1000,
            sub: SubHeader::Dune(DuneSubHeader {
                crate_no: 1,
                slot: 2,
                link: 3,
                first_channel: 0,
                last_channel: 63,
            }),
            payload: vec![0xAA; 96],
        };
        // mmt-lint: allow(P1, "encode/decode of a record this experiment just built; inverse pair")
        if TriggerRecord::decode(&dune.encode().unwrap()).as_ref() == Ok(&dune) {
            dune_ok += 1;
        }
        let mu2e = TriggerRecord {
            run: 1,
            event: i,
            timestamp_ns: i * 1000,
            sub: SubHeader::Mu2e(Mu2eSubHeader {
                dtc_id: 1,
                roc_id: 2,
                packet_type: 3,
                subsystem: 4,
            }),
            payload: vec![0xBB; 96],
        };
        // mmt-lint: allow(P1, "encode/decode of a record this experiment just built; inverse pair")
        if TriggerRecord::decode(&mu2e.encode().unwrap()).as_ref() == Ok(&mu2e) {
            mu2e_ok += 1;
        }
    }
    SliceResult {
        per_slice_delivered: per_slice,
        cross_deliveries: cross,
        dune_records_ok: dune_ok,
        mu2e_records_ok: mu2e_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_demux_cleanly() {
        let r = run(4, 100, 9);
        assert_eq!(r.per_slice_delivered, vec![100, 100, 100, 100]);
        assert_eq!(r.cross_deliveries, 0);
    }

    #[test]
    fn shared_top_header_carries_both_detectors() {
        let r = run(2, 10, 9);
        assert_eq!(r.dune_records_ok, 50);
        assert_eq!(r.mu2e_records_ok, 50);
    }
}
