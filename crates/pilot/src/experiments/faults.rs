//! **E12** — fault sweep: pilot recovery under composed WAN faults.
//!
//! The paper's recovery story (§5.4: NAK-from-nearest-buffer, DTN 1
//! answering from its retransmission store) is exercised in earlier
//! experiments only against independent corruption loss. Real WAN paths
//! also reorder, duplicate, jitter, and flap — and the NAK reverse path
//! shares the same fate. E12 sweeps composed `FaultSpec`s over the Fig. 4
//! pilot and reports whether recovery still converges: messages
//! delivered, duplicates suppressed, NAKs spent, and residual loss.

use crate::topology::{Pilot, PilotConfig};
use mmt_netsim::{FaultSpec, PeriodicOutage, Time};

/// Parameters for one E12 sweep.
#[derive(Debug, Clone, Copy)]
pub struct FaultParams {
    /// Messages streamed per scenario.
    pub messages: usize,
    /// WAN corruption loss probability (applies in every scenario).
    pub loss: f64,
    /// Seed.
    pub seed: u64,
}

impl FaultParams {
    /// Headline parameters: 2 000 messages, 10⁻³ corruption loss.
    pub fn default_run() -> FaultParams {
        FaultParams {
            messages: 2_000,
            loss: 1e-3,
            seed: 7,
        }
    }
}

/// One fault scenario: a label plus the WAN fault spec.
#[derive(Debug, Clone, Copy)]
pub struct FaultScenario {
    /// Short human label for the table row.
    pub name: &'static str,
    /// The WAN fault attached to both directions of the crossing.
    pub fault: FaultSpec,
}

/// The scenario ladder: each rung composes one more fault class.
pub fn scenarios() -> Vec<FaultScenario> {
    let reorder = FaultSpec::none().with_reorder(0.05, Time::from_micros(500));
    let dup = reorder.with_duplication(0.02, Time::from_micros(50));
    let jitter = dup.with_jitter(Time::from_micros(100));
    // The outage opens 200 µs in: late enough that the stream head (and
    // with it the retransmit-source announcement) gets through, early
    // enough to hit the initial burst at any sweep scale.
    let flap = jitter.with_scheduled_outage(PeriodicOutage {
        first_down: Time::from_micros(200),
        down_for: Time::from_millis(2),
        period: Time::from_millis(50),
    });
    let nak_loss = flap.with_control_loss(0.2);
    vec![
        FaultScenario {
            name: "baseline (loss only)",
            fault: FaultSpec::none(),
        },
        FaultScenario {
            name: "+reorder 5%",
            fault: reorder,
        },
        FaultScenario {
            name: "+dup 2%",
            fault: dup,
        },
        FaultScenario {
            name: "+jitter 100us",
            fault: jitter,
        },
        FaultScenario {
            name: "+flap 2ms/50ms",
            fault: flap,
        },
        FaultScenario {
            name: "+nak loss 20%",
            fault: nak_loss,
        },
    ]
}

/// What one scenario measured.
#[derive(Debug, Clone)]
pub struct FaultResult {
    /// Scenario label.
    pub name: &'static str,
    /// Whether every message reached the receiver.
    pub complete: bool,
    /// Messages delivered (deduplicated).
    pub delivered: u64,
    /// Duplicate packets the receiver suppressed.
    pub duplicates: u64,
    /// NAKs the receiver sent.
    pub naks_sent: u64,
    /// Sequences recovered via NAK.
    pub recovered: u64,
    /// Sequences abandoned as lost.
    pub lost: u64,
    /// Forward-path fault drops (flap), plus reverse-path control drops.
    pub flap_drops: u64,
    /// NAKs (and other control) dropped on the reverse WAN.
    pub control_drops: u64,
    /// Duplicates the fault layer injected on the forward WAN.
    pub dup_injected: u64,
    /// When the stream completed (virtual time), if it did.
    pub completed_at: Option<Time>,
}

/// Run one scenario.
pub fn run_one(p: &FaultParams, scenario: &FaultScenario) -> FaultResult {
    let mut cfg = PilotConfig::default_run();
    cfg.message_count = p.messages;
    cfg.wan_loss = mmt_netsim::LossModel::Random(p.loss);
    cfg.seed = p.seed;
    cfg.wan_fault = scenario.fault;
    // Defensive posture under faults: holdoff below the NAK retry
    // interval, so storms are damped but legitimate retries served.
    cfg.retx_holdoff = Time::from_millis(2);
    let mut pilot = Pilot::build(cfg);
    pilot.run(Time::from_secs(120));
    let r = pilot.report();
    FaultResult {
        name: scenario.name,
        complete: pilot.is_complete(),
        delivered: r.receiver.delivered,
        duplicates: r.receiver.duplicates,
        naks_sent: r.receiver.naks_sent,
        recovered: r.receiver.recovered,
        lost: r.receiver.lost,
        flap_drops: r.wan_flap_drops + r.wan_rev_flap_drops,
        control_drops: r.wan_rev_control_drops,
        dup_injected: r.wan_dup_injected,
        completed_at: r.completed_at,
    }
}

/// Run the whole ladder.
pub fn run_all(p: &FaultParams) -> Vec<FaultResult> {
    scenarios().iter().map(|s| run_one(p, s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_recovers_at_reduced_scale() {
        let p = FaultParams {
            messages: 300,
            loss: 1e-3,
            seed: 7,
        };
        let results = run_all(&p);
        assert_eq!(results.len(), 6);
        for r in &results {
            assert!(r.complete, "{} must complete", r.name);
            assert_eq!(r.lost, 0, "{} must lose nothing", r.name);
            assert_eq!(r.delivered, 300, "{}", r.name);
        }
        // The composed rungs actually exercise their fault class.
        assert!(results[2].dup_injected > 0, "dup rung injects duplicates");
        assert!(results[4].flap_drops > 0, "flap rung drops packets");
        let full = &results[5];
        assert!(
            full.control_drops > 0,
            "nak-loss rung must drop control packets"
        );
    }
}
