//! **E5** — alert fan-out: in-network duplication vs store-and-forward
//! unicast distribution.
//!
//! §2.1/§4.1: Vera Rubin's alert stream must reach "end-users at the
//! time-scale of milliseconds", and §5.1: "Streams can be duplicated in
//! the network ⑤ to reach several downstream researchers directly,
//! ensuring that they get rapid access to fresh data." Today the alert
//! archive terminates the stream and unicasts copies to each subscriber.
//! This experiment measures the time until the *last* subscriber holds
//! the alert, as the subscriber count grows.

use super::util::Sink;
use mmt_core::sender::{MmtSender, SenderConfig};
use mmt_dataplane::programs;
use mmt_dataplane::DataplaneElement;
use mmt_netsim::{
    Bandwidth, Context, LinkSpec, Node, NodeId, Packet, PortId, Simulator, Time, TimerToken,
};
use mmt_wire::mmt::ExperimentId;

const ALERT_BYTES: usize = 8192;
/// Vera Rubin's experiment number in the catalog.
const ALERT_EXP: u32 = 5;

/// One fan-out measurement.
#[derive(Debug, Clone, Copy)]
pub struct AlertResult {
    /// Variant name.
    pub variant: &'static str,
    /// Number of subscribers.
    pub subscribers: usize,
    /// Time until the first subscriber held the alert.
    pub first: Time,
    /// Time until the last subscriber held the alert.
    pub last: Time,
}

/// Today's distribution point: terminates the stream, stages it, then
/// unicasts one copy per subscriber with a per-copy application cost.
struct UnicastFanout {
    staging: Time,
    per_copy: Time,
    subscribers: usize,
    pending: Vec<Packet>,
}

impl UnicastFanout {
    fn new(staging: Time, per_copy: Time, subscribers: usize) -> UnicastFanout {
        UnicastFanout {
            staging,
            per_copy,
            subscribers,
            pending: Vec::new(),
        }
    }
}

impl Node for UnicastFanout {
    fn on_packet(&mut self, ctx: &mut Context<'_>, _port: PortId, pkt: Packet) {
        self.pending.push(pkt);
        let idx = self.pending.len() - 1;
        // After staging, copies go out one at a time.
        for s in 0..self.subscribers {
            ctx.set_timer(
                self.staging + self.per_copy * (s as u64 + 1),
                (idx * self.subscribers + s) as TimerToken,
            );
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: TimerToken) {
        let idx = token as usize / self.subscribers;
        let sub = token as usize % self.subscribers;
        let pkt = self.pending[idx].clone();
        ctx.send(1 + sub, pkt);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn sender(exp: ExperimentId) -> MmtSender {
    MmtSender::new(SenderConfig::regular(
        exp,
        ALERT_BYTES,
        Time::from_micros(1),
        1,
    ))
}

fn subscriber_link() -> LinkSpec {
    // Researchers sit ~20 ms away over 10 GbE campus paths.
    LinkSpec::new(Bandwidth::gbps(10), Time::from_millis(20))
}

fn collect(sim: &Simulator, subs: &[NodeId]) -> (Time, Time) {
    let mut times: Vec<Time> = subs
        .iter()
        .map(|&s| {
            sim.local_deliveries(s)
                .first()
                .map(|(t, _)| *t)
                .expect("every subscriber must receive the alert") // mmt-lint: allow(P1, "experiment invariant; a failure here is a harness bug and must be loud")
        })
        .collect();
    times.sort_unstable();
    (*times.first().unwrap(), *times.last().unwrap()) // mmt-lint: allow(P1, "experiment invariant; a failure here is a harness bug and must be loud")
}

/// MMT: the alert is duplicated in the network element it traverses.
pub fn run_mmt(subscribers: usize) -> AlertResult {
    let exp = ExperimentId::new(ALERT_EXP, 0);
    let mut sim = Simulator::new(41);
    let src = sim.add_node("telescope", Box::new(sender(exp)));
    let sub_ports: Vec<usize> = (2..2 + subscribers).collect();
    let dup = sim.add_node(
        "dup-switch",
        Box::new(DataplaneElement::new(programs::alert_duplicator(
            0, 1, ALERT_EXP, &sub_ports,
        ))),
    );
    let archive = sim.add_node("archive", Box::new(Sink));
    sim.connect(
        src,
        0,
        dup,
        0,
        LinkSpec::new(Bandwidth::gbps(100), Time::from_micros(5)),
    );
    sim.connect(
        dup,
        1,
        archive,
        0,
        LinkSpec::new(Bandwidth::gbps(100), Time::from_millis(5)),
    );
    let subs: Vec<NodeId> = (0..subscribers)
        .map(|i| {
            let n = sim.add_node(&format!("researcher-{i}"), Box::new(Sink));
            sim.connect(dup, 2 + i, n, 0, subscriber_link());
            n
        })
        .collect();
    sim.run();
    let (first, last) = collect(&sim, &subs);
    AlertResult {
        variant: "MMT in-network duplication",
        subscribers,
        first,
        last,
    }
}

/// Baseline: stream terminates at the archive DTN, which then unicasts
/// copies (5 ms staging — buffering, brokering, connection setup — plus
/// 100 µs of per-copy application/TCP work).
pub fn run_unicast(subscribers: usize) -> AlertResult {
    let exp = ExperimentId::new(ALERT_EXP, 0);
    let mut sim = Simulator::new(41);
    let src = sim.add_node("telescope", Box::new(sender(exp)));
    let archive = sim.add_node(
        "archive",
        Box::new(UnicastFanout::new(
            Time::from_millis(5),
            Time::from_micros(100),
            subscribers,
        )),
    );
    sim.connect(
        src,
        0,
        archive,
        0,
        LinkSpec::new(Bandwidth::gbps(100), Time::from_millis(5)),
    );
    let subs: Vec<NodeId> = (0..subscribers)
        .map(|i| {
            let n = sim.add_node(&format!("researcher-{i}"), Box::new(Sink));
            sim.connect(archive, 1 + i, n, 0, subscriber_link());
            n
        })
        .collect();
    sim.run();
    let (first, last) = collect(&sim, &subs);
    AlertResult {
        variant: "store-and-forward unicast",
        subscribers,
        first,
        last,
    }
}

/// The published sweep over subscriber counts.
pub fn sweep() -> Vec<AlertResult> {
    let mut out = Vec::new();
    for n in [1usize, 4, 16, 64] {
        out.push(run_mmt(n));
        out.push(run_unicast(n));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplication_beats_unicast_and_scales_flat() {
        let mmt_small = run_mmt(4);
        let mmt_large = run_mmt(64);
        let uni_small = run_unicast(4);
        let uni_large = run_unicast(64);
        // MMT wins at any size (no staging, no per-copy serial work).
        assert!(mmt_small.last < uni_small.last);
        assert!(mmt_large.last < uni_large.last);
        // MMT's last-subscriber latency is flat in N (copies leave in
        // parallel ports); unicast grows with N.
        let mmt_growth = mmt_large.last.as_nanos() as f64 / mmt_small.last.as_nanos() as f64;
        assert!(mmt_growth < 1.05, "{mmt_growth}");
        assert!(uni_large.last > uni_small.last);
        // The staging delay alone puts unicast ≥ 5 ms behind.
        assert!(uni_small.last >= mmt_small.last + Time::from_millis(5));
    }

    #[test]
    fn mmt_alert_latency_is_milliseconds_scale() {
        let r = run_mmt(16);
        // ≈ 20 ms propagation + microseconds of switching.
        assert!(r.last < Time::from_millis(21), "{}", r.last);
        assert!(r.first >= Time::from_millis(20));
    }

    #[test]
    fn single_subscriber_degenerate_case() {
        let mmt = run_mmt(1);
        let uni = run_unicast(1);
        assert_eq!(mmt.first, mmt.last);
        assert_eq!(uni.first, uni.last);
        assert!(mmt.last < uni.last);
    }
}
