//! **E10** — osmotic sensors over cell backhaul (§6, challenge 3).
//!
//! "We believe that TCP is adequate for these low-volume streams (over
//! telecom networks), but finding suitable transport modes would better
//! integrate these sensors with other research infrastructure." The
//! integration story: sensor trickles enter an aggregation gateway over
//! jittery, lossy cell backhaul in mode 0; the gateway is a standard
//! DAQ→WAN border, so from there the readings ride the *same* machinery
//! as the 100 Tb/s instruments — sequencing, nearest-buffer recovery, age
//! tracking — with no sensor-side changes.

use mmt_core::buffer::{RetransmitBuffer, PORT_DAQ, PORT_WAN};
use mmt_core::receiver::{MmtReceiver, ReceiverConfig};
use mmt_core::sender::{MmtSender, SenderConfig};
use mmt_daq::osmotic::SensorField;
use mmt_dataplane::programs::BorderConfig;
use mmt_netsim::{Bandwidth, LinkSpec, LossModel, Simulator, Time};
use mmt_wire::mmt::ExperimentId;
use mmt_wire::Ipv4Address;

/// Result of the integration run.
#[derive(Debug, Clone)]
pub struct OsmoticResult {
    /// Readings produced by the field.
    pub produced: u64,
    /// Readings lost on the cell backhaul (unrecoverable: mode 0 there,
    /// as the paper prescribes — the sensors do not buffer).
    pub lost_on_backhaul: u64,
    /// Readings that entered the WAN (mode 2).
    pub entered_wan: u64,
    /// Readings delivered to the archive.
    pub delivered: u64,
    /// Readings recovered by NAK on the WAN leg.
    pub recovered_on_wan: u64,
    /// Fraction of *gateway-reached* readings that arrived (WAN
    /// reliability — should be 1.0 thanks to mode 2).
    pub wan_delivery_ratio: f64,
    /// Distinct sensor slices observed at the archive.
    pub slices_seen: usize,
}

/// Run the scenario: a scintillation array → cell backhaul → gateway
/// (mode upgrade) → lossy WAN → archive.
pub fn run(duration: Time, seed: u64) -> OsmoticResult {
    let exp = ExperimentId::new(6, 0);
    let field = SensorField::scintillation_array(exp);
    let readings = field.readings_until(duration, seed);
    let produced = readings.len() as u64;

    let mut sim = Simulator::new(seed);
    // One MmtSender stands in for the field's uplink multiplexer: the
    // schedule is the merged reading stream; slices are per-sensor.
    // (Message payloads carry the reading index; slice fidelity is
    // checked separately through the daq crate's generator.)
    let schedule: Vec<Time> = readings.iter().map(|m| m.at).collect();
    let mut scfg = SenderConfig::regular(exp, field.reading_bytes, Time::ZERO, 0);
    scfg.schedule = schedule;
    let sensors = sim.add_node("sensor-field", Box::new(MmtSender::new(scfg)));

    let gateway = sim.add_node(
        "gateway",
        Box::new(RetransmitBuffer::new(
            exp,
            BorderConfig {
                daq_port: PORT_DAQ,
                wan_port: PORT_WAN,
                retransmit_source: (Ipv4Address::new(10, 6, 0, 1), 47_000),
                deadline_budget_ns: Time::from_secs(5).as_nanos(),
                notify_addr: Ipv4Address::new(10, 6, 0, 1),
                priority_class: None,
            },
            64 * 1024 * 1024,
            None,
        )),
    );
    let mut rcfg = ReceiverConfig::wan_defaults(exp, Ipv4Address::new(10, 0, 0, 8));
    rcfg.nak_interval = Time::from_millis(120);
    rcfg.give_up_after = Time::from_secs(10);
    // Open-ended stream: backhaul loss means the archive cannot know the
    // true count, so no tail guard here.
    rcfg.expect_messages = None;
    let archive = sim.add_node("archive", Box::new(MmtReceiver::new(rcfg)));

    // Cell backhaul: 50 Mb/s, 40 ms, 1% loss, bursty.
    let (backhaul, _) = sim.connect(
        sensors,
        0,
        gateway,
        PORT_DAQ,
        LinkSpec::new(Bandwidth::mbps(50), Time::from_millis(40))
            .with_loss(LossModel::bursty(0.01, 5.0)),
    );
    // Research WAN: 100 Gb/s, 30 ms, light corruption loss.
    sim.connect(
        gateway,
        PORT_WAN,
        archive,
        0,
        LinkSpec::new(Bandwidth::gbps(100), Time::from_millis(15))
            .with_loss(LossModel::Random(1e-3)),
    );
    sim.run_until(duration + Time::from_secs(20));

    let gw = sim.node_as::<RetransmitBuffer>(gateway).unwrap(); // mmt-lint: allow(P1, "node registered with this concrete type in build()")
    let rx = sim.node_as::<MmtReceiver>(archive).unwrap(); // mmt-lint: allow(P1, "node registered with this concrete type in build()")
    let entered_wan = gw.stats.forwarded;
    let lost_on_backhaul = sim.link_stats(backhaul).corruption_losses;
    let delivered = rx.stats.delivered;
    let slices_seen = rx
        .log()
        .iter()
        .map(|m| m.msg_index % 256)
        .collect::<std::collections::HashSet<_>>()
        .len();
    OsmoticResult {
        produced,
        lost_on_backhaul,
        entered_wan,
        delivered,
        recovered_on_wan: rx.stats.recovered,
        wan_delivery_ratio: if entered_wan == 0 {
            0.0
        } else {
            delivered as f64 / entered_wan as f64
        },
        slices_seen,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wan_leg_is_reliable_backhaul_is_not() {
        let r = run(Time::from_secs(20), 5);
        assert!(r.produced > 3_000, "{r:?}");
        // The backhaul genuinely loses readings (mode 0: unrecoverable).
        assert!(r.lost_on_backhaul > 0, "{r:?}");
        assert_eq!(r.produced, r.entered_wan + r.lost_on_backhaul);
        // The WAN leg delivers everything that reached the gateway —
        // mode 2's NAK recovery covers the 0.1% corruption.
        assert_eq!(r.delivered, r.entered_wan, "{r:?}");
        assert!((r.wan_delivery_ratio - 1.0).abs() < 1e-9);
        assert!(r.recovered_on_wan > 0, "corruption must have bitten: {r:?}");
    }

    #[test]
    fn deterministic() {
        let a = run(Time::from_secs(5), 7);
        let b = run(Time::from_secs(5), 7);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.lost_on_backhaul, b.lost_on_backhaul);
    }
}
