//! Small shared helpers for experiment topologies.

use mmt_netsim::{Context, Node, Packet, PortId};

/// A terminal node that hands every arrival to its local application.
pub struct Sink;

impl Node for Sink {
    fn on_packet(&mut self, ctx: &mut Context<'_>, _port: PortId, pkt: Packet) {
        ctx.deliver_local(pkt);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_netsim::{Simulator, Time};

    #[test]
    fn sink_records_deliveries() {
        let mut sim = Simulator::new(1);
        let s = sim.add_node("s", Box::new(Sink));
        sim.inject(Time::ZERO, s, 0, Packet::new(vec![1, 2, 3]));
        sim.run();
        assert_eq!(sim.local_deliveries(s).len(), 1);
    }
}
