//! The experiment suite: one module per entry in DESIGN.md's
//! per-experiment index. Each experiment is a plain function returning a
//! result struct; `mmt-bench`'s `tables` binary renders them.

pub mod alerts;
pub mod aqm;
pub mod backpressure;
pub mod failover;
pub mod faults;
pub mod fct;
pub mod hol;
pub mod osmotic;
pub mod payload;
pub mod rates;
pub mod scale;
pub mod slices;
pub mod supernova;
pub mod throughput;
pub mod timeliness;
pub mod today;
pub mod util;
