//! **E14** — many-flow scale-out: the fleet topology under 1/2/4 shards.
//!
//! Demonstrates the two halves of the scale story at once: the sharded
//! runner produces *byte-identical* telemetry and trace digests at every
//! shard count (the determinism column), while spreading the event-loop
//! work across threads (the balance column). Wall-clock speedup is
//! measured by `mmt-bench`/`mmt-sim bench`, which own the clock; this
//! experiment reports only deterministic quantities.

use crate::manyflow::{self, ManyFlowConfig};

/// One E14 row: the fleet under a given shard count.
#[derive(Debug, Clone)]
pub struct E14Row {
    /// Worker shards used.
    pub shards: usize,
    /// Sensors in the fleet.
    pub sensors: usize,
    /// DTN groups.
    pub dtns: usize,
    /// Packets delivered fleet-wide.
    pub delivered: u64,
    /// Simulator events processed fleet-wide.
    pub events: u64,
    /// Merged trace digest (equal across rows ⇔ deterministic).
    pub digest: u64,
    /// Largest shard's share of events minus the ideal `1/N` share —
    /// 0.0 is perfect balance.
    pub imbalance: f64,
}

/// Run the fleet at each shard count in `shard_counts`.
pub fn scale_rows(sensors: usize, seed: u64, shard_counts: &[usize]) -> Vec<E14Row> {
    shard_counts
        .iter()
        .map(|&shards| {
            let mut cfg = ManyFlowConfig::fleet(sensors, shards, seed);
            cfg.trace = sensors <= 1024;
            let report = manyflow::run(&cfg);
            let ideal = 1.0 / shards as f64;
            let worst = report
                .shard
                .shard_utilization()
                .into_iter()
                .fold(0.0f64, f64::max);
            E14Row {
                shards,
                sensors,
                dtns: cfg.dtns,
                delivered: report.shard.packets,
                events: report.shard.events,
                digest: report.shard.trace_digest,
                imbalance: (worst - ideal).max(0.0),
            }
        })
        .collect()
}

/// The quick (CI) variant: 256 sensors.
pub fn quick(seed: u64) -> Vec<E14Row> {
    scale_rows(256, seed, &[1, 2, 4])
}

/// The full variant: 10 000 sensors, as in the paper-scale fleet.
pub fn full(seed: u64) -> Vec<E14Row> {
    scale_rows(10_000, seed, &[1, 2, 4])
}

/// The high-K ladder: one row per fleet size in `sensors`, all at a fixed
/// shard count. The struct-of-arrays flow core plus virtual payload tails
/// make K = 1 000 000 feasible in one process; memory figures belong to
/// `mmt-bench` (this experiment reports only deterministic quantities).
pub fn ladder(sensors: &[usize], shards: usize, seed: u64) -> Vec<E14Row> {
    sensors
        .iter()
        .flat_map(|&k| scale_rows(k, seed, &[shards]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_identical_across_shard_counts() {
        let rows = quick(9);
        assert_eq!(rows.len(), 3);
        assert!(rows.windows(2).all(|w| w[0].digest == w[1].digest));
        assert!(rows.windows(2).all(|w| w[0].delivered == w[1].delivered));
        assert!(rows.windows(2).all(|w| w[0].events == w[1].events));
        assert_eq!(rows[0].delivered, 256 * 8);
    }

    #[test]
    fn ladder_rows_scale_delivery_with_k() {
        let rows = ladder(&[64, 256], 2, 5);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].delivered, 64 * 8);
        assert_eq!(rows[1].delivered, 256 * 8);
        assert!(rows[1].events > rows[0].events);
    }

    #[test]
    fn sharding_spreads_load() {
        let rows = quick(2);
        let four = rows.iter().find(|r| r.shards == 4);
        match four {
            Some(r) => assert!(
                r.imbalance < 0.25,
                "16 groups over 4 shards should balance within 25% ({})",
                r.imbalance
            ),
            None => unreachable!("quick() always includes a 4-shard row"),
        }
    }
}
