//! **E3** — single-stream goodput vs link rate.
//!
//! §4.1: tuned TCP reaches ~30 Gb/s single-stream in production \[46\]
//! (55 Gb/s in testbeds \[66\]) while "modern DTNs are being installed with
//! 400GbE NICs" — the gap MMT's simplicity is meant to close (Req 2:
//! line-rate transfers). The MMT datapath is header-only and
//! hardware-offloadable, so its modelled host cost is the NIC-DMA floor
//! (≈120 ns/message, i.e. ≈550 Gb/s at 8 KiB) rather than a
//! protocol-stack cost.

use mmt_core::receiver::{MmtReceiver, ReceiverConfig};
use mmt_core::sender::{MmtSender, SenderConfig};
use mmt_netsim::{Bandwidth, LinkSpec, Simulator, Time};
use mmt_transport::{CcProfile, TcpReceiver, TcpSender};
use mmt_wire::mmt::ExperimentId;
use mmt_wire::Ipv4Address;

const MSG: usize = 8192;
/// Modelled per-message host cost for the MMT endpoint (NIC-DMA floor).
const MMT_HOST_NS: u64 = 120;

/// One goodput measurement.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputResult {
    /// Link rate.
    pub link: Bandwidth,
    /// Transport variant name.
    pub variant: &'static str,
    /// Achieved goodput, bits per second.
    pub goodput_bps: f64,
}

impl ThroughputResult {
    /// Goodput in Gb/s.
    pub fn goodput_gbps(&self) -> f64 {
        self.goodput_bps / 1e9
    }
}

/// Measure one TCP profile on one link rate (10 ms WAN RTT, no loss).
pub fn run_tcp(link: Bandwidth, profile: CcProfile, transfer_bytes: u64) -> ThroughputResult {
    let mut sim = Simulator::new(31);
    let snd = sim.add_node(
        "snd",
        Box::new(TcpSender::bulk(profile, 1, transfer_bytes, MSG)),
    );
    let rcv = sim.add_node(
        "rcv",
        Box::new(TcpReceiver::new(1, MSG, profile.max_window_bytes)),
    );
    sim.connect(snd, 0, rcv, 0, LinkSpec::new(link, Time::from_millis(5)));
    sim.run_until(Time::from_secs(600));
    let s = sim.node_as::<TcpSender>(snd).unwrap(); // mmt-lint: allow(P1, "node registered with this concrete type in build()")
    let goodput_bps = match s.stats.completed_at {
        Some(fct) => transfer_bytes as f64 * 8.0 / fct.as_secs_f64(),
        None => s.stats.bytes_acked as f64 * 8.0 / 600.0,
    };
    ThroughputResult {
        link,
        variant: profile.name,
        goodput_bps,
    }
}

/// Measure MMT on one link rate: the sensor paces at the minimum of line
/// rate and its (NIC-floor) host ceiling.
pub fn run_mmt(link: Bandwidth, transfer_bytes: u64) -> ThroughputResult {
    let exp = ExperimentId::new(2, 0);
    let mut sim = Simulator::new(31);
    let count = (transfer_bytes as usize).div_ceil(MSG);
    // Pace: whichever is slower, the wire or the host floor.
    let wire_gap = link.tx_time(MSG + 50);
    let gap = wire_gap.max(Time::from_nanos(MMT_HOST_NS));
    let snd = sim.add_node(
        "sensor",
        Box::new(MmtSender::new(SenderConfig::regular(exp, MSG, gap, count))),
    );
    let mut rcfg = ReceiverConfig::wan_defaults(exp, Ipv4Address::new(10, 0, 0, 8));
    rcfg.expect_messages = Some(count as u64);
    let rcv = sim.add_node("receiver", Box::new(MmtReceiver::new(rcfg)));
    sim.connect(snd, 0, rcv, 0, LinkSpec::new(link, Time::from_millis(5)));
    sim.run_until(Time::from_secs(600));
    let r = sim.node_as::<MmtReceiver>(rcv).unwrap(); // mmt-lint: allow(P1, "node registered with this concrete type in build()")
    let goodput_bps = match r.stats.completed_at {
        Some(fct) => (count * MSG) as f64 * 8.0 / fct.as_secs_f64(),
        None => (r.stats.delivered * MSG as u64) as f64 * 8.0 / 600.0,
    };
    ThroughputResult {
        link,
        variant: "MMT",
        goodput_bps,
    }
}

/// The full E3 sweep: 10/40/100/400 GbE × {untuned, tuned, tuned-2024,
/// MMT}. `transfer_scale` multiplies the per-rate transfer volume (1.0 =
/// the full-size run used for the published table).
pub fn sweep(transfer_scale: f64) -> Vec<ThroughputResult> {
    let mut out = Vec::new();
    for gbps in [10u64, 40, 100, 400] {
        let link = Bandwidth::gbps(gbps);
        // Size transfers so each run covers seconds of stream time.
        let bytes = ((gbps as f64) * 1e9 / 8.0 * 0.5 * transfer_scale) as u64;
        out.push(run_tcp(link, CcProfile::untuned(), bytes.min(100_000_000)));
        out.push(run_tcp(link, CcProfile::tuned_dtn(), bytes));
        out.push(run_tcp(link, CcProfile::tuned_dtn_2024(), bytes));
        out.push(run_mmt(link, bytes));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_shape_matches_paper_claims() {
        // 100 GbE: tuned TCP ≈ 30 Gb/s, 2024 kernel ≈ 55, MMT ≈ line rate.
        let link = Bandwidth::gbps(100);
        let tuned = run_tcp(link, CcProfile::tuned_dtn(), 1_500_000_000);
        // The 2024 profile ramps to a ~69 MB window; amortize slow start
        // over a longer transfer, as the testbed measurements do [66].
        let tuned24 = run_tcp(link, CcProfile::tuned_dtn_2024(), 4_000_000_000);
        let mmt = run_mmt(link, 1_500_000_000);
        assert!(
            (22.0..32.0).contains(&tuned.goodput_gbps()),
            "tuned {:.1}",
            tuned.goodput_gbps()
        );
        assert!(
            (40.0..58.0).contains(&tuned24.goodput_gbps()),
            "tuned-2024 {:.1}",
            tuned24.goodput_gbps()
        );
        assert!(
            mmt.goodput_gbps() > 90.0,
            "MMT near line rate: {:.1}",
            mmt.goodput_gbps()
        );
    }

    #[test]
    fn on_slow_links_everyone_fills_the_pipe() {
        // A long transfer amortizes the slow-start overshoot cycle that a
        // 10 GbE bottleneck inflicts on a window-unlimited tuned stack.
        let link = Bandwidth::gbps(10);
        let tuned = run_tcp(link, CcProfile::tuned_dtn(), 1_000_000_000);
        let mmt = run_mmt(link, 200_000_000);
        assert!(tuned.goodput_gbps() > 5.0, "{:.1}", tuned.goodput_gbps());
        assert!(mmt.goodput_gbps() > 9.0, "{:.1}", mmt.goodput_gbps());
        assert!(mmt.goodput_gbps() > tuned.goodput_gbps());
    }

    #[test]
    fn untuned_stack_is_window_starved_on_fat_links() {
        let r = run_tcp(Bandwidth::gbps(100), CcProfile::untuned(), 50_000_000);
        assert!(r.goodput_gbps() < 6.0, "{:.1}", r.goodput_gbps());
    }

    #[test]
    fn mmt_crosses_400gbe_where_tcp_cannot() {
        let link = Bandwidth::gbps(400);
        let bytes = 2_000_000_000;
        let mmt = run_mmt(link, bytes);
        let tcp = run_tcp(link, CcProfile::tuned_dtn_2024(), bytes);
        assert!(mmt.goodput_gbps() > 300.0, "{:.1}", mmt.goodput_gbps());
        assert!(tcp.goodput_gbps() < 60.0, "{:.1}", tcp.goodput_gbps());
    }
}
