//! The simulator event loop.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use mmt_telemetry::SeriesRow;

use crate::fault::FaultVerdict;
use crate::link::{Link, LinkId, LinkSpec, LinkStats};
use crate::node::{Action, Context, Node, NodeId, PortId, TimerToken};
use crate::packet::Packet;
use crate::profile::{SpanProfiler, Stage};
use crate::rng::SimRng;
use crate::time::Time;
use crate::trace::{Trace, TraceEvent, TraceKind};
use crate::wheel::TimerWheel;

#[derive(Debug)]
enum EventKind {
    /// A packet arrives at a node's port (propagation finished).
    Arrive {
        node: usize,
        port: PortId,
        pkt: Packet,
    },
    /// A link transmitter finished serializing; it may start the next packet.
    TxComplete { link: usize },
    /// A node timer fires; `armed_at` feeds the span profiler's
    /// timer-dispatch attribution (arm→fire delay).
    Timer {
        node: usize,
        token: TimerToken,
        armed_at: Time,
    },
    /// A scheduled node crash takes effect.
    NodeCrash { node: usize },
    /// A crashed node comes back up.
    NodeRestart { node: usize },
}

struct Event {
    at: Time,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The pluggable event queue. The timing wheel is the default engine;
/// the binary heap it replaced stays behind
/// [`Simulator::with_heap_scheduler`] as a differential-testing escape
/// hatch for one release (see `tests/scheduler_equivalence.rs`), after
/// which it will be removed.
///
/// Both engines implement the same ordering contract — pop strictly by
/// `(timestamp, push order)` — so every simulation is byte-identical
/// under either.
enum EventQueue {
    /// Hierarchical timing wheel: O(1) schedule, amortized O(1) pop,
    /// same-slot events batch-drained into one dispatch buffer.
    Wheel(TimerWheel<EventKind>),
    /// The legacy `BinaryHeap` engine: O(log n) per operation.
    Heap {
        heap: BinaryHeap<Reverse<Event>>,
        seq: u64,
    },
}

impl EventQueue {
    fn push(&mut self, at: Time, kind: EventKind) {
        match self {
            EventQueue::Wheel(wheel) => {
                wheel.schedule(at.as_nanos(), kind);
            }
            EventQueue::Heap { heap, seq } => {
                let s = *seq;
                *seq = seq.wrapping_add(1);
                heap.push(Reverse(Event { at, seq: s, kind }));
            }
        }
    }

    fn pop(&mut self) -> Option<(Time, EventKind)> {
        match self {
            EventQueue::Wheel(wheel) => wheel.pop().map(|(at, kind)| (Time::from_nanos(at), kind)),
            EventQueue::Heap { heap, .. } => heap.pop().map(|Reverse(e)| (e.at, e.kind)),
        }
    }

    fn peek_at(&mut self) -> Option<Time> {
        match self {
            EventQueue::Wheel(wheel) => wheel.peek().map(|(at, _)| Time::from_nanos(at)),
            EventQueue::Heap { heap, .. } => heap.peek().map(|Reverse(e)| e.at),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            EventQueue::Wheel(wheel) => wheel.is_empty(),
            EventQueue::Heap { heap, .. } => heap.is_empty(),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            EventQueue::Wheel(_) => "wheel",
            EventQueue::Heap { .. } => "heap",
        }
    }
}

struct NodeEntry {
    name: String,
    behavior: Box<dyn Node>,
    /// Outgoing link attached to each port.
    ports: Vec<Option<usize>>,
    /// Packets the node handed to its local application.
    local: Vec<(Time, Packet)>,
    /// Packets sent out of ports with no attached link.
    unrouted_drops: u64,
    /// Whether the node is currently crashed (scheduled fault).
    crashed: bool,
    /// Packets destroyed by crashes: arrivals swallowed while down plus
    /// egress-queue contents flushed at crash time.
    crashed_drops: u64,
    /// How many times the node has crashed.
    crashes: u64,
    /// How many times the node has restarted after a crash.
    restarts: u64,
}

/// The periodic time-series sampler (enabled via
/// [`Simulator::enable_series`]).
///
/// In a discrete-event simulation state only changes at events, so a
/// boundary `k·interval` is sampled lazily: just before the first event
/// at or past the boundary is processed. The sampled state therefore
/// reflects exactly the events strictly before the boundary — a pure
/// function of the seed, independent of shard/worker layout.
struct SeriesState {
    interval: Time,
    /// Next unemitted boundary multiplier (`t = next_k · interval`).
    next_k: u64,
    rows: Vec<SeriesRow>,
}

/// The hot-path span profiler state (enabled via
/// [`Simulator::enable_profiler`]).
struct ProfilerState {
    spans: SpanProfiler,
    /// Enqueue time per `(link, packet id)` for queue-residency
    /// attribution. A re-enqueued id on the same link (retransmit copy
    /// still resident) overwrites the entry — the residency of the
    /// older copy is dropped, a documented approximation.
    enqueued_at: BTreeMap<(u64, u64), Time>,
}

/// The discrete-event network simulator.
///
/// Deterministic given its seed and the order of construction: nodes and
/// links are identified by insertion order, event ties are broken by a
/// global sequence number.
pub struct Simulator {
    now: Time,
    next_packet_id: u64,
    events: EventQueue,
    nodes: Vec<NodeEntry>,
    links: Vec<Link>,
    rng: SimRng,
    started: bool,
    trace: Trace,
    actions: Vec<Action>,
    events_processed: u64,
    series: Option<SeriesState>,
    profiler: Option<ProfilerState>,
}

impl Simulator {
    /// Create a simulator with a deterministic seed.
    pub fn new(seed: u64) -> Simulator {
        Simulator {
            now: Time::ZERO,
            next_packet_id: 1,
            events: EventQueue::Wheel(TimerWheel::new()),
            nodes: Vec::new(),
            links: Vec::new(),
            rng: SimRng::new(seed),
            started: false,
            trace: Trace::disabled(),
            actions: Vec::new(),
            events_processed: 0,
            series: None,
            profiler: None,
        }
    }

    /// Run on the legacy `BinaryHeap` event queue instead of the timing
    /// wheel. Observationally identical (same pop order, digests, and
    /// telemetry bytes — pinned by `tests/scheduler_equivalence.rs`),
    /// just slower; kept for one release as a differential-testing
    /// escape hatch, then the heap engine will be removed.
    ///
    /// # Panics
    /// Panics if events have already been scheduled.
    #[must_use]
    pub fn with_heap_scheduler(mut self) -> Simulator {
        assert!(
            self.events.is_empty() && !self.started,
            "scheduler must be chosen before any event is scheduled"
        );
        self.events = EventQueue::Heap {
            heap: BinaryHeap::new(),
            seq: 0,
        };
        self
    }

    /// Name of the active event-queue engine (`"wheel"` or `"heap"`),
    /// recorded in bench artifacts.
    pub fn scheduler_name(&self) -> &'static str {
        self.events.name()
    }

    /// Enable the periodic time-series sampler: one batch of rows per
    /// `interval` of virtual time, starting at `t = 0` (see
    /// [`Simulator::take_series`]).
    ///
    /// # Panics
    /// Panics if `interval` is zero.
    pub fn enable_series(&mut self, interval: Time) {
        assert!(interval > Time::ZERO, "series interval must be positive");
        self.series = Some(SeriesState {
            interval,
            next_k: 0,
            rows: Vec::new(),
        });
    }

    /// Drain the sampled series rows accumulated so far (empty when the
    /// sampler is disabled). Rows are in ascending time order; at each
    /// boundary the batch is the event-loop counter followed by per-link
    /// delivered-packets / tx-bytes counters and queue-occupancy gauges.
    pub fn take_series(&mut self) -> Vec<SeriesRow> {
        match &mut self.series {
            Some(s) => std::mem::take(&mut s.rows),
            None => Vec::new(),
        }
    }

    /// Emit rows for every unemitted boundary `k·interval ≤ upto`. The
    /// simulator state is constant between events, so sampling just
    /// before advancing to an event at `upto` yields the exact state at
    /// each boundary.
    fn sample_series_until(&mut self, upto: Time) {
        let (interval_ns, mut k) = match &self.series {
            Some(s) => (s.interval.as_nanos(), s.next_k),
            None => return,
        };
        let upto_ns = u128::from(upto.as_nanos());
        let mut rows = Vec::new();
        while u128::from(k) * u128::from(interval_ns) <= upto_ns {
            let t_ns = (u128::from(k) * u128::from(interval_ns)) as u64;
            rows.push(SeriesRow::counter(
                t_ns,
                "mmt_sim_events_total",
                &[],
                self.events_processed,
            ));
            for (idx, link) in self.links.iter().enumerate() {
                let idx_s = idx.to_string();
                let labels = [("link", idx_s.as_str())];
                rows.push(SeriesRow::counter(
                    t_ns,
                    "mmt_link_delivered_packets_total",
                    &labels,
                    link.stats.delivered_packets,
                ));
                rows.push(SeriesRow::counter(
                    t_ns,
                    "mmt_link_tx_bytes_total",
                    &labels,
                    link.stats.tx_bytes,
                ));
                rows.push(SeriesRow::gauge(
                    t_ns,
                    "mmt_link_queue_occupancy_bytes",
                    &labels,
                    link.queue.occupancy_bytes() as f64,
                ));
            }
            k += 1;
        }
        if let Some(s) = &mut self.series {
            s.next_k = k;
            s.rows.append(&mut rows);
        }
    }

    /// Enable the hot-path span profiler (virtual-time + event-count
    /// attribution per [`Stage`]; see [`Simulator::profiler`]).
    pub fn enable_profiler(&mut self) {
        self.profiler = Some(ProfilerState {
            spans: SpanProfiler::new(),
            enqueued_at: BTreeMap::new(),
        });
    }

    /// The accumulated span profile, if profiling is enabled.
    pub fn profiler(&self) -> Option<&SpanProfiler> {
        self.profiler.as_ref().map(|p| &p.spans)
    }

    /// Fold externally-measured work into the span profile (no-op when
    /// profiling is disabled). The simulator core only sees queue, link,
    /// and timer work; protocol layers attribute encode/decode,
    /// retransmit-serve, and mode-control work through this.
    pub fn profile_add(&mut self, stage: Stage, events: u64, vtime_ns: u64) {
        if let Some(p) = &mut self.profiler {
            p.spans.add(stage, events, vtime_ns);
        }
    }

    /// Enable packet tracing (records per-packet events for debugging and
    /// fine-grained assertions; costs memory).
    pub fn enable_trace(&mut self) {
        self.trace = Trace::enabled();
    }

    /// Enable packet tracing with a bounded ring buffer: only the most
    /// recent `capacity` events are retained (see [`Trace::with_capacity`]
    /// for the drop semantics).
    pub fn enable_trace_bounded(&mut self, capacity: usize) {
        self.trace = Trace::with_capacity(capacity);
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The retained trace as exporter-ready flow-correlated records
    /// (node names resolved, virtual time flattened to `u64` ns).
    pub fn trace_records(&self) -> Vec<mmt_telemetry::TraceRecord> {
        self.trace
            .events()
            .iter()
            .map(|e| mmt_telemetry::TraceRecord {
                ts_ns: e.time.as_nanos(),
                kind: e.kind.as_str().to_string(),
                node: e.node.map(|n| n as u64),
                node_name: e.node.map(|n| self.nodes[n].name.clone()),
                link: e.link.map(|l| l as u64),
                packet_id: e.packet_id,
                flow: e.flow,
                seq: e.seq,
                config: e.config,
                len_bytes: e.len as u64,
            })
            .collect()
    }

    /// Export simulator-level metrics into a registry: per-link counters,
    /// throughput/utilization/occupancy, per-node unrouted drops, and
    /// event-loop totals. Link series are labeled `link` (index), `src`,
    /// and `dst` (node names); everything is a snapshot at `now`.
    ///
    /// The export is *sparse*: zero-valued per-node and per-link series
    /// are omitted, which keeps fleet-scale registries proportional to
    /// observed activity rather than topology size. Absent counters read
    /// back as zero, so consumers see the same numbers either way.
    pub fn export_metrics(&self, reg: &mut mmt_telemetry::MetricRegistry) {
        let links = self.export_metrics_split(reg);
        links.materialize(reg);
    }

    /// The fleet-scale variant of [`export_metrics`]: everything *except*
    /// the per-link rows lands in `reg`; the per-link cells come back as
    /// a packed [`LinkStatsBlock`] (~150 B/link, no per-row heap) for
    /// the caller to merge across groups and materialize once. HELP
    /// strings for the link metrics are still described into `reg`, so
    /// an absorbed registry renders identically.
    ///
    /// [`export_metrics`]: Simulator::export_metrics
    /// [`LinkStatsBlock`]: crate::linkstats::LinkStatsBlock
    pub fn export_metrics_split(
        &self,
        reg: &mut mmt_telemetry::MetricRegistry,
    ) -> crate::linkstats::LinkStatsBlock {
        use crate::time::Time;
        let mut block = crate::linkstats::LinkStatsBlock::new();
        if !reg.is_enabled() {
            return block;
        }
        reg.describe("mmt_sim_now_ns", "current virtual time");
        reg.gauge_set("mmt_sim_now_ns", &[], self.now.as_nanos() as f64);
        reg.describe("mmt_sim_events_total", "simulator events processed");
        reg.counter_add("mmt_sim_events_total", &[], self.events_processed);
        reg.describe(
            "mmt_sim_trace_dropped_total",
            "trace events evicted by the bounded ring buffer",
        );
        reg.counter_add("mmt_sim_trace_dropped_total", &[], self.trace.dropped());
        reg.describe(
            "mmt_node_unrouted_drops_total",
            "packets sent out of unconnected ports",
        );
        reg.describe(
            "mmt_node_local_deliveries_total",
            "packets handed to the local app",
        );
        reg.describe(
            "mmt_node_crashed_drops_total",
            "packets destroyed by node crashes (swallowed arrivals + flushed egress queues)",
        );
        reg.describe("mmt_node_crashes_total", "scheduled node crashes");
        reg.describe("mmt_node_restarts_total", "node restarts after a crash");
        for (idx, node) in self.nodes.iter().enumerate() {
            let idx_s = idx.to_string();
            let labels = mmt_telemetry::LabelSet::new(&[
                ("node", idx_s.as_str()),
                ("name", node.name.as_str()),
            ]);
            for (name, value) in [
                ("mmt_node_unrouted_drops_total", node.unrouted_drops),
                ("mmt_node_local_deliveries_total", node.local.len() as u64),
                ("mmt_node_crashed_drops_total", node.crashed_drops),
                ("mmt_node_crashes_total", node.crashes),
                ("mmt_node_restarts_total", node.restarts),
            ] {
                if value != 0 {
                    reg.counter_add_set(name, &labels, value);
                }
            }
        }
        reg.describe(
            "mmt_link_offered_packets_total",
            "packets handed to the link",
        );
        reg.describe("mmt_link_offered_bytes_total", "bytes handed to the link");
        reg.describe("mmt_link_tx_packets_total", "packets fully serialized");
        reg.describe("mmt_link_tx_bytes_total", "bytes fully serialized");
        reg.describe(
            "mmt_link_delivered_packets_total",
            "packets delivered to the far end",
        );
        reg.describe(
            "mmt_link_mtu_drops_total",
            "packets dropped for exceeding the MTU",
        );
        reg.describe(
            "mmt_link_queue_drops_total",
            "packets dropped by the output queue",
        );
        reg.describe(
            "mmt_link_corruption_losses_total",
            "packets lost to corruption",
        );
        reg.describe(
            "mmt_link_queue_shed_aged_total",
            "aged packets shed by the deadline-aware queue",
        );
        reg.describe(
            "mmt_link_flap_drops_total",
            "packets lost to injected link outages",
        );
        reg.describe(
            "mmt_link_control_drops_total",
            "control-plane packets dropped by selective control loss",
        );
        reg.describe(
            "mmt_link_dup_injected_total",
            "duplicate packet copies injected by the fault layer",
        );
        reg.describe(
            "mmt_link_reordered_total",
            "packets delayed for reordering by the fault layer",
        );
        reg.describe(
            "mmt_link_utilization",
            "transmitter busy fraction since t=0",
        );
        reg.describe("mmt_link_throughput_bps", "achieved throughput since t=0");
        reg.describe(
            "mmt_link_queue_occupancy_bytes",
            "bytes queued at export time",
        );
        reg.describe(
            "mmt_link_queue_occupancy_packets",
            "packets queued at export time",
        );
        let elapsed = if self.now == Time::ZERO {
            Time::from_nanos(1)
        } else {
            self.now
        };
        for (idx, link) in self.links.iter().enumerate() {
            let s = &link.stats;
            // Cell order is pinned by `linkstats::LINK_COUNTERS` /
            // `LINK_GAUGES`; materialization re-applies the sparse
            // (nonzero-only) export rule, so the rendered rows are
            // byte-identical to the old eager exporter.
            block.push(
                idx as u32,
                self.nodes[link.src_node].name.as_str(),
                self.nodes[link.dst_node].name.as_str(),
                [
                    s.offered_packets,
                    s.offered_bytes,
                    s.tx_packets,
                    s.tx_bytes,
                    s.delivered_packets,
                    s.mtu_drops,
                    s.queue_drops,
                    s.corruption_losses,
                    link.queue.shed_aged(),
                    s.flap_drops,
                    s.control_drops,
                    s.dup_injected,
                    s.reordered,
                ],
                [
                    s.utilization(elapsed),
                    s.throughput_bps(elapsed),
                    link.queue.occupancy_bytes() as f64,
                    link.queue.occupancy_packets() as f64,
                ],
            );
        }
        block
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total events processed so far (the deterministic work counter the
    /// sharded load reports are built from).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Add a node; returns its id. Order of addition fixes ids.
    pub fn add_node(&mut self, name: &str, behavior: Box<dyn Node>) -> NodeId {
        self.nodes.push(NodeEntry {
            name: name.to_string(),
            behavior,
            ports: Vec::new(),
            local: Vec::new(),
            unrouted_drops: 0,
            crashed: false,
            crashed_drops: 0,
            crashes: 0,
            restarts: 0,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// The name a node was registered with.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.nodes[id.0].name
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Connect `a`'s `a_port` to `b`'s `b_port` with a *bidirectional*
    /// link (two unidirectional links sharing the spec). Returns the two
    /// link ids (a→b, b→a).
    pub fn connect(
        &mut self,
        a: NodeId,
        a_port: PortId,
        b: NodeId,
        b_port: PortId,
        spec: LinkSpec,
    ) -> (LinkId, LinkId) {
        let ab = self.add_oneway(a, a_port, b, b_port, spec);
        let ba = self.add_oneway(b, b_port, a, a_port, spec);
        (ab, ba)
    }

    /// Add a single unidirectional link from `src`'s `src_port` to `dst`'s
    /// `dst_port`.
    pub fn add_oneway(
        &mut self,
        src: NodeId,
        src_port: PortId,
        dst: NodeId,
        dst_port: PortId,
        spec: LinkSpec,
    ) -> LinkId {
        let link_idx = self.links.len();
        // The fault stream is frozen-forked BEFORE the loss fork advances
        // the parent, so pre-fault seeds reproduce their exact loss
        // sequences on every link.
        let fault_rng = self.rng.fork_frozen(link_idx as u64 + 0xFA17_0000);
        let rng = self.rng.fork(link_idx as u64 + 0x1000);
        self.links
            .push(Link::new(spec, src.0, dst.0, dst_port, rng, fault_rng));
        let ports = &mut self.nodes[src.0].ports;
        if ports.len() <= src_port {
            ports.resize(src_port + 1, None);
        }
        assert!(
            ports[src_port].is_none(),
            "port {src_port} of node {} already connected",
            self.nodes[src.0].name
        );
        ports[src_port] = Some(link_idx);
        LinkId(link_idx)
    }

    /// Mutable access to a link (to install classifiers, inspect specs).
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.0]
    }

    /// A link's statistics.
    pub fn link_stats(&self, id: LinkId) -> &LinkStats {
        &self.links[id.0].stats
    }

    /// Inject a packet so it *arrives at* `node`'s `port` at time `at`
    /// (used by workload drivers standing in for upstream hardware).
    pub fn inject(&mut self, at: Time, node: NodeId, port: PortId, mut pkt: Packet) {
        assert!(at >= self.now, "cannot inject into the past");
        if pkt.meta.id == 0 {
            pkt.meta.id = self.next_packet_id;
            self.next_packet_id += 1;
        }
        if pkt.meta.created_at == Time::ZERO {
            pkt.meta.created_at = at;
        }
        self.push_event(
            at,
            EventKind::Arrive {
                node: node.0,
                port,
                pkt,
            },
        );
    }

    /// Schedule a timer for a node from outside a callback.
    pub fn schedule_timer(&mut self, at: Time, node: NodeId, token: TimerToken) {
        assert!(at >= self.now, "cannot schedule into the past");
        let armed_at = self.now;
        self.push_event(
            at,
            EventKind::Timer {
                node: node.0,
                token,
                armed_at,
            },
        );
    }

    /// Schedule a node crash at `crash_at`, optionally followed by a
    /// restart at `restart_at`. Like [`crate::PeriodicOutage`], the schedule
    /// is purely time-driven — no randomness is consumed, so adding a crash
    /// leaves every pre-existing seeded stream byte-identical.
    ///
    /// While crashed the node swallows every arriving packet and timer
    /// (counted in [`Simulator::crashed_drops`]); at crash time its egress
    /// queues are flushed and [`Node::on_crash`] runs so the behaviour can
    /// drop its soft state. On restart [`Node::on_restart`] runs with a
    /// live [`Context`] so periodic timers can be re-armed.
    ///
    /// # Panics
    /// Panics if `crash_at` is in the past or `restart_at <= crash_at`.
    pub fn schedule_crash(&mut self, node: NodeId, crash_at: Time, restart_at: Option<Time>) {
        assert!(crash_at >= self.now, "cannot schedule a crash in the past");
        if let Some(up_at) = restart_at {
            assert!(up_at > crash_at, "restart must come after the crash");
            self.push_event(up_at, EventKind::NodeRestart { node: node.0 });
        }
        self.push_event(crash_at, EventKind::NodeCrash { node: node.0 });
    }

    /// Whether a node is currently crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.nodes[node.0].crashed
    }

    /// Packets destroyed by crashes at this node (arrivals swallowed while
    /// down plus egress-queue contents flushed at crash time).
    pub fn crashed_drops(&self, node: NodeId) -> u64 {
        self.nodes[node.0].crashed_drops
    }

    /// Record a mode transition in the trace. Nodes cannot write the trace
    /// themselves, so control-plane drivers (the mode controller) call this
    /// when they push a `ModeChange` at `node`; `features` is the new
    /// feature bitmap, carried in the record's `config` field.
    pub fn record_mode_change(&mut self, node: NodeId, features: u64) {
        self.trace.record(TraceEvent {
            time: self.now,
            kind: TraceKind::ModeChange,
            node: Some(node.0),
            link: None,
            packet_id: 0,
            len: 0,
            flow: 0,
            seq: None,
            config: Some(features),
        });
    }

    /// Packets delivered to `node`'s local application so far.
    pub fn local_deliveries(&self, node: NodeId) -> &[(Time, Packet)] {
        &self.nodes[node.0].local
    }

    /// Take (drain) the local deliveries of a node.
    pub fn take_local_deliveries(&mut self, node: NodeId) -> Vec<(Time, Packet)> {
        std::mem::take(&mut self.nodes[node.0].local)
    }

    /// Packets a node sent to unconnected ports.
    pub fn unrouted_drops(&self, node: NodeId) -> u64 {
        self.nodes[node.0].unrouted_drops
    }

    /// Downcast a node's behaviour to its concrete type.
    pub fn node_as<T: 'static>(&self, node: NodeId) -> Option<&T> {
        self.nodes[node.0].behavior.as_any().downcast_ref::<T>()
    }

    /// Downcast a node's behaviour mutably.
    pub fn node_as_mut<T: 'static>(&mut self, node: NodeId) -> Option<&mut T> {
        self.nodes[node.0].behavior.as_any_mut().downcast_mut::<T>()
    }

    fn push_event(&mut self, at: Time, kind: EventKind) {
        self.events.push(at, kind);
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for idx in 0..self.nodes.len() {
            self.call_node(idx, |node, ctx| node.on_start(ctx));
        }
    }

    /// Run a node callback and apply the actions it produced.
    fn call_node<F>(&mut self, idx: usize, f: F)
    where
        F: FnOnce(&mut dyn Node, &mut Context<'_>),
    {
        debug_assert!(self.actions.is_empty());
        let mut actions = std::mem::take(&mut self.actions);
        {
            let entry = &mut self.nodes[idx];
            let mut ctx = Context {
                now: self.now,
                node: NodeId(idx),
                rng: &mut self.rng,
                actions: &mut actions,
            };
            f(entry.behavior.as_mut(), &mut ctx);
        }
        for action in actions.drain(..) {
            match action {
                Action::Send { port, pkt } => self.handle_send(idx, port, pkt),
                Action::Timer { delay, token } => {
                    let at = self.now + delay;
                    let armed_at = self.now;
                    self.push_event(
                        at,
                        EventKind::Timer {
                            node: idx,
                            token,
                            armed_at,
                        },
                    );
                }
                Action::DeliverLocal { pkt } => {
                    self.trace.record(TraceEvent {
                        time: self.now,
                        kind: TraceKind::LocalDeliver,
                        node: Some(idx),
                        link: None,
                        packet_id: pkt.meta.id,
                        len: pkt.len(),
                        flow: pkt.meta.flow,
                        seq: pkt.meta.seq,
                        config: pkt.meta.config,
                    });
                    self.nodes[idx].local.push((self.now, pkt));
                }
            }
        }
        self.actions = actions;
    }

    fn handle_send(&mut self, node_idx: usize, port: PortId, mut pkt: Packet) {
        if pkt.meta.id == 0 {
            pkt.meta.id = self.next_packet_id;
            self.next_packet_id += 1;
        }
        if pkt.meta.created_at == Time::ZERO {
            pkt.meta.created_at = self.now;
        }
        let Some(&Some(link_idx)) = self.nodes[node_idx].ports.get(port) else {
            self.nodes[node_idx].unrouted_drops += 1;
            return;
        };
        let link = &mut self.links[link_idx];
        link.stats.offered_packets += 1;
        link.stats.offered_bytes += pkt.len() as u64;
        if pkt.len() > link.spec.mtu {
            link.stats.mtu_drops += 1;
            self.trace.record(TraceEvent {
                time: self.now,
                kind: TraceKind::MtuDrop,
                node: Some(node_idx),
                link: Some(link_idx),
                packet_id: pkt.meta.id,
                len: pkt.len(),
                flow: pkt.meta.flow,
                seq: pkt.meta.seq,
                config: pkt.meta.config,
            });
            return;
        }
        let meta = pkt.meta;
        let len = pkt.len();
        if !link.queue.enqueue(pkt) {
            link.stats.queue_drops += 1;
            self.trace.record(TraceEvent {
                time: self.now,
                kind: TraceKind::QueueDrop,
                node: Some(node_idx),
                link: Some(link_idx),
                packet_id: meta.id,
                len,
                flow: meta.flow,
                seq: meta.seq,
                config: meta.config,
            });
            return;
        }
        // Hot path: skip even building the record when tracing is off.
        if self.trace.is_enabled() {
            self.trace.record(TraceEvent {
                time: self.now,
                kind: TraceKind::Enqueue,
                node: Some(node_idx),
                link: Some(link_idx),
                packet_id: meta.id,
                len,
                flow: meta.flow,
                seq: meta.seq,
                config: meta.config,
            });
        }
        if let Some(p) = &mut self.profiler {
            p.spans.add(Stage::QueueOps, 1, 0);
            p.enqueued_at.insert((link_idx as u64, meta.id), self.now);
        }
        if !self.links[link_idx].busy {
            self.start_tx(link_idx);
        }
    }

    /// Begin serializing the next queued packet on a link.
    fn start_tx(&mut self, link_idx: usize) {
        let link = &mut self.links[link_idx];
        let Some(pkt) = link.queue.dequeue() else {
            return;
        };
        link.busy = true;
        if let Some(p) = &mut self.profiler {
            let key = (link_idx as u64, pkt.meta.id);
            let residency = match p.enqueued_at.remove(&key) {
                Some(t0) => self.now.as_nanos().saturating_sub(t0.as_nanos()),
                None => 0,
            };
            p.spans.add(Stage::QueueOps, 1, residency);
        }
        let tx = link.spec.bandwidth.tx_time(pkt.len());
        link.stats.busy_ns += tx.as_nanos();
        link.stats.tx_packets += 1;
        link.stats.tx_bytes += pkt.len() as u64;
        let lost = link
            .spec
            .loss
            .lose(&mut link.rng, pkt.len(), &mut link.loss_state);
        let arrive_at = self.now + tx + link.spec.propagation;
        let tx_done = self.now + tx;
        let (dst_node, dst_port) = (link.dst_node, link.dst_port);
        let meta = pkt.meta;
        let len = pkt.len();
        // The fault layer only sees packets the loss model spared; its
        // verdict is drawn from a dedicated RNG stream.
        let verdict = if lost || link.spec.fault.is_none() {
            FaultVerdict::Deliver {
                extra_delay: Time::ZERO,
                duplicate_after: None,
                reordered: false,
            }
        } else {
            let fault = link.spec.fault;
            link.fault_state.apply(&fault, self.now, meta.control)
        };
        let fault_trace = |kind: TraceKind| TraceEvent {
            time: tx_done,
            kind,
            node: None,
            link: Some(link_idx),
            packet_id: meta.id,
            len,
            flow: meta.flow,
            seq: meta.seq,
            config: meta.config,
        };
        if lost {
            link.stats.corruption_losses += 1;
            self.trace.record(TraceEvent {
                time: self.now,
                kind: TraceKind::CorruptionLoss,
                node: None,
                link: Some(link_idx),
                packet_id: meta.id,
                len,
                flow: meta.flow,
                seq: meta.seq,
                config: meta.config,
            });
        } else {
            match verdict {
                FaultVerdict::FlapDrop => {
                    link.stats.flap_drops += 1;
                    self.trace.record(fault_trace(TraceKind::FlapDrop));
                }
                FaultVerdict::ControlDrop => {
                    link.stats.control_drops += 1;
                    self.trace.record(fault_trace(TraceKind::ControlDrop));
                }
                FaultVerdict::Deliver {
                    extra_delay,
                    duplicate_after,
                    reordered,
                } => {
                    link.stats.delivered_packets += 1;
                    if reordered {
                        link.stats.reordered += 1;
                    }
                    if let Some(p) = &mut self.profiler {
                        let base = (arrive_at + extra_delay)
                            .as_nanos()
                            .saturating_sub(self.now.as_nanos());
                        let copies = 1 + u64::from(duplicate_after.is_some());
                        let lag_ns = duplicate_after.map_or(0, |l| l.as_nanos());
                        p.spans
                            .add(Stage::LinkDelivery, copies, base * copies + lag_ns);
                    }
                    if let Some(lag) = duplicate_after {
                        link.stats.delivered_packets += 1;
                        link.stats.dup_injected += 1;
                        let copy = pkt.clone();
                        self.trace.record(fault_trace(TraceKind::DupInject));
                        self.push_event(
                            arrive_at + extra_delay + lag,
                            EventKind::Arrive {
                                node: dst_node,
                                port: dst_port,
                                pkt: copy,
                            },
                        );
                    }
                    self.push_event(
                        arrive_at + extra_delay,
                        EventKind::Arrive {
                            node: dst_node,
                            port: dst_port,
                            pkt,
                        },
                    );
                }
            }
        }
        self.push_event(tx_done, EventKind::TxComplete { link: link_idx });
    }

    /// Take a node down: flush its egress queues (the NIC loses power with
    /// frames still buffered), let the behaviour drop its soft state, and
    /// start swallowing arrivals/timers until restart.
    fn crash_node(&mut self, idx: usize) {
        let entry = &mut self.nodes[idx];
        entry.crashed = true;
        entry.crashes += 1;
        entry.behavior.on_crash();
        let mut flushed = 0u64;
        for (link_idx, link) in self.links.iter_mut().enumerate() {
            if link.src_node != idx {
                continue;
            }
            while let Some(pkt) = link.queue.dequeue() {
                flushed += 1;
                if let Some(p) = &mut self.profiler {
                    let key = (link_idx as u64, pkt.meta.id);
                    let residency = match p.enqueued_at.remove(&key) {
                        Some(t0) => self.now.as_nanos().saturating_sub(t0.as_nanos()),
                        None => 0,
                    };
                    p.spans.add(Stage::QueueOps, 1, residency);
                }
            }
        }
        self.nodes[idx].crashed_drops += flushed;
        self.trace.record(TraceEvent {
            time: self.now,
            kind: TraceKind::NodeCrash,
            node: Some(idx),
            link: None,
            packet_id: 0,
            len: flushed as usize,
            flow: 0,
            seq: None,
            config: None,
        });
    }

    /// Process a single event. Returns `false` when no events remain.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        let Some((at, kind)) = self.events.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.sample_series_until(at);
        self.now = at;
        self.events_processed += 1;
        match kind {
            EventKind::Arrive { node, port, pkt } => {
                if self.nodes[node].crashed {
                    // A dead node's NIC swallows the frame silently.
                    self.nodes[node].crashed_drops += 1;
                    return true;
                }
                // Hot path: skip even building the record when tracing is off.
                if self.trace.is_enabled() {
                    self.trace.record(TraceEvent {
                        time: self.now,
                        kind: TraceKind::Arrive,
                        node: Some(node),
                        link: None,
                        packet_id: pkt.meta.id,
                        len: pkt.len(),
                        flow: pkt.meta.flow,
                        seq: pkt.meta.seq,
                        config: pkt.meta.config,
                    });
                }
                self.call_node(node, |n, ctx| n.on_packet(ctx, port, pkt));
            }
            EventKind::TxComplete { link } => {
                self.links[link].busy = false;
                self.start_tx(link);
            }
            EventKind::Timer {
                node,
                token,
                armed_at,
            } => {
                if self.nodes[node].crashed {
                    // Timers armed before the crash die with the process.
                    return true;
                }
                if let Some(p) = &mut self.profiler {
                    let delay = self.now.as_nanos().saturating_sub(armed_at.as_nanos());
                    p.spans.add(Stage::TimerDispatch, 1, delay);
                }
                self.call_node(node, |n, ctx| n.on_timer(ctx, token));
            }
            EventKind::NodeCrash { node } => self.crash_node(node),
            EventKind::NodeRestart { node } => {
                let entry = &mut self.nodes[node];
                entry.crashed = false;
                entry.restarts += 1;
                self.trace.record(TraceEvent {
                    time: self.now,
                    kind: TraceKind::NodeRestart,
                    node: Some(node),
                    link: None,
                    packet_id: 0,
                    len: 0,
                    flow: 0,
                    seq: None,
                    config: None,
                });
                self.call_node(node, |n, ctx| n.on_restart(ctx));
            }
        }
        true
    }

    /// Run until the event queue drains.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until virtual time reaches `deadline` (events at exactly
    /// `deadline` are processed) or the queue drains.
    pub fn run_until(&mut self, deadline: Time) {
        self.ensure_started();
        while let Some(head_at) = self.events.peek_at() {
            if head_at > deadline {
                self.sample_series_until(deadline);
                self.now = deadline;
                break;
            }
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LossModel;
    use crate::queue::QueueSpec;
    use crate::time::Bandwidth;

    /// Sink that counts arrivals.
    struct Sink;
    impl Node for Sink {
        fn on_packet(&mut self, ctx: &mut Context<'_>, _port: PortId, pkt: Packet) {
            ctx.deliver_local(pkt);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    /// Forwarder that relays everything from port 0 to port 1.
    struct Forward;
    impl Node for Forward {
        fn on_packet(&mut self, ctx: &mut Context<'_>, port: PortId, pkt: Packet) {
            if port == 0 {
                ctx.send(1, pkt);
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    /// Source that emits `n` packets at start, then one per timer tick.
    struct Burst {
        n: usize,
        size: usize,
    }
    impl Node for Burst {
        fn on_packet(&mut self, _ctx: &mut Context<'_>, _port: PortId, _pkt: Packet) {}
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for _ in 0..self.n {
                ctx.send(0, Packet::new(vec![0u8; self.size]));
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn gbit_link(ms: u64) -> LinkSpec {
        LinkSpec::new(Bandwidth::gbps(1), Time::from_millis(ms))
    }

    #[test]
    fn delivery_latency_is_tx_plus_propagation() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a", Box::new(Sink));
        let b = sim.add_node("b", Box::new(Forward));
        sim.connect(b, 1, a, 0, gbit_link(10));
        // b forwards injections from port 0 out of port 1 to a.
        sim.inject(Time::ZERO, b, 0, Packet::new(vec![0u8; 1500]));
        sim.run();
        let got = sim.local_deliveries(a);
        assert_eq!(got.len(), 1);
        // 1500B at 1 Gb/s = 12 µs; +10 ms propagation.
        assert_eq!(got[0].0, Time::from_micros(12) + Time::from_millis(10));
    }

    #[test]
    fn serialization_spaces_back_to_back_packets() {
        let mut sim = Simulator::new(1);
        let src = sim.add_node("src", Box::new(Burst { n: 3, size: 1500 }));
        let dst = sim.add_node("dst", Box::new(Sink));
        sim.add_oneway(src, 0, dst, 0, gbit_link(0));
        sim.run();
        let got = sim.local_deliveries(dst);
        assert_eq!(got.len(), 3);
        // Arrivals at 12, 24, 36 µs: queueing + serialization.
        assert_eq!(got[0].0, Time::from_micros(12));
        assert_eq!(got[1].0, Time::from_micros(24));
        assert_eq!(got[2].0, Time::from_micros(36));
    }

    #[test]
    fn corruption_loss_drops_packets_deterministically() {
        let run = |seed| {
            let mut sim = Simulator::new(seed);
            let src = sim.add_node(
                "src",
                Box::new(Burst {
                    n: 1000,
                    size: 1000,
                }),
            );
            let dst = sim.add_node("dst", Box::new(Sink));
            sim.add_oneway(
                src,
                0,
                dst,
                0,
                gbit_link(0).with_loss(LossModel::Random(0.1)),
            );
            sim.run();
            sim.local_deliveries(dst).len()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed, same outcome");
        assert!((850..=950).contains(&a), "≈10% loss, got {}", 1000 - a);
    }

    #[test]
    fn queue_overflow_counted() {
        let mut sim = Simulator::new(1);
        let src = sim.add_node("src", Box::new(Burst { n: 100, size: 1000 }));
        let dst = sim.add_node("dst", Box::new(Sink));
        let link = sim.add_oneway(
            src,
            0,
            dst,
            0,
            gbit_link(0).with_queue(QueueSpec::DropTailFifo {
                capacity_bytes: 10_000,
            }),
        );
        sim.run();
        let stats = sim.link_stats(link);
        // 1 in flight + 10 queued = 11 delivered, rest dropped.
        assert_eq!(stats.queue_drops, 89);
        assert_eq!(sim.local_deliveries(dst).len(), 11);
        assert_eq!(stats.offered_packets, 100);
    }

    #[test]
    fn mtu_drops_counted() {
        let mut sim = Simulator::new(1);
        let src = sim.add_node("src", Box::new(Burst { n: 1, size: 9500 }));
        let dst = sim.add_node("dst", Box::new(Sink));
        let link = sim.add_oneway(src, 0, dst, 0, gbit_link(0).with_mtu(9018));
        sim.run();
        assert_eq!(sim.link_stats(link).mtu_drops, 1);
        assert!(sim.local_deliveries(dst).is_empty());
    }

    #[test]
    fn unrouted_port_counts_drop() {
        let mut sim = Simulator::new(1);
        let src = sim.add_node("src", Box::new(Burst { n: 2, size: 100 }));
        sim.run();
        assert_eq!(sim.unrouted_drops(src), 2);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulator::new(1);
        let src = sim.add_node("src", Box::new(Burst { n: 5, size: 1500 }));
        let dst = sim.add_node("dst", Box::new(Sink));
        sim.add_oneway(src, 0, dst, 0, gbit_link(0));
        sim.run_until(Time::from_micros(25));
        assert_eq!(sim.local_deliveries(dst).len(), 2); // 12µs, 24µs
        assert_eq!(sim.now(), Time::from_micros(25));
        sim.run();
        assert_eq!(sim.local_deliveries(dst).len(), 5);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerNode {
            fired: Vec<u64>,
        }
        impl Node for TimerNode {
            fn on_packet(&mut self, _: &mut Context<'_>, _: PortId, _: Packet) {}
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(Time::from_millis(2), 2);
                ctx.set_timer(Time::from_millis(1), 1);
                ctx.set_timer(Time::from_millis(3), 3);
            }
            fn on_timer(&mut self, _ctx: &mut Context<'_>, token: TimerToken) {
                self.fired.push(token);
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut sim = Simulator::new(1);
        let n = sim.add_node("t", Box::new(TimerNode { fired: vec![] }));
        sim.run();
        assert_eq!(sim.node_as::<TimerNode>(n).unwrap().fired, vec![1, 2, 3]);
    }

    #[test]
    fn external_timer_scheduling() {
        struct T {
            hits: u64,
        }
        impl Node for T {
            fn on_packet(&mut self, _: &mut Context<'_>, _: PortId, _: Packet) {}
            fn on_timer(&mut self, _: &mut Context<'_>, _: TimerToken) {
                self.hits += 1;
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut sim = Simulator::new(1);
        let n = sim.add_node("t", Box::new(T { hits: 0 }));
        sim.schedule_timer(Time::from_secs(1), n, 0);
        sim.run();
        assert_eq!(sim.node_as::<T>(n).unwrap().hits, 1);
        assert_eq!(sim.now(), Time::from_secs(1));
    }

    #[test]
    fn packet_ids_assigned_uniquely() {
        let mut sim = Simulator::new(1);
        let src = sim.add_node("src", Box::new(Burst { n: 3, size: 100 }));
        let dst = sim.add_node("dst", Box::new(Sink));
        sim.add_oneway(src, 0, dst, 0, gbit_link(0));
        sim.inject(Time::ZERO, dst, 5, Packet::new(vec![0u8; 10]));
        sim.run();
        let mut ids: Vec<u64> = sim
            .local_deliveries(dst)
            .iter()
            .map(|(_, p)| p.meta.id)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "ids must be unique");
        assert!(ids.iter().all(|&i| i != 0));
    }

    #[test]
    fn trace_records_lifecycle() {
        let mut sim = Simulator::new(1);
        sim.enable_trace();
        let src = sim.add_node("src", Box::new(Burst { n: 1, size: 100 }));
        let dst = sim.add_node("dst", Box::new(Sink));
        sim.add_oneway(src, 0, dst, 0, gbit_link(1));
        sim.run();
        let kinds: Vec<TraceKind> = sim.trace().events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceKind::Enqueue,
                TraceKind::Arrive,
                TraceKind::LocalDeliver
            ]
        );
    }

    #[test]
    fn node_metadata_accessors() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("alpha", Box::new(Sink));
        assert_eq!(sim.node_name(a), "alpha");
        assert_eq!(sim.node_count(), 1);
        assert!(sim.node_as::<Sink>(a).is_some());
        assert!(sim.node_as::<Forward>(a).is_none());
        assert!(sim.node_as_mut::<Sink>(a).is_some());
        let drained = sim.take_local_deliveries(a);
        assert!(drained.is_empty());
    }

    /// Sink that tracks the crash/restart hooks and drops a counter on
    /// crash, like a retransmit buffer losing its store.
    struct CrashProbe {
        soft_state: u64,
        crashes: u64,
        restarts: u64,
    }
    impl Node for CrashProbe {
        fn on_packet(&mut self, ctx: &mut Context<'_>, _port: PortId, pkt: Packet) {
            self.soft_state += 1;
            ctx.deliver_local(pkt);
        }
        fn on_crash(&mut self) {
            self.soft_state = 0;
            self.crashes += 1;
        }
        fn on_restart(&mut self, _ctx: &mut Context<'_>) {
            self.restarts += 1;
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn crash_swallows_arrivals_until_restart() {
        let mut sim = Simulator::new(1);
        sim.enable_trace();
        let n = sim.add_node(
            "dtn",
            Box::new(CrashProbe {
                soft_state: 0,
                crashes: 0,
                restarts: 0,
            }),
        );
        // Arrivals at 1, 3, 5 ms; down between 2 and 4 ms.
        for ms in [1u64, 3, 5] {
            sim.inject(Time::from_millis(ms), n, 0, Packet::new(vec![0u8; 64]));
        }
        sim.schedule_crash(n, Time::from_millis(2), Some(Time::from_millis(4)));
        sim.run();
        assert_eq!(sim.local_deliveries(n).len(), 2, "3 ms arrival swallowed");
        assert_eq!(sim.crashed_drops(n), 1);
        assert!(!sim.is_crashed(n));
        let probe = sim.node_as::<CrashProbe>(n).unwrap();
        assert_eq!(probe.crashes, 1);
        assert_eq!(probe.restarts, 1);
        assert_eq!(
            probe.soft_state, 1,
            "state cleared at crash, one arrival after"
        );
        assert_eq!(sim.trace().count(TraceKind::NodeCrash), 1);
        assert_eq!(sim.trace().count(TraceKind::NodeRestart), 1);
    }

    #[test]
    fn crash_without_restart_stays_down() {
        let mut sim = Simulator::new(1);
        let n = sim.add_node("dtn", Box::new(Sink));
        sim.inject(Time::from_millis(3), n, 0, Packet::new(vec![0u8; 64]));
        sim.schedule_crash(n, Time::from_millis(1), None);
        sim.run();
        assert!(sim.is_crashed(n));
        assert!(sim.local_deliveries(n).is_empty());
        assert_eq!(sim.crashed_drops(n), 1);
    }

    #[test]
    fn crash_flushes_egress_queue_and_kills_timers() {
        struct TickSource {
            ticks: u64,
        }
        impl Node for TickSource {
            fn on_packet(&mut self, _: &mut Context<'_>, _: PortId, _: Packet) {}
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                // Queue a burst that outlasts the crash point.
                for _ in 0..10 {
                    ctx.send(0, Packet::new(vec![0u8; 1500]));
                }
                ctx.set_timer(Time::from_millis(5), 1);
            }
            fn on_timer(&mut self, _: &mut Context<'_>, _: TimerToken) {
                self.ticks += 1;
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut sim = Simulator::new(1);
        let src = sim.add_node("src", Box::new(TickSource { ticks: 0 }));
        let dst = sim.add_node("dst", Box::new(Sink));
        sim.add_oneway(src, 0, dst, 0, gbit_link(0));
        // 1500 B at 1 Gb/s = 12 µs each; crash at 30 µs: 2 delivered, 1 on
        // the wire (survives), 7 flushed from the queue.
        sim.schedule_crash(src, Time::from_micros(30), None);
        sim.run();
        assert_eq!(sim.local_deliveries(dst).len(), 3);
        assert_eq!(sim.crashed_drops(src), 7);
        assert_eq!(
            sim.node_as::<TickSource>(src).unwrap().ticks,
            0,
            "pre-crash timer must not fire on a dead node"
        );
    }

    #[test]
    fn crash_schedule_is_deterministic_and_consumes_no_randomness() {
        let run = |crash: bool| {
            let mut sim = Simulator::new(77);
            let src = sim.add_node("src", Box::new(Burst { n: 500, size: 1000 }));
            let dst = sim.add_node("dst", Box::new(Sink));
            sim.add_oneway(
                src,
                0,
                dst,
                0,
                gbit_link(0).with_loss(LossModel::Random(0.1)),
            );
            if crash {
                sim.schedule_crash(dst, Time::from_secs(1), None);
            }
            sim.run();
            sim.local_deliveries(dst).len()
        };
        // The crash fires after all traffic: identical delivery outcome,
        // proving the schedule itself draws nothing from the RNG.
        assert_eq!(run(false), run(true));
        assert_eq!(run(true), run(true));
    }

    #[test]
    fn mode_change_recorded_in_trace() {
        let mut sim = Simulator::new(1);
        sim.enable_trace();
        let n = sim.add_node("border", Box::new(Sink));
        sim.record_mode_change(n, 0x47);
        assert_eq!(sim.trace().count(TraceKind::ModeChange), 1);
        let ev = sim.trace().events()[0];
        assert_eq!(ev.node, Some(0));
        assert_eq!(ev.config, Some(0x47));
    }

    #[test]
    fn series_sampler_emits_every_boundary_deterministically() {
        let run = || {
            let mut sim = Simulator::new(3);
            sim.enable_series(Time::from_micros(10));
            let src = sim.add_node("src", Box::new(Burst { n: 5, size: 1500 }));
            let dst = sim.add_node("dst", Box::new(Sink));
            sim.add_oneway(src, 0, dst, 0, gbit_link(0));
            sim.run();
            mmt_telemetry::series::to_jsonl(&sim.take_series())
        };
        let a = run();
        assert_eq!(a, run(), "same seed, same series bytes");
        // Deliveries at 12..60 µs; boundaries 0,10,...,60 µs each emit
        // one sim row + three rows for the single link.
        assert_eq!(a.lines().count(), 7 * 4);
        assert!(a.contains("\"t_ns\":0,\"name\":\"mmt_sim_events_total\""));
        assert!(a.contains("\"t_ns\":60000,\"name\":\"mmt_link_tx_bytes_total\""));
    }

    #[test]
    fn series_boundary_reflects_pre_boundary_state_only() {
        let mut sim = Simulator::new(3);
        sim.enable_series(Time::from_micros(12));
        let src = sim.add_node("src", Box::new(Burst { n: 2, size: 1500 }));
        let dst = sim.add_node("dst", Box::new(Sink));
        sim.add_oneway(src, 0, dst, 0, gbit_link(0));
        sim.run();
        let rows = sim.take_series();
        // The 12 µs boundary must not see the arrival event at exactly
        // 12 µs: delivered count there is still what the link reported
        // at serialization time of packet 1 (which happened at 12 µs
        // TxComplete, also not yet processed).
        let at_12: Vec<_> = rows
            .iter()
            .filter(|r| r.t_ns == 12_000 && r.name == "mmt_link_delivered_packets_total")
            .collect();
        assert_eq!(at_12.len(), 1);
    }

    #[test]
    fn run_until_flushes_series_boundaries_to_deadline() {
        let mut sim = Simulator::new(1);
        sim.enable_series(Time::from_micros(10));
        let src = sim.add_node("src", Box::new(Burst { n: 5, size: 1500 }));
        let dst = sim.add_node("dst", Box::new(Sink));
        sim.add_oneway(src, 0, dst, 0, gbit_link(0));
        sim.run_until(Time::from_micros(25));
        let rows = sim.take_series();
        let ts: Vec<u64> = rows
            .iter()
            .filter(|r| r.name == "mmt_sim_events_total")
            .map(|r| r.t_ns)
            .collect();
        assert_eq!(ts, vec![0, 10_000, 20_000], "boundaries ≤ deadline");
    }

    #[test]
    fn profiler_attributes_queue_link_and_timer_stages() {
        use crate::profile::Stage;
        let mut sim = Simulator::new(9);
        sim.enable_profiler();
        let src = sim.add_node("src", Box::new(Burst { n: 3, size: 1500 }));
        let dst = sim.add_node("dst", Box::new(Sink));
        sim.add_oneway(src, 0, dst, 0, gbit_link(1));
        let t = sim.add_node("t", Box::new(Sink));
        sim.schedule_timer(Time::from_millis(7), t, 1);
        sim.run();
        sim.profile_add(Stage::Decode, 3, 42);
        let p = sim.profiler().unwrap().clone();
        // 3 enqueues + 3 dequeues.
        assert_eq!(p.get(Stage::QueueOps).events, 6);
        // Packets 2 and 3 wait 12 and 24 µs in the queue.
        assert_eq!(p.get(Stage::QueueOps).vtime_ns, 36_000);
        assert_eq!(p.get(Stage::LinkDelivery).events, 3);
        // Each delivery is 12 µs serialization + 1 ms propagation.
        assert_eq!(p.get(Stage::LinkDelivery).vtime_ns, 3 * 1_012_000);
        assert_eq!(p.get(Stage::TimerDispatch).events, 1);
        assert_eq!(p.get(Stage::TimerDispatch).vtime_ns, 7_000_000);
        assert_eq!(p.get(Stage::Decode).events, 3, "profile_add folds in");
        assert_eq!(sim.profiler().unwrap().total_events(), 13);
    }

    #[test]
    fn profiler_disabled_is_free_and_add_is_noop() {
        let mut sim = Simulator::new(9);
        let src = sim.add_node("src", Box::new(Burst { n: 3, size: 1500 }));
        let dst = sim.add_node("dst", Box::new(Sink));
        sim.add_oneway(src, 0, dst, 0, gbit_link(1));
        sim.run();
        sim.profile_add(crate::profile::Stage::Decode, 1, 1);
        assert!(sim.profiler().is_none());
        assert!(sim.take_series().is_empty(), "series disabled → empty");
    }

    #[test]
    #[should_panic(expected = "series interval must be positive")]
    fn zero_series_interval_panics() {
        let mut sim = Simulator::new(1);
        sim.enable_series(Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "restart must come after")]
    fn restart_before_crash_panics() {
        let mut sim = Simulator::new(1);
        let n = sim.add_node("n", Box::new(Sink));
        sim.schedule_crash(n, Time::from_millis(5), Some(Time::from_millis(5)));
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_panics() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a", Box::new(Sink));
        let b = sim.add_node("b", Box::new(Sink));
        sim.add_oneway(a, 0, b, 0, gbit_link(0));
        sim.add_oneway(a, 0, b, 1, gbit_link(0));
    }
}
