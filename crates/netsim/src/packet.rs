//! Simulated packets.

use crate::time::Time;

/// Bookkeeping metadata carried alongside packet bytes.
///
/// The metadata is simulator-side only — it never appears "on the wire" —
/// and exists so experiments can measure per-packet latency and attribute
/// packets to flows without parsing headers at every hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PacketMeta {
    /// Unique id assigned at injection (0 until injected).
    pub id: u64,
    /// Virtual time the packet was created by its source.
    pub created_at: Time,
    /// Experiment-assigned flow label (not on the wire; analysis only).
    pub flow: u64,
    /// MMT sequence number, mirrored from the header by instrumented
    /// elements so traces correlate without re-parsing at every hop.
    pub seq: Option<u64>,
    /// MMT config (mode) id, mirrored like `seq`.
    pub config: Option<u64>,
    /// Whether this is a control-plane packet (NAK, deadline notification,
    /// backpressure credit). Stamped at the emitting node so the fault
    /// layer can target control loss without parsing headers.
    pub control: bool,
    /// Virtual payload tail: extra wire bytes the packet *represents*
    /// without physically allocating them. [`Packet::len`] — and through
    /// it every serialization time, MTU check, queue byte cap, and link
    /// stat — counts them; only `bytes` is backed by memory. High-K
    /// fleets use this to carry multi-KB payloads at header-only resident
    /// cost.
    pub virtual_tail: u32,
}

/// A packet: owned bytes plus metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// The wire bytes (headers + payload).
    pub bytes: Vec<u8>,
    /// Simulator-side metadata.
    pub meta: PacketMeta,
}

impl Packet {
    /// Create a packet from wire bytes.
    pub fn new(bytes: Vec<u8>) -> Packet {
        Packet {
            bytes,
            meta: PacketMeta::default(),
        }
    }

    /// Create a packet with a flow label.
    pub fn with_flow(bytes: Vec<u8>, flow: u64) -> Packet {
        Packet {
            bytes,
            meta: PacketMeta {
                flow,
                ..PacketMeta::default()
            },
        }
    }

    /// Wire length in bytes (physical bytes plus the virtual tail).
    pub fn len(&self) -> usize {
        self.bytes.len() + self.meta.virtual_tail as usize
    }

    /// Whether the packet has no bytes (never true for real traffic; kept
    /// for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let p = Packet::new(vec![1, 2, 3]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.meta.id, 0);
        let q = Packet::with_flow(vec![], 9);
        assert!(q.is_empty());
        assert_eq!(q.meta.flow, 9);
    }

    #[test]
    fn virtual_tail_counts_toward_wire_length() {
        let mut p = Packet::new(vec![0; 40]);
        p.meta.virtual_tail = 8152;
        assert_eq!(p.len(), 8192, "wire length includes the virtual tail");
        assert_eq!(p.bytes.len(), 40, "only the header is resident");
        assert!(!p.is_empty());
        let mut hdr_only = Packet::new(Vec::new());
        hdr_only.meta.virtual_tail = 1;
        assert!(!hdr_only.is_empty());
    }
}
