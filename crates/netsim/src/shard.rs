//! Sharded simulation runner: scale-out across OS threads without giving
//! up byte-identical determinism.
//!
//! ## Partitioning rule
//!
//! A workload is split into `G` independent **flow groups** (no links,
//! packets, or RNG streams cross a group boundary — each group is its own
//! [`crate::Simulator`]). Group `g` runs on shard `g % N`; each shard
//! executes its groups in ascending group order on one `std::thread`.
//!
//! ## Why byte-equality holds
//!
//! Each group's seed is derived from `(root_seed, g)` with
//! [`crate::SimRng::fork_frozen`] — a pure function of the root seed and
//! the group id, never of the shard count or thread interleaving. A group
//! therefore produces the same event sequence, telemetry, and trace no
//! matter which shard (or how many shards) ran it. The merge step then
//! folds per-group results in ascending **group** order — not completion
//! order — so the merged registry and the combined digest are identical
//! for 1, 2, 4, … shards and identical to a serial loop over the groups.
//!
//! Threads only change *wall-clock* time, which is exactly the quantity
//! the bench layer measures (wall-clock never enters this crate; the
//! determinism lint bans it here).

use std::collections::BTreeMap;
use std::sync::mpsc;

use crate::linkstats::LinkStatsBlock;
use crate::profile::SpanProfiler;
use crate::rng::SimRng;
use mmt_telemetry::{MetricRegistry, SeriesRow, TraceRecord};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher (dependency-free, platform-stable),
/// used to fold traces and telemetry into comparable digests.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(FNV_OFFSET)
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Digest a slice of flow-correlated trace records. Field order is fixed,
/// so equal digests mean byte-identical traces (modulo 64-bit collisions).
pub fn digest_trace(records: &[TraceRecord]) -> u64 {
    let mut h = Fnv64::new();
    for r in records {
        h.write_u64(r.ts_ns);
        h.write(r.kind.as_bytes());
        h.write_u64(r.node.map_or(u64::MAX, |v| v));
        h.write_u64(r.link.map_or(u64::MAX, |v| v));
        h.write_u64(r.packet_id);
        h.write_u64(r.flow);
        h.write_u64(r.seq.map_or(u64::MAX, |v| v));
        h.write_u64(r.config.map_or(u64::MAX, |v| v));
        h.write_u64(r.len_bytes);
    }
    h.finish()
}

/// Digest a slice of trace records *keyed by flow*, skipping the node
/// index. Flow-state refactors that re-house flows in different node
/// objects (one fleet node vs. one node per sensor) keep every
/// wire-observable field — timestamps, links, packet ids, flows, seqs,
/// lengths — but renumber nodes; this digest is the invariant they are
/// held to. Where node identity matters, use [`digest_trace`].
pub fn digest_trace_flow(records: &[TraceRecord]) -> u64 {
    let mut h = Fnv64::new();
    for r in records {
        h.write_u64(r.ts_ns);
        h.write(r.kind.as_bytes());
        h.write_u64(r.link.map_or(u64::MAX, |v| v));
        h.write_u64(r.packet_id);
        h.write_u64(r.flow);
        h.write_u64(r.seq.map_or(u64::MAX, |v| v));
        h.write_u64(r.config.map_or(u64::MAX, |v| v));
        h.write_u64(r.len_bytes);
    }
    h.finish()
}

/// Digest a rendered string (e.g. a Prometheus exposition of a registry).
pub fn digest_str(s: &str) -> u64 {
    let mut h = Fnv64::new();
    h.write(s.as_bytes());
    h.finish()
}

/// What one flow group produced: its telemetry, its trace digest, and the
/// deterministic work counters the load report is built from.
#[derive(Debug)]
pub struct GroupResult {
    /// Merged into the run's registry in ascending group order.
    pub registry: MetricRegistry,
    /// Packed per-link metric cells (from
    /// [`crate::Simulator::export_metrics_split`]); folded numerically
    /// across groups and materialized into the merged registry once,
    /// after the last group. Leave empty (the default) when the group's
    /// registry already carries its link rows eagerly.
    pub links: LinkStatsBlock,
    /// Digest of the group's trace (see [`digest_trace`]).
    pub trace_digest: u64,
    /// Simulator events the group processed.
    pub events: u64,
    /// Packets the group delivered.
    pub packets: u64,
    /// Sampled time-series rows (empty unless sampling is enabled).
    /// Concatenated in ascending group order at merge, so the merged
    /// JSONL is byte-identical across shard/worker counts — the
    /// streaming analogue of `MetricRegistry::absorb`.
    pub series: Vec<SeriesRow>,
    /// The group's span profile (zeroed unless profiling is enabled);
    /// merged by commutative addition.
    pub profile: SpanProfiler,
}

/// Deterministic per-shard load summary (virtual work, not wall time —
/// wall time belongs to the bench layer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardLoad {
    /// Groups the shard executed.
    pub groups: u64,
    /// Events processed across those groups.
    pub events: u64,
    /// Packets delivered across those groups.
    pub packets: u64,
}

/// The merged outcome of a sharded run. Byte-identical across shard
/// counts for a fixed `(root_seed, groups, workload)`.
#[derive(Debug)]
pub struct ShardReport {
    /// All group registries absorbed in ascending group order.
    pub registry: MetricRegistry,
    /// Per-group trace digests folded in ascending group order.
    pub trace_digest: u64,
    /// Total events processed.
    pub events: u64,
    /// Total packets delivered.
    pub packets: u64,
    /// Deterministic load per shard (indexed by shard id).
    pub shard_loads: Vec<ShardLoad>,
    /// Per-group series rows concatenated in ascending group order.
    pub series: Vec<SeriesRow>,
    /// Span profiles summed across groups (order-independent).
    pub profile: SpanProfiler,
}

impl ShardReport {
    /// Each shard's share of total events, in `[0, 1]` (the utilization
    /// proxy the bench reports; 1/N everywhere means perfect balance).
    pub fn shard_utilization(&self) -> Vec<f64> {
        let total = self.events.max(1) as f64;
        self.shard_loads
            .iter()
            // mmt-lint: allow(F1, "report-side load share; never enters the sim or its digests")
            .map(|l| l.events as f64 / total)
            .collect()
    }
}

/// Partitions independent flow groups across worker threads. See the
/// module docs for the determinism argument.
///
/// **Logical shards vs worker threads.** The shard count defines the
/// *partition* (group `g` belongs to shard `g % N`, and the load report
/// has N entries); the number of OS threads actually spawned is clamped
/// to the host's available parallelism, because running 4 threads on 1
/// core only adds scheduler thrash. Outputs never depend on the worker
/// count — only wall-clock time does — so the clamp is invisible to the
/// determinism contract.
#[derive(Debug, Clone, Copy)]
pub struct ShardedSim {
    root_seed: u64,
    shards: usize,
    workers: Option<usize>,
}

impl ShardedSim {
    /// A runner partitioned into `shards` logical shards (clamped to at
    /// least 1), executed on up to that many worker threads.
    pub fn new(root_seed: u64, shards: usize) -> ShardedSim {
        ShardedSim {
            root_seed,
            shards: shards.max(1),
            workers: None,
        }
    }

    /// Force the worker-thread count (tests use this to exercise the
    /// threaded path regardless of host core count).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> ShardedSim {
        self.workers = Some(workers.max(1));
        self
    }

    /// The configured shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// OS threads the run will use: `min(shards, available cores)` unless
    /// overridden by [`ShardedSim::with_workers`].
    pub fn worker_count(&self) -> usize {
        match self.workers {
            Some(w) => w.min(self.shards),
            None => {
                let hw = std::thread::available_parallelism().map_or(1, std::num::NonZero::get); // mmt-lint: allow(D2, "capacity probe only; group→shard mapping keeps results identical at any worker count")
                self.shards.min(hw.max(1))
            }
        }
    }

    /// The seed group `g` runs with — a pure function of `(root_seed, g)`,
    /// independent of the shard count, which is what makes sharded and
    /// serial runs byte-identical.
    pub fn group_seed(&self, group: usize) -> u64 {
        SimRng::new(self.root_seed)
            .fork_frozen(group as u64 ^ 0x5CA1_AB1E_0000_0000)
            .next_u64()
    }

    /// Run `groups` flow groups through `run_group(group, group_seed)`,
    /// merging results in ascending group order. With one worker the
    /// groups run on the calling thread (the serial reference); with
    /// more, worker `w` owns groups `g ≡ w (mod workers)` on its own
    /// thread. Accounting always attributes group `g` to logical shard
    /// `g % shards`, so load reports are identical at any worker count.
    // mmt-lint: cold
    pub fn run<F>(&self, groups: usize, run_group: F) -> ShardReport
    where
        F: Fn(usize, u64) -> GroupResult + Send + Sync,
    {
        let workers = self.worker_count();
        let mut merge = MergeAcc::new(self.shards);
        if workers == 1 {
            for g in 0..groups {
                // Fold immediately: exactly one group's telemetry is
                // ever alive alongside the accumulator, which is what
                // keeps fleet-scale peak RSS flat in the group count.
                merge.offer(g, g % self.shards, run_group(g, self.group_seed(g)));
            }
        } else {
            let (tx, rx) = mpsc::channel::<(usize, GroupResult)>();
            let this = *self;
            // mmt-lint: allow(D2, "deliberate parallelism: groups are seed-isolated and merged in ascending order, so the result is byte-identical to the serial run")
            std::thread::scope(|scope| {
                for worker in 0..workers {
                    let tx = tx.clone();
                    let run_group = &run_group;
                    scope.spawn(move || {
                        let mut g = worker;
                        while g < groups {
                            let result = run_group(g, this.group_seed(g));
                            // The receiver outlives the scope; a send can
                            // only fail if it was dropped early, in which
                            // case losing the result is the right outcome.
                            let _ = tx.send((g, result));
                            g += workers;
                        }
                    });
                }
            });
            drop(tx);
            // Results arrive in completion order; the accumulator holds
            // out-of-order arrivals and folds each contiguous prefix in
            // ascending group order, so the merge is byte-identical to
            // the serial loop while freeing group telemetry early.
            for (g, result) in rx {
                merge.offer(g, g % self.shards, result);
            }
        }
        merge.finish()
    }
}

/// Merge accumulator: folds [`GroupResult`]s in ascending group order
/// regardless of arrival order, releasing each group's telemetry as soon
/// as it is absorbed. Out-of-order arrivals wait in `pending`; the fold
/// itself is identical to the old collect-then-merge loop, so digests
/// and registries are byte-identical — only peak memory changes.
struct MergeAcc {
    registry: MetricRegistry,
    links: LinkStatsBlock,
    digest: Fnv64,
    events: u64,
    packets: u64,
    shard_loads: Vec<ShardLoad>,
    series: Vec<SeriesRow>,
    profile: SpanProfiler,
    /// Next group id the fold is waiting for.
    next: usize,
    /// Groups that finished ahead of `next`, keyed by group id.
    pending: BTreeMap<usize, (usize, GroupResult)>,
}

impl MergeAcc {
    // mmt-lint: cold
    fn new(shards: usize) -> MergeAcc {
        MergeAcc {
            registry: MetricRegistry::new(),
            links: LinkStatsBlock::new(),
            digest: Fnv64::new(),
            events: 0,
            packets: 0,
            shard_loads: vec![ShardLoad::default(); shards],
            series: Vec::new(),
            profile: SpanProfiler::new(),
            next: 0,
            pending: BTreeMap::new(),
        }
    }

    /// Hand over group `g`'s result; folds it now if it is next in
    /// ascending order, otherwise parks it until the gap closes.
    // mmt-lint: cold
    fn offer(&mut self, g: usize, shard: usize, result: GroupResult) {
        if g == self.next {
            self.fold(g, shard, result);
            self.next += 1;
            while let Some((shard, result)) = self.pending.remove(&self.next) {
                let g = self.next;
                self.fold(g, shard, result);
                self.next += 1;
            }
        } else {
            self.pending.insert(g, (shard, result));
        }
    }

    // mmt-lint: cold
    fn fold(&mut self, g: usize, shard: usize, mut result: GroupResult) {
        self.registry.absorb(&result.registry);
        self.links.merge_from(&result.links);
        self.digest.write_u64(g as u64);
        self.digest.write_u64(result.trace_digest);
        self.events += result.events;
        self.packets += result.packets;
        self.series.append(&mut result.series);
        self.profile.merge(&result.profile);
        if let Some(load) = self.shard_loads.get_mut(shard) {
            load.groups += 1;
            load.events += result.events;
            load.packets += result.packets;
        }
    }

    /// Fold any still-pending groups (ascending) and materialize the
    /// packed link cells into the merged registry.
    // mmt-lint: cold
    fn finish(mut self) -> ShardReport {
        let pending = std::mem::take(&mut self.pending);
        for (g, (shard, result)) in pending {
            self.fold(g, shard, result);
        }
        self.links.materialize(&mut self.registry);
        ShardReport {
            registry: self.registry,
            trace_digest: self.digest.finish(),
            events: self.events,
            packets: self.packets,
            shard_loads: self.shard_loads,
            series: self.series,
            profile: self.profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::node::{Context, Node, PortId};
    use crate::packet::Packet;
    use crate::sim::Simulator;
    use crate::time::{Bandwidth, Time};

    struct Sink;
    impl Node for Sink {
        fn on_packet(&mut self, ctx: &mut Context<'_>, _port: PortId, pkt: Packet) {
            ctx.deliver_local(pkt);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    /// A tiny but non-trivial group: one seeded burst into a sink over a
    /// lossy-free gigabit link, sized by the group's own RNG stream.
    fn run_group(group: usize, group_seed: u64) -> GroupResult {
        let mut sim = Simulator::new(group_seed);
        sim.enable_trace();
        let src = sim.add_node("src", Box::new(Sink));
        let dst = sim.add_node("dst", Box::new(Sink));
        sim.add_oneway(
            src,
            1,
            dst,
            0,
            LinkSpec::new(Bandwidth::gbps(1), Time::from_micros(10)),
        );
        let n = 3 + (SimRng::new(group_seed).next_bounded(5) as usize);
        for i in 0..n {
            let mut pkt = Packet::with_flow(vec![0u8; 200 + group], group as u64);
            pkt.meta.seq = Some(i as u64);
            sim.inject(Time::from_micros(i as u64), src, 5, pkt);
        }
        sim.run();
        let mut registry = MetricRegistry::new();
        sim.export_metrics(&mut registry);
        GroupResult {
            registry,
            links: LinkStatsBlock::new(),
            trace_digest: digest_trace(&sim.trace_records()),
            events: 0,
            packets: 0,
            series: Vec::new(),
            profile: SpanProfiler::new(),
        }
    }

    #[test]
    fn group_seed_ignores_shard_count() {
        for g in 0..16 {
            assert_eq!(
                ShardedSim::new(42, 1).group_seed(g),
                ShardedSim::new(42, 4).group_seed(g)
            );
        }
        assert_ne!(
            ShardedSim::new(42, 1).group_seed(0),
            ShardedSim::new(42, 1).group_seed(1)
        );
    }

    #[test]
    fn sharded_matches_serial_exactly() {
        let serial = ShardedSim::new(7, 1).run(9, run_group);
        for shards in [2, 3, 4, 8] {
            // Force real threads even on single-core CI hosts, where the
            // default clamp would fall back to the calling thread.
            let sharded = ShardedSim::new(7, shards)
                .with_workers(shards)
                .run(9, run_group);
            assert_eq!(
                mmt_telemetry::prometheus::render(&serial.registry),
                mmt_telemetry::prometheus::render(&sharded.registry),
                "{shards}-shard registry must render byte-identically"
            );
            assert_eq!(serial.trace_digest, sharded.trace_digest);
        }
    }

    #[test]
    fn worker_clamp_never_exceeds_shards() {
        assert_eq!(ShardedSim::new(1, 4).with_workers(16).worker_count(), 4);
        assert_eq!(ShardedSim::new(1, 1).worker_count(), 1);
        assert!(ShardedSim::new(1, 8).worker_count() >= 1);
    }

    #[test]
    fn loads_cover_all_groups() {
        let report = ShardedSim::new(1, 4).run(10, |g, seed| GroupResult {
            registry: MetricRegistry::new(),
            links: LinkStatsBlock::new(),
            trace_digest: seed,
            events: 10 + g as u64,
            packets: 1,
            series: Vec::new(),
            profile: SpanProfiler::new(),
        });
        assert_eq!(report.shard_loads.len(), 4);
        assert_eq!(report.shard_loads.iter().map(|l| l.groups).sum::<u64>(), 10);
        // Groups 0..10 over 4 shards: 3, 3, 2, 2.
        assert_eq!(report.shard_loads[0].groups, 3);
        assert_eq!(report.shard_loads[3].groups, 2);
        assert_eq!(report.packets, 10);
        assert_eq!(
            report.events,
            (0..10u64).map(|g| 10 + g).sum::<u64>(),
            "event totals fold across shards"
        );
        let util = report.shard_utilization();
        assert_eq!(util.len(), 4);
        assert!((util.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn series_and_profile_merge_ignores_worker_layout() {
        let run = |workers| {
            let report = ShardedSim::new(5, 4)
                .with_workers(workers)
                .run(8, |g, _seed| {
                    let g_s = g.to_string();
                    let mut profile = SpanProfiler::new();
                    profile.add(crate::profile::Stage::Encode, g as u64, 1);
                    GroupResult {
                        registry: MetricRegistry::new(),
                        links: LinkStatsBlock::new(),
                        trace_digest: 0,
                        events: 0,
                        packets: 0,
                        series: vec![SeriesRow::counter(
                            0,
                            "x",
                            &[("group", g_s.as_str())],
                            g as u64,
                        )],
                        profile,
                    }
                });
            (
                mmt_telemetry::series::to_jsonl(&report.series),
                report.profile,
            )
        };
        let (s1, p1) = run(1);
        for w in [2, 4, 8] {
            let (s, p) = run(w);
            assert_eq!(s1, s, "{w}-worker series must merge byte-identically");
            assert_eq!(p1, p, "{w}-worker profile must merge identically");
        }
        let first = s1.lines().next().unwrap_or("");
        assert!(first.contains("\"group\":\"0\""), "ascending group order");
        assert_eq!(p1.get(crate::profile::Stage::Encode).events, 28);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let s = ShardedSim::new(3, 0);
        assert_eq!(s.shards(), 1);
        let report = s.run(2, run_group);
        assert_eq!(report.shard_loads.len(), 1);
    }

    #[test]
    fn fnv_digest_is_stable() {
        // Canonical FNV-1a 64 test vector: the empty input hashes to the
        // offset basis, and "a" to 0xaf63dc4c8601ec8c.
        assert_eq!(Fnv64::new().finish(), 0xcbf2_9ce4_8422_2325);
        assert_eq!(digest_str("a"), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.write_u64(7);
        assert_ne!(h.finish(), digest_str("a"));
    }
}
