//! Packet arena: pooled byte buffers with index-based references.
//!
//! The many-flow scale path (10 000 sensors × millions of packets) dies by
//! a thousand `Vec` allocations if every packet heap-allocates its payload.
//! The arena keeps buffers alive across packet lifetimes:
//!
//! * **Slots** hold buffers addressed by a [`PacketRef`] — a plain
//!   `(index, generation)` pair, `Copy`, 8 bytes. Releasing a slot pushes
//!   its index on a free list; the buffer's capacity is retained, so the
//!   next [`PacketArena::alloc`] at that index reuses the allocation.
//!   Generations make stale refs detectable: a ref released once never
//!   reads or releases the slot's next tenant.
//! * **Spare buffers** serve the [`Packet`] boundary. The simulator owns
//!   packets by value, so a pooled buffer must physically leave the arena
//!   inside the packet; [`PacketArena::packet`] pulls a recycled buffer
//!   (or allocates the first time) and [`PacketArena::recycle`] returns a
//!   delivered packet's buffer to the pool. In steady state the spare pool
//!   reaches the in-flight high-water mark and allocation stops.
//!
//! Everything is index-based and single-threaded; shards each own a
//! private arena, so no synchronization is needed or present.

use crate::packet::Packet;

/// Index-based handle to an arena slot. `Copy`, 8 bytes, and safe against
/// use-after-release: a stale ref (released, slot since reused) fails
/// `get`/`release` instead of aliasing the new tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketRef {
    index: u32,
    generation: u32,
}

impl PacketRef {
    /// The slot index (stable for the life of the allocation).
    pub fn index(&self) -> u32 {
        self.index
    }

    /// The generation the ref was issued under.
    pub fn generation(&self) -> u32 {
        self.generation
    }
}

#[derive(Debug)]
struct Slot {
    buf: Vec<u8>,
    generation: u32,
    live: bool,
}

/// Allocation counters exposed for benches and invariant tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Slot allocations that had to create a fresh heap buffer.
    pub fresh: u64,
    /// Slot allocations served from the free list (buffer reused).
    pub reused: u64,
    /// Successful releases.
    pub released: u64,
    /// `release`/`get` calls rejected as stale or double-released.
    pub stale_refs: u64,
    /// Packets built from a recycled spare buffer.
    pub packets_reused: u64,
    /// Packets that required a fresh buffer allocation.
    pub packets_fresh: u64,
    /// Most slots live at once.
    pub high_water: u64,
}

/// A pool of packet buffers with free-list reuse. See the module docs.
#[derive(Debug, Default)]
pub struct PacketArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
    spare: Vec<Vec<u8>>,
    live: usize,
    stats: ArenaStats,
}

impl PacketArena {
    /// An empty arena.
    // mmt-lint: cold
    pub fn new() -> PacketArena {
        PacketArena::default()
    }

    /// An arena with `n` slots pre-created (each slot's buffer sized to
    /// `buf_len`), so the hot path never allocates at all.
    // mmt-lint: cold
    pub fn with_capacity(n: usize, buf_len: usize) -> PacketArena {
        let mut a = PacketArena::new();
        a.slots.reserve(n);
        a.free.reserve(n);
        for i in 0..n {
            a.slots.push(Slot {
                buf: Vec::with_capacity(buf_len),
                generation: 0,
                live: false,
            });
            a.free.push(i as u32);
        }
        a
    }

    /// Allocate a slot holding `len` zeroed bytes, reusing a released
    /// slot's buffer when one is available.
    pub fn alloc(&mut self, len: usize) -> PacketRef {
        let index = match self.free.pop() {
            Some(i) => {
                // A pre-created slot (never yet lived) still counts as a
                // reuse only if its buffer has capacity to give back.
                if self.slots[i as usize].buf.capacity() >= len {
                    self.stats.reused += 1;
                } else {
                    self.stats.fresh += 1;
                }
                i
            }
            None => {
                self.stats.fresh += 1;
                self.slots.push(Slot {
                    // mmt-lint: allow(A1, "free list empty: arena growth path, amortized across the run")
                    buf: Vec::new(),
                    generation: 0,
                    live: false,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let slot = &mut self.slots[index as usize];
        slot.buf.clear();
        slot.buf.resize(len, 0);
        slot.live = true;
        self.live += 1;
        self.stats.high_water = self.stats.high_water.max(self.live as u64);
        PacketRef {
            index,
            generation: slot.generation,
        }
    }

    /// Allocate a slot initialized with a copy of `bytes`.
    pub fn alloc_from(&mut self, bytes: &[u8]) -> PacketRef {
        let r = self.alloc(bytes.len());
        if let Some(slot) = self.slots.get_mut(r.index as usize) {
            slot.buf.copy_from_slice(bytes);
        }
        r
    }

    /// The bytes behind a ref, or `None` if the ref is stale.
    pub fn get(&self, r: PacketRef) -> Option<&[u8]> {
        let slot = self.slots.get(r.index as usize)?;
        if slot.live && slot.generation == r.generation {
            Some(&slot.buf)
        } else {
            None
        }
    }

    /// Mutable bytes behind a ref, or `None` if the ref is stale.
    pub fn get_mut(&mut self, r: PacketRef) -> Option<&mut Vec<u8>> {
        let slot = self.slots.get_mut(r.index as usize)?;
        if slot.live && slot.generation == r.generation {
            Some(&mut slot.buf)
        } else {
            None
        }
    }

    /// Release a slot back to the free list, retaining its buffer for
    /// reuse. Returns `false` (and counts a stale ref) if the ref was
    /// already released or superseded — double-release cannot corrupt the
    /// free list.
    pub fn release(&mut self, r: PacketRef) -> bool {
        let Some(slot) = self.slots.get_mut(r.index as usize) else {
            self.stats.stale_refs += 1;
            return false;
        };
        if !slot.live || slot.generation != r.generation {
            self.stats.stale_refs += 1;
            return false;
        }
        slot.live = false;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(r.index);
        self.live -= 1;
        self.stats.released += 1;
        true
    }

    /// Build a [`Packet`] of `len` zeroed bytes around a recycled buffer
    /// (or a fresh one if the spare pool is empty). The buffer leaves the
    /// arena inside the packet; hand it back with
    /// [`PacketArena::recycle`] once the packet is consumed.
    pub fn packet(&mut self, len: usize, flow: u64) -> Packet {
        let mut buf = match self.spare.pop() {
            Some(b) => {
                self.stats.packets_reused += 1;
                b
            }
            None => {
                self.stats.packets_fresh += 1;
                // mmt-lint: allow(A1, "spare pool empty: pool-miss path, amortized across the run")
                Vec::with_capacity(len)
            }
        };
        buf.clear();
        buf.resize(len, 0);
        Packet::with_flow(buf, flow)
    }

    /// Like [`PacketArena::packet`] but without re-zeroing a recycled
    /// buffer: the previous tenant's bytes are retained (truncated, or
    /// zero-extended if the buffer was shorter), skipping an O(len)
    /// memset per packet on the hot path. Only the bytes the caller
    /// overwrites are defined — the zero-copy wire path writes its
    /// header with `encode_into` over the front and treats the payload
    /// region as opaque detector bytes. Contents remain a pure function
    /// of the arena's (deterministic) recycle history.
    pub fn frame(&mut self, len: usize, flow: u64) -> Packet {
        let mut buf = match self.spare.pop() {
            Some(b) => {
                self.stats.packets_reused += 1;
                b
            }
            None => {
                self.stats.packets_fresh += 1;
                // mmt-lint: allow(A1, "spare pool empty: pool-miss path, amortized across the run")
                Vec::with_capacity(len)
            }
        };
        if buf.len() > len {
            buf.truncate(len);
        } else {
            buf.resize(len, 0);
        }
        Packet::with_flow(buf, flow)
    }

    /// Like [`PacketArena::frame`] but only `physical_len` bytes are
    /// resident: the remaining `total_len − physical_len` wire bytes ride
    /// as the packet's *virtual tail* (see `PacketMeta::virtual_tail`).
    /// Serialization times, MTU checks, queue caps, and link stats all
    /// see `total_len`; memory sees `physical_len`. This is how a
    /// million-sensor fleet carries 8 KB frames at ~40 B resident each.
    pub fn frame_virtual(&mut self, physical_len: usize, total_len: usize, flow: u64) -> Packet {
        debug_assert!(physical_len <= total_len);
        let mut pkt = self.frame(physical_len, flow);
        pkt.meta.virtual_tail = total_len
            .saturating_sub(physical_len)
            .min(u32::MAX as usize) as u32;
        pkt
    }

    /// Return a consumed packet's buffer to the spare pool.
    pub fn recycle(&mut self, pkt: Packet) {
        self.spare.push(pkt.bytes);
    }

    /// Return a raw buffer to the spare pool.
    pub fn recycle_bytes(&mut self, bytes: Vec<u8>) {
        self.spare.push(bytes);
    }

    /// Number of live slots.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever created (live + free).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Buffers waiting in the spare pool.
    pub fn spare_len(&self) -> usize {
        self.spare.len()
    }

    /// Allocation counters.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_read_back() {
        let mut a = PacketArena::new();
        let r = a.alloc_from(&[1, 2, 3]);
        assert_eq!(a.get(r), Some(&[1u8, 2, 3][..]));
        assert_eq!(a.live(), 1);
        assert_eq!(a.stats().fresh, 1);
    }

    #[test]
    fn release_then_alloc_reuses_slot_and_bumps_generation() {
        let mut a = PacketArena::new();
        let r1 = a.alloc(64);
        assert!(a.release(r1));
        let r2 = a.alloc(32);
        assert_eq!(r2.index(), r1.index(), "free list must hand back slot 0");
        assert_ne!(r2.generation(), r1.generation());
        assert_eq!(a.stats().reused, 1);
        assert_eq!(a.capacity(), 1, "no second slot created");
    }

    #[test]
    fn stale_ref_is_inert() {
        let mut a = PacketArena::new();
        let r1 = a.alloc(8);
        assert!(a.release(r1));
        let r2 = a.alloc(8);
        // r1 now points at r2's slot but with the old generation.
        assert_eq!(a.get(r1), None);
        assert!(!a.release(r1), "double release rejected");
        assert_eq!(a.stats().stale_refs, 1);
        assert_eq!(a.get(r2).map(<[u8]>::len), Some(8));
        assert_eq!(a.live(), 1, "stale release must not free the new tenant");
    }

    #[test]
    fn with_capacity_precreates_slots() {
        let mut a = PacketArena::with_capacity(4, 128);
        let refs: Vec<PacketRef> = (0..4).map(|_| a.alloc(100)).collect();
        assert_eq!(a.capacity(), 4);
        assert_eq!(a.stats().fresh, 0, "all four served by pre-created slots");
        for r in refs {
            assert!(a.release(r));
        }
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn packet_round_trip_reuses_buffers() {
        let mut a = PacketArena::new();
        let p = a.packet(1500, 7);
        assert_eq!(p.len(), 1500);
        assert_eq!(p.meta.flow, 7);
        assert_eq!(a.stats().packets_fresh, 1);
        a.recycle(p);
        let q = a.packet(1500, 8);
        assert_eq!(a.stats().packets_reused, 1);
        assert_eq!(a.stats().packets_fresh, 1, "no second allocation");
        assert_eq!(q.len(), 1500);
        assert!(q.bytes.iter().all(|&b| b == 0), "recycled buffer rezeroed");
    }

    #[test]
    fn frame_virtual_is_header_resident_full_length_on_wire() {
        let mut a = PacketArena::new();
        let p = a.frame_virtual(40, 8192, 3);
        assert_eq!(p.len(), 8192, "wire sees the full frame");
        assert_eq!(p.bytes.len(), 40, "memory holds only the header");
        assert_eq!(p.meta.virtual_tail, 8152);
        a.recycle(p);
        // The recycled 40-byte buffer serves the next virtual frame.
        let q = a.frame_virtual(40, 8192, 4);
        assert_eq!(a.stats().packets_reused, 1);
        assert_eq!(q.len(), 8192);
    }

    #[test]
    fn high_water_tracks_peak_liveness() {
        let mut a = PacketArena::new();
        let refs: Vec<PacketRef> = (0..5).map(|_| a.alloc(10)).collect();
        for r in &refs[..3] {
            assert!(a.release(*r));
        }
        let _ = a.alloc(10);
        assert_eq!(a.stats().high_water, 5);
        assert_eq!(a.live(), 3);
    }
}
