//! Per-packet event tracing (optional; for debugging, fine assertions,
//! and machine-readable export via `mmt-telemetry`).

use crate::time::Time;
use std::collections::VecDeque;

/// What happened to a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Accepted into a link's output queue.
    Enqueue,
    /// Dropped by the output queue.
    QueueDrop,
    /// Dropped for exceeding the link MTU.
    MtuDrop,
    /// Lost to corruption in flight.
    CorruptionLoss,
    /// Lost to a link outage (fault injection).
    FlapDrop,
    /// Control-plane packet dropped by selective control loss (fault
    /// injection).
    ControlDrop,
    /// A fault-injected duplicate copy was scheduled for delivery.
    DupInject,
    /// Arrived at a node.
    Arrive,
    /// Handed to a node's local application.
    LocalDeliver,
    /// A node crashed (scheduled fault): queued/arriving traffic is dropped
    /// and the node's soft state is lost until restart.
    NodeCrash,
    /// A crashed node came back up with empty state.
    NodeRestart,
    /// The control plane changed a flow's transport mode (the `config`
    /// field carries the new feature bitmap).
    ModeChange,
}

impl TraceKind {
    /// Stable snake_case name used by every exporter.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::Enqueue => "enqueue",
            TraceKind::QueueDrop => "queue_drop",
            TraceKind::MtuDrop => "mtu_drop",
            TraceKind::CorruptionLoss => "corruption_loss",
            TraceKind::FlapDrop => "flap_drop",
            TraceKind::ControlDrop => "control_drop",
            TraceKind::DupInject => "dup_inject",
            TraceKind::Arrive => "arrive",
            TraceKind::LocalDeliver => "local_deliver",
            TraceKind::NodeCrash => "node_crash",
            TraceKind::NodeRestart => "node_restart",
            TraceKind::ModeChange => "mode_change",
        }
    }
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: Time,
    /// What happened.
    pub kind: TraceKind,
    /// Node involved (if any).
    pub node: Option<usize>,
    /// Link involved (if any).
    pub link: Option<usize>,
    /// The packet's simulator id.
    pub packet_id: u64,
    /// The packet's wire length.
    pub len: usize,
    /// The packet's flow label (from [`crate::PacketMeta`]).
    pub flow: u64,
    /// MMT sequence number, when an instrumented element stamped one.
    pub seq: Option<u64>,
    /// MMT config (mode) id, when known.
    pub config: Option<u64>,
}

/// A packet-event recorder.
///
/// Three capacity modes:
/// * [`Trace::disabled`] — discards everything (zero cost).
/// * [`Trace::enabled`] — keeps every event (unbounded memory).
/// * [`Trace::with_capacity`] — bounded ring buffer: once full, each new
///   event evicts the **oldest** one (keep-last semantics, so the tail of
///   the run — usually where the interesting failure is — survives), and
///   [`Trace::dropped`] counts the evictions.
#[derive(Debug)]
pub struct Trace {
    enabled: bool,
    capacity: Option<usize>,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Trace {
    /// A recorder that discards everything (zero cost).
    pub fn disabled() -> Trace {
        Trace {
            enabled: false,
            capacity: None,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// A recorder that keeps every event.
    pub fn enabled() -> Trace {
        Trace {
            enabled: true,
            capacity: None,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// A recorder that keeps the most recent `capacity` events; older
    /// events are evicted FIFO and counted in [`Trace::dropped`].
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Trace {
        assert!(capacity > 0, "trace capacity must be positive");
        Trace {
            enabled: true,
            capacity: Some(capacity),
            events: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// Whether events are recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled).
    pub fn record(&mut self, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if let Some(cap) = self.capacity {
            if self.events.len() == cap {
                self.events.pop_front();
                self.dropped += 1;
            }
        }
        self.events.push_back(event);
    }

    /// All retained events, in order (oldest first).
    pub fn events(&self) -> &VecDeque<TraceEvent> {
        &self.events
    }

    /// How many events the ring buffer evicted (0 in unbounded mode).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events concerning one packet.
    pub fn for_packet(&self, packet_id: u64) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.packet_id == packet_id)
            .collect()
    }

    /// Count events of a given kind.
    pub fn count(&self, kind: TraceKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: TraceKind, packet_id: u64) -> TraceEvent {
        TraceEvent {
            time: Time::ZERO,
            kind,
            node: None,
            link: None,
            packet_id,
            len: 0,
            flow: 0,
            seq: None,
            config: None,
        }
    }

    #[test]
    fn disabled_discards() {
        let mut t = Trace::disabled();
        t.record(ev(TraceKind::Arrive, 1));
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_records_and_filters() {
        let mut t = Trace::enabled();
        t.record(ev(TraceKind::Enqueue, 1));
        t.record(ev(TraceKind::Arrive, 1));
        t.record(ev(TraceKind::Arrive, 2));
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.for_packet(1).len(), 2);
        assert_eq!(t.count(TraceKind::Arrive), 2);
        assert_eq!(t.count(TraceKind::QueueDrop), 0);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_buffer_keeps_last_n() {
        let mut t = Trace::with_capacity(3);
        for id in 1..=5 {
            t.record(ev(TraceKind::Arrive, id));
        }
        let ids: Vec<u64> = t.events().iter().map(|e| e.packet_id).collect();
        assert_eq!(ids, vec![3, 4, 5], "oldest events evicted first");
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        Trace::with_capacity(0);
    }
}
