//! Per-packet event tracing (optional; for debugging and fine assertions).

use crate::time::Time;

/// What happened to a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Accepted into a link's output queue.
    Enqueue,
    /// Dropped by the output queue.
    QueueDrop,
    /// Dropped for exceeding the link MTU.
    MtuDrop,
    /// Lost to corruption in flight.
    CorruptionLoss,
    /// Arrived at a node.
    Arrive,
    /// Handed to a node's local application.
    LocalDeliver,
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: Time,
    /// What happened.
    pub kind: TraceKind,
    /// Node involved (if any).
    pub node: Option<usize>,
    /// Link involved (if any).
    pub link: Option<usize>,
    /// The packet's simulator id.
    pub packet_id: u64,
    /// The packet's wire length.
    pub len: usize,
}

/// A packet-event recorder.
#[derive(Debug)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// A recorder that discards everything (zero cost).
    pub fn disabled() -> Trace {
        Trace {
            enabled: false,
            events: Vec::new(),
        }
    }

    /// A recorder that keeps every event.
    pub fn enabled() -> Trace {
        Trace {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// Record an event (no-op when disabled).
    pub fn record(&mut self, event: TraceEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// All recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events concerning one packet.
    pub fn for_packet(&self, packet_id: u64) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.packet_id == packet_id)
            .collect()
    }

    /// Count events of a given kind.
    pub fn count(&self, kind: TraceKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: TraceKind, packet_id: u64) -> TraceEvent {
        TraceEvent {
            time: Time::ZERO,
            kind,
            node: None,
            link: None,
            packet_id,
            len: 0,
        }
    }

    #[test]
    fn disabled_discards() {
        let mut t = Trace::disabled();
        t.record(ev(TraceKind::Arrive, 1));
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_records_and_filters() {
        let mut t = Trace::enabled();
        t.record(ev(TraceKind::Enqueue, 1));
        t.record(ev(TraceKind::Arrive, 1));
        t.record(ev(TraceKind::Arrive, 2));
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.for_packet(1).len(), 2);
        assert_eq!(t.count(TraceKind::Arrive), 2);
        assert_eq!(t.count(TraceKind::QueueDrop), 0);
    }
}
