//! Zero-dependency hot-path span profiler in **virtual time**.
//!
//! Wall-clock profilers (perf, flamegraphs) answer "where does the host
//! CPU go", which is nondeterministic and useless as a regression
//! artifact. This profiler instead attributes *simulated* work to a
//! fixed taxonomy of hot-path stages — how many events each stage
//! handled and how much virtual time those events represent — so the
//! attribution is a pure function of the seed and byte-identical across
//! shard/worker layouts (per-stage totals merge by commutative
//! addition, like `MetricRegistry::absorb`).
//!
//! Two halves feed it:
//!
//! * the simulator core ([`crate::Simulator`]) attributes queue
//!   operations (residency time), link delivery (serialization +
//!   propagation per copy), and timer dispatch (arm→fire delay) when
//!   profiling is enabled;
//! * node-level code (encode/decode, retransmit serve, mode control)
//!   folds its own counts in post-run via [`SpanProfiler::add`], since
//!   only the protocol layer knows which packets were which.
//!
//! Everything is plain integers; rendering goes through
//! [`SpanProfiler::rows`] in fixed stage order.

/// The fixed taxonomy of profiled hot-path stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// MMT frame encode (sensor/source side).
    Encode,
    /// MMT frame decode + reassembly (DTN/sink side).
    Decode,
    /// Egress queue operations (enqueue + dequeue; vtime = residency).
    QueueOps,
    /// Link delivery (serialization + propagation, per delivered copy).
    LinkDelivery,
    /// Timer dispatch (vtime = arm→fire delay).
    TimerDispatch,
    /// Retransmit-buffer serves (NAK recovery).
    RetransmitServe,
    /// Mode-control decisions (closed-loop adaptation).
    ModeControl,
}

/// All stages in fixed rendering order.
pub const STAGES: [Stage; 7] = [
    Stage::Encode,
    Stage::Decode,
    Stage::QueueOps,
    Stage::LinkDelivery,
    Stage::TimerDispatch,
    Stage::RetransmitServe,
    Stage::ModeControl,
];

impl Stage {
    /// Stable snake_case name used in JSON and table output.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Encode => "encode",
            Stage::Decode => "decode",
            Stage::QueueOps => "queue_ops",
            Stage::LinkDelivery => "link_delivery",
            Stage::TimerDispatch => "timer_dispatch",
            Stage::RetransmitServe => "retransmit_serve",
            Stage::ModeControl => "mode_control",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Encode => 0,
            Stage::Decode => 1,
            Stage::QueueOps => 2,
            Stage::LinkDelivery => 3,
            Stage::TimerDispatch => 4,
            Stage::RetransmitServe => 5,
            Stage::ModeControl => 6,
        }
    }
}

/// Accumulated totals for one stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTotals {
    /// Number of profiled events attributed to the stage.
    pub events: u64,
    /// Total virtual time attributed to the stage, in nanoseconds.
    pub vtime_ns: u64,
}

/// Fixed-size per-stage accumulator; merge is commutative addition, so
/// per-group profiles combine identically regardless of shard/worker
/// layout.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanProfiler {
    totals: [StageTotals; STAGES.len()],
}

impl SpanProfiler {
    /// An empty profiler.
    pub fn new() -> SpanProfiler {
        SpanProfiler::default()
    }

    /// Attribute `events` profiled events and `vtime_ns` virtual
    /// nanoseconds to `stage` (saturating).
    pub fn add(&mut self, stage: Stage, events: u64, vtime_ns: u64) {
        let t = &mut self.totals[stage.index()];
        t.events = t.events.saturating_add(events);
        t.vtime_ns = t.vtime_ns.saturating_add(vtime_ns);
    }

    /// Totals for one stage.
    pub fn get(&self, stage: Stage) -> StageTotals {
        self.totals[stage.index()]
    }

    /// Fold another profiler in (commutative elementwise addition).
    pub fn merge(&mut self, other: &SpanProfiler) {
        for stage in STAGES {
            let o = other.get(stage);
            self.add(stage, o.events, o.vtime_ns);
        }
    }

    /// Total profiled events across all stages (saturating).
    pub fn total_events(&self) -> u64 {
        self.totals
            .iter()
            .fold(0u64, |a, t| a.saturating_add(t.events))
    }

    /// Per-stage rows in fixed order: `(name, events, vtime_ns)`.
    /// Stages with zero events are included so consumers see the full
    /// taxonomy.
    pub fn rows(&self) -> Vec<(&'static str, u64, u64)> {
        STAGES
            .iter()
            .map(|&s| {
                let t = self.get(s);
                (s.name(), t.events, t.vtime_ns)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get_accumulate() {
        let mut p = SpanProfiler::new();
        p.add(Stage::Encode, 3, 100);
        p.add(Stage::Encode, 2, 50);
        assert_eq!(
            p.get(Stage::Encode),
            StageTotals {
                events: 5,
                vtime_ns: 150
            }
        );
        assert_eq!(p.get(Stage::Decode), StageTotals::default());
        assert_eq!(p.total_events(), 5);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = SpanProfiler::new();
        a.add(Stage::QueueOps, 10, 1_000);
        a.add(Stage::LinkDelivery, 4, 9_999);
        let mut b = SpanProfiler::new();
        b.add(Stage::QueueOps, 7, 300);
        b.add(Stage::ModeControl, 1, 5);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(
            ab.get(Stage::QueueOps),
            StageTotals {
                events: 17,
                vtime_ns: 1_300
            }
        );
    }

    #[test]
    fn rows_cover_full_taxonomy_in_fixed_order() {
        let mut p = SpanProfiler::new();
        p.add(Stage::RetransmitServe, 1, 2);
        let rows = p.rows();
        assert_eq!(rows.len(), STAGES.len());
        assert_eq!(rows[0].0, "encode");
        assert_eq!(rows[5], ("retransmit_serve", 1, 2));
        assert_eq!(rows[6], ("mode_control", 0, 0));
    }

    #[test]
    fn saturating_addition_never_wraps() {
        let mut p = SpanProfiler::new();
        p.add(Stage::Decode, u64::MAX, u64::MAX);
        p.add(Stage::Decode, 1, 1);
        assert_eq!(
            p.get(Stage::Decode),
            StageTotals {
                events: u64::MAX,
                vtime_ns: u64::MAX
            }
        );
        assert_eq!(p.total_events(), u64::MAX);
    }
}
