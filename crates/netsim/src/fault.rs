//! Composable, seeded fault injection for links.
//!
//! The paper's recovery machinery — NAK-from-nearest-buffer (§5.4), age
//! and deadline tracking (§5.3) — exists precisely because research WANs
//! misbehave in ways beyond clean corruption loss: optical links flap,
//! ECMP reshuffles reorder packets, middleboxes duplicate frames, and the
//! control packets carrying NAKs cross the same unreliable segments as the
//! data they protect. A [`FaultSpec`] attaches those pathologies to any
//! [`crate::LinkSpec`], deterministically from the simulation seed:
//!
//! * **Reordering** — each packet is independently held back by a bounded
//!   extra delay, so later packets can overtake it (bounded displacement).
//! * **Duplication** — a delivered packet is cloned and the copy arrives
//!   shortly after the original.
//! * **Jitter** — uniform extra per-packet latency, the substrate that
//!   turns fixed-interval senders into reordering victims.
//! * **Link flaps** — scheduled (periodic) and random (burst) outage
//!   windows during which every transmission is lost.
//! * **Selective control-plane loss** — drops MMT control packets (NAKs,
//!   deadline notifications, credits) at a configurable rate *independent
//!   of* data loss, exercising recovery when the recovery channel itself
//!   is lossy.
//!
//! Faults draw from their own forked RNG stream, so attaching a
//! [`FaultSpec`] never perturbs the link's corruption-loss sequence: a run
//! with `FaultSpec::none()` is byte-identical to one built before this
//! module existed.

use crate::rng::SimRng;
use crate::time::Time;

/// A periodic, scheduled outage: down for `down_for` out of every
/// `period`, starting at `first_down`. Models maintenance windows and
/// deterministic flap reproductions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodicOutage {
    /// When the first outage begins.
    pub first_down: Time,
    /// Length of each outage window.
    pub down_for: Time,
    /// Distance between outage starts (must exceed `down_for`).
    pub period: Time,
}

impl PeriodicOutage {
    /// Whether the link is down at `now`.
    pub fn is_down(&self, now: Time) -> bool {
        if now < self.first_down || self.period == Time::ZERO {
            return false;
        }
        let since = (now - self.first_down).as_nanos() % self.period.as_nanos();
        since < self.down_for.as_nanos()
    }
}

/// Random burst downtime: alternating up/down dwell times drawn from
/// exponential distributions (memoryless, like real optical glitches).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomOutage {
    /// Mean time between outages.
    pub mean_up: Time,
    /// Mean outage length.
    pub mean_down: Time,
}

/// Faults attached to one link direction. `Default` is fault-free.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultSpec {
    /// Per-packet probability of being held back for reordering.
    pub reorder: f64,
    /// Maximum extra delay of a held-back packet (uniform in `(0, max]`);
    /// bounds the displacement a reordered packet can suffer.
    pub reorder_delay: Time,
    /// Per-delivered-packet duplication probability.
    pub duplicate: f64,
    /// How long after the original the duplicate copy arrives.
    pub duplicate_delay: Time,
    /// Uniform per-packet jitter in `[0, jitter]` added to every delivery.
    pub jitter: Time,
    /// Scheduled outage windows.
    pub scheduled_outage: Option<PeriodicOutage>,
    /// Random burst downtime.
    pub random_outage: Option<RandomOutage>,
    /// Drop probability applied only to control-plane packets
    /// ([`crate::PacketMeta::control`]), on top of the link loss model.
    pub control_loss: f64,
}

impl FaultSpec {
    /// No faults (the default).
    pub fn none() -> FaultSpec {
        FaultSpec::default()
    }

    /// Whether this spec injects nothing (the fast path skips all fault
    /// bookkeeping when true).
    pub fn is_none(&self) -> bool {
        // mmt-lint: allow(F1, "exact comparisons against the 0.0 constant; no rounding involved")
        self.reorder <= 0.0
            && self.duplicate <= 0.0
            && self.jitter == Time::ZERO
            && self.scheduled_outage.is_none()
            && self.random_outage.is_none()
            && self.control_loss <= 0.0
    }

    /// Hold back packets with probability `p` by up to `max_delay`.
    #[must_use]
    pub fn with_reorder(mut self, p: f64, max_delay: Time) -> FaultSpec {
        self.reorder = p;
        self.reorder_delay = max_delay;
        self
    }

    /// Duplicate delivered packets with probability `p`; the copy lands
    /// `delay` after the original.
    #[must_use]
    pub fn with_duplication(mut self, p: f64, delay: Time) -> FaultSpec {
        self.duplicate = p;
        self.duplicate_delay = delay;
        self
    }

    /// Add uniform `[0, max]` per-packet jitter.
    #[must_use]
    pub fn with_jitter(mut self, max: Time) -> FaultSpec {
        self.jitter = max;
        self
    }

    /// Add a periodic scheduled outage.
    #[must_use]
    pub fn with_scheduled_outage(mut self, outage: PeriodicOutage) -> FaultSpec {
        self.scheduled_outage = Some(outage);
        self
    }

    /// Add random burst downtime.
    #[must_use]
    pub fn with_random_outage(mut self, mean_up: Time, mean_down: Time) -> FaultSpec {
        self.random_outage = Some(RandomOutage { mean_up, mean_down });
        self
    }

    /// Drop control-plane packets with probability `p` (independent of the
    /// data loss model).
    #[must_use]
    pub fn with_control_loss(mut self, p: f64) -> FaultSpec {
        self.control_loss = p;
        self
    }
}

/// What the fault layer decided for one transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// Deliver with `extra_delay` beyond nominal latency; when
    /// `duplicate_after` is set, also deliver a copy that much later than
    /// the original.
    Deliver {
        /// Extra latency (jitter + reordering hold-back).
        extra_delay: Time,
        /// Lag of the injected duplicate copy, if one was rolled.
        duplicate_after: Option<Time>,
        /// Whether the extra delay includes a reordering hold-back.
        reordered: bool,
    },
    /// Lost to a link outage (flap).
    FlapDrop,
    /// A control-plane packet dropped by selective control loss.
    ControlDrop,
}

/// Mutable per-link fault state: the dedicated RNG stream and the lazily
/// generated random-outage window chain.
#[derive(Debug)]
pub struct FaultState {
    rng: SimRng,
    /// Current random-outage window: down at `down_at`, back up at `up_at`.
    down_at: Time,
    up_at: Time,
    initialized: bool,
}

impl FaultState {
    /// Fresh state over a dedicated RNG stream.
    pub fn new(rng: SimRng) -> FaultState {
        FaultState {
            rng,
            down_at: Time::ZERO,
            up_at: Time::ZERO,
            initialized: false,
        }
    }

    fn exp_time(rng: &mut SimRng, mean: Time) -> Time {
        // mmt-lint: allow(F1, "exponential outage sampling is libm-backed (documented hazard): bit-stable per platform, digest baselines recorded on the pinned CI libm")
        let ns = rng.exponential(mean.as_nanos() as f64).max(1.0);
        // Cap at ~292 years of virtual time to avoid overflow on extremes.
        // mmt-lint: allow(F1, "exact clamp constants; conversion back to integer ns happens once here")
        Time::from_nanos(ns.min(9.2e18) as u64)
    }

    /// Whether the random-outage chain has the link down at `now`.
    /// Windows are generated from the fault RNG on demand; the chain
    /// depends only on the seed, never on traffic timing... provided
    /// queries are made with non-decreasing `now`, which the event loop
    /// guarantees.
    fn random_down(&mut self, spec: &RandomOutage, now: Time) -> bool {
        if !self.initialized {
            self.initialized = true;
            self.down_at = Self::exp_time(&mut self.rng, spec.mean_up);
            self.up_at = self.down_at + Self::exp_time(&mut self.rng, spec.mean_down);
        }
        while now >= self.up_at {
            self.down_at = self.up_at + Self::exp_time(&mut self.rng, spec.mean_up);
            self.up_at = self.down_at + Self::exp_time(&mut self.rng, spec.mean_down);
        }
        now >= self.down_at
    }

    /// Decide the fate of a packet transmitted at `now`. `is_control`
    /// selects the control-plane loss arm.
    pub fn apply(&mut self, spec: &FaultSpec, now: Time, is_control: bool) -> FaultVerdict {
        if let Some(outage) = &spec.scheduled_outage {
            if outage.is_down(now) {
                return FaultVerdict::FlapDrop;
            }
        }
        if let Some(outage) = spec.random_outage {
            if self.random_down(&outage, now) {
                return FaultVerdict::FlapDrop;
            }
        }
        // mmt-lint: allow(F1, "exact comparison against the 0.0 constant; no rounding involved")
        if is_control && spec.control_loss > 0.0 && self.rng.chance(spec.control_loss) {
            return FaultVerdict::ControlDrop;
        }
        let mut extra = Time::ZERO;
        if spec.jitter > Time::ZERO {
            extra += Time::from_nanos(self.rng.next_bounded(spec.jitter.as_nanos() + 1));
        }
        let mut reordered = false;
        // mmt-lint: allow(F1, "exact comparison against the 0.0 constant; no rounding involved")
        if spec.reorder > 0.0 && spec.reorder_delay > Time::ZERO && self.rng.chance(spec.reorder) {
            reordered = true;
            extra += Time::from_nanos(1 + self.rng.next_bounded(spec.reorder_delay.as_nanos()));
        }
        // mmt-lint: allow(F1, "exact comparison against the 0.0 constant; no rounding involved")
        let duplicate_after = if spec.duplicate > 0.0 && self.rng.chance(spec.duplicate) {
            Some(spec.duplicate_delay.max(Time::from_nanos(1)))
        } else {
            None
        };
        FaultVerdict::Deliver {
            extra_delay: extra,
            duplicate_after,
            reordered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(seed: u64) -> FaultState {
        FaultState::new(SimRng::new(seed))
    }

    #[test]
    fn default_spec_is_transparent() {
        let spec = FaultSpec::none();
        assert!(spec.is_none());
        let mut st = state(1);
        for t in 0..100u64 {
            match st.apply(&spec, Time::from_micros(t), t % 2 == 0) {
                FaultVerdict::Deliver {
                    extra_delay,
                    duplicate_after,
                    reordered,
                } => {
                    assert_eq!(extra_delay, Time::ZERO);
                    assert_eq!(duplicate_after, None);
                    assert!(!reordered);
                }
                other => panic!("faultless spec produced {other:?}"),
            }
        }
    }

    #[test]
    fn builders_compose_and_unset_is_none() {
        let spec = FaultSpec::none()
            .with_reorder(0.1, Time::from_micros(50))
            .with_duplication(0.05, Time::from_micros(10))
            .with_jitter(Time::from_micros(5))
            .with_control_loss(0.2)
            .with_random_outage(Time::from_millis(100), Time::from_millis(1))
            .with_scheduled_outage(PeriodicOutage {
                first_down: Time::from_millis(10),
                down_for: Time::from_millis(1),
                period: Time::from_millis(50),
            });
        assert!(!spec.is_none());
        assert_eq!(spec.reorder, 0.1);
        assert_eq!(spec.control_loss, 0.2);
    }

    #[test]
    fn periodic_outage_windows() {
        let o = PeriodicOutage {
            first_down: Time::from_millis(10),
            down_for: Time::from_millis(2),
            period: Time::from_millis(10),
        };
        assert!(!o.is_down(Time::from_millis(5)));
        assert!(o.is_down(Time::from_millis(10)));
        assert!(o.is_down(Time::from_millis(11)));
        assert!(!o.is_down(Time::from_millis(12)));
        assert!(o.is_down(Time::from_millis(20)));
        assert!(!o.is_down(Time::from_millis(29)));
        // Degenerate period never downs.
        let z = PeriodicOutage {
            first_down: Time::ZERO,
            down_for: Time::ZERO,
            period: Time::ZERO,
        };
        assert!(!z.is_down(Time::from_secs(1)));
    }

    #[test]
    fn reorder_rate_and_bound_respected() {
        let spec = FaultSpec::none().with_reorder(0.3, Time::from_micros(100));
        let mut st = state(7);
        let mut reorders = 0;
        for t in 0..10_000u64 {
            if let FaultVerdict::Deliver {
                extra_delay,
                reordered,
                ..
            } = st.apply(&spec, Time::from_micros(t), false)
            {
                if reordered {
                    reorders += 1;
                    assert!(extra_delay > Time::ZERO);
                    assert!(extra_delay <= Time::from_micros(100));
                } else {
                    assert_eq!(extra_delay, Time::ZERO);
                }
            }
        }
        assert!((2_500..3_500).contains(&reorders), "{reorders}");
    }

    #[test]
    fn duplication_rate_respected() {
        let spec = FaultSpec::none().with_duplication(0.1, Time::from_micros(3));
        let mut st = state(8);
        let dups = (0..10_000u64)
            .filter(|&t| {
                matches!(
                    st.apply(&spec, Time::from_micros(t), false),
                    FaultVerdict::Deliver {
                        duplicate_after: Some(_),
                        ..
                    }
                )
            })
            .count();
        assert!((800..1_200).contains(&dups), "{dups}");
    }

    #[test]
    fn control_loss_only_hits_control_packets() {
        let spec = FaultSpec::none().with_control_loss(0.5);
        let mut st = state(9);
        let mut control_drops = 0;
        for t in 0..2_000u64 {
            match st.apply(&spec, Time::from_micros(t), t % 2 == 0) {
                FaultVerdict::ControlDrop => {
                    assert_eq!(t % 2, 0, "data packet hit by control loss");
                    control_drops += 1;
                }
                FaultVerdict::Deliver { .. } => {}
                FaultVerdict::FlapDrop => panic!("no outage configured"),
            }
        }
        assert!((350..650).contains(&control_drops), "{control_drops}");
    }

    #[test]
    fn random_outage_downtime_fraction_tracks_means() {
        let spec = FaultSpec::none().with_random_outage(Time::from_millis(9), Time::from_millis(1));
        let mut st = state(10);
        // Sample the chain every 10 µs over 10 virtual seconds.
        let mut down = 0u64;
        let n = 1_000_000u64;
        for i in 0..n {
            if matches!(
                st.apply(&spec, Time::from_micros(i * 10), false),
                FaultVerdict::FlapDrop
            ) {
                down += 1;
            }
        }
        let frac = down as f64 / n as f64;
        assert!((0.05..0.2).contains(&frac), "downtime fraction {frac}");
    }

    #[test]
    fn same_seed_same_verdicts() {
        let spec = FaultSpec::none()
            .with_reorder(0.2, Time::from_micros(40))
            .with_duplication(0.1, Time::from_micros(5))
            .with_jitter(Time::from_micros(2))
            .with_control_loss(0.3)
            .with_random_outage(Time::from_millis(5), Time::from_millis(1));
        let run = |seed| {
            let mut st = state(seed);
            (0..500u64)
                .map(|t| st.apply(&spec, Time::from_micros(t * 7), t % 3 == 0))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
