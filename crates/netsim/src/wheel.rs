//! Hierarchical timing wheel — the simulator's O(1) event queue.
//!
//! The `BinaryHeap` scheduler this replaces pays `O(log n)` per push/pop
//! and, worse, moves whole `Event` structs (which carry packets) through
//! every sift step. The wheel stores each event **once** in a slab and
//! routes a tiny `(index, generation)` pair through the wheel structure,
//! so scheduling and cancellation are O(1) and a pop is an amortized
//! O(1) `Vec::pop`.
//!
//! ## Structure
//!
//! * [`LEVELS`] levels of [`SLOTS`] slots each. A level-0 slot covers
//!   [`SLOT_NS`] nanoseconds of virtual time; each higher level covers
//!   [`SLOTS`]× the span of the one below. Timestamps beyond the total
//!   horizon (or saturated ones like `u64::MAX`) wait in an unsorted
//!   **overflow** list and cascade in when the wheel drains.
//! * A per-level 64-bit occupancy bitmap finds the next non-empty slot
//!   with one `trailing_zeros`. Level selection uses
//!   `level(t) = ⌊bitlen(tick(t) ^ cursor) / SLOT_BITS⌋`, which
//!   guarantees every occupied slot at a level lies strictly *above* the
//!   cursor's slot at that level — the search never wraps.
//! * Draining a level-0 slot moves its events into a **ready buffer**
//!   sorted by `(time, sequence)` descending, popped from the back. This
//!   is the batching point: all same-slot (and hence all same-timestamp)
//!   events are dispatched from one drain without re-consulting the
//!   wheel. Events scheduled at or before the cursor (the simulator's
//!   "schedule for *now*" path, and `run_until` having advanced the
//!   cursor past sim-time) are merge-inserted into the ready buffer, so
//!   pop order is always globally correct.
//!
//! ## Ordering contract
//!
//! [`TimerWheel::pop`] yields events in exactly the order a min-heap
//! over `(time, insertion sequence)` would: ties at one timestamp break
//! by schedule order (FIFO). The differential suite in
//! `tests/scheduler_equivalence.rs` and the property tests in
//! `tests/wheel_properties.rs` pin this equivalence.
//!
//! ## Cancellation
//!
//! [`TimerWheel::cancel`] is O(1): it frees the slab entry and bumps its
//! generation; the stale `(index, generation)` pair left in a slot, the
//! overflow list, or the ready buffer is recognized and skipped lazily.
//! Tokens follow the same design as [`crate::PacketRef`] — a stale token
//! is inert, never aliasing the slot's next tenant.

/// Bits per wheel level (64 slots).
pub const SLOT_BITS: u32 = 6;
/// Slots per wheel level.
pub const SLOTS: usize = 1 << SLOT_BITS;
/// Number of slot-array levels before the overflow list.
pub const LEVELS: usize = 6;
/// log2 of the level-0 slot width in nanoseconds.
pub const SLOT_NS_SHIFT: u32 = 10;
/// Width of a level-0 slot in nanoseconds (1.024 µs).
pub const SLOT_NS: u64 = 1 << SLOT_NS_SHIFT;
/// Wheel horizon in level-0 ticks; timestamps further than this from the
/// cursor go to the overflow list.
pub const HORIZON_TICKS: u64 = 1 << (SLOT_BITS * LEVELS as u32);

/// Handle to a scheduled entry, for O(1) [`TimerWheel::cancel`]. `Copy`,
/// 8 bytes; stale tokens (popped or already cancelled) are inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WheelToken {
    index: u32,
    generation: u32,
}

struct SlabEntry<T> {
    at: u64,
    seq: u64,
    generation: u32,
    /// `None` while the slab slot is free.
    value: Option<T>,
}

/// A drained-but-unpopped event: everything `pop` needs without touching
/// the slab until the event is actually consumed.
#[derive(Clone, Copy)]
struct ReadyEntry {
    at: u64,
    seq: u64,
    index: u32,
    generation: u32,
}

/// Hierarchical timing wheel over arbitrary payloads. See the module
/// docs for the structure and ordering contract.
pub struct TimerWheel<T> {
    slab: Vec<SlabEntry<T>>,
    free: Vec<u32>,
    /// `LEVELS × SLOTS` slot lists, flattened.
    slots: Vec<Vec<(u32, u32)>>,
    /// Per-level bitmap of non-empty slots (may stay set for slots
    /// holding only cancelled entries; harmless).
    occupied: [u64; LEVELS],
    /// Entries beyond the wheel horizon (and saturated timestamps).
    overflow: Vec<(u32, u32)>,
    /// Current position in level-0 ticks: every live entry still in the
    /// slot arrays has `tick > cursor`; ready entries have `tick ≤
    /// cursor`.
    cursor: u64,
    /// Next insertion sequence number (the FIFO tie-breaker).
    seq: u64,
    /// Live (scheduled, not yet popped or cancelled) entries.
    len: usize,
    /// Drained events sorted by `(at, seq)` **descending**; popped from
    /// the back.
    ready: Vec<ReadyEntry>,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel with its cursor at tick 0.
    // mmt-lint: cold
    pub fn new() -> TimerWheel<T> {
        TimerWheel {
            slab: Vec::new(),
            free: Vec::new(),
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            overflow: Vec::new(),
            cursor: 0,
            seq: 0,
            len: 0,
            ready: Vec::new(),
        }
    }

    /// Live entries (scheduled, not yet popped or cancelled).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no live entries remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn tick_of(at: u64) -> u64 {
        at >> SLOT_NS_SHIFT
    }

    /// Schedule `value` at absolute time `at` (nanoseconds). Any `at` is
    /// accepted — times at or before the last popped event merge into
    /// the ready buffer and pop next in `(at, seq)` order.
    pub fn schedule(&mut self, at: u64, value: T) -> WheelToken {
        let seq = self.seq;
        self.seq = self.seq.wrapping_add(1);
        let index = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slab.push(SlabEntry {
                    at: 0,
                    seq: 0,
                    generation: 0,
                    value: None,
                });
                (self.slab.len() - 1) as u32
            }
        };
        let entry = &mut self.slab[index as usize];
        entry.at = at;
        entry.seq = seq;
        entry.value = Some(value);
        let generation = entry.generation;
        self.len += 1;
        self.place(index, generation, at, seq);
        WheelToken { index, generation }
    }

    /// Route a live slab entry to the ready buffer, a wheel slot, or the
    /// overflow list, based on its tick relative to the cursor.
    fn place(&mut self, index: u32, generation: u32, at: u64, seq: u64) {
        let tick = Self::tick_of(at);
        if tick <= self.cursor {
            // At or behind the cursor: merge-insert into the ready
            // buffer (descending order, unique seq keys).
            let pos = self.ready.partition_point(|e| (e.at, e.seq) > (at, seq));
            self.ready.insert(
                pos,
                ReadyEntry {
                    at,
                    seq,
                    index,
                    generation,
                },
            );
            return;
        }
        let distance = tick ^ self.cursor;
        // distance > 0 here, so bit_length(distance) ≥ 1.
        let level = ((63 - distance.leading_zeros()) / SLOT_BITS) as usize;
        if level >= LEVELS {
            self.overflow.push((index, generation));
            return;
        }
        let slot = ((tick >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.slots[level * SLOTS + slot].push((index, generation));
        self.occupied[level] |= 1u64 << slot;
    }

    fn is_live(&self, index: u32, generation: u32) -> bool {
        match self.slab.get(index as usize) {
            Some(e) => e.generation == generation && e.value.is_some(),
            None => false,
        }
    }

    /// Free a live slab entry, returning its value. `None` if stale.
    fn take_entry(&mut self, index: u32, generation: u32) -> Option<T> {
        let entry = self.slab.get_mut(index as usize)?;
        if entry.generation != generation {
            return None;
        }
        let value = entry.value.take()?;
        entry.generation = entry.generation.wrapping_add(1);
        self.free.push(index);
        self.len -= 1;
        Some(value)
    }

    /// Cancel a scheduled entry, returning its value if it was still
    /// live. O(1); the entry's residue in the wheel is skipped lazily.
    pub fn cancel(&mut self, token: WheelToken) -> Option<T> {
        self.take_entry(token.index, token.generation)
    }

    /// Timestamp and sequence of the next event without popping it.
    pub fn peek(&mut self) -> Option<(u64, u64)> {
        loop {
            if self.ready.is_empty() {
                self.refill();
            }
            let e = *self.ready.last()?;
            if self.is_live(e.index, e.generation) {
                return Some((e.at, e.seq));
            }
            self.ready.pop();
        }
    }

    /// Pop the globally minimum `(at, seq)` event.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        loop {
            if self.ready.is_empty() {
                self.refill();
            }
            let e = self.ready.pop()?;
            if let Some(value) = self.take_entry(e.index, e.generation) {
                return Some((e.at, value));
            }
            // Cancelled while waiting in the ready buffer: skip.
        }
    }

    /// Advance the cursor slot by slot until the ready buffer holds
    /// something or the wheel is provably empty.
    fn refill(&mut self) {
        while self.ready.is_empty() {
            if self.len == 0 || !self.advance() {
                return;
            }
        }
    }

    /// One cursor advance: drain the next occupied level-0 slot into the
    /// ready buffer, or cascade one higher-level slot (or the overflow
    /// list) down. Returns `false` when nothing remains in the wheel.
    fn advance(&mut self) -> bool {
        for level in 0..LEVELS {
            let cur = ((self.cursor >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as u32;
            // Occupied slots strictly above the cursor's slot at this
            // level (the level-selection rule guarantees none at or
            // below it).
            let mask = match cur.checked_add(1) {
                Some(s) if s < 64 => !0u64 << s,
                _ => 0,
            };
            let candidates = self.occupied[level] & mask;
            if candidates == 0 {
                continue;
            }
            let slot = candidates.trailing_zeros() as usize;
            self.occupied[level] &= !(1u64 << slot);
            let entries = std::mem::take(&mut self.slots[level * SLOTS + slot]);
            // Move the cursor to the base tick of the slot being opened;
            // all lower-level cursor bits reset to zero.
            let span = SLOT_BITS * level as u32;
            let above = span + SLOT_BITS;
            let high = if above >= 64 {
                0
            } else {
                (self.cursor >> above) << above
            };
            self.cursor = high | ((slot as u64) << span);
            if level == 0 {
                self.drain_into_ready(entries);
            } else {
                for (index, generation) in entries {
                    self.replace_entry(index, generation);
                }
            }
            return true;
        }
        self.cascade_overflow()
    }

    /// Move a slot's entries into the (empty) ready buffer, dropping
    /// cancelled residue, sorted descending by `(at, seq)`.
    fn drain_into_ready(&mut self, entries: Vec<(u32, u32)>) {
        debug_assert!(self.ready.is_empty());
        for (index, generation) in entries {
            let Some(e) = self.slab.get(index as usize) else {
                continue;
            };
            if e.generation != generation || e.value.is_none() {
                continue;
            }
            self.ready.push(ReadyEntry {
                at: e.at,
                seq: e.seq,
                index,
                generation,
            });
        }
        self.ready
            .sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
    }

    /// Re-route one entry after a cascade moved the cursor.
    fn replace_entry(&mut self, index: u32, generation: u32) {
        let Some(e) = self.slab.get(index as usize) else {
            return;
        };
        if e.generation != generation || e.value.is_none() {
            return;
        }
        let (at, seq) = (e.at, e.seq);
        self.place(index, generation, at, seq);
    }

    /// The wheel proper is empty: jump the cursor to the earliest
    /// overflow tick and pull every now-in-horizon entry in. Returns
    /// `false` if the overflow list held nothing live.
    fn cascade_overflow(&mut self) -> bool {
        let mut min_tick = u64::MAX;
        let mut any = false;
        self.overflow
            .retain(|&(index, generation)| match self.slab.get(index as usize) {
                Some(e) if e.generation == generation && e.value.is_some() => {
                    min_tick = min_tick.min(Self::tick_of(e.at));
                    any = true;
                    true
                }
                _ => false,
            });
        if !any {
            return false;
        }
        debug_assert!(
            min_tick > self.cursor,
            "overflow entries are beyond the horizon"
        );
        self.cursor = min_tick;
        let pending = std::mem::take(&mut self.overflow);
        for (index, generation) in pending {
            self.replace_entry(index, generation);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel<u64>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(x) = w.pop() {
            out.push(x);
        }
        out
    }

    #[test]
    fn pops_in_time_order() {
        let mut w = TimerWheel::new();
        w.schedule(5_000, 1);
        w.schedule(1_000, 2);
        w.schedule(3_000_000, 3);
        w.schedule(0, 4);
        let got = drain(&mut w);
        assert_eq!(got, vec![(0, 4), (1_000, 2), (5_000, 1), (3_000_000, 3)]);
        assert!(w.is_empty());
    }

    #[test]
    fn same_timestamp_pops_fifo() {
        let mut w = TimerWheel::new();
        for v in 0..100u64 {
            w.schedule(77_777, v);
        }
        let got: Vec<u64> = drain(&mut w).into_iter().map(|(_, v)| v).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_is_o1_and_inert_when_stale() {
        let mut w = TimerWheel::new();
        let a = w.schedule(1_000, 1);
        let b = w.schedule(2_000, 2);
        assert_eq!(w.cancel(a), Some(1));
        assert_eq!(w.cancel(a), None, "double cancel");
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop(), Some((2_000, 2)));
        assert_eq!(w.cancel(b), None, "cancel after pop");
        assert!(w.pop().is_none());
    }

    #[test]
    fn schedule_behind_cursor_merges_into_ready() {
        let mut w = TimerWheel::new();
        w.schedule(10 * SLOT_NS, 1);
        assert_eq!(w.peek(), Some((10 * SLOT_NS, 0)));
        // Cursor has advanced to tick 10; schedule earlier in wall time
        // (still legal for the wheel) and at the same tick.
        w.schedule(3 * SLOT_NS, 2);
        w.schedule(10 * SLOT_NS + 1, 3);
        let got = drain(&mut w);
        assert_eq!(
            got,
            vec![(3 * SLOT_NS, 2), (10 * SLOT_NS, 1), (10 * SLOT_NS + 1, 3)]
        );
    }

    #[test]
    fn distant_and_saturated_timestamps_cascade_from_overflow() {
        let mut w = TimerWheel::new();
        let far = (HORIZON_TICKS + 5) << SLOT_NS_SHIFT;
        w.schedule(u64::MAX, 1);
        w.schedule(far, 2);
        w.schedule(100, 3);
        let got = drain(&mut w);
        assert_eq!(got, vec![(100, 3), (far, 2), (u64::MAX, 1)]);
    }

    #[test]
    fn len_tracks_live_entries() {
        let mut w = TimerWheel::new();
        assert!(w.is_empty());
        let t = w.schedule(500, 9);
        w.schedule(600, 10);
        assert_eq!(w.len(), 2);
        w.cancel(t);
        assert_eq!(w.len(), 1);
        w.pop();
        assert!(w.is_empty());
        assert!(w.peek().is_none());
    }
}
