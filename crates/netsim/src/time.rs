//! Virtual time and bandwidth arithmetic.
//!
//! Everything is integer nanoseconds / bits-per-second so simulations are
//! exactly reproducible — no floating-point drift between platforms.

/// A point in (or span of) virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// Time zero — the start of every simulation.
    pub const ZERO: Time = Time(0);
    /// The greatest representable time (used as an "infinite" horizon).
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Time {
        Time(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Time {
        Time(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Time {
        Time(ms * 1_000_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000_000)
    }

    /// Construct from a floating-point second count (for human-friendly
    /// configuration; rounded to the nearest nanosecond).
    pub fn from_secs_f64(s: f64) -> Time {
        // mmt-lint: allow(F1, "config-boundary helper: one IEEE-exact multiply, rounded to integer ns before entering the sim")
        Time((s * 1e9).round() as u64)
    }

    /// The value in nanoseconds.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// The value in (truncated) microseconds.
    pub const fn as_micros(&self) -> u64 {
        self.0 / 1_000
    }

    /// The value in (truncated) milliseconds.
    pub const fn as_millis(&self) -> u64 {
        self.0 / 1_000_000
    }

    /// The value in seconds, as a float (for reporting only).
    pub fn as_secs_f64(&self) -> f64 {
        // mmt-lint: allow(F1, "reporting-only view; the value never re-enters the sim or its digests")
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition (None on overflow).
    pub fn checked_add(self, rhs: Time) -> Option<Time> {
        self.0.checked_add(rhs.0).map(Time)
    }
}

impl core::ops::Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl core::ops::Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl core::ops::Mul<u64> for Time {
    type Output = Time;
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl core::ops::Div<u64> for Time {
    type Output = Time;
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl core::fmt::Display for Time {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Pure integer formatting (truncated to three decimals) so even
        // human-readable output is platform-independent.
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(
                f,
                "{}.{:03}s",
                ns / 1_000_000_000,
                ns % 1_000_000_000 / 1_000_000
            )
        } else if ns >= 1_000_000 {
            write!(f, "{}.{:03}ms", ns / 1_000_000, ns % 1_000_000 / 1_000)
        } else if ns >= 1_000 {
            write!(f, "{}.{:03}µs", ns / 1_000, ns % 1_000)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// A link or pacing rate, in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth(pub u64);

impl Bandwidth {
    /// Construct from bits per second.
    pub const fn bps(v: u64) -> Bandwidth {
        Bandwidth(v)
    }

    /// Construct from megabits per second.
    pub const fn mbps(v: u64) -> Bandwidth {
        Bandwidth(v * 1_000_000)
    }

    /// Construct from gigabits per second.
    pub const fn gbps(v: u64) -> Bandwidth {
        Bandwidth(v * 1_000_000_000)
    }

    /// Construct from terabits per second.
    pub const fn tbps(v: u64) -> Bandwidth {
        Bandwidth(v * 1_000_000_000_000)
    }

    /// The rate in bits per second.
    pub const fn as_bps(&self) -> u64 {
        self.0
    }

    /// The rate in (truncated) Mbit/s.
    pub const fn as_mbps(&self) -> u64 {
        self.0 / 1_000_000
    }

    /// The rate in Gbit/s as a float (for reporting).
    pub fn as_gbps_f64(&self) -> f64 {
        // mmt-lint: allow(F1, "reporting-only view; the value never re-enters the sim or its digests")
        self.0 as f64 / 1e9
    }

    /// Time to serialize `bytes` onto a link of this rate.
    ///
    /// Exact integer arithmetic: `bytes * 8 * 1e9 / rate`, rounded up so a
    /// transmission never finishes early.
    pub fn tx_time(&self, bytes: usize) -> Time {
        assert!(self.0 > 0, "zero-rate link");
        let bits = (bytes as u128) * 8;
        let ns = (bits * 1_000_000_000).div_ceil(self.0 as u128);
        Time(ns as u64)
    }

    /// How many bytes this rate carries in `t` (truncated).
    pub fn bytes_in(&self, t: Time) -> u64 {
        ((self.0 as u128) * (t.0 as u128) / 8 / 1_000_000_000) as u64
    }
}

impl core::fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Integer formatting (truncated to two decimals), matching Time.
        let bps = self.0;
        if bps >= 1_000_000_000_000 {
            write!(
                f,
                "{}.{:02}Tbps",
                bps / 1_000_000_000_000,
                bps % 1_000_000_000_000 / 10_000_000_000
            )
        } else if bps >= 1_000_000_000 {
            write!(
                f,
                "{}.{:02}Gbps",
                bps / 1_000_000_000,
                bps % 1_000_000_000 / 10_000_000
            )
        } else if bps >= 1_000_000 {
            write!(f, "{}.{:02}Mbps", bps / 1_000_000, bps % 1_000_000 / 10_000)
        } else {
            write!(f, "{bps}bps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Time::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(Time::from_millis(3).as_micros(), 3_000);
        assert_eq!(Time::from_micros(5).as_nanos(), 5_000);
        assert_eq!(Time::from_secs_f64(0.5).as_millis(), 500);
        assert!((Time::from_secs(1).as_secs_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_millis(10) + Time::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        assert_eq!((t - Time::from_millis(5)).as_millis(), 10);
        assert_eq!((t * 2).as_millis(), 30);
        assert_eq!((t / 3).as_millis(), 5);
        assert_eq!(
            Time::from_millis(1).saturating_sub(Time::from_millis(2)),
            Time::ZERO
        );
        let mut u = Time::ZERO;
        u += Time::from_nanos(7);
        assert_eq!(u.as_nanos(), 7);
        assert_eq!(Time::MAX.checked_add(Time(1)), None);
    }

    #[test]
    fn display_units() {
        assert_eq!(Time::from_nanos(500).to_string(), "500ns");
        assert_eq!(Time::from_micros(2).to_string(), "2.000µs");
        assert_eq!(Time::from_millis(2).to_string(), "2.000ms");
        assert_eq!(Time::from_secs(2).to_string(), "2.000s");
        assert_eq!(Bandwidth::gbps(100).to_string(), "100.00Gbps");
        assert_eq!(Bandwidth::tbps(1).to_string(), "1.00Tbps");
        assert_eq!(Bandwidth::mbps(10).to_string(), "10.00Mbps");
        assert_eq!(Bandwidth::bps(42).to_string(), "42bps");
    }

    #[test]
    fn tx_time_exact() {
        // 1500 bytes at 1 Gb/s = 12 µs exactly.
        assert_eq!(Bandwidth::gbps(1).tx_time(1500), Time::from_micros(12));
        // 9000-byte jumbo at 100 Gb/s = 720 ns.
        assert_eq!(Bandwidth::gbps(100).tx_time(9000), Time::from_nanos(720));
        // Rounds up: 1 byte at 3 bps = ceil(8e9/3) ns.
        assert_eq!(
            Bandwidth::bps(3).tx_time(1),
            Time::from_nanos(2_666_666_667)
        );
    }

    #[test]
    fn bytes_in_inverts_tx_time() {
        let bw = Bandwidth::gbps(100);
        let t = bw.tx_time(123_456);
        let bytes = bw.bytes_in(t);
        // tx_time rounds up to a whole nanosecond; at 100 Gb/s one
        // nanosecond carries 12.5 bytes, so allow that much slack.
        assert!((123_456..=123_456 + 13).contains(&bytes), "{bytes}");
    }

    #[test]
    #[should_panic(expected = "zero-rate")]
    fn zero_rate_panics() {
        let _ = Bandwidth::bps(0).tx_time(1);
    }

    #[test]
    fn table1_rates_representable() {
        // The paper's Table 1 DAQ rates all fit comfortably.
        for (bw, gbps) in [
            (Bandwidth::tbps(63), 63_000.0),   // CMS L1
            (Bandwidth::tbps(120), 120_000.0), // DUNE
            (Bandwidth::tbps(100), 100_000.0), // ECCE
            (Bandwidth::gbps(160), 160.0),     // Mu2e
            (Bandwidth::gbps(400), 400.0),     // Vera Rubin
        ] {
            assert!((bw.as_gbps_f64() - gbps).abs() < 1e-6);
        }
    }
}
