//! Columnar per-link metric export — the flow-table idea applied to the
//! telemetry plane.
//!
//! The eager export path materializes one labeled registry row per
//! nonzero per-link series: an `Arc`'d label set (three heap `String`s)
//! plus a B-tree entry per metric, per link. At fleet scale that
//! dominates the footprint — every group's registry sits fully
//! materialized until the merge folds them, ~1 kB per link against
//! ~40 B of actual protocol state per flow.
//!
//! [`LinkStatsBlock`] is the diet: each simulator exports its per-link
//! counters and gauges into a dense packed table (one row of plain
//! words per link, node names interned once per block). Blocks merge
//! numerically — counters add, gauges overwrite, exactly the
//! [`MetricRegistry::absorb`] semantics for the same rows — and the
//! merged block is materialized into real registry rows *once*, after
//! the last group has been folded. Rendered output is byte-identical
//! to the eager path; only the intermediate representation changes.

use std::collections::BTreeMap;

use mmt_telemetry::{LabelSet, MetricRegistry};

/// Per-link counters, in export order (values are written sparsely:
/// zero cells produce no row, matching the eager exporter).
pub const LINK_COUNTERS: [&str; 13] = [
    "mmt_link_offered_packets_total",
    "mmt_link_offered_bytes_total",
    "mmt_link_tx_packets_total",
    "mmt_link_tx_bytes_total",
    "mmt_link_delivered_packets_total",
    "mmt_link_mtu_drops_total",
    "mmt_link_queue_drops_total",
    "mmt_link_corruption_losses_total",
    "mmt_link_queue_shed_aged_total",
    "mmt_link_flap_drops_total",
    "mmt_link_control_drops_total",
    "mmt_link_dup_injected_total",
    "mmt_link_reordered_total",
];

/// Per-link gauges, in export order. Gauges follow last-writer-wins on
/// merge (only nonzero writers count), matching `absorb`.
pub const LINK_GAUGES: [&str; 4] = [
    "mmt_link_utilization",
    "mmt_link_throughput_bps",
    "mmt_link_queue_occupancy_bytes",
    "mmt_link_queue_occupancy_packets",
];

/// One packed link row: identity plus every exported cell as a plain
/// word. Gauges store `f64` bits. ~150 B/link, no per-row heap.
#[derive(Debug, Clone)]
struct PackedLinkRow {
    /// Group-local link index (the `link` label value).
    link: u32,
    /// Interned source node name.
    src: u32,
    /// Interned destination node name.
    dst: u32,
    /// Counter cells, parallel to [`LINK_COUNTERS`].
    counters: [u64; LINK_COUNTERS.len()],
    /// Gauge cells (`f64::to_bits`), parallel to [`LINK_GAUGES`].
    gauges: [u64; LINK_GAUGES.len()],
}

/// A dense table of per-link metric cells; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct LinkStatsBlock {
    /// Interned node names (label values), deduplicated.
    names: Vec<String>,
    rows: Vec<PackedLinkRow>,
    /// Merge index: `(link, src, dst)` → row position.
    index: BTreeMap<(u32, u32, u32), usize>,
}

impl LinkStatsBlock {
    /// An empty block.
    pub fn new() -> LinkStatsBlock {
        LinkStatsBlock::default()
    }

    /// Links recorded in this block.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the block records no links at all.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn intern(&mut self, name: &str) -> u32 {
        match self.names.iter().position(|n| n == name) {
            Some(at) => at as u32,
            None => {
                self.names.push(name.to_string());
                (self.names.len() - 1) as u32
            }
        }
    }

    fn name(&self, id: u32) -> &str {
        self.names
            .get(id as usize)
            .map(String::as_str)
            .unwrap_or("")
    }

    /// Record one link's export snapshot.
    pub fn push(
        &mut self,
        link: u32,
        src: &str,
        dst: &str,
        counters: [u64; LINK_COUNTERS.len()],
        gauges: [f64; LINK_GAUGES.len()],
    ) {
        let src = self.intern(src);
        let dst = self.intern(dst);
        let mut bits = [0u64; LINK_GAUGES.len()];
        for (cell, value) in bits.iter_mut().zip(gauges) {
            *cell = value.to_bits();
        }
        let key = (link, src, dst);
        match self.index.get(&key) {
            Some(&at) => {
                // Same identity pushed twice: fold like a merge so the
                // block stays equivalent to two absorbed registries.
                if let Some(row) = self.rows.get_mut(at) {
                    fold_row(row, &counters, &bits);
                }
            }
            None => {
                self.index.insert(key, self.rows.len());
                self.rows.push(PackedLinkRow {
                    link,
                    src,
                    dst,
                    counters,
                    gauges: bits,
                });
            }
        }
    }

    /// Fold another block into this one: counters add; gauges are
    /// overwritten by nonzero incoming cells (a zero gauge was never
    /// exported by the eager path, so it must not clobber).
    pub fn merge_from(&mut self, other: &LinkStatsBlock) {
        for row in &other.rows {
            let src = self.intern(other.name(row.src));
            let dst = self.intern(other.name(row.dst));
            let key = (row.link, src, dst);
            match self.index.get(&key) {
                Some(&at) => {
                    if let Some(mine) = self.rows.get_mut(at) {
                        fold_row(mine, &row.counters, &row.gauges);
                    }
                }
                None => {
                    self.index.insert(key, self.rows.len());
                    self.rows.push(PackedLinkRow {
                        link: row.link,
                        src,
                        dst,
                        counters: row.counters,
                        gauges: row.gauges,
                    });
                }
            }
        }
    }

    /// Materialize real registry rows — byte-identical to the eager
    /// per-link exporter run over the same (merged) stats: zero cells
    /// are omitted, everything else lands under the `link`/`src`/`dst`
    /// label set the eager path used.
    // mmt-lint: cold
    pub fn materialize(&self, reg: &mut MetricRegistry) {
        for row in &self.rows {
            let link_s = row.link.to_string();
            let labels = LabelSet::new(&[
                ("link", link_s.as_str()),
                ("src", self.name(row.src)),
                ("dst", self.name(row.dst)),
            ]);
            for (name, value) in LINK_COUNTERS.iter().zip(row.counters) {
                if value != 0 {
                    reg.counter_add_set(name, &labels, value);
                }
            }
            for (name, bits) in LINK_GAUGES.iter().zip(row.gauges) {
                let value = f64::from_bits(bits);
                // mmt-lint: allow(F1, "exact zero test on export-time gauge cells; mirrors the eager exporter's sparseness rule")
                if value != 0.0 {
                    reg.gauge_set_set(name, &labels, value);
                }
            }
        }
    }
}

fn fold_row(
    row: &mut PackedLinkRow,
    counters: &[u64; LINK_COUNTERS.len()],
    gauge_bits: &[u64; LINK_GAUGES.len()],
) {
    for (mine, incoming) in row.counters.iter_mut().zip(counters) {
        *mine += incoming;
    }
    for (mine, incoming) in row.gauges.iter_mut().zip(gauge_bits) {
        // mmt-lint: allow(F1, "exact zero test replicating registry absorb: only a row that was actually exported overwrites")
        if f64::from_bits(*incoming) != 0.0 {
            *mine = *incoming;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_telemetry::prometheus;

    fn eager(reg: &mut MetricRegistry, link: u32, src: &str, dst: &str, tx: u64, util: f64) {
        let link_s = link.to_string();
        let labels = LabelSet::new(&[("link", link_s.as_str()), ("src", src), ("dst", dst)]);
        if tx != 0 {
            reg.counter_add_set("mmt_link_tx_packets_total", &labels, tx);
        }
        if util != 0.0 {
            reg.gauge_set_set("mmt_link_utilization", &labels, util);
        }
    }

    fn block_row(_link: u32, tx: u64, util: f64) -> ([u64; 13], [f64; 4]) {
        let mut counters = [0u64; 13];
        counters[2] = tx;
        let mut gauges = [0.0f64; 4];
        gauges[0] = util;
        (counters, gauges)
    }

    #[test]
    fn materialized_rows_match_the_eager_exporter() {
        let mut eager_reg = MetricRegistry::new();
        eager(&mut eager_reg, 0, "sensor", "dtn", 7, 0.25);
        eager(&mut eager_reg, 1, "sensor", "dtn", 0, 0.5); // zero counter omitted
        let mut block = LinkStatsBlock::new();
        let (c0, g0) = block_row(0, 7, 0.25);
        block.push(0, "sensor", "dtn", c0, g0);
        let (c1, g1) = block_row(1, 0, 0.5);
        block.push(1, "sensor", "dtn", c1, g1);
        let mut packed_reg = MetricRegistry::new();
        block.materialize(&mut packed_reg);
        assert_eq!(
            prometheus::render(&eager_reg),
            prometheus::render(&packed_reg)
        );
    }

    #[test]
    fn merge_matches_registry_absorb() {
        // Two groups exporting the same link identity: counters must
        // sum, the later nonzero gauge must win — exactly absorb.
        let mut a_reg = MetricRegistry::new();
        eager(&mut a_reg, 3, "sensor", "dtn", 5, 0.1);
        let mut b_reg = MetricRegistry::new();
        eager(&mut b_reg, 3, "sensor", "dtn", 9, 0.0); // gauge not exported
        let mut merged_reg = MetricRegistry::new();
        merged_reg.absorb(&a_reg);
        merged_reg.absorb(&b_reg);

        let mut a = LinkStatsBlock::new();
        let (c, g) = block_row(3, 5, 0.1);
        a.push(3, "sensor", "dtn", c, g);
        let mut b = LinkStatsBlock::new();
        let (c, g) = block_row(3, 9, 0.0);
        b.push(3, "sensor", "dtn", c, g);
        let mut merged = LinkStatsBlock::new();
        merged.merge_from(&a);
        merged.merge_from(&b);
        assert_eq!(merged.len(), 1);
        let mut packed_reg = MetricRegistry::new();
        merged.materialize(&mut packed_reg);
        assert_eq!(
            prometheus::render(&merged_reg),
            prometheus::render(&packed_reg)
        );
    }

    #[test]
    fn distinct_identities_stay_distinct() {
        let mut merged = LinkStatsBlock::new();
        let (c, g) = block_row(0, 1, 0.0);
        merged.push(0, "sensor", "dtn", c, g);
        let (c, g) = block_row(0, 1, 0.0);
        merged.push(0, "sensor", "standby", c, g);
        let (c, g) = block_row(1, 1, 0.0);
        merged.push(1, "sensor", "dtn", c, g);
        assert_eq!(merged.len(), 3);
        assert!(!merged.is_empty());
    }
}
