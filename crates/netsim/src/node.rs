//! The node behaviour trait and the context handed to callbacks.

use crate::packet::Packet;
use crate::rng::SimRng;
use crate::time::Time;

/// Identifies a node within a simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// A port index on a node.
pub type PortId = usize;

/// An opaque timer token chosen by the node when scheduling.
pub type TimerToken = u64;

/// Actions a node can request during a callback; applied by the simulator
/// after the callback returns (keeps borrows simple and execution order
/// deterministic).
#[derive(Debug)]
pub(crate) enum Action {
    Send { port: PortId, pkt: Packet },
    Timer { delay: Time, token: TimerToken },
    DeliverLocal { pkt: Packet },
}

/// The API a node sees during `on_packet` / `on_timer`.
pub struct Context<'a> {
    pub(crate) now: Time,
    pub(crate) node: NodeId,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) actions: &'a mut Vec<Action>,
}

impl<'a> Context<'a> {
    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The node being called.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Deterministic randomness (shared simulator stream).
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Transmit a packet out of `port`. If no link is attached the packet
    /// is counted as an unrouted drop.
    pub fn send(&mut self, port: PortId, pkt: Packet) {
        self.actions.push(Action::Send { port, pkt });
    }

    /// Schedule `on_timer(token)` after `delay`.
    pub fn set_timer(&mut self, delay: Time, token: TimerToken) {
        self.actions.push(Action::Timer { delay, token });
    }

    /// Record a packet as delivered to the local application. The simulator
    /// collects these per node; experiment drivers read them after the run.
    pub fn deliver_local(&mut self, pkt: Packet) {
        self.actions.push(Action::DeliverLocal { pkt });
    }
}

/// Behaviour of a simulated node (host NIC stack, switch, DTN, ...).
///
/// Implementations are droppped into the simulator with
/// [`crate::Simulator::add_node`]; after a run, experiment code can
/// downcast back via [`crate::Simulator::node_as`] using the `as_any`
/// hooks.
pub trait Node {
    /// A packet arrived on `port`.
    fn on_packet(&mut self, ctx: &mut Context<'_>, port: PortId, pkt: Packet);

    /// A timer set via [`Context::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Context<'_>, token: TimerToken) {
        let _ = (ctx, token);
    }

    /// Called once when the simulation starts, before any packet flows.
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let _ = ctx;
    }

    /// The node crashed (scheduled via [`crate::Simulator::schedule_crash`]).
    /// Implementations drop whatever soft state the failure model says a
    /// power loss destroys (e.g. a retransmit store). No [`Context`] is
    /// provided: a dead node cannot send, deliver, or arm timers.
    fn on_crash(&mut self) {}

    /// The node came back up after a crash. Unlike [`Node::on_start`] this
    /// runs with the simulation already in flight; use it to re-arm
    /// periodic timers. Default: no-op.
    fn on_restart(&mut self, ctx: &mut Context<'_>) {
        let _ = ctx;
    }

    /// Downcast support (`&dyn Any`).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Downcast support (`&mut dyn Any`).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Probe {
        started: bool,
    }

    impl Node for Probe {
        fn on_packet(&mut self, _ctx: &mut Context<'_>, _port: PortId, _pkt: Packet) {}
        fn on_start(&mut self, _ctx: &mut Context<'_>) {
            self.started = true;
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn context_buffers_actions() {
        let mut rng = SimRng::new(0);
        let mut actions = Vec::new();
        let mut ctx = Context {
            now: Time::from_nanos(5),
            node: NodeId(3),
            rng: &mut rng,
            actions: &mut actions,
        };
        assert_eq!(ctx.now(), Time::from_nanos(5));
        assert_eq!(ctx.node_id(), NodeId(3));
        let _ = ctx.rng().next_u64();
        ctx.send(1, Packet::new(vec![1]));
        ctx.set_timer(Time::from_millis(1), 42);
        ctx.deliver_local(Packet::new(vec![2]));
        assert_eq!(actions.len(), 3);
        assert!(matches!(actions[0], Action::Send { port: 1, .. }));
        assert!(matches!(actions[1], Action::Timer { token: 42, .. }));
        assert!(matches!(actions[2], Action::DeliverLocal { .. }));
    }

    #[test]
    fn default_hooks_are_no_ops() {
        let mut probe = Probe { started: false };
        let mut rng = SimRng::new(0);
        let mut actions = Vec::new();
        let mut ctx = Context {
            now: Time::ZERO,
            node: NodeId(0),
            rng: &mut rng,
            actions: &mut actions,
        };
        probe.on_timer(&mut ctx, 7); // default impl: no effect
        probe.on_crash();
        probe.on_restart(&mut ctx);
        probe.on_start(&mut ctx);
        assert!(actions.is_empty());
        assert!(probe.started);
    }
}
