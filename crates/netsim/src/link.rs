//! Unidirectional links: queue → serializer → propagation → loss.

use crate::fault::{FaultSpec, FaultState};
use crate::queue::{Classifier, QueueSpec, TransmitQueue};
use crate::rng::SimRng;
use crate::time::{Bandwidth, Time};

/// Identifies a link within a simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// How a link loses packets.
///
/// Capacity-planned research networks do not lose packets to congestion in
/// normal operation, "but can occasionally lose packets from corruption"
/// (§4). The corruption models express that; queue overflow drops are a
/// separate mechanism that only engages in overcommit experiments (E7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// No loss ever (ideal DAQ-network segment).
    None,
    /// Independent per-packet loss probability.
    Random(f64),
    /// Bit-error rate: a packet of `n` bytes is lost with probability
    /// `1 - (1 - ber)^(8n)` — long jumbo frames are proportionally more
    /// exposed, as on real links.
    Ber(f64),
    /// Gilbert–Elliott two-state burst-loss model: a good state with
    /// `p_good` loss and a bad state with `p_bad` loss, with per-packet
    /// transition probabilities. Models the correlated loss of optical
    /// glitches and micro-bursts that single-packet NAK recovery must
    /// survive (DESIGN.md ablation A1).
    GilbertElliott {
        /// Loss probability while in the good state.
        p_good: f64,
        /// Loss probability while in the bad state.
        p_bad: f64,
        /// P(good → bad) per packet.
        to_bad: f64,
        /// P(bad → good) per packet.
        to_good: f64,
    },
}

impl LossModel {
    /// A typical burst profile: near-lossless good state, heavy bad
    /// state with mean burst length `1/to_good` packets, tuned so the
    /// long-run average loss is `avg`.
    pub fn bursty(avg: f64, mean_burst_packets: f64) -> LossModel {
        // mmt-lint: allow(F1, "construction-time parameter derivation, +,-,*,/ only: IEEE-exact, bit-identical on all platforms")
        let p_bad = 0.5;
        // mmt-lint: allow(F1, "construction-time parameter derivation, +,-,*,/ only: IEEE-exact, bit-identical on all platforms")
        let to_good = 1.0 / mean_burst_packets.max(1.0);
        // Stationary bad-state probability π_b = to_bad/(to_bad+to_good);
        // avg = π_b × p_bad  ⇒  to_bad = avg·to_good / (p_bad − avg).
        // mmt-lint: allow(F1, "construction-time parameter derivation, +,-,*,/ only: IEEE-exact, bit-identical on all platforms")
        let to_bad = (avg * to_good / (p_bad - avg).max(1e-9)).min(1.0);
        LossModel::GilbertElliott {
            // mmt-lint: allow(F1, "exact zero constant for the lossless good state")
            p_good: 0.0,
            p_bad,
            to_bad,
            to_good,
        }
    }

    /// Whether this model keeps per-link mutable state (Gilbert–Elliott
    /// does; the memoryless models do not).
    pub fn stateful(&self) -> bool {
        matches!(self, LossModel::GilbertElliott { .. })
    }
}

/// Runtime state for stateful loss models (one per link direction).
#[derive(Debug, Clone, Copy, Default)]
pub struct LossState {
    /// Gilbert–Elliott: currently in the bad state.
    pub in_bad: bool,
}

impl LossModel {
    /// Decide whether a packet of `len` bytes is lost.
    pub fn lose(&self, rng: &mut SimRng, len: usize, state: &mut LossState) -> bool {
        match *self {
            LossModel::None => false,
            LossModel::Random(p) => rng.chance(p),
            LossModel::Ber(ber) => {
                // mmt-lint: allow(F1, "exact comparison against the 0.0 constant; no rounding involved")
                if ber <= 0.0 {
                    return false;
                }
                let bits = (len * 8) as f64;
                // P(loss) = 1 - (1-ber)^bits, computed stably in log space.
                // mmt-lint: allow(F1, "ln/exp are libm-backed (documented hazard): bit-stable per platform, digest baselines recorded on the pinned CI libm")
                let p = 1.0 - (bits * (1.0 - ber).ln()).exp();
                rng.chance(p)
            }
            LossModel::GilbertElliott {
                p_good,
                p_bad,
                to_bad,
                to_good,
            } => {
                // Transition first, then sample in the new state.
                if state.in_bad {
                    if rng.chance(to_good) {
                        state.in_bad = false;
                    }
                } else if rng.chance(to_bad) {
                    state.in_bad = true;
                }
                rng.chance(if state.in_bad { p_bad } else { p_good })
            }
        }
    }
}

/// Static description of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Serialization rate.
    pub bandwidth: Bandwidth,
    /// One-way propagation delay.
    pub propagation: Time,
    /// Maximum frame size accepted (larger packets are dropped and counted;
    /// DAQ paths are engineered so this never fires, §2.1).
    pub mtu: usize,
    /// Loss model applied at the receiving end.
    pub loss: LossModel,
    /// Output queue discipline.
    pub queue: QueueSpec,
    /// Fault injection attached to this direction (default: none).
    pub fault: FaultSpec,
}

impl LinkSpec {
    /// A lossless jumbo-MTU link with a default FIFO.
    pub fn new(bandwidth: Bandwidth, propagation: Time) -> LinkSpec {
        LinkSpec {
            bandwidth,
            propagation,
            mtu: 9018, // jumbo payload + Ethernet header
            loss: LossModel::None,
            queue: QueueSpec::default_fifo(),
            fault: FaultSpec::none(),
        }
    }

    /// Set the loss model.
    #[must_use]
    pub fn with_loss(mut self, loss: LossModel) -> LinkSpec {
        self.loss = loss;
        self
    }

    /// Set the MTU.
    #[must_use]
    pub fn with_mtu(mut self, mtu: usize) -> LinkSpec {
        self.mtu = mtu;
        self
    }

    /// Set the queue discipline.
    #[must_use]
    pub fn with_queue(mut self, queue: QueueSpec) -> LinkSpec {
        self.queue = queue;
        self
    }

    /// Attach a fault-injection spec.
    #[must_use]
    pub fn with_fault(mut self, fault: FaultSpec) -> LinkSpec {
        self.fault = fault;
        self
    }
}

/// Per-link statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets handed to the link by the sender.
    pub offered_packets: u64,
    /// Bytes handed to the link by the sender.
    pub offered_bytes: u64,
    /// Packets fully serialized onto the wire.
    pub tx_packets: u64,
    /// Bytes fully serialized onto the wire.
    pub tx_bytes: u64,
    /// Packets delivered to the far end.
    pub delivered_packets: u64,
    /// Packets dropped because they exceeded the MTU.
    pub mtu_drops: u64,
    /// Packets dropped by the output queue.
    pub queue_drops: u64,
    /// Packets lost to corruption in flight.
    pub corruption_losses: u64,
    /// Packets lost to link outages (fault injection).
    pub flap_drops: u64,
    /// Control-plane packets dropped by selective control loss.
    pub control_drops: u64,
    /// Duplicate copies injected by the fault layer.
    pub dup_injected: u64,
    /// Packets held back for reordering by the fault layer.
    pub reordered: u64,
    /// Nanoseconds the transmitter spent busy (for utilization).
    pub busy_ns: u64,
}

impl LinkStats {
    /// Link utilization over `elapsed` (0.0–1.0).
    pub fn utilization(&self, elapsed: Time) -> f64 {
        if elapsed == Time::ZERO {
            // mmt-lint: allow(F1, "report-side ratio; never enters the sim or its digests")
            0.0
        } else {
            // mmt-lint: allow(F1, "report-side ratio; never enters the sim or its digests")
            self.busy_ns as f64 / elapsed.as_nanos() as f64
        }
    }

    /// Achieved throughput over `elapsed`, in bits per second.
    pub fn throughput_bps(&self, elapsed: Time) -> f64 {
        if elapsed == Time::ZERO {
            // mmt-lint: allow(F1, "report-side ratio; never enters the sim or its digests")
            0.0
        } else {
            // mmt-lint: allow(F1, "report-side ratio; never enters the sim or its digests")
            self.tx_bytes as f64 * 8.0 / elapsed.as_secs_f64()
        }
    }
}

/// Runtime state of one unidirectional link.
#[derive(Debug)]
pub struct Link {
    /// Static parameters.
    pub spec: LinkSpec,
    /// Source node index (for telemetry labels).
    pub src_node: usize,
    /// Destination node index.
    pub dst_node: usize,
    /// Destination port on that node.
    pub dst_port: usize,
    /// Output queue at the sending side.
    pub queue: TransmitQueue,
    /// Whether the transmitter is currently serializing a packet.
    pub busy: bool,
    /// Per-link RNG stream for loss decisions.
    pub rng: SimRng,
    /// State for stateful loss models.
    pub loss_state: LossState,
    /// Fault-injection state (independent RNG stream, outage chain).
    pub fault_state: FaultState,
    /// Counters.
    pub stats: LinkStats,
}

impl Link {
    /// Create the runtime state for a link.
    pub fn new(
        spec: LinkSpec,
        src_node: usize,
        dst_node: usize,
        dst_port: usize,
        rng: SimRng,
        fault_rng: SimRng,
    ) -> Link {
        Link {
            queue: TransmitQueue::new(spec.queue),
            spec,
            src_node,
            dst_node,
            dst_port,
            busy: false,
            rng,
            loss_state: LossState::default(),
            fault_state: FaultState::new(fault_rng),
            stats: LinkStats::default(),
        }
    }

    /// Replace the queue classifier (e.g. with an MMT-aware one).
    pub fn set_classifier(&mut self, classifier: Classifier) {
        // Rebuild the queue; only valid before traffic starts.
        assert!(
            self.queue.is_empty(),
            "classifier must be installed before traffic flows"
        );
        self.queue = TransmitQueue::with_classifier(self.spec.queue, classifier);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_models() {
        let mut rng = SimRng::new(1);
        let mut st = LossState::default();
        assert!(!LossModel::None.lose(&mut rng, 9000, &mut st));
        // Random(1.0) always loses.
        assert!(LossModel::Random(1.0).lose(&mut rng, 1, &mut st));
        // BER 0 never loses.
        assert!(!LossModel::Ber(0.0).lose(&mut rng, 9000, &mut st));
        // High BER on a long frame virtually always loses.
        let mut hits = 0;
        for _ in 0..100 {
            if LossModel::Ber(1e-3).lose(&mut rng, 9000, &mut st) {
                hits += 1;
            }
        }
        assert!(hits > 95, "{hits}");
        // Longer packets are more exposed at a given BER.
        let mut rng2 = SimRng::new(2);
        let short: usize = (0..20_000)
            .filter(|_| LossModel::Ber(1e-6).lose(&mut rng2, 100, &mut st))
            .count();
        let long: usize = (0..20_000)
            .filter(|_| LossModel::Ber(1e-6).lose(&mut rng2, 9000, &mut st))
            .count();
        assert!(long > short * 5, "short={short} long={long}");
    }

    #[test]
    fn gilbert_elliott_loss_is_bursty_with_right_average() {
        let avg = 0.01;
        let model = LossModel::bursty(avg, 20.0);
        let mut rng = SimRng::new(7);
        let mut st = LossState::default();
        let n = 2_000_000;
        let mut losses = 0u64;
        let mut runs = 0u64; // maximal loss runs
        let mut prev_lost = false;
        for _ in 0..n {
            let lost = model.lose(&mut rng, 1500, &mut st);
            if lost {
                losses += 1;
                if !prev_lost {
                    runs += 1;
                }
            }
            prev_lost = lost;
        }
        let measured = losses as f64 / n as f64;
        assert!((measured - avg).abs() / avg < 0.25, "avg {measured}");
        // Bursty: mean run length well above 1 (independent loss ≈ 1.01).
        let mean_run = losses as f64 / runs as f64;
        assert!(mean_run > 1.5, "mean run {mean_run}");
        assert!(model.stateful());
        assert!(!LossModel::Random(0.5).stateful());
    }

    #[test]
    fn spec_builders() {
        let spec = LinkSpec::new(Bandwidth::gbps(100), Time::from_millis(10))
            .with_loss(LossModel::Random(0.1))
            .with_mtu(1500)
            .with_queue(QueueSpec::DropTailFifo {
                capacity_bytes: 1000,
            });
        assert_eq!(spec.mtu, 1500);
        assert_eq!(spec.loss, LossModel::Random(0.1));
    }

    #[test]
    fn stats_utilization() {
        let stats = LinkStats {
            busy_ns: 500,
            tx_bytes: 125, // 1000 bits
            ..LinkStats::default()
        };
        assert!((stats.utilization(Time::from_nanos(1000)) - 0.5).abs() < 1e-9);
        assert_eq!(stats.utilization(Time::ZERO), 0.0);
        let bps = stats.throughput_bps(Time::from_secs(1));
        assert!((bps - 1000.0).abs() < 1e-9);
        assert_eq!(stats.throughput_bps(Time::ZERO), 0.0);
    }
}
