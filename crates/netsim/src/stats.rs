//! Measurement helpers: latency histograms and online summary statistics.

use crate::time::Time;

/// Nearest-rank quantile over an **already-sorted** slice: the sample at
/// index `round((n − 1) · q)`. `None` when empty; NaN degrades to `q = 0`
/// and out-of-range `q` is clamped, matching
/// [`LatencyHistogram::quantile`].
///
/// This is the sort-once building block for sweep aggregation: callers
/// that need several quantiles of the same sample set sort once (or take
/// [`LatencyHistogram::sorted_samples`]) and query this repeatedly,
/// instead of paying a hidden re-sort per call on cloned sample vectors.
pub fn quantile_sorted(sorted: &[u64], q: f64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted.get(rank.min(sorted.len() - 1)).copied()
}

/// Median over an already-sorted slice (see [`quantile_sorted`]).
pub fn median_sorted(sorted: &[u64]) -> Option<u64> {
    quantile_sorted(sorted, 0.5)
}

/// A batch of quantiles over one already-sorted slice; the cheap way to
/// fill a table row (min/median/p99/max and friends) with a single sort.
pub fn quantiles_sorted(sorted: &[u64], qs: &[f64]) -> Vec<Option<u64>> {
    qs.iter().map(|&q| quantile_sorted(sorted, q)).collect()
}

/// A sample-keeping latency recorder with quantile queries.
///
/// Simulations produce at most millions of samples, so keeping them all and
/// sorting on demand is both exact and fast enough; no approximate sketch
/// is needed.
///
/// Quantiles use the **nearest-rank** definition: for `n` samples the
/// `q`-quantile is the sample at sorted index `round((n − 1) · q)`. So
/// with one sample every quantile is that sample; with two samples every
/// `q < 0.5` returns the lower and every `q ≥ 0.5` the upper; `q = 0` and
/// `q = 1` are always the exact min and max.
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    samples_ns: Vec<u64>,
    sorted: bool,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Record a latency.
    pub fn record(&mut self, latency: Time) {
        self.samples_ns.push(latency.as_nanos());
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples_ns.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ns.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples_ns.sort_unstable();
            self.sorted = true;
        }
    }

    /// The sorted samples, sorting at most once since the last `record`
    /// or `merge`. Sweep aggregation should take this once and fan out
    /// through [`quantile_sorted`] rather than cloning samples per query.
    pub fn sorted_samples(&mut self) -> &[u64] {
        self.ensure_sorted();
        &self.samples_ns
    }

    /// The `q`-quantile (0.0–1.0) by nearest-rank, or `None` if empty.
    /// NaN `q` degrades to 0 (faulted telemetry can compute `q` from
    /// poisoned ratios) and out-of-range `q` is clamped.
    pub fn quantile(&mut self, q: f64) -> Option<Time> {
        quantile_sorted(self.sorted_samples(), q).map(Time::from_nanos)
    }

    /// Median latency.
    pub fn median(&mut self) -> Option<Time> {
        self.quantile(0.5)
    }

    /// The 99th-percentile latency.
    pub fn p99(&mut self) -> Option<Time> {
        self.quantile(0.99)
    }

    /// The 99.9th-percentile latency (the tail the paper's deadline
    /// arguments care about).
    pub fn p999(&mut self) -> Option<Time> {
        self.quantile(0.999)
    }

    /// Mean latency.
    pub fn mean(&self) -> Option<Time> {
        if self.samples_ns.is_empty() {
            return None;
        }
        let sum: u128 = self.samples_ns.iter().map(|&v| u128::from(v)).sum();
        Some(Time::from_nanos(
            (sum / self.samples_ns.len() as u128) as u64,
        ))
    }

    /// Minimum.
    pub fn min(&self) -> Option<Time> {
        self.samples_ns.iter().min().map(|&v| Time::from_nanos(v))
    }

    /// Maximum.
    pub fn max(&self) -> Option<Time> {
        self.samples_ns.iter().max().map(|&v| Time::from_nanos(v))
    }

    /// Population standard deviation in nanoseconds (0.0 with fewer than
    /// two samples).
    pub fn stddev_ns(&self) -> f64 {
        let n = self.samples_ns.len();
        if n < 2 {
            return 0.0;
        }
        let sum: u128 = self.samples_ns.iter().map(|&v| u128::from(v)).sum();
        let mean = sum as f64 / n as f64;
        let var = self
            .samples_ns
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        var.sqrt()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.samples_ns.extend_from_slice(&other.samples_ns);
        self.sorted = false;
    }

    /// Copy the samples into a telemetry histogram (for registry export).
    pub fn to_ns_histogram(&self) -> mmt_telemetry::NsHistogram {
        let mut h = mmt_telemetry::NsHistogram::new();
        for &v in &self.samples_ns {
            h.record(v);
        }
        h
    }
}

/// Online mean/variance (Welford) for unbounded streams of f64 metrics.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> OnlineStats {
        OnlineStats::default()
    }

    /// Add a sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0.0 with <2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        for ms in 1..=100u64 {
            h.record(Time::from_millis(ms));
        }
        assert_eq!(h.count(), 100);
        // Nearest-rank on an even count lands on the upper middle sample.
        assert_eq!(h.median().unwrap().as_millis(), 51);
        assert_eq!(h.quantile(0.0).unwrap().as_millis(), 1);
        assert_eq!(h.quantile(1.0).unwrap().as_millis(), 100);
        assert_eq!(h.quantile(0.99).unwrap().as_millis(), 99);
        assert_eq!(h.min().unwrap().as_millis(), 1);
        assert_eq!(h.max().unwrap().as_millis(), 100);
        assert_eq!(h.mean().unwrap().as_micros(), 50_500);
    }

    #[test]
    fn histogram_merge() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Time::from_millis(1));
        b.record(Time::from_millis(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max().unwrap().as_millis(), 3);
    }

    #[test]
    fn empty_histogram_edges() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.p999(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.stddev_ns(), 0.0);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut h = LatencyHistogram::new();
        h.record(Time::from_nanos(7));
        for q in [0.0, 0.25, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q).unwrap().as_nanos(), 7);
        }
        assert_eq!(h.p999().unwrap().as_nanos(), 7);
        assert_eq!(h.mean().unwrap().as_nanos(), 7);
        assert_eq!(h.stddev_ns(), 0.0);
    }

    #[test]
    fn two_sample_edges() {
        let mut h = LatencyHistogram::new();
        h.record(Time::from_nanos(10));
        h.record(Time::from_nanos(20));
        // Nearest rank: round((2−1)·q) picks index 0 below 0.5, 1 at ≥0.5.
        assert_eq!(h.quantile(0.49).unwrap().as_nanos(), 10);
        assert_eq!(h.quantile(0.5).unwrap().as_nanos(), 20);
        assert_eq!(h.p99().unwrap().as_nanos(), 20);
        assert_eq!(h.p999().unwrap().as_nanos(), 20);
        assert_eq!(h.mean().unwrap().as_nanos(), 15);
        assert!((h.stddev_ns() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn p999_separates_tail() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(Time::from_nanos(v));
        }
        // Nearest rank: round(9999·0.99) = 9899 → sample 9900, and
        // round(9999·0.999) = 9989 → sample 9990.
        assert_eq!(h.p99().unwrap().as_nanos(), 9_900);
        assert_eq!(h.p999().unwrap().as_nanos(), 9_990);
        let t = h.to_ns_histogram();
        assert_eq!(t.count(), 10_000);
        assert_eq!(t.max(), Some(10_000));
    }

    #[test]
    fn quantile_clamps_range() {
        let mut h = LatencyHistogram::new();
        h.record(Time::from_nanos(5));
        assert_eq!(h.quantile(-1.0).unwrap().as_nanos(), 5);
        assert_eq!(h.quantile(2.0).unwrap().as_nanos(), 5);
    }

    #[test]
    fn quantile_survives_nan_and_infinite_q() {
        // Regression: faulted telemetry can feed a quantile computed from
        // poisoned ratios (0/0 → NaN); must degrade, not panic.
        let mut h = LatencyHistogram::new();
        for v in [10u64, 20, 30] {
            h.record(Time::from_nanos(v));
        }
        assert_eq!(h.quantile(f64::NAN).unwrap().as_nanos(), 10);
        assert_eq!(h.quantile(f64::INFINITY).unwrap().as_nanos(), 30);
        assert_eq!(h.quantile(f64::NEG_INFINITY).unwrap().as_nanos(), 10);
    }

    #[test]
    fn sorted_slice_helpers_match_histogram() {
        let mut h = LatencyHistogram::new();
        for v in [40u64, 10, 30, 20, 50] {
            h.record(Time::from_nanos(v));
        }
        let sorted: Vec<u64> = h.sorted_samples().to_vec();
        assert_eq!(sorted, vec![10, 20, 30, 40, 50]);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0, f64::NAN, -3.0, 9.0] {
            assert_eq!(
                quantile_sorted(&sorted, q),
                h.quantile(q).map(|t| t.as_nanos()),
                "free helper and histogram must agree at q={q}"
            );
        }
        assert_eq!(median_sorted(&sorted), Some(30));
        assert_eq!(
            quantiles_sorted(&sorted, &[0.0, 0.5, 1.0]),
            vec![Some(10), Some(30), Some(50)]
        );
        assert_eq!(quantile_sorted(&[], 0.5), None);
        assert_eq!(median_sorted(&[]), None);
    }

    #[test]
    fn sorted_samples_caches_between_queries() {
        let mut h = LatencyHistogram::new();
        h.record(Time::from_nanos(2));
        h.record(Time::from_nanos(1));
        assert_eq!(h.sorted_samples(), &[1, 2]);
        h.record(Time::from_nanos(0));
        assert_eq!(h.sorted_samples(), &[0, 1, 2], "re-sorts after a record");
    }

    #[test]
    fn online_stats() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
    }
}
