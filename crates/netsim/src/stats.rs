//! Measurement helpers: latency histograms and online summary statistics.

use crate::time::Time;
use mmt_telemetry::QuantileSketch;

/// Nearest-rank quantile over an **already-sorted** slice: the sample at
/// index `round((n − 1) · q)`. `None` when empty; NaN degrades to `q = 0`
/// and out-of-range `q` is clamped, matching
/// [`LatencyHistogram::quantile`].
///
/// This is the sort-once building block for sweep aggregation: callers
/// that need several quantiles of the same sample set sort once (or take
/// [`LatencyHistogram::sorted_samples`]) and query this repeatedly,
/// instead of paying a hidden re-sort per call on cloned sample vectors.
pub fn quantile_sorted(sorted: &[u64], q: f64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    // mmt-lint: allow(F1, "report-side rank selection: one IEEE-exact multiply+round of a sub-2^53 count; result is an index, not a digested value")
    let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
    // mmt-lint: allow(F1, "report-side rank selection: one IEEE-exact multiply+round of a sub-2^53 count; result is an index, not a digested value")
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted.get(rank.min(sorted.len() - 1)).copied()
}

/// Median over an already-sorted slice (see [`quantile_sorted`]).
pub fn median_sorted(sorted: &[u64]) -> Option<u64> {
    // mmt-lint: allow(F1, "exactly-representable quantile constant passed to report-side selection")
    quantile_sorted(sorted, 0.5)
}

/// A batch of quantiles over one already-sorted slice; the cheap way to
/// fill a table row (min/median/p99/max and friends) with a single sort.
pub fn quantiles_sorted(sorted: &[u64], qs: &[f64]) -> Vec<Option<u64>> {
    qs.iter().map(|&q| quantile_sorted(sorted, q)).collect()
}

/// A latency recorder with quantile queries, sketch-backed by default.
///
/// The hot path (per-flow recorders in fleet-scale runs) must not grow
/// with the sample count, so the default mode keeps **only** a
/// fixed-memory [`QuantileSketch`]: `count`, `sum`, `min`, `max`, and
/// `stddev` stay exact while quantiles carry the sketch's documented
/// bound (`v ≤ estimate ≤ v + v/32`, exact below 32 ns). Construct with
/// [`LatencyHistogram::exact`] to additionally retain every sample, which
/// restores exact nearest-rank quantiles — the fallback tests and
/// honesty measurements use.
///
/// Quantiles use the **nearest-rank** definition: for `n` samples the
/// `q`-quantile is the sample at sorted index `round((n − 1) · q)`. So
/// with one sample every quantile is that sample; with two samples every
/// `q < 0.5` returns the lower and every `q ≥ 0.5` the upper; `q = 0` and
/// `q = 1` are always the exact min and max (the sketch clamps into the
/// observed `[min, max]`, preserving those edges too).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    sketch: QuantileSketch,
    /// `Some` only in exact mode; grows with the sample count.
    samples_ns: Option<Vec<u64>>,
    sorted: bool,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty sketch-backed histogram (fixed memory; the hot-path
    /// default).
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            sketch: QuantileSketch::new(),
            samples_ns: None,
            sorted: true,
        }
    }

    /// An empty histogram that *also* retains every sample for exact
    /// nearest-rank quantiles (tests, honesty comparisons; memory grows
    /// with the sample count).
    pub fn exact() -> LatencyHistogram {
        LatencyHistogram {
            sketch: QuantileSketch::new(),
            samples_ns: Some(Vec::new()),
            sorted: true,
        }
    }

    /// Whether exact samples are retained (quantiles are then exact).
    pub fn is_exact(&self) -> bool {
        self.samples_ns.is_some()
    }

    /// Record a latency.
    pub fn record(&mut self, latency: Time) {
        let ns = latency.as_nanos();
        self.sketch.record(ns);
        if let Some(samples) = &mut self.samples_ns {
            samples.push(ns);
            self.sorted = false;
        }
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.sketch.count() as usize
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.sketch.is_empty()
    }

    /// The underlying fixed-memory sketch (digests, accuracy tests).
    pub fn sketch(&self) -> &QuantileSketch {
        &self.sketch
    }

    /// Exact sum of all recorded latencies in nanoseconds (saturating) —
    /// the span profiler's virtual-time attribution for decode stages.
    pub fn sum_ns(&self) -> u64 {
        self.sketch.sum().min(u128::from(u64::MAX)) as u64
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            if let Some(samples) = &mut self.samples_ns {
                samples.sort_unstable();
            }
            self.sorted = true;
        }
    }

    /// The retained sorted samples — **exact mode only**; the sketch-backed
    /// default returns an empty slice because the hot path no longer
    /// caches sample vectors. Exact-mode sweep aggregation should take
    /// this once and fan out through [`quantile_sorted`].
    pub fn sorted_samples(&mut self) -> &[u64] {
        self.ensure_sorted();
        self.samples_ns.as_deref().unwrap_or(&[])
    }

    /// The `q`-quantile (0.0–1.0) by nearest-rank, or `None` if empty:
    /// exact when samples are retained, otherwise the sketch estimate
    /// (upper-biased by at most 1/32). NaN `q` degrades to 0 (faulted
    /// telemetry can compute `q` from poisoned ratios) and out-of-range
    /// `q` is clamped.
    pub fn quantile(&mut self, q: f64) -> Option<Time> {
        if self.samples_ns.is_some() {
            self.ensure_sorted();
            let sorted = self.samples_ns.as_deref().unwrap_or(&[]);
            quantile_sorted(sorted, q).map(Time::from_nanos)
        } else {
            self.sketch.quantile(q).map(Time::from_nanos)
        }
    }

    /// Median latency.
    pub fn median(&mut self) -> Option<Time> {
        // mmt-lint: allow(F1, "exactly-representable quantile constant passed to report-side selection")
        self.quantile(0.5)
    }

    /// The 99th-percentile latency.
    pub fn p99(&mut self) -> Option<Time> {
        // mmt-lint: allow(F1, "quantile constant for report-side selection; nearest-double rounding is fixed by IEEE 754, identical everywhere")
        self.quantile(0.99)
    }

    /// The 99.9th-percentile latency (the tail the paper's deadline
    /// arguments care about).
    pub fn p999(&mut self) -> Option<Time> {
        // mmt-lint: allow(F1, "quantile constant for report-side selection; nearest-double rounding is fixed by IEEE 754, identical everywhere")
        self.quantile(0.999)
    }

    /// Mean latency (exact in both modes).
    pub fn mean(&self) -> Option<Time> {
        self.sketch.mean().map(Time::from_nanos)
    }

    /// Minimum (exact in both modes).
    pub fn min(&self) -> Option<Time> {
        self.sketch.min().map(Time::from_nanos)
    }

    /// Maximum (exact in both modes).
    pub fn max(&self) -> Option<Time> {
        self.sketch.max().map(Time::from_nanos)
    }

    /// Population standard deviation in nanoseconds (exact in both
    /// modes; 0.0 with fewer than two samples).
    pub fn stddev_ns(&self) -> f64 {
        self.sketch.stddev()
    }

    /// Merge another histogram into this one. Sketches always merge
    /// (commutatively); retained samples survive only when **both**
    /// sides are exact — merging a sketch-only histogram in degrades
    /// the result to sketch mode, since the samples cannot be
    /// reconstructed.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.sketch.merge(&other.sketch);
        match (&mut self.samples_ns, &other.samples_ns) {
            (Some(mine), Some(theirs)) => {
                mine.extend_from_slice(theirs);
                self.sorted = false;
            }
            _ => {
                self.samples_ns = None;
                self.sorted = true;
            }
        }
    }
}

/// Online mean/variance (Welford) for unbounded streams of f64 metrics.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> OnlineStats {
        OnlineStats::default()
    }

    /// Add a sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        // mmt-lint: allow(F1, "Welford update is +,-,*,/ only — IEEE-exact ops, bit-identical on all platforms; summary stats never enter digests")
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0.0 with <2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            // mmt-lint: allow(F1, "exact zero constant; division below is a single IEEE-exact op on report-side values")
            0.0
        } else {
            // mmt-lint: allow(F1, "exact zero constant; division below is a single IEEE-exact op on report-side values")
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles() {
        let mut h = LatencyHistogram::exact();
        assert!(h.is_empty());
        assert!(h.is_exact());
        assert_eq!(h.quantile(0.5), None);
        for ms in 1..=100u64 {
            h.record(Time::from_millis(ms));
        }
        assert_eq!(h.count(), 100);
        // Nearest-rank on an even count lands on the upper middle sample.
        assert_eq!(h.median().unwrap().as_millis(), 51);
        assert_eq!(h.quantile(0.0).unwrap().as_millis(), 1);
        assert_eq!(h.quantile(1.0).unwrap().as_millis(), 100);
        assert_eq!(h.quantile(0.99).unwrap().as_millis(), 99);
        assert_eq!(h.min().unwrap().as_millis(), 1);
        assert_eq!(h.max().unwrap().as_millis(), 100);
        assert_eq!(h.mean().unwrap().as_micros(), 50_500);
    }

    #[test]
    fn histogram_merge() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Time::from_millis(1));
        b.record(Time::from_millis(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max().unwrap().as_millis(), 3);
    }

    #[test]
    fn empty_histogram_edges() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.p999(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.stddev_ns(), 0.0);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut h = LatencyHistogram::new();
        h.record(Time::from_nanos(7));
        for q in [0.0, 0.25, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q).unwrap().as_nanos(), 7);
        }
        assert_eq!(h.p999().unwrap().as_nanos(), 7);
        assert_eq!(h.mean().unwrap().as_nanos(), 7);
        assert_eq!(h.stddev_ns(), 0.0);
    }

    #[test]
    fn two_sample_edges() {
        let mut h = LatencyHistogram::new();
        h.record(Time::from_nanos(10));
        h.record(Time::from_nanos(20));
        // Nearest rank: round((2−1)·q) picks index 0 below 0.5, 1 at ≥0.5.
        assert_eq!(h.quantile(0.49).unwrap().as_nanos(), 10);
        assert_eq!(h.quantile(0.5).unwrap().as_nanos(), 20);
        assert_eq!(h.p99().unwrap().as_nanos(), 20);
        assert_eq!(h.p999().unwrap().as_nanos(), 20);
        assert_eq!(h.mean().unwrap().as_nanos(), 15);
        assert!((h.stddev_ns() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn p999_separates_tail() {
        let mut h = LatencyHistogram::exact();
        for v in 1..=10_000u64 {
            h.record(Time::from_nanos(v));
        }
        // Nearest rank: round(9999·0.99) = 9899 → sample 9900, and
        // round(9999·0.999) = 9989 → sample 9990.
        assert_eq!(h.p99().unwrap().as_nanos(), 9_900);
        assert_eq!(h.p999().unwrap().as_nanos(), 9_990);
    }

    #[test]
    fn sketch_mode_keeps_no_samples() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(Time::from_nanos(v));
        }
        assert!(!h.is_exact());
        assert_eq!(h.count(), 10_000);
        assert_eq!(
            h.sorted_samples(),
            &[] as &[u64],
            "hot-path mode must not retain sample vectors"
        );
        // Exact aggregates survive in sketch mode.
        assert_eq!(h.min().unwrap().as_nanos(), 1);
        assert_eq!(h.max().unwrap().as_nanos(), 10_000);
        assert_eq!(h.mean().unwrap().as_nanos(), 5_000);
        assert_eq!(h.sum_ns(), 50_005_000);
    }

    #[test]
    fn sketch_mode_quantiles_hold_documented_bound() {
        let mut sk = LatencyHistogram::new();
        let mut ex = LatencyHistogram::exact();
        for v in 1..=10_000u64 {
            let t = Time::from_nanos(v * 977); // spread across octaves
            sk.record(t);
            ex.record(t);
        }
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = ex.quantile(q).unwrap().as_nanos();
            let est = sk.quantile(q).unwrap().as_nanos();
            assert!(
                est >= exact && est <= exact + exact / 32,
                "q={q}: est {est} outside [{exact}, {}]",
                exact + exact / 32
            );
        }
    }

    #[test]
    fn merge_degrades_to_sketch_when_either_side_lacks_samples() {
        let mut a = LatencyHistogram::exact();
        let mut b = LatencyHistogram::new();
        a.record(Time::from_nanos(10));
        b.record(Time::from_nanos(20));
        a.merge(&b);
        assert!(
            !a.is_exact(),
            "samples cannot be reconstructed from a sketch"
        );
        assert_eq!(a.count(), 2);
        assert_eq!(a.max().unwrap().as_nanos(), 20);

        let mut c = LatencyHistogram::exact();
        let mut d = LatencyHistogram::exact();
        c.record(Time::from_nanos(1));
        d.record(Time::from_nanos(2));
        c.merge(&d);
        assert!(c.is_exact(), "exact + exact stays exact");
        assert_eq!(c.sorted_samples(), &[1, 2]);
    }

    #[test]
    fn quantile_clamps_range() {
        let mut h = LatencyHistogram::new();
        h.record(Time::from_nanos(5));
        assert_eq!(h.quantile(-1.0).unwrap().as_nanos(), 5);
        assert_eq!(h.quantile(2.0).unwrap().as_nanos(), 5);
    }

    #[test]
    fn quantile_survives_nan_and_infinite_q() {
        // Regression: faulted telemetry can feed a quantile computed from
        // poisoned ratios (0/0 → NaN); must degrade, not panic.
        let mut h = LatencyHistogram::new();
        for v in [10u64, 20, 30] {
            h.record(Time::from_nanos(v));
        }
        assert_eq!(h.quantile(f64::NAN).unwrap().as_nanos(), 10);
        assert_eq!(h.quantile(f64::INFINITY).unwrap().as_nanos(), 30);
        assert_eq!(h.quantile(f64::NEG_INFINITY).unwrap().as_nanos(), 10);
    }

    #[test]
    fn sorted_slice_helpers_match_histogram() {
        let mut h = LatencyHistogram::exact();
        for v in [40u64, 10, 30, 20, 50] {
            h.record(Time::from_nanos(v));
        }
        let sorted: Vec<u64> = h.sorted_samples().to_vec();
        assert_eq!(sorted, vec![10, 20, 30, 40, 50]);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0, f64::NAN, -3.0, 9.0] {
            assert_eq!(
                quantile_sorted(&sorted, q),
                h.quantile(q).map(|t| t.as_nanos()),
                "free helper and histogram must agree at q={q}"
            );
        }
        assert_eq!(median_sorted(&sorted), Some(30));
        assert_eq!(
            quantiles_sorted(&sorted, &[0.0, 0.5, 1.0]),
            vec![Some(10), Some(30), Some(50)]
        );
        assert_eq!(quantile_sorted(&[], 0.5), None);
        assert_eq!(median_sorted(&[]), None);
    }

    #[test]
    fn sorted_samples_caches_between_queries() {
        let mut h = LatencyHistogram::exact();
        h.record(Time::from_nanos(2));
        h.record(Time::from_nanos(1));
        assert_eq!(h.sorted_samples(), &[1, 2]);
        h.record(Time::from_nanos(0));
        assert_eq!(h.sorted_samples(), &[0, 1, 2], "re-sorts after a record");
    }

    #[test]
    fn online_stats() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
    }
}
