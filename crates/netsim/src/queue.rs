//! Output queues feeding link transmitters.
//!
//! Three disciplines cover the paper's needs:
//!
//! * [`QueueSpec::DropTailFifo`] — the commodity default.
//! * [`QueueSpec::StrictPriority`] — age-sensitive data "prioritize[d] ...
//!   as it travels" (§5.3); the MMT priority class selects the band.
//! * [`QueueSpec::DeadlineAware`] — an AQM that consults the MMT age/
//!   timeliness extensions: packets whose aged flag is already set are shed
//!   *first* under pressure, because their information value has expired
//!   ("the aging of transported data follows a pre-determined policy",
//!   Fig. 2) — this realizes the paper's "explicit transport deadlines
//!   [are] an input to active queue management".

use crate::packet::Packet;
use std::collections::VecDeque;

/// Number of priority bands for the strict-priority discipline.
pub const PRIORITY_BANDS: usize = 4;

/// Queue discipline and sizing for one link transmitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueSpec {
    /// Single FIFO with a byte capacity; arrivals beyond capacity are
    /// dropped (drop-tail).
    DropTailFifo {
        /// Queue capacity in bytes.
        capacity_bytes: usize,
    },
    /// `PRIORITY_BANDS` FIFOs served highest-band-first, each with a byte
    /// capacity. The classifier maps a packet to a band.
    StrictPriority {
        /// Per-band capacity in bytes.
        capacity_bytes: usize,
    },
    /// FIFO that, when full, prefers shedding packets already marked aged
    /// (classifier band 255 = "aged") before dropping the arrival.
    DeadlineAware {
        /// Queue capacity in bytes.
        capacity_bytes: usize,
    },
}

impl QueueSpec {
    /// A generously sized FIFO for capacity-planned segments.
    pub fn default_fifo() -> QueueSpec {
        QueueSpec::DropTailFifo {
            capacity_bytes: 16 * 1024 * 1024,
        }
    }
}

/// A packet classifier: returns the priority band (0 = lowest) or the
/// special value 255 meaning "aged, shed first". Installed per link by the
/// topology builder; the MMT-aware classifier lives in `mmt-dataplane`.
pub type Classifier = fn(&Packet) -> u8;

fn default_classifier(_: &Packet) -> u8 {
    0
}

/// The runtime state of an output queue.
#[derive(Debug)]
pub struct TransmitQueue {
    spec: QueueSpec,
    classifier: Classifier,
    bands: Vec<VecDeque<Packet>>,
    bytes: usize,
    dropped: u64,
    shed_aged: u64,
}

impl TransmitQueue {
    /// Create a queue with the default (constant-0) classifier.
    pub fn new(spec: QueueSpec) -> TransmitQueue {
        Self::with_classifier(spec, default_classifier)
    }

    /// Create a queue with a custom classifier.
    pub fn with_classifier(spec: QueueSpec, classifier: Classifier) -> TransmitQueue {
        let bands = match spec {
            QueueSpec::StrictPriority { .. } => PRIORITY_BANDS,
            _ => 1,
        };
        TransmitQueue {
            spec,
            classifier,
            bands: (0..bands).map(|_| VecDeque::new()).collect(),
            bytes: 0,
            dropped: 0,
            shed_aged: 0,
        }
    }

    /// Bytes currently queued.
    pub fn occupancy_bytes(&self) -> usize {
        self.bytes
    }

    /// Packets currently queued.
    pub fn occupancy_packets(&self) -> usize {
        self.bands.iter().map(VecDeque::len).sum()
    }

    /// Packets dropped by this queue so far (tail drops + sheds).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Of the drops, how many were aged packets shed by the deadline-aware
    /// discipline.
    pub fn shed_aged(&self) -> u64 {
        self.shed_aged
    }

    /// Whether the queue holds no packets.
    pub fn is_empty(&self) -> bool {
        self.bands.iter().all(VecDeque::is_empty)
    }

    /// Offer a packet. Returns `true` if enqueued, `false` if dropped.
    pub fn enqueue(&mut self, pkt: Packet) -> bool {
        match self.spec {
            QueueSpec::DropTailFifo { capacity_bytes } => {
                if self.bytes + pkt.len() > capacity_bytes {
                    self.dropped += 1;
                    return false;
                }
                self.bytes += pkt.len();
                self.bands[0].push_back(pkt);
                true
            }
            QueueSpec::StrictPriority { capacity_bytes } => {
                let band = usize::from((self.classifier)(&pkt)).min(PRIORITY_BANDS - 1);
                let band_bytes: usize = self.bands[band].iter().map(Packet::len).sum();
                if band_bytes + pkt.len() > capacity_bytes {
                    self.dropped += 1;
                    return false;
                }
                self.bytes += pkt.len();
                self.bands[band].push_back(pkt);
                true
            }
            QueueSpec::DeadlineAware { capacity_bytes } => {
                let needed = pkt.len();
                // Shed aged packets (classifier band 255) from the front
                // until the arrival fits.
                while self.bytes + needed > capacity_bytes {
                    let Some(pos) = self.bands[0]
                        .iter()
                        .position(|p| (self.classifier)(p) == 255)
                    else {
                        break;
                    };
                    let Some(removed) = self.bands[0].remove(pos) else {
                        break; // unreachable: pos came from position() above
                    };
                    self.bytes -= removed.len();
                    self.dropped += 1;
                    self.shed_aged += 1;
                }
                if self.bytes + needed > capacity_bytes {
                    self.dropped += 1;
                    return false;
                }
                self.bytes += needed;
                self.bands[0].push_back(pkt);
                true
            }
        }
    }

    /// Take the next packet to transmit (highest priority band first).
    pub fn dequeue(&mut self) -> Option<Packet> {
        for band in (0..self.bands.len()).rev() {
            if let Some(pkt) = self.bands[band].pop_front() {
                self.bytes -= pkt.len();
                return Some(pkt);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(n: usize) -> Packet {
        Packet::new(vec![0u8; n])
    }

    #[test]
    fn fifo_order_and_occupancy() {
        let mut q = TransmitQueue::new(QueueSpec::DropTailFifo {
            capacity_bytes: 100,
        });
        assert!(q.enqueue(Packet::new(vec![1; 10])));
        assert!(q.enqueue(Packet::new(vec![2; 20])));
        assert_eq!(q.occupancy_bytes(), 30);
        assert_eq!(q.occupancy_packets(), 2);
        assert_eq!(q.dequeue().unwrap().bytes[0], 1);
        assert_eq!(q.dequeue().unwrap().bytes[0], 2);
        assert!(q.dequeue().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn drop_tail_at_capacity() {
        let mut q = TransmitQueue::new(QueueSpec::DropTailFifo { capacity_bytes: 25 });
        assert!(q.enqueue(pkt(10)));
        assert!(q.enqueue(pkt(10)));
        assert!(!q.enqueue(pkt(10))); // would exceed 25
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.occupancy_bytes(), 20);
    }

    #[test]
    fn strict_priority_serves_high_band_first() {
        fn by_first_byte(p: &Packet) -> u8 {
            p.bytes[0]
        }
        let mut q = TransmitQueue::with_classifier(
            QueueSpec::StrictPriority {
                capacity_bytes: 1000,
            },
            by_first_byte,
        );
        assert!(q.enqueue(Packet::new(vec![0, 0])));
        assert!(q.enqueue(Packet::new(vec![3, 0]))); // high priority
        assert!(q.enqueue(Packet::new(vec![1, 0])));
        assert_eq!(q.dequeue().unwrap().bytes[0], 3);
        assert_eq!(q.dequeue().unwrap().bytes[0], 1);
        assert_eq!(q.dequeue().unwrap().bytes[0], 0);
    }

    #[test]
    fn strict_priority_band_isolation() {
        fn by_first_byte(p: &Packet) -> u8 {
            p.bytes[0]
        }
        let mut q = TransmitQueue::with_classifier(
            QueueSpec::StrictPriority { capacity_bytes: 4 },
            by_first_byte,
        );
        // Fill band 0.
        assert!(q.enqueue(Packet::new(vec![0, 0])));
        assert!(q.enqueue(Packet::new(vec![0, 0])));
        assert!(!q.enqueue(Packet::new(vec![0, 0]))); // band 0 full
                                                      // Band 3 still has room.
        assert!(q.enqueue(Packet::new(vec![3, 0])));
    }

    #[test]
    fn band_index_clamped() {
        fn always_200(_: &Packet) -> u8 {
            200
        }
        let mut q = TransmitQueue::with_classifier(
            QueueSpec::StrictPriority {
                capacity_bytes: 100,
            },
            always_200,
        );
        assert!(q.enqueue(pkt(4)));
        assert!(q.dequeue().is_some());
    }

    #[test]
    fn deadline_aware_sheds_aged_first() {
        // Classifier: byte 0 == 0xA9 means "aged".
        fn aged_marker(p: &Packet) -> u8 {
            if p.bytes[0] == 0xA9 {
                255
            } else {
                0
            }
        }
        let mut q = TransmitQueue::with_classifier(
            QueueSpec::DeadlineAware { capacity_bytes: 30 },
            aged_marker,
        );
        assert!(q.enqueue(Packet::new(vec![0xA9; 10]))); // aged
        assert!(q.enqueue(Packet::new(vec![0x01; 10]))); // fresh
        assert!(q.enqueue(Packet::new(vec![0x02; 10]))); // fresh
                                                         // Full. A fresh arrival displaces the aged packet.
        assert!(q.enqueue(Packet::new(vec![0x03; 10])));
        assert_eq!(q.shed_aged(), 1);
        assert_eq!(q.dropped(), 1);
        let order: Vec<u8> = std::iter::from_fn(|| q.dequeue().map(|p| p.bytes[0])).collect();
        assert_eq!(order, vec![0x01, 0x02, 0x03]);
    }

    #[test]
    fn deadline_aware_drops_arrival_when_no_aged_to_shed() {
        fn never_aged(_: &Packet) -> u8 {
            0
        }
        let mut q = TransmitQueue::with_classifier(
            QueueSpec::DeadlineAware { capacity_bytes: 20 },
            never_aged,
        );
        assert!(q.enqueue(pkt(10)));
        assert!(q.enqueue(pkt(10)));
        assert!(!q.enqueue(pkt(10)));
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.shed_aged(), 0);
    }
}
