//! # `mmt-netsim` — deterministic discrete-event network simulator
//!
//! The paper's pilot (§5.4) runs on physical 100 GbE hardware (Tofino2,
//! Alveo FPGAs) that this reproduction does not have. `mmt-netsim` is the
//! substitute substrate: a packet-level, virtual-time discrete-event
//! simulator whose links model exactly the properties the paper's claims
//! depend on — bandwidth (serialization delay), propagation delay (the
//! 10–100 ms WAN RTTs of §2), MTU policy (jumbo frames, no fragmentation,
//! §2.1), and *corruption-only* loss ("It can occasionally lose packets
//! from corruption", §4 — DAQ and WAN segments are capacity-planned, so
//! congestive loss only appears when a queue actually overflows).
//!
//! ## Architecture
//!
//! * [`Time`] / [`Bandwidth`] — virtual time in nanoseconds, rates in bits
//!   per second; all arithmetic in integers for determinism.
//! * [`SimRng`] — a SplitMix64 PRNG so simulations are reproducible from a
//!   seed across platforms.
//! * [`Packet`] — a byte buffer plus bookkeeping metadata.
//! * [`Node`] — behaviour trait implemented by hosts, switches, DTNs.
//! * [`Link`] / [`LinkSpec`] — unidirectional links with an output queue
//!   ([`QueueSpec`]) feeding a serializing transmitter.
//! * [`Simulator`] — the event loop binding everything together.
//! * [`stats`] — counters and latency histograms collected per link/node.
//!
//! ## Example
//!
//! ```
//! use mmt_netsim::*;
//!
//! // A sender that emits one jumbo frame at start, and a sink.
//! struct Sender;
//! impl Node for Sender {
//!     fn on_packet(&mut self, _: &mut Context<'_>, _: PortId, _: Packet) {}
//!     fn on_start(&mut self, ctx: &mut Context<'_>) {
//!         ctx.send(0, Packet::new(vec![0u8; 9000]));
//!     }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//! }
//! struct Sink;
//! impl Node for Sink {
//!     fn on_packet(&mut self, ctx: &mut Context<'_>, _: PortId, pkt: Packet) {
//!         ctx.deliver_local(pkt); // hand to the local application
//!     }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! let mut sim = Simulator::new(42);
//! let a = sim.add_node("a", Box::new(Sender));
//! let b = sim.add_node("b", Box::new(Sink));
//! // 100 Gb/s with 1 ms one-way propagation.
//! let spec = LinkSpec::new(Bandwidth::gbps(100), Time::from_millis(1));
//! sim.connect(a, 0, b, 0, spec);
//! sim.run();
//! let got = sim.local_deliveries(b);
//! assert_eq!(got.len(), 1);
//! // Arrival = serialization (720 ns) + propagation (1 ms).
//! assert_eq!(got[0].0, Time::from_nanos(720) + Time::from_millis(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
mod fault;
mod link;
pub mod linkstats;
mod node;
mod packet;
pub mod profile;
mod queue;
mod rng;
pub mod shard;
mod sim;
pub mod stats;
mod time;
mod trace;
pub mod wheel;

pub use arena::{ArenaStats, PacketArena, PacketRef};
pub use fault::{FaultSpec, FaultState, FaultVerdict, PeriodicOutage, RandomOutage};
pub use link::{Link, LinkId, LinkSpec, LossModel, LossState};
pub use linkstats::LinkStatsBlock;
pub use node::{Context, Node, NodeId, PortId, TimerToken};
pub use packet::{Packet, PacketMeta};
pub use profile::{SpanProfiler, Stage, StageTotals};
pub use queue::{QueueSpec, TransmitQueue};
pub use rng::SimRng;
pub use shard::{GroupResult, ShardLoad, ShardReport, ShardedSim};
pub use sim::Simulator;
pub use time::{Bandwidth, Time};
pub use trace::{Trace, TraceEvent, TraceKind};
pub use wheel::{TimerWheel, WheelToken};
