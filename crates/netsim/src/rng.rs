//! Deterministic PRNG for simulations.
//!
//! SplitMix64: tiny, fast, and identical output on every platform, which
//! keeps whole-simulation results reproducible from a single seed. The
//! workspace is dependency-free by design; this self-contained generator
//! means simulator behaviour can never drift with a dependency upgrade.

/// A SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> SimRng {
        SimRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        // mmt-lint: allow(F1, "mantissa-scale by a power of two: every step is IEEE-exact, bit-identical on all platforms")
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection-free multiply-shift; bias is negligible for our bounds.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        // mmt-lint: allow(F1, "exact comparison against the 0.0 constant; no rounding involved")
        if p <= 0.0 {
            false
        // mmt-lint: allow(F1, "exact comparison against the 1.0 constant; no rounding involved")
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Fork an independent stream (for per-link deterministic loss that is
    /// insensitive to event interleaving).
    pub fn fork(&mut self, stream: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ stream.wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// Fork an independent stream WITHOUT advancing this generator, so
    /// introducing a new derived stream never perturbs streams forked
    /// after it. The derivation scrambles the current state through one
    /// SplitMix64 round keyed by `stream`.
    pub fn fork_frozen(&self, stream: u64) -> SimRng {
        let mut z = self
            .state
            .wrapping_add(stream.wrapping_mul(0xA076_1D64_78BD_642F))
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::new(z ^ (z >> 31))
    }

    /// Sample an exponential inter-arrival time with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        // mmt-lint: allow(F1, "ln is libm-backed (documented hazard): bit-stable per platform, digest baselines recorded on the pinned CI libm")
        -mean * u.ln()
    }

    /// Sample a standard normal via Box–Muller (one value per call).
    pub fn normal(&mut self, mean: f64, stddev: f64) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        // mmt-lint: allow(F1, "Box-Muller ln/cos are libm-backed (documented hazard): bit-stable per platform, digest baselines recorded on the pinned CI libm")
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos();
        mean + stddev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::new(8);
        assert_ne!(SimRng::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(1);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn bounded_respects_bound() {
        let mut rng = SimRng::new(2);
        let mut seen_high = false;
        for _ in 0..10_000 {
            let v = rng.next_bounded(10);
            assert!(v < 10);
            if v >= 8 {
                seen_high = true;
            }
        }
        assert!(seen_high, "distribution should reach the top of the range");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // p = 0.5 should land near 50%.
        let hits = (0..10_000).filter(|_| rng.chance(0.5)).count();
        assert!((4_500..5_500).contains(&hits), "{hits}");
    }

    #[test]
    fn forked_streams_differ_but_are_deterministic() {
        let mut base1 = SimRng::new(9);
        let mut base2 = SimRng::new(9);
        let mut f1 = base1.fork(1);
        let mut f2 = base2.fork(1);
        assert_eq!(f1.next_u64(), f2.next_u64());
        let mut base3 = SimRng::new(9);
        let mut g = base3.fork(2);
        assert_ne!(SimRng::new(9).fork(1).next_u64(), g.next_u64());
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = SimRng::new(4);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(3.0)).sum();
        let mean = sum / n as f64;
        assert!((2.8..3.2).contains(&mean), "{mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut rng = SimRng::new(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((9.9..10.1).contains(&mean), "{mean}");
        assert!((3.5..4.5).contains(&var), "{var}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_panics() {
        SimRng::new(0).next_bounded(0);
    }
}
