//! Seeded randomized tests for the simulator core: determinism,
//! conservation, and timing laws that every experiment implicitly relies
//! on. Cases are generated with the simulator's own `SimRng`, so every
//! failure replays exactly from the constants below.

use mmt_netsim::{
    Bandwidth, Context, FaultSpec, LinkSpec, LossModel, Node, Packet, PeriodicOutage, PortId,
    QueueSpec, SimRng, Simulator, Time,
};

struct Sink;
impl Node for Sink {
    fn on_packet(&mut self, ctx: &mut Context<'_>, _: PortId, pkt: Packet) {
        ctx.deliver_local(pkt);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

struct Burst {
    sizes: Vec<usize>,
}
impl Node for Burst {
    fn on_packet(&mut self, _: &mut Context<'_>, _: PortId, _: Packet) {}
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for &s in &self.sizes {
            ctx.send(0, Packet::new(vec![0u8; s]));
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn gen_sizes(rng: &mut SimRng, min: usize, max: usize, count_max: u64) -> Vec<usize> {
    let n = 1 + rng.next_bounded(count_max) as usize;
    (0..n)
        .map(|_| min + rng.next_bounded((max - min) as u64) as usize)
        .collect()
}

fn run_once(
    seed: u64,
    sizes: &[usize],
    loss: f64,
    rate_gbps: u64,
    prop_us: u64,
) -> (usize, Vec<u64>, Time) {
    let mut sim = Simulator::new(seed);
    let src = sim.add_node(
        "src",
        Box::new(Burst {
            sizes: sizes.to_vec(),
        }),
    );
    let dst = sim.add_node("dst", Box::new(Sink));
    sim.add_oneway(
        src,
        0,
        dst,
        0,
        LinkSpec::new(Bandwidth::gbps(rate_gbps), Time::from_micros(prop_us))
            .with_loss(LossModel::Random(loss)),
    );
    sim.run();
    let arrivals: Vec<u64> = sim
        .local_deliveries(dst)
        .iter()
        .map(|(t, _)| t.as_nanos())
        .collect();
    (sim.local_deliveries(dst).len(), arrivals, sim.now())
}

/// Identical seeds yield byte-identical outcomes (the reproducibility
/// every EXPERIMENTS.md number rests on).
#[test]
fn simulation_is_deterministic() {
    let mut rng = SimRng::new(0x5EED_0001);
    for _ in 0..30 {
        let seed = rng.next_u64();
        let sizes = gen_sizes(&mut rng, 64, 9000, 59);
        let loss = rng.next_f64() * 0.5;
        let a = run_once(seed, &sizes, loss, 10, 50);
        let b = run_once(seed, &sizes, loss, 10, 50);
        assert_eq!(a, b);
    }
}

/// Conservation: delivered + corruption losses + queue drops + MTU
/// drops == offered, on every link.
#[test]
fn link_conserves_packets() {
    let mut rng = SimRng::new(0x5EED_0002);
    for _ in 0..30 {
        let seed = rng.next_u64();
        let sizes = gen_sizes(&mut rng, 64, 12_000, 79);
        let loss = rng.next_f64() * 0.3;
        let cap_kb = 1 + rng.next_bounded(63) as usize;
        let mut sim = Simulator::new(seed);
        let src = sim.add_node(
            "src",
            Box::new(Burst {
                sizes: sizes.clone(),
            }),
        );
        let dst = sim.add_node("dst", Box::new(Sink));
        let link = sim.add_oneway(
            src,
            0,
            dst,
            0,
            LinkSpec::new(Bandwidth::gbps(1), Time::from_micros(10))
                .with_loss(LossModel::Random(loss))
                .with_queue(QueueSpec::DropTailFifo {
                    capacity_bytes: cap_kb * 1024,
                }),
        );
        sim.run();
        let s = *sim.link_stats(link);
        assert_eq!(s.offered_packets, sizes.len() as u64);
        assert_eq!(
            s.delivered_packets + s.corruption_losses + s.queue_drops + s.mtu_drops,
            s.offered_packets
        );
        assert_eq!(sim.local_deliveries(dst).len() as u64, s.delivered_packets);
    }
}

/// Timing law: every arrival is ≥ serialization + propagation after
/// its send, and arrivals preserve FIFO order on one link.
#[test]
fn arrivals_respect_physics() {
    let mut rng = SimRng::new(0x5EED_0003);
    for _ in 0..30 {
        let sizes = gen_sizes(&mut rng, 64, 9000, 39);
        let rate_gbps = 1 + rng.next_bounded(99);
        let prop_us = 1 + rng.next_bounded(999);
        let (_, arrivals, _) = run_once(1, &sizes, 0.0, rate_gbps, prop_us);
        assert_eq!(arrivals.len(), sizes.len());
        let bw = Bandwidth::gbps(rate_gbps);
        let prop_ns = prop_us * 1_000;
        // FIFO order and a physical lower bound per packet.
        let mut cursor = 0u64; // serialization completion time
        for (i, &at) in arrivals.iter().enumerate() {
            cursor += bw.tx_time(sizes[i]).as_nanos();
            assert_eq!(at, cursor + prop_ns, "packet {i} timing");
        }
    }
}

/// Node that emits alternating data / control packets (even index =
/// data, odd = control), for exercising selective control loss.
struct MixedBurst {
    count: usize,
}
impl Node for MixedBurst {
    fn on_packet(&mut self, _: &mut Context<'_>, _: PortId, _: Packet) {}
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for i in 0..self.count {
            let mut pkt = Packet::new(vec![0u8; 1000]);
            pkt.meta.control = i % 2 == 1;
            ctx.send(0, pkt);
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn fault_topology(seed: u64, sizes: &[usize], fault: FaultSpec) -> Simulator {
    let mut sim = Simulator::new(seed);
    let src = sim.add_node(
        "src",
        Box::new(Burst {
            sizes: sizes.to_vec(),
        }),
    );
    let dst = sim.add_node("dst", Box::new(Sink));
    sim.add_oneway(
        src,
        0,
        dst,
        0,
        LinkSpec::new(Bandwidth::gbps(10), Time::from_micros(50)).with_fault(fault),
    );
    sim.run();
    sim
}

/// Attaching `FaultSpec::none()` leaves every outcome byte-identical to
/// a link with no fault spec at all (the fault layer is transparent
/// when idle).
#[test]
fn none_fault_is_transparent() {
    let mut rng = SimRng::new(0x5EED_0010);
    for _ in 0..10 {
        let seed = rng.next_u64();
        let sizes = gen_sizes(&mut rng, 64, 9000, 49);
        let loss = rng.next_f64() * 0.3;
        let plain = run_once(seed, &sizes, loss, 10, 50);
        let mut sim = Simulator::new(seed);
        let src = sim.add_node(
            "src",
            Box::new(Burst {
                sizes: sizes.clone(),
            }),
        );
        let dst = sim.add_node("dst", Box::new(Sink));
        sim.add_oneway(
            src,
            0,
            dst,
            0,
            LinkSpec::new(Bandwidth::gbps(10), Time::from_micros(50))
                .with_loss(LossModel::Random(loss))
                .with_fault(FaultSpec::none()),
        );
        sim.run();
        let arrivals: Vec<u64> = sim
            .local_deliveries(dst)
            .iter()
            .map(|(t, _)| t.as_nanos())
            .collect();
        let faulted = (sim.local_deliveries(dst).len(), arrivals, sim.now());
        assert_eq!(plain, faulted, "seed {seed:#x}");
    }
}

/// Conservation still holds with every fault armed: each offered packet
/// is delivered, dropped by a flap, dropped as control, lost to
/// corruption, or queue/MTU-dropped — and injected duplicates add to
/// deliveries exactly once each.
#[test]
fn faulted_link_conserves_packets() {
    let mut rng = SimRng::new(0x5EED_0011);
    for _ in 0..20 {
        let seed = rng.next_u64();
        let sizes = gen_sizes(&mut rng, 64, 9000, 99);
        let fault = FaultSpec::none()
            .with_reorder(rng.next_f64() * 0.5, Time::from_micros(200))
            .with_duplication(rng.next_f64() * 0.5, Time::from_micros(10))
            .with_jitter(Time::from_micros(1 + rng.next_bounded(100)))
            .with_random_outage(Time::from_micros(500), Time::from_micros(100));
        let sim = fault_topology(seed, &sizes, fault);
        let s = *sim.link_stats(mmt_netsim::LinkId(0));
        assert_eq!(s.offered_packets, sizes.len() as u64, "seed {seed:#x}");
        assert_eq!(
            s.delivered_packets
                + s.flap_drops
                + s.control_drops
                + s.corruption_losses
                + s.queue_drops
                + s.mtu_drops,
            s.offered_packets + s.dup_injected,
            "seed {seed:#x}"
        );
    }
}

/// A duplication probability of 1.0 delivers every packet exactly twice.
#[test]
fn full_duplication_doubles_deliveries() {
    let sizes = vec![1000; 50];
    let fault = FaultSpec::none().with_duplication(1.0, Time::from_micros(5));
    let sim = fault_topology(7, &sizes, fault);
    let s = *sim.link_stats(mmt_netsim::LinkId(0));
    assert_eq!(s.dup_injected, 50);
    assert_eq!(s.delivered_packets, 100);
}

/// A scheduled outage covering the whole run drops everything; one that
/// never starts drops nothing.
#[test]
fn scheduled_outage_windows_gate_delivery() {
    let sizes = vec![1000; 20];
    let always_down = FaultSpec::none().with_scheduled_outage(PeriodicOutage {
        first_down: Time::ZERO,
        down_for: Time::from_secs(1000),
        period: Time::from_secs(2000),
    });
    let sim = fault_topology(7, &sizes, always_down);
    let s = *sim.link_stats(mmt_netsim::LinkId(0));
    assert_eq!(s.flap_drops, 20);
    assert_eq!(s.delivered_packets, 0);

    let never_down = FaultSpec::none().with_scheduled_outage(PeriodicOutage {
        first_down: Time::from_secs(1000),
        down_for: Time::from_secs(1),
        period: Time::from_secs(2000),
    });
    let sim = fault_topology(7, &sizes, never_down);
    let s = *sim.link_stats(mmt_netsim::LinkId(0));
    assert_eq!(s.flap_drops, 0);
    assert_eq!(s.delivered_packets, 20);
}

/// Control loss of 1.0 drops every control packet and no data packet.
#[test]
fn control_loss_spares_data_plane() {
    let mut sim = Simulator::new(11);
    let src = sim.add_node("src", Box::new(MixedBurst { count: 40 }));
    let dst = sim.add_node("dst", Box::new(Sink));
    sim.add_oneway(
        src,
        0,
        dst,
        0,
        LinkSpec::new(Bandwidth::gbps(10), Time::from_micros(50))
            .with_fault(FaultSpec::none().with_control_loss(1.0)),
    );
    sim.run();
    let s = *sim.link_stats(mmt_netsim::LinkId(0));
    assert_eq!(s.control_drops, 20, "all 20 control packets dropped");
    assert_eq!(s.delivered_packets, 20, "all 20 data packets delivered");
}

/// Faulted runs replay byte-identically from the same seed.
#[test]
fn faulted_simulation_is_deterministic() {
    let mut rng = SimRng::new(0x5EED_0012);
    for _ in 0..10 {
        let seed = rng.next_u64();
        let sizes = gen_sizes(&mut rng, 64, 9000, 49);
        let fault = FaultSpec::none()
            .with_reorder(0.3, Time::from_micros(100))
            .with_duplication(0.2, Time::from_micros(10))
            .with_jitter(Time::from_micros(20))
            .with_random_outage(Time::from_millis(1), Time::from_micros(200))
            .with_control_loss(0.5);
        let a = fault_topology(seed, &sizes, fault);
        let b = fault_topology(seed, &sizes, fault);
        let da: Vec<u64> = a
            .local_deliveries(mmt_netsim::NodeId(1))
            .iter()
            .map(|(t, _)| t.as_nanos())
            .collect();
        let db: Vec<u64> = b
            .local_deliveries(mmt_netsim::NodeId(1))
            .iter()
            .map(|(t, _)| t.as_nanos())
            .collect();
        assert_eq!(da, db, "seed {seed:#x}");
        assert_eq!(
            a.link_stats(mmt_netsim::LinkId(0)),
            b.link_stats(mmt_netsim::LinkId(0)),
            "seed {seed:#x}"
        );
    }
}

/// The Gilbert–Elliott model's long-run loss matches its configured
/// average across seeds.
#[test]
fn bursty_loss_average_holds() {
    let mut rng = SimRng::new(0x5EED_0004);
    for _ in 0..8 {
        let seed = rng.next_u64();
        let avg = 0.005 + rng.next_f64() * 0.045;
        let model = LossModel::bursty(avg, 10.0);
        let mut loss_rng = SimRng::new(seed);
        let mut state = mmt_netsim::LossState::default();
        let n = 300_000u32;
        let losses = (0..n)
            .filter(|_| model.lose(&mut loss_rng, 1500, &mut state))
            .count();
        let measured = losses as f64 / n as f64;
        assert!(
            (measured - avg).abs() < avg * 0.5 + 0.002,
            "configured {avg}, measured {measured}"
        );
    }
}
