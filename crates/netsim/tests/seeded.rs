//! Seeded randomized tests for the simulator core: determinism,
//! conservation, and timing laws that every experiment implicitly relies
//! on. Cases are generated with the simulator's own `SimRng`, so every
//! failure replays exactly from the constants below.

use mmt_netsim::{
    Bandwidth, Context, LinkSpec, LossModel, Node, Packet, PortId, QueueSpec, SimRng, Simulator,
    Time,
};

struct Sink;
impl Node for Sink {
    fn on_packet(&mut self, ctx: &mut Context<'_>, _: PortId, pkt: Packet) {
        ctx.deliver_local(pkt);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

struct Burst {
    sizes: Vec<usize>,
}
impl Node for Burst {
    fn on_packet(&mut self, _: &mut Context<'_>, _: PortId, _: Packet) {}
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for &s in &self.sizes {
            ctx.send(0, Packet::new(vec![0u8; s]));
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn gen_sizes(rng: &mut SimRng, min: usize, max: usize, count_max: u64) -> Vec<usize> {
    let n = 1 + rng.next_bounded(count_max) as usize;
    (0..n)
        .map(|_| min + rng.next_bounded((max - min) as u64) as usize)
        .collect()
}

fn run_once(
    seed: u64,
    sizes: &[usize],
    loss: f64,
    rate_gbps: u64,
    prop_us: u64,
) -> (usize, Vec<u64>, Time) {
    let mut sim = Simulator::new(seed);
    let src = sim.add_node(
        "src",
        Box::new(Burst {
            sizes: sizes.to_vec(),
        }),
    );
    let dst = sim.add_node("dst", Box::new(Sink));
    sim.add_oneway(
        src,
        0,
        dst,
        0,
        LinkSpec::new(Bandwidth::gbps(rate_gbps), Time::from_micros(prop_us))
            .with_loss(LossModel::Random(loss)),
    );
    sim.run();
    let arrivals: Vec<u64> = sim
        .local_deliveries(dst)
        .iter()
        .map(|(t, _)| t.as_nanos())
        .collect();
    (sim.local_deliveries(dst).len(), arrivals, sim.now())
}

/// Identical seeds yield byte-identical outcomes (the reproducibility
/// every EXPERIMENTS.md number rests on).
#[test]
fn simulation_is_deterministic() {
    let mut rng = SimRng::new(0x5EED_0001);
    for _ in 0..30 {
        let seed = rng.next_u64();
        let sizes = gen_sizes(&mut rng, 64, 9000, 59);
        let loss = rng.next_f64() * 0.5;
        let a = run_once(seed, &sizes, loss, 10, 50);
        let b = run_once(seed, &sizes, loss, 10, 50);
        assert_eq!(a, b);
    }
}

/// Conservation: delivered + corruption losses + queue drops + MTU
/// drops == offered, on every link.
#[test]
fn link_conserves_packets() {
    let mut rng = SimRng::new(0x5EED_0002);
    for _ in 0..30 {
        let seed = rng.next_u64();
        let sizes = gen_sizes(&mut rng, 64, 12_000, 79);
        let loss = rng.next_f64() * 0.3;
        let cap_kb = 1 + rng.next_bounded(63) as usize;
        let mut sim = Simulator::new(seed);
        let src = sim.add_node(
            "src",
            Box::new(Burst {
                sizes: sizes.clone(),
            }),
        );
        let dst = sim.add_node("dst", Box::new(Sink));
        let link = sim.add_oneway(
            src,
            0,
            dst,
            0,
            LinkSpec::new(Bandwidth::gbps(1), Time::from_micros(10))
                .with_loss(LossModel::Random(loss))
                .with_queue(QueueSpec::DropTailFifo {
                    capacity_bytes: cap_kb * 1024,
                }),
        );
        sim.run();
        let s = *sim.link_stats(link);
        assert_eq!(s.offered_packets, sizes.len() as u64);
        assert_eq!(
            s.delivered_packets + s.corruption_losses + s.queue_drops + s.mtu_drops,
            s.offered_packets
        );
        assert_eq!(sim.local_deliveries(dst).len() as u64, s.delivered_packets);
    }
}

/// Timing law: every arrival is ≥ serialization + propagation after
/// its send, and arrivals preserve FIFO order on one link.
#[test]
fn arrivals_respect_physics() {
    let mut rng = SimRng::new(0x5EED_0003);
    for _ in 0..30 {
        let sizes = gen_sizes(&mut rng, 64, 9000, 39);
        let rate_gbps = 1 + rng.next_bounded(99);
        let prop_us = 1 + rng.next_bounded(999);
        let (_, arrivals, _) = run_once(1, &sizes, 0.0, rate_gbps, prop_us);
        assert_eq!(arrivals.len(), sizes.len());
        let bw = Bandwidth::gbps(rate_gbps);
        let prop_ns = prop_us * 1_000;
        // FIFO order and a physical lower bound per packet.
        let mut cursor = 0u64; // serialization completion time
        for (i, &at) in arrivals.iter().enumerate() {
            cursor += bw.tx_time(sizes[i]).as_nanos();
            assert_eq!(at, cursor + prop_ns, "packet {i} timing");
        }
    }
}

/// The Gilbert–Elliott model's long-run loss matches its configured
/// average across seeds.
#[test]
fn bursty_loss_average_holds() {
    let mut rng = SimRng::new(0x5EED_0004);
    for _ in 0..8 {
        let seed = rng.next_u64();
        let avg = 0.005 + rng.next_f64() * 0.045;
        let model = LossModel::bursty(avg, 10.0);
        let mut loss_rng = SimRng::new(seed);
        let mut state = mmt_netsim::LossState::default();
        let n = 300_000u32;
        let losses = (0..n)
            .filter(|_| model.lose(&mut loss_rng, 1500, &mut state))
            .count();
        let measured = losses as f64 / n as f64;
        assert!(
            (measured - avg).abs() < avg * 0.5 + 0.002,
            "configured {avg}, measured {measured}"
        );
    }
}
