//! Osmotic computing sensors (§6, challenge 3).
//!
//! "Osmotic computing uses a large number of distributed sensors, instead
//! of a few large instruments. Sensors lack a DAQ network — instead they
//! rely on cell networks and backhaul." Examples in the paper's citations
//! include kilometre-baseline GPS scintillation arrays \[20\]. Each sensor
//! produces a trickle (hertz-rate, sub-kilobyte readings); the challenge
//! is *integration*: getting thousands of trickles into the same
//! infrastructure — with the same headers, slicing, and timeliness
//! machinery — that carries the 100 Tb/s instruments.

use crate::workload::WorkloadMessage;
use mmt_netsim::{SimRng, Time};
use mmt_wire::mmt::ExperimentId;

/// A field of dispersed sensors.
#[derive(Debug, Clone)]
pub struct SensorField {
    /// The experiment these sensors belong to.
    pub experiment: ExperimentId,
    /// Number of sensors.
    pub sensors: usize,
    /// Mean reporting interval per sensor.
    pub report_interval: Time,
    /// Reading size, bytes.
    pub reading_bytes: usize,
    /// Timing jitter fraction (cell-network scheduling noise), 0.0–1.0.
    pub jitter: f64,
}

impl SensorField {
    /// A GPS-scintillation-like array: 200 stations, 1 reading/s, 512 B.
    pub fn scintillation_array(experiment: ExperimentId) -> SensorField {
        SensorField {
            experiment,
            sensors: 200,
            report_interval: Time::from_secs(1),
            reading_bytes: 512,
            jitter: 0.3,
        }
    }

    /// Generate all readings up to `until`, merged into one time-ordered
    /// stream with per-sensor phase offsets and jitter.
    pub fn readings_until(&self, until: Time, seed: u64) -> Vec<WorkloadMessage> {
        let mut rng = SimRng::new(seed);
        let mut out = Vec::new();
        let mut index = 0u64;
        for sensor in 0..self.sensors {
            // Each sensor free-runs with a random phase.
            let phase = Time::from_nanos(rng.next_bounded(self.report_interval.as_nanos().max(1)));
            let mut t = phase;
            while t <= until {
                let jitter_span = (self.report_interval.as_nanos() as f64 * self.jitter) as u64;
                let jitter = if jitter_span > 0 {
                    Time::from_nanos(rng.next_bounded(jitter_span))
                } else {
                    Time::ZERO
                };
                out.push(WorkloadMessage {
                    at: t + jitter,
                    payload_len: self.reading_bytes,
                    index,
                    // The sensor id rides in the slice byte: dispersed
                    // fields are just another partitioned instrument.
                    experiment: self.experiment.with_slice((sensor % 256) as u8),
                });
                index += 1;
                t += self.report_interval;
            }
        }
        out.sort_by_key(|m| m.at);
        for (i, m) in out.iter_mut().enumerate() {
            m.index = i as u64;
        }
        out
    }

    /// Aggregate offered load in bits per second.
    pub fn offered_bps(&self) -> f64 {
        self.sensors as f64 * self.reading_bytes as f64 * 8.0 / self.report_interval.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> SensorField {
        SensorField::scintillation_array(ExperimentId::new(6, 0))
    }

    #[test]
    fn trickle_rates_are_tiny_next_to_table1() {
        let f = field();
        // 200 × 512 B/s ≈ 0.8 Mb/s — ten orders below DUNE.
        assert!(
            (0.7e6..0.9e6).contains(&f.offered_bps()),
            "{}",
            f.offered_bps()
        );
    }

    #[test]
    fn readings_are_time_ordered_and_complete() {
        let f = field();
        let msgs = f.readings_until(Time::from_secs(10), 1);
        // ~200 sensors × ~10 readings each.
        assert!((1800..2300).contains(&msgs.len()), "{}", msgs.len());
        assert!(msgs.windows(2).all(|w| w[1].at >= w[0].at));
        assert!(msgs.iter().enumerate().all(|(i, m)| m.index == i as u64));
        // Sensor identity rides the slice byte.
        let slices: std::collections::HashSet<u8> =
            msgs.iter().map(|m| m.experiment.slice()).collect();
        assert!(slices.len() > 150, "{}", slices.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let f = field();
        assert_eq!(
            f.readings_until(Time::from_secs(2), 9),
            f.readings_until(Time::from_secs(2), 9)
        );
        assert_ne!(
            f.readings_until(Time::from_secs(2), 9),
            f.readings_until(Time::from_secs(2), 10)
        );
    }

    #[test]
    fn jitter_zero_is_strictly_periodic_per_sensor() {
        let mut f = field();
        f.jitter = 0.0;
        f.sensors = 1;
        let msgs = f.readings_until(Time::from_secs(5), 3);
        assert!(msgs.len() >= 4);
        let gaps: Vec<u64> = msgs
            .windows(2)
            .map(|w| (w[1].at - w[0].at).as_nanos())
            .collect();
        assert!(gaps.iter().all(|&g| g == gaps[0]));
    }
}
