//! A columnar storage container — the HDF5 stand-in (§6, challenge 2).
//!
//! "DPDK-capable or FPGA resources could be used to ... transcode into
//! other formats, such as HDF5 which is ubiquitously used for storage in
//! scientific computing." Real HDF5 is a large external format; this
//! container captures the property the transport cares about — many
//! discrete trigger records packed into one seekable object with an index
//! — in a compact format that in-path processors can emit.
//!
//! Layout:
//!
//! ```text
//! magic "MMTSTOR1" (8) | version u8 | reserved (3) | record count u32 |
//! index offset u64 | record bytes... | index: count × (offset u64,
//! len u32, event u64, timestamp_ns u64)
//! ```

use mmt_wire::daq::TriggerRecord;

/// Container magic bytes.
pub const MAGIC: &[u8; 8] = b"MMTSTOR1";
const HEADER_LEN: usize = 8 + 1 + 3 + 4 + 8;
const INDEX_ENTRY_LEN: usize = 8 + 4 + 8 + 8;

/// Errors from container encoding/decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageError {
    /// Magic or version mismatch.
    NotAContainer,
    /// Structure inconsistent with the byte length.
    Corrupt(&'static str),
    /// A contained record failed to decode.
    BadRecord,
}

impl core::fmt::Display for StorageError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StorageError::NotAContainer => write!(f, "not an MMTSTOR1 container"),
            StorageError::Corrupt(what) => write!(f, "corrupt container: {what}"),
            StorageError::BadRecord => write!(f, "contained record failed to decode"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Accumulates trigger records into a container.
#[derive(Debug, Default)]
pub struct ContainerWriter {
    records: Vec<u8>,
    index: Vec<(u64, u32, u64, u64)>,
}

impl ContainerWriter {
    /// An empty writer.
    pub fn new() -> ContainerWriter {
        ContainerWriter::default()
    }

    /// Append one record.
    pub fn push(&mut self, record: &TriggerRecord) -> Result<(), StorageError> {
        let encoded = record.encode().map_err(|_| StorageError::BadRecord)?;
        let offset = (HEADER_LEN + self.records.len()) as u64;
        self.index.push((
            offset,
            encoded.len() as u32,
            record.event,
            record.timestamp_ns,
        ));
        self.records.extend_from_slice(&encoded);
        Ok(())
    }

    /// Records accumulated so far.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the writer holds no records.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Serialize the container.
    pub fn finish(self) -> Vec<u8> {
        let index_offset = (HEADER_LEN + self.records.len()) as u64;
        let mut out = Vec::with_capacity(
            HEADER_LEN + self.records.len() + self.index.len() * INDEX_ENTRY_LEN,
        );
        out.extend_from_slice(MAGIC);
        out.push(1); // version
        out.extend_from_slice(&[0; 3]);
        out.extend_from_slice(&(self.index.len() as u32).to_be_bytes());
        out.extend_from_slice(&index_offset.to_be_bytes());
        out.extend_from_slice(&self.records);
        for (offset, len, event, ts) in &self.index {
            out.extend_from_slice(&offset.to_be_bytes());
            out.extend_from_slice(&len.to_be_bytes());
            out.extend_from_slice(&event.to_be_bytes());
            out.extend_from_slice(&ts.to_be_bytes());
        }
        out
    }
}

/// Read `N` big-endian bytes starting at `off`, failing gracefully on
/// truncated input instead of panicking.
fn be_bytes<const N: usize>(b: &[u8], off: usize) -> Result<[u8; N], StorageError> {
    off.checked_add(N)
        .and_then(|end| b.get(off..end))
        .and_then(|s| s.try_into().ok())
        .ok_or(StorageError::Corrupt("truncated field"))
}

/// Random-access reader over a serialized container.
#[derive(Debug)]
pub struct ContainerReader<'a> {
    bytes: &'a [u8],
    count: usize,
    index_offset: usize,
}

impl<'a> ContainerReader<'a> {
    /// Open a container, validating structure.
    pub fn open(bytes: &'a [u8]) -> Result<ContainerReader<'a>, StorageError> {
        if bytes.len() < HEADER_LEN || &bytes[..8] != MAGIC || bytes[8] != 1 {
            return Err(StorageError::NotAContainer);
        }
        let count = u32::from_be_bytes(be_bytes(bytes, 12)?) as usize;
        let index_offset = u64::from_be_bytes(be_bytes(bytes, 16)?) as usize;
        let expected_len = index_offset + count * INDEX_ENTRY_LEN;
        if index_offset < HEADER_LEN || bytes.len() != expected_len {
            return Err(StorageError::Corrupt("length/index mismatch"));
        }
        Ok(ContainerReader {
            bytes,
            count,
            index_offset,
        })
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    fn entry(&self, i: usize) -> Result<(usize, usize, u64, u64), StorageError> {
        if i >= self.count {
            return Err(StorageError::Corrupt("index out of range"));
        }
        let off = self.index_offset + i * INDEX_ENTRY_LEN;
        let b = &self.bytes[off..off + INDEX_ENTRY_LEN];
        let rec_off = u64::from_be_bytes(be_bytes(b, 0)?) as usize;
        let rec_len = u32::from_be_bytes(be_bytes(b, 8)?) as usize;
        let event = u64::from_be_bytes(be_bytes(b, 12)?);
        let ts = u64::from_be_bytes(be_bytes(b, 20)?);
        if rec_off + rec_len > self.index_offset {
            return Err(StorageError::Corrupt("record overlaps index"));
        }
        Ok((rec_off, rec_len, event, ts))
    }

    /// The `(event number, timestamp)` of record `i` — index-only access,
    /// no record decode (what analysis-time seeks use).
    pub fn metadata(&self, i: usize) -> Result<(u64, u64), StorageError> {
        let (_, _, event, ts) = self.entry(i)?;
        Ok((event, ts))
    }

    /// Decode record `i`.
    pub fn record(&self, i: usize) -> Result<TriggerRecord, StorageError> {
        let (off, len, _, _) = self.entry(i)?;
        TriggerRecord::decode(&self.bytes[off..off + len]).map_err(|_| StorageError::BadRecord)
    }

    /// Iterate all records.
    pub fn records(&self) -> impl Iterator<Item = Result<TriggerRecord, StorageError>> + '_ {
        (0..self.count).map(|i| self.record(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_wire::daq::{DuneSubHeader, SubHeader};

    fn record(event: u64) -> TriggerRecord {
        TriggerRecord {
            run: 9,
            event,
            timestamp_ns: event * 1_000,
            sub: SubHeader::Dune(DuneSubHeader {
                crate_no: 1,
                slot: 2,
                link: 3,
                first_channel: 0,
                last_channel: 63,
            }),
            payload: vec![event as u8; 100 + (event as usize % 50)],
        }
    }

    #[test]
    fn roundtrip_many_records() {
        let mut w = ContainerWriter::new();
        assert!(w.is_empty());
        for e in 0..20 {
            w.push(&record(e)).unwrap();
        }
        assert_eq!(w.len(), 20);
        let bytes = w.finish();
        let r = ContainerReader::open(&bytes).unwrap();
        assert_eq!(r.len(), 20);
        assert!(!r.is_empty());
        for e in 0..20u64 {
            assert_eq!(r.record(e as usize).unwrap(), record(e));
            assert_eq!(r.metadata(e as usize).unwrap(), (e, e * 1_000));
        }
        assert_eq!(r.records().filter_map(Result::ok).count(), 20);
    }

    #[test]
    fn empty_container() {
        let bytes = ContainerWriter::new().finish();
        let r = ContainerReader::open(&bytes).unwrap();
        assert!(r.is_empty());
        assert!(r.record(0).is_err());
    }

    #[test]
    fn bad_magic_and_truncation_rejected() {
        let mut w = ContainerWriter::new();
        w.push(&record(1)).unwrap();
        let bytes = w.finish();
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            ContainerReader::open(&bad),
            Err(StorageError::NotAContainer)
        ));
        assert!(ContainerReader::open(&bytes[..bytes.len() - 1]).is_err());
        assert!(ContainerReader::open(&bytes[..10]).is_err());
        // Version bump rejected.
        let mut v2 = bytes.clone();
        v2[8] = 2;
        assert!(matches!(
            ContainerReader::open(&v2),
            Err(StorageError::NotAContainer)
        ));
    }

    #[test]
    fn corrupt_index_detected() {
        let mut w = ContainerWriter::new();
        w.push(&record(1)).unwrap();
        let mut bytes = w.finish();
        // Point the first index entry's offset past the index start.
        let idx = u64::from_be_bytes(bytes[16..24].try_into().unwrap()) as usize;
        bytes[idx..idx + 8].copy_from_slice(&(u64::MAX / 2).to_be_bytes());
        let r = ContainerReader::open(&bytes).unwrap();
        assert!(matches!(r.record(0), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn error_display() {
        assert!(StorageError::NotAContainer.to_string().contains("MMTSTOR1"));
        assert!(StorageError::Corrupt("x").to_string().contains('x'));
        assert!(StorageError::BadRecord.to_string().contains("record"));
    }
}
