//! Physics event generation: what makes the detector light up.
//!
//! The pilot's synthetic source "simulates the neutrino generation by
//! different physical events" \[69\]. We model four populations with very
//! different signatures — the mix determines the DAQ traffic shape:
//!
//! * **Beam** events: accelerator spills at a fixed cadence, large
//!   multi-channel energy deposits.
//! * **Cosmic** rays: Poisson arrivals, long straight tracks across many
//!   channels.
//! * **Radiological** background: constant low-amplitude singles (Ar-39
//!   decays), the reason DAQ rates are dominated by noise suppression.
//! * **Supernova** neutrinos: a burst of low-energy events whose *rate*
//!   spikes for ~10 s — the trigger for the multi-domain alert (§3).

use mmt_netsim::{SimRng, Time};

/// One localized energy deposit on a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hit {
    /// Channel the charge arrives on.
    pub channel: u16,
    /// Arrival time, in ADC samples from the window start.
    pub time_sample: u32,
    /// Pulse peak amplitude, ADC counts above pedestal.
    pub amplitude: u16,
    /// Pulse width in samples.
    pub duration_samples: u32,
}

/// The population an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Accelerator beam spill.
    Beam,
    /// Cosmic-ray track.
    Cosmic,
    /// Radiological background single.
    Radiological,
    /// Supernova-burst neutrino interaction.
    Supernova,
}

/// A generated physics event: its kind, time, and hits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Population.
    pub kind: EventKind,
    /// Event time (experiment time).
    pub at: Time,
    /// Energy deposits.
    pub hits: Vec<Hit>,
}

/// Rates for each population, in events per second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventRates {
    /// Beam spill rate (Hz). Fermilab beam: ~0.8 Hz spill cadence.
    pub beam_hz: f64,
    /// Cosmic-ray rate (Hz).
    pub cosmic_hz: f64,
    /// Radiological singles rate (Hz).
    pub radiological_hz: f64,
    /// Supernova-neutrino interaction rate during a burst (Hz); zero
    /// outside bursts.
    pub supernova_hz: f64,
}

impl EventRates {
    /// A quiet detector: background only.
    pub fn background() -> EventRates {
        EventRates {
            beam_hz: 0.0,
            cosmic_hz: 10.0,
            radiological_hz: 100.0,
            supernova_hz: 0.0,
        }
    }

    /// Beam running: spills plus background.
    pub fn beam_running() -> EventRates {
        EventRates {
            beam_hz: 0.8,
            ..EventRates::background()
        }
    }

    /// During a supernova burst: background plus a large neutrino rate
    /// (a 10 kpc core collapse yields thousands of interactions in ~10 s).
    pub fn supernova_burst() -> EventRates {
        EventRates {
            supernova_hz: 300.0,
            ..EventRates::background()
        }
    }

    fn total(&self) -> f64 {
        self.beam_hz + self.cosmic_hz + self.radiological_hz + self.supernova_hz
    }
}

/// A Poisson event generator over a channel range.
#[derive(Debug, Clone)]
pub struct EventGenerator {
    rates: EventRates,
    channels: u16,
    rng: SimRng,
    now: Time,
}

impl EventGenerator {
    /// Create a generator for a detector with `channels` channels.
    pub fn new(rates: EventRates, channels: u16, seed: u64) -> EventGenerator {
        assert!(channels > 0, "detector needs channels");
        assert!(rates.total() > 0.0, "at least one population must fire");
        EventGenerator {
            rates,
            channels,
            rng: SimRng::new(seed),
            now: Time::ZERO,
        }
    }

    /// Change the rate mix (e.g. when a burst starts/ends).
    pub fn set_rates(&mut self, rates: EventRates) {
        assert!(rates.total() > 0.0, "at least one population must fire");
        self.rates = rates;
    }

    /// Generate the next event (advances internal time).
    pub fn next_event(&mut self) -> Event {
        let total = self.rates.total();
        let gap = self.rng.exponential(1.0 / total);
        self.now += Time::from_secs_f64(gap);
        // Pick the population proportionally to its rate.
        let pick = self.rng.next_f64() * total;
        let kind = if pick < self.rates.beam_hz {
            EventKind::Beam
        } else if pick < self.rates.beam_hz + self.rates.cosmic_hz {
            EventKind::Cosmic
        } else if pick < self.rates.beam_hz + self.rates.cosmic_hz + self.rates.radiological_hz {
            EventKind::Radiological
        } else {
            EventKind::Supernova
        };
        let hits = self.hits_for(kind);
        Event {
            kind,
            at: self.now,
            hits,
        }
    }

    /// Generate all events up to `until` (experiment time).
    pub fn events_until(&mut self, until: Time) -> Vec<Event> {
        let mut out = Vec::new();
        loop {
            let ev = self.next_event();
            if ev.at > until {
                break;
            }
            out.push(ev);
        }
        out
    }

    fn hits_for(&mut self, kind: EventKind) -> Vec<Hit> {
        match kind {
            EventKind::Beam => {
                // Large deposit: a shower across a contiguous channel block.
                let n = 40 + self.rng.next_bounded(40) as usize;
                let start_ch = self.rng.next_bounded(u64::from(self.channels)) as u16;
                (0..n)
                    .map(|i| Hit {
                        channel: (start_ch + i as u16) % self.channels,
                        time_sample: 100 + self.rng.next_bounded(50) as u32,
                        amplitude: 400 + self.rng.next_bounded(600) as u16,
                        duration_samples: 12 + self.rng.next_bounded(12) as u32,
                    })
                    .collect()
            }
            EventKind::Cosmic => {
                // Straight track: one hit per channel over a span, linearly
                // advancing arrival time (the drift-time image of a track).
                let span = 20 + self.rng.next_bounded(60) as usize;
                let start_ch = self.rng.next_bounded(u64::from(self.channels)) as u16;
                let t0 = self.rng.next_bounded(500) as u32;
                (0..span)
                    .map(|i| Hit {
                        channel: (start_ch + i as u16) % self.channels,
                        time_sample: t0 + (i as u32) * 2,
                        amplitude: 150 + self.rng.next_bounded(150) as u16,
                        duration_samples: 8,
                    })
                    .collect()
            }
            EventKind::Radiological => {
                // A single low-amplitude blip.
                vec![Hit {
                    channel: self.rng.next_bounded(u64::from(self.channels)) as u16,
                    time_sample: self.rng.next_bounded(1000) as u32,
                    amplitude: 60 + self.rng.next_bounded(60) as u16,
                    duration_samples: 4,
                }]
            }
            EventKind::Supernova => {
                // Low-energy neutrino: a compact cluster of a few hits.
                let n = 3 + self.rng.next_bounded(5) as usize;
                let ch = self.rng.next_bounded(u64::from(self.channels)) as u16;
                let t0 = self.rng.next_bounded(800) as u32;
                (0..n)
                    .map(|i| Hit {
                        channel: (ch + i as u16) % self.channels,
                        time_sample: t0 + self.rng.next_bounded(10) as u32,
                        amplitude: 100 + self.rng.next_bounded(120) as u16,
                        duration_samples: 6,
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_times_increase_monotonically() {
        let mut generator = EventGenerator::new(EventRates::background(), 1280, 1);
        let mut last = Time::ZERO;
        for _ in 0..100 {
            let ev = generator.next_event();
            assert!(ev.at > last);
            last = ev.at;
            assert!(!ev.hits.is_empty());
            assert!(ev.hits.iter().all(|h| h.channel < 1280));
        }
    }

    #[test]
    fn rate_mix_respected() {
        let mut generator = EventGenerator::new(EventRates::background(), 1280, 2);
        let events = generator.events_until(Time::from_secs(20));
        let radiological = events
            .iter()
            .filter(|e| e.kind == EventKind::Radiological)
            .count();
        let cosmic = events
            .iter()
            .filter(|e| e.kind == EventKind::Cosmic)
            .count();
        // 100 Hz vs 10 Hz over 20 s: ~2000 vs ~200.
        assert!((1700..2300).contains(&radiological), "{radiological}");
        assert!((120..280).contains(&cosmic), "{cosmic}");
        assert_eq!(
            events.iter().filter(|e| e.kind == EventKind::Beam).count(),
            0
        );
        assert_eq!(
            events
                .iter()
                .filter(|e| e.kind == EventKind::Supernova)
                .count(),
            0
        );
    }

    #[test]
    fn total_rate_close_to_nominal() {
        let mut generator = EventGenerator::new(EventRates::background(), 128, 3);
        let events = generator.events_until(Time::from_secs(30));
        // 110 Hz nominal.
        let rate = events.len() as f64 / 30.0;
        assert!((95.0..125.0).contains(&rate), "{rate}");
    }

    #[test]
    fn supernova_burst_floods_the_detector() {
        let mut quiet = EventGenerator::new(EventRates::background(), 1280, 4);
        let mut burst = EventGenerator::new(EventRates::supernova_burst(), 1280, 4);
        let q = quiet.events_until(Time::from_secs(5)).len();
        let b = burst.events_until(Time::from_secs(5)).len();
        assert!(b > q * 3, "burst {b} vs quiet {q}");
    }

    #[test]
    fn switching_rates_midstream() {
        let mut generator = EventGenerator::new(EventRates::background(), 64, 5);
        let _ = generator.events_until(Time::from_secs(1));
        generator.set_rates(EventRates::supernova_burst());
        let events = generator.events_until(Time::from_secs(3));
        assert!(events.iter().any(|e| e.kind == EventKind::Supernova));
    }

    #[test]
    fn population_signatures_differ() {
        let mut generator = EventGenerator::new(
            EventRates {
                beam_hz: 1.0,
                cosmic_hz: 1.0,
                radiological_hz: 1.0,
                supernova_hz: 1.0,
            },
            1280,
            6,
        );
        let events = generator.events_until(Time::from_secs(60));
        let mean_hits = |kind: EventKind| {
            let selected: Vec<_> = events.iter().filter(|e| e.kind == kind).collect();
            assert!(!selected.is_empty(), "{kind:?} missing");
            selected.iter().map(|e| e.hits.len()).sum::<usize>() as f64 / selected.len() as f64
        };
        assert_eq!(mean_hits(EventKind::Radiological), 1.0);
        assert!(mean_hits(EventKind::Beam) > mean_hits(EventKind::Supernova));
        assert!(mean_hits(EventKind::Cosmic) > mean_hits(EventKind::Radiological));
    }

    #[test]
    #[should_panic(expected = "at least one population")]
    fn zero_rates_rejected() {
        let _ = EventGenerator::new(
            EventRates {
                beam_hz: 0.0,
                cosmic_hz: 0.0,
                radiological_hz: 0.0,
                supernova_hz: 0.0,
            },
            8,
            0,
        );
    }
}
