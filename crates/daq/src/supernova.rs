//! The supernova multi-domain alert scenario (§3, Req 10).
//!
//! "A supernova burst detected in DUNE would alert Vera Rubin on where to
//! expect photons to arrive from — since neutrinos escape the collapsing
//! star before photons are emitted. Depending on the type of star, the
//! time interval between emission of neutrinos and photons could range
//! from around a minute to several days."
//!
//! This module provides (a) the burst *detector*: a sliding-window counter
//! over supernova-candidate trigger primitives that fires when the rate is
//! inconsistent with background, and (b) the photon-lag model that
//! determines how much time the alert has to cross the network — i.e. the
//! MMT timeliness budget for the alert stream.

use mmt_netsim::{SimRng, Time};

/// Progenitor classes with different neutrino→photon lags (shock breakout
/// times; Kistler et al. \[36\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Progenitor {
    /// Compact stripped-envelope star: breakout in ~minutes.
    CompactBlueSupergiant,
    /// Red supergiant: breakout in ~hours.
    RedSupergiant,
    /// Extended/dusty progenitor: up to days.
    ExtendedEnvelope,
}

impl Progenitor {
    /// The neutrino-to-photon arrival lag for this progenitor class.
    pub fn photon_lag(&self) -> Time {
        match self {
            Progenitor::CompactBlueSupergiant => Time::from_secs(60),
            Progenitor::RedSupergiant => Time::from_secs(6 * 3600),
            Progenitor::ExtendedEnvelope => Time::from_secs(3 * 24 * 3600),
        }
    }
}

/// Sliding-window supernova burst detector.
///
/// Counts supernova-candidate events in a window; a burst is declared when
/// the count exceeds `threshold` (chosen so background virtually never
/// fires: DUNE's real trigger demands a large multiplicity within ~10 s).
#[derive(Debug, Clone)]
pub struct BurstDetector {
    window: Time,
    threshold: usize,
    /// Recent candidate timestamps (sorted, pruned to the window).
    recent: Vec<Time>,
    /// Time the burst condition first fired, if any.
    fired_at: Option<Time>,
}

impl BurstDetector {
    /// DUNE-like defaults: ≥60 candidates within 10 s.
    pub fn dune_like() -> BurstDetector {
        BurstDetector::new(Time::from_secs(10), 60)
    }

    /// Create a detector with a window and count threshold.
    pub fn new(window: Time, threshold: usize) -> BurstDetector {
        assert!(threshold > 0);
        BurstDetector {
            window,
            threshold,
            recent: Vec::new(),
            fired_at: None,
        }
    }

    /// Record a supernova-candidate event; returns `Some(t)` the first
    /// time the burst condition is met.
    pub fn observe(&mut self, at: Time) -> Option<Time> {
        self.recent.push(at);
        let cutoff = at.saturating_sub(self.window);
        self.recent.retain(|&t| t >= cutoff);
        if self.fired_at.is_none() && self.recent.len() >= self.threshold {
            self.fired_at = Some(at);
            return Some(at);
        }
        None
    }

    /// When the detector fired, if it has.
    pub fn fired_at(&self) -> Option<Time> {
        self.fired_at
    }

    /// Current in-window candidate count.
    pub fn current_count(&self) -> usize {
        self.recent.len()
    }
}

/// The alert payload DUNE would push to Vera Rubin: a pointing and a
/// validity window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupernovaAlert {
    /// When the burst was detected (experiment time).
    pub detected_at: Time,
    /// Right ascension of the reconstructed arrival direction, degrees.
    pub ra_deg: f64,
    /// Declination, degrees.
    pub dec_deg: f64,
    /// Angular uncertainty, degrees.
    pub sigma_deg: f64,
    /// Earliest expected photon arrival (detected_at + minimum lag).
    pub photons_earliest: Time,
}

impl SupernovaAlert {
    /// Build an alert from a detection, drawing a pointing with the given
    /// reconstruction uncertainty.
    pub fn from_detection(detected_at: Time, rng: &mut SimRng) -> SupernovaAlert {
        SupernovaAlert {
            detected_at,
            ra_deg: rng.next_f64() * 360.0,
            dec_deg: rng.next_f64() * 180.0 - 90.0,
            sigma_deg: 5.0,
            photons_earliest: detected_at + Progenitor::CompactBlueSupergiant.photon_lag(),
        }
    }

    /// The time budget for delivering this alert: it must reach the
    /// telescope comfortably before the earliest photons. We budget 1% of
    /// the minimum lag — 600 ms for a compact progenitor — which is the
    /// millisecond-scale timeliness requirement of §4.1.
    pub fn delivery_budget(&self) -> Time {
        (self.photons_earliest - self.detected_at) / 100
    }

    /// Serialize to a compact wire payload (fits one MMT datagram).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40);
        out.extend_from_slice(&self.detected_at.as_nanos().to_be_bytes());
        out.extend_from_slice(&self.ra_deg.to_be_bytes());
        out.extend_from_slice(&self.dec_deg.to_be_bytes());
        out.extend_from_slice(&self.sigma_deg.to_be_bytes());
        out.extend_from_slice(&self.photons_earliest.as_nanos().to_be_bytes());
        out
    }

    /// Decode a payload produced by [`SupernovaAlert::encode`].
    pub fn decode(buf: &[u8]) -> Option<SupernovaAlert> {
        if buf.len() < 40 {
            return None;
        }
        let u64at = |o: usize| u64::from_be_bytes(buf[o..o + 8].try_into().unwrap()); // mmt-lint: allow(P1, "fixed offsets 0..40; length checked above")
        let f64at = |o: usize| f64::from_be_bytes(buf[o..o + 8].try_into().unwrap()); // mmt-lint: allow(P1, "fixed offsets 0..40; length checked above")
        Some(SupernovaAlert {
            detected_at: Time::from_nanos(u64at(0)),
            ra_deg: f64at(8),
            dec_deg: f64at(16),
            sigma_deg: f64at(24),
            photons_earliest: Time::from_nanos(u64at(32)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EventGenerator, EventKind, EventRates};

    #[test]
    fn photon_lags_span_minutes_to_days() {
        assert_eq!(
            Progenitor::CompactBlueSupergiant.photon_lag(),
            Time::from_secs(60)
        );
        assert!(Progenitor::RedSupergiant.photon_lag() > Time::from_secs(3600));
        assert!(Progenitor::ExtendedEnvelope.photon_lag() >= Time::from_secs(86400));
    }

    #[test]
    fn detector_fires_on_burst_not_background() {
        // Background: supernova candidates are absent, so feed only the
        // occasional misidentified cosmic (say 0.5 Hz of fakes).
        let mut det = BurstDetector::dune_like();
        for i in 0..600 {
            // one fake every 2 s for 20 min
            assert!(det.observe(Time::from_millis(i * 2_000)).is_none());
        }
        assert!(det.fired_at().is_none());
        assert!(det.current_count() < 60);

        // A real burst: 300 Hz of candidates.
        let mut det = BurstDetector::dune_like();
        let mut generator = EventGenerator::new(EventRates::supernova_burst(), 1280, 11);
        let events = generator.events_until(Time::from_secs(5));
        let mut fired = None;
        for ev in events.iter().filter(|e| e.kind == EventKind::Supernova) {
            if let Some(t) = det.observe(ev.at) {
                fired = Some(t);
                break;
            }
        }
        let fired = fired.expect("burst must fire the detector");
        // 60 candidates at ~300 Hz arrive in ≈0.2 s.
        assert!(fired < Time::from_secs(1), "{fired}");
    }

    #[test]
    fn detector_fires_once() {
        let mut det = BurstDetector::new(Time::from_secs(1), 2);
        assert!(det.observe(Time::from_millis(1)).is_none());
        assert!(det.observe(Time::from_millis(2)).is_some());
        assert!(det.observe(Time::from_millis(3)).is_none(), "latched");
        assert_eq!(det.fired_at(), Some(Time::from_millis(2)));
    }

    #[test]
    fn window_prunes_old_candidates() {
        let mut det = BurstDetector::new(Time::from_secs(1), 3);
        det.observe(Time::from_millis(0));
        det.observe(Time::from_millis(100));
        assert_eq!(det.current_count(), 2);
        // 5 s later both are gone.
        det.observe(Time::from_secs(5));
        assert_eq!(det.current_count(), 1);
    }

    #[test]
    fn alert_roundtrip_and_budget() {
        let mut rng = SimRng::new(3);
        let alert = SupernovaAlert::from_detection(Time::from_secs(100), &mut rng);
        assert!((0.0..360.0).contains(&alert.ra_deg));
        assert!((-90.0..=90.0).contains(&alert.dec_deg));
        // Budget: 1% of the 60 s minimum lag = 600 ms.
        assert_eq!(alert.delivery_budget(), Time::from_millis(600));
        let decoded = SupernovaAlert::decode(&alert.encode()).unwrap();
        assert_eq!(decoded, alert);
        assert!(SupernovaAlert::decode(&[0u8; 10]).is_none());
    }
}
