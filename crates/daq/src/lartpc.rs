//! A liquid-argon time-projection chamber (LArTPC) model.
//!
//! ICEBERG — the pilot's hardware data source — is a small LArTPC: charged
//! particles ionize argon, the freed electrons drift to anode wires, and
//! each wire's induced current is digitized (~2 MHz, 12-bit ADC). The
//! model below synthesizes exactly that signal chain: per-channel pedestal
//! and Gaussian noise, plus triangular unipolar pulses where particle
//! "hits" deposit charge, then a threshold-based trigger-primitive finder
//! of the kind DUNE runs in its readout firmware.

use crate::events::Hit;
use mmt_netsim::SimRng;

/// Static configuration of a LArTPC readout plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LArTpcConfig {
    /// Number of readout channels (wires).
    pub channels: u16,
    /// ADC sampling period in nanoseconds (DUNE: 500 ns ⇒ 2 MHz).
    pub sample_period_ns: u64,
    /// ADC resolution in bits (DUNE: 12).
    pub adc_bits: u8,
    /// Pedestal (baseline) in ADC counts.
    pub pedestal: u16,
    /// RMS of the Gaussian electronics noise, in ADC counts.
    pub noise_rms: f64,
}

impl LArTpcConfig {
    /// ICEBERG-like defaults: 1280 channels, 2 MHz, 12-bit, quiet
    /// electronics.
    pub fn iceberg() -> LArTpcConfig {
        LArTpcConfig {
            channels: 1280,
            sample_period_ns: 500,
            adc_bits: 12,
            pedestal: 900,
            noise_rms: 4.5,
        }
    }

    /// Maximum ADC count.
    pub fn adc_max(&self) -> u16 {
        ((1u32 << self.adc_bits) - 1) as u16
    }
}

/// A trigger primitive: one channel's above-threshold activity summary —
/// the unit DUNE's readout firmware emits upstream of the event builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriggerPrimitive {
    /// Channel that fired.
    pub channel: u16,
    /// Index of the first above-threshold sample.
    pub start_sample: u32,
    /// Number of consecutive above-threshold samples.
    pub samples_over: u32,
    /// Sum of (ADC − pedestal) over the window (collected charge proxy).
    pub charge: u32,
    /// Peak ADC value.
    pub peak: u16,
}

/// The detector model.
#[derive(Debug, Clone)]
pub struct LArTpc {
    /// Configuration.
    pub config: LArTpcConfig,
    rng: SimRng,
}

impl LArTpc {
    /// Create a detector with a deterministic noise seed.
    pub fn new(config: LArTpcConfig, seed: u64) -> LArTpc {
        LArTpc {
            config,
            rng: SimRng::new(seed),
        }
    }

    /// Synthesize one channel's waveform over `n_samples`, injecting the
    /// given hits (only those on this channel contribute).
    ///
    /// Hit times are in samples relative to the window start; each hit
    /// produces a triangular pulse of `duration_samples` width peaking at
    /// `amplitude` ADC counts above pedestal.
    pub fn waveform(&mut self, channel: u16, n_samples: usize, hits: &[Hit]) -> Vec<u16> {
        let cfg = self.config;
        let max = cfg.adc_max();
        let mut wf = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            let noisy = cfg.pedestal as f64 + self.rng.normal(0.0, cfg.noise_rms);
            wf.push(noisy.round().clamp(0.0, max as f64) as u16);
        }
        for hit in hits.iter().filter(|h| h.channel == channel) {
            let start = hit.time_sample as usize;
            let dur = hit.duration_samples.max(2) as usize;
            let half = dur / 2;
            for i in 0..dur {
                let Some(slot) = wf.get_mut(start + i) else {
                    break;
                };
                // Triangular pulse: rise to peak at `half`, fall after.
                let frac = if i <= half {
                    i as f64 / half.max(1) as f64
                } else {
                    (dur - i) as f64 / (dur - half).max(1) as f64
                };
                let add = (hit.amplitude as f64 * frac).round() as u16;
                *slot = (*slot + add).min(max);
            }
        }
        wf
    }

    /// Run the trigger-primitive finder: contiguous runs of samples at
    /// least `threshold` counts above pedestal become primitives.
    pub fn find_primitives(
        &self,
        channel: u16,
        waveform: &[u16],
        threshold: u16,
    ) -> Vec<TriggerPrimitive> {
        let pedestal = self.config.pedestal;
        let cut = pedestal.saturating_add(threshold);
        let mut out = Vec::new();
        let mut run_start: Option<usize> = None;
        let mut charge = 0u32;
        let mut peak = 0u16;
        for (i, &s) in waveform.iter().enumerate() {
            if s >= cut {
                if run_start.is_none() {
                    run_start = Some(i);
                    charge = 0;
                    peak = 0;
                }
                charge += u32::from(s.saturating_sub(pedestal));
                peak = peak.max(s);
            } else if let Some(start) = run_start.take() {
                out.push(TriggerPrimitive {
                    channel,
                    start_sample: start as u32,
                    samples_over: (i - start) as u32,
                    charge,
                    peak,
                });
            }
        }
        if let Some(start) = run_start {
            out.push(TriggerPrimitive {
                channel,
                start_sample: start as u32,
                samples_over: (waveform.len() - start) as u32,
                charge,
                peak,
            });
        }
        out
    }
}

/// Pack 12-bit ADC samples two-per-three-bytes (the dense encoding DAQ
/// firmware uses to fill jumbo frames efficiently).
pub fn pack_samples(samples: &[u16]) -> Vec<u8> {
    let mut out = Vec::with_capacity(samples.len() * 3 / 2 + 2);
    let mut iter = samples.chunks_exact(2);
    for pair in &mut iter {
        let a = pair[0] & 0x0fff;
        let b = pair[1] & 0x0fff;
        out.push((a >> 4) as u8);
        out.push((((a & 0x0f) as u8) << 4) | ((b >> 8) as u8));
        out.push(b as u8);
    }
    if let [last] = iter.remainder() {
        let a = last & 0x0fff;
        out.push((a >> 4) as u8);
        out.push(((a & 0x0f) as u8) << 4);
    }
    out
}

/// Unpack samples produced by [`pack_samples`]. `count` is the original
/// sample count (needed to distinguish a trailing half-word from padding).
pub fn unpack_samples(packed: &[u8], count: usize) -> Vec<u16> {
    let mut out = Vec::with_capacity(count);
    let mut i = 0;
    while out.len() + 2 <= count && i + 3 <= packed.len() {
        let a = (u16::from(packed[i]) << 4) | (u16::from(packed[i + 1]) >> 4);
        let b = ((u16::from(packed[i + 1]) & 0x0f) << 8) | u16::from(packed[i + 2]);
        out.push(a);
        out.push(b);
        i += 3;
    }
    if out.len() < count && i + 2 <= packed.len() {
        let a = (u16::from(packed[i]) << 4) | (u16::from(packed[i + 1]) >> 4);
        out.push(a);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(channel: u16, time: u32, amplitude: u16) -> Hit {
        Hit {
            channel,
            time_sample: time,
            amplitude,
            duration_samples: 10,
        }
    }

    #[test]
    fn quiet_channel_stays_near_pedestal() {
        let mut det = LArTpc::new(LArTpcConfig::iceberg(), 1);
        let wf = det.waveform(0, 2000, &[]);
        assert_eq!(wf.len(), 2000);
        let mean: f64 = wf.iter().map(|&s| f64::from(s)).sum::<f64>() / 2000.0;
        assert!((mean - 900.0).abs() < 1.0, "{mean}");
        // Noise never strays absurdly far (±10σ).
        assert!(wf.iter().all(|&s| (855..=945).contains(&s)));
    }

    #[test]
    fn hit_produces_pulse_on_its_channel_only() {
        let mut det = LArTpc::new(LArTpcConfig::iceberg(), 2);
        let hits = [hit(5, 100, 300)];
        let wf5 = det.waveform(5, 300, &hits);
        let wf6 = det.waveform(6, 300, &hits);
        let peak5 = *wf5.iter().max().unwrap();
        let peak6 = *wf6.iter().max().unwrap();
        assert!(peak5 > 1100, "{peak5}");
        assert!(peak6 < 950, "{peak6}");
    }

    #[test]
    fn primitives_found_for_real_pulses_not_noise() {
        let cfg = LArTpcConfig::iceberg();
        let mut det = LArTpc::new(cfg, 3);
        let hits = [hit(0, 50, 200), hit(0, 400, 200)];
        let wf = det.waveform(0, 600, &hits);
        let prims = det.find_primitives(0, &wf, 60);
        assert_eq!(prims.len(), 2, "{prims:?}");
        assert!(prims[0].start_sample >= 50 && prims[0].start_sample < 60);
        assert!(prims[1].start_sample >= 400 && prims[1].start_sample < 410);
        assert!(prims.iter().all(|p| p.charge > 0 && p.peak > cfg.pedestal));
        // Pure noise yields nothing at a 60-count (≈13σ) threshold.
        let quiet = det.waveform(1, 5000, &[]);
        assert!(det.find_primitives(1, &quiet, 60).is_empty());
    }

    #[test]
    fn primitive_at_window_end_is_closed() {
        let det = LArTpc::new(LArTpcConfig::iceberg(), 4);
        // Hand-built waveform ending above threshold.
        let mut wf = vec![900u16; 10];
        wf.extend_from_slice(&[1000, 1000, 1000]);
        let prims = det.find_primitives(2, &wf, 50);
        assert_eq!(prims.len(), 1);
        assert_eq!(prims[0].start_sample, 10);
        assert_eq!(prims[0].samples_over, 3);
        assert_eq!(prims[0].charge, 300);
    }

    #[test]
    fn pulse_clamps_at_adc_max() {
        let cfg = LArTpcConfig::iceberg();
        let mut det = LArTpc::new(cfg, 5);
        let hits = [hit(0, 10, 4000)]; // would exceed 4095
        let wf = det.waveform(0, 40, &hits);
        assert_eq!(*wf.iter().max().unwrap(), cfg.adc_max());
    }

    #[test]
    fn pack_unpack_roundtrip_even_and_odd() {
        for n in [0usize, 1, 2, 7, 100, 101] {
            let samples: Vec<u16> = (0..n as u16).map(|i| (i * 37) & 0x0fff).collect();
            let packed = pack_samples(&samples);
            assert_eq!(unpack_samples(&packed, n), samples, "n={n}");
            // Density: 1.5 bytes per sample (rounded up to whole bytes).
            assert!(packed.len() <= n * 3 / 2 + 2);
        }
    }

    #[test]
    fn packing_masks_to_12_bits() {
        let samples = vec![0xffff, 0xffff];
        let packed = pack_samples(&samples);
        assert_eq!(unpack_samples(&packed, 2), vec![0x0fff, 0x0fff]);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = LArTpc::new(LArTpcConfig::iceberg(), 7);
        let mut b = LArTpc::new(LArTpcConfig::iceberg(), 7);
        assert_eq!(a.waveform(0, 100, &[]), b.waveform(0, 100, &[]));
    }
}
