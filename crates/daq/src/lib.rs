//! # `mmt-daq` — the instrument substrate: detectors, events, workloads
//!
//! The paper's pilot (§5.4) draws data from two sources: the ICEBERG DUNE
//! prototype (a liquid-argon time-projection chamber) and synthetic DUNE
//! DAQ data "that simulates the neutrino generation by different physical
//! events". Neither is available outside Fermilab, so this crate builds
//! the closest synthetic equivalent:
//!
//! * [`lartpc`] — a liquid-argon TPC model: per-channel ADC waveform
//!   synthesis (pedestal + Gaussian noise + signal pulses), a threshold
//!   trigger-primitive finder, and 12-bit sample packing. What the
//!   transport sees — timestamped, well-delimited, regularly sized
//!   messages (§2, §4.1) — is faithfully reproduced.
//! * [`events`] — physics event generators: beam spills, cosmic rays,
//!   radiological background, and supernova bursts (the elevated-rate
//!   window that drives the paper's DUNE→Vera Rubin integration story).
//! * [`builder`] — the event builder that turns hits into
//!   [`mmt_wire::daq::TriggerRecord`]s, including instrument *slices*
//!   (Req 8: partitioned detectors).
//! * [`catalog`] — the experiment catalog reproducing **Table 1** of the
//!   paper (CMS L1 63 Tbps, DUNE 120 Tbps, ECCE 100 Tbps, Mu2e 160 Gbps,
//!   Vera Rubin 400 Gbps) with per-experiment record sizes and rates.
//! * [`workload`] — wire-level traffic generators: regular elephant flows
//!   and the Vera Rubin alert-burst profile (5.4 Gbps bursts beside the
//!   nightly 30 TB bulk capture, §2.1).
//! * [`supernova`] — the multi-domain alert scenario: a DUNE supernova
//!   trigger and the neutrino→photon arrival-lag model that gives the
//!   alert its deadline (§3 Req 10).
//! * [`iceberg`] — deterministic "ICEBERG-like" sample readout standing in
//!   for the real ICEBERG traffic captures used in the pilot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod catalog;
pub mod events;
pub mod iceberg;
pub mod lartpc;
pub mod osmotic;
pub mod storage;
pub mod supernova;
pub mod workload;

pub use builder::{EventBuilder, SliceMap};
pub use catalog::{Experiment, EXPERIMENTS};
pub use events::{EventGenerator, EventKind, Hit};
pub use lartpc::{LArTpc, LArTpcConfig, TriggerPrimitive};
pub use osmotic::SensorField;
pub use storage::{ContainerReader, ContainerWriter, StorageError};
pub use workload::{BurstFlow, RegularFlow, WorkloadMessage};
