//! The event builder: hits → trigger records, with instrument slicing.
//!
//! DAQ readout is organized per *link* (a WIB fibre serving a block of
//! channels). The event builder groups an event's hits by link, optionally
//! synthesizes the affected channels' waveforms, and emits one
//! [`TriggerRecord`] per active link. Detectors "may be partitioned for
//! different simultaneous experiments by different researchers" (Req 8);
//! a [`SliceMap`] assigns channel ranges to slices, and the builder tags
//! each record with the slice that owns its channels.

use crate::events::Event;
use crate::lartpc::{pack_samples, LArTpc};
use mmt_netsim::Time;
use mmt_wire::daq::{DuneSubHeader, SubHeader, TriggerRecord};

/// Assignment of channel ranges to instrument slices (Req 8).
#[derive(Debug, Clone, Default)]
pub struct SliceMap {
    /// `(first_channel, last_channel, slice)` entries; first match wins.
    ranges: Vec<(u16, u16, u8)>,
}

impl SliceMap {
    /// The whole instrument as one slice (slice 0).
    pub fn single() -> SliceMap {
        SliceMap {
            ranges: vec![(0, u16::MAX, 0)],
        }
    }

    /// Split `channels` evenly into `n` slices (remainder to the last).
    pub fn even_split(channels: u16, n: u8) -> SliceMap {
        assert!(n > 0, "need at least one slice");
        let per = channels / u16::from(n);
        assert!(per > 0, "more slices than channels");
        let mut ranges = Vec::new();
        for s in 0..n {
            let first = u16::from(s) * per;
            let last = if s == n - 1 {
                channels - 1
            } else {
                first + per - 1
            };
            ranges.push((first, last, s));
        }
        SliceMap { ranges }
    }

    /// Add a range mapping.
    pub fn add(&mut self, first: u16, last: u16, slice: u8) {
        assert!(first <= last);
        self.ranges.push((first, last, slice));
    }

    /// The slice owning a channel (255 = unassigned).
    pub fn slice_of(&self, channel: u16) -> u8 {
        self.ranges
            .iter()
            .find(|&&(f, l, _)| channel >= f && channel <= l)
            .map(|&(_, _, s)| s)
            .unwrap_or(255)
    }
}

/// Event-builder configuration.
#[derive(Debug, Clone)]
pub struct BuilderConfig {
    /// Run number stamped on records.
    pub run: u32,
    /// Channels per readout link.
    pub channels_per_link: u16,
    /// Samples per channel in a record window.
    pub samples_per_channel: usize,
    /// Synthesize and pack real waveforms (true) or emit zero payloads of
    /// the correct size (false — orders of magnitude faster for transport
    /// experiments where payload content is irrelevant).
    pub synthesize_waveforms: bool,
}

impl BuilderConfig {
    /// ICEBERG-like defaults.
    pub fn iceberg() -> BuilderConfig {
        BuilderConfig {
            run: 1,
            channels_per_link: 64,
            samples_per_channel: 128,
            synthesize_waveforms: true,
        }
    }
}

/// The event builder.
#[derive(Debug)]
pub struct EventBuilder {
    config: BuilderConfig,
    slices: SliceMap,
    detector: LArTpc,
    next_event_no: u64,
}

impl EventBuilder {
    /// Create a builder over a detector model and slice map.
    pub fn new(config: BuilderConfig, slices: SliceMap, detector: LArTpc) -> EventBuilder {
        EventBuilder {
            config,
            slices,
            detector,
            next_event_no: 1,
        }
    }

    /// The slice map (for demux assertions in tests/experiments).
    pub fn slices(&self) -> &SliceMap {
        &self.slices
    }

    /// Payload bytes per record (fixed: links carry full channel blocks).
    pub fn record_payload_len(&self) -> usize {
        // 12-bit packing: 3 bytes per 2 samples.
        let samples = usize::from(self.config.channels_per_link) * self.config.samples_per_channel;
        samples * 3 / 2 + (samples % 2) * 2
    }

    /// Build the records for one event: one per readout link with hits,
    /// tagged `(record, slice)`.
    pub fn build(&mut self, event: &Event) -> Vec<(TriggerRecord, u8)> {
        let event_no = self.next_event_no;
        self.next_event_no += 1;
        let per_link = self.config.channels_per_link;
        // Group hit channels by link.
        let mut links: Vec<u16> = event.hits.iter().map(|h| h.channel / per_link).collect();
        links.sort_unstable();
        links.dedup();
        links
            .into_iter()
            .map(|link| {
                let first_channel = link * per_link;
                let last_channel = first_channel + per_link - 1;
                let payload = if self.config.synthesize_waveforms {
                    let mut packed = Vec::with_capacity(self.record_payload_len());
                    for ch in first_channel..=last_channel {
                        let wf = self.detector.waveform(
                            ch,
                            self.config.samples_per_channel,
                            &event.hits,
                        );
                        packed.extend_from_slice(&pack_samples(&wf));
                    }
                    packed
                } else {
                    vec![0u8; self.record_payload_len()]
                };
                let record = TriggerRecord {
                    run: self.config.run,
                    event: event_no,
                    timestamp_ns: event.at.as_nanos(),
                    sub: SubHeader::Dune(DuneSubHeader {
                        crate_no: (link / 10) as u8,
                        slot: (link % 10) as u8,
                        link: 0,
                        first_channel,
                        last_channel,
                    }),
                    payload,
                };
                (record, self.slices.slice_of(first_channel))
            })
            .collect()
    }

    /// Convenience: build all records for a batch of events, with their
    /// emission times.
    pub fn build_all(&mut self, events: &[Event]) -> Vec<(Time, TriggerRecord, u8)> {
        events
            .iter()
            .flat_map(|ev| {
                let at = ev.at;
                self.build(ev)
                    .into_iter()
                    .map(move |(rec, slice)| (at, rec, slice))
                    .collect::<Vec<_>>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EventGenerator, EventKind, EventRates, Hit};
    use crate::lartpc::LArTpcConfig;

    fn builder(synthesize: bool) -> EventBuilder {
        EventBuilder::new(
            BuilderConfig {
                synthesize_waveforms: synthesize,
                ..BuilderConfig::iceberg()
            },
            SliceMap::even_split(1280, 4),
            LArTpc::new(LArTpcConfig::iceberg(), 1),
        )
    }

    fn event(hits: Vec<Hit>) -> Event {
        Event {
            kind: EventKind::Cosmic,
            at: Time::from_millis(5),
            hits,
        }
    }

    #[test]
    fn slice_map_assignment() {
        let m = SliceMap::even_split(1280, 4);
        assert_eq!(m.slice_of(0), 0);
        assert_eq!(m.slice_of(319), 0);
        assert_eq!(m.slice_of(320), 1);
        assert_eq!(m.slice_of(1279), 3);
        let single = SliceMap::single();
        assert_eq!(single.slice_of(9999), 0);
        let mut custom = SliceMap::default();
        custom.add(100, 200, 7);
        assert_eq!(custom.slice_of(150), 7);
        assert_eq!(custom.slice_of(99), 255, "unassigned channels get 255");
    }

    #[test]
    fn one_record_per_active_link() {
        let mut b = builder(false);
        // Hits on channels 10 and 20 (link 0) and channel 130 (link 2).
        let ev = event(vec![
            Hit {
                channel: 10,
                time_sample: 5,
                amplitude: 100,
                duration_samples: 4,
            },
            Hit {
                channel: 20,
                time_sample: 9,
                amplitude: 100,
                duration_samples: 4,
            },
            Hit {
                channel: 130,
                time_sample: 5,
                amplitude: 100,
                duration_samples: 4,
            },
        ]);
        let records = b.build(&ev);
        assert_eq!(records.len(), 2);
        let subs: Vec<u16> = records
            .iter()
            .map(|(r, _)| match r.sub {
                SubHeader::Dune(d) => d.first_channel,
                _ => panic!("wrong sub-header"),
            })
            .collect();
        assert_eq!(subs, vec![0, 128]);
        // Both links are in slice 0 (channels < 320).
        assert!(records.iter().all(|&(_, s)| s == 0));
        // Timestamps carry the event time; event numbers are sequential.
        assert!(records.iter().all(|(r, _)| r.timestamp_ns == 5_000_000));
        assert!(records.iter().all(|(r, _)| r.event == 1));
        let ev2 = event(vec![Hit {
            channel: 400,
            time_sample: 0,
            amplitude: 50,
            duration_samples: 4,
        }]);
        let records2 = b.build(&ev2);
        assert_eq!(records2[0].0.event, 2);
        assert_eq!(records2[0].1, 1, "channel 400 lives in slice 1");
    }

    #[test]
    fn payload_size_is_fixed_and_predicted() {
        let mut b = builder(false);
        let ev = event(vec![Hit {
            channel: 3,
            time_sample: 0,
            amplitude: 80,
            duration_samples: 4,
        }]);
        let records = b.build(&ev);
        assert_eq!(records[0].0.payload.len(), b.record_payload_len());
        // 64 channels × 128 samples = 8192 samples → 12288 packed bytes.
        assert_eq!(b.record_payload_len(), 12_288);
    }

    #[test]
    fn synthesized_payload_contains_the_pulse() {
        let mut b = builder(true);
        let ev = event(vec![Hit {
            channel: 3,
            time_sample: 20,
            amplitude: 600,
            duration_samples: 10,
        }]);
        let records = b.build(&ev);
        let payload = &records[0].0.payload;
        assert_eq!(payload.len(), b.record_payload_len());
        // Unpack channel 3's block and find the pulse.
        let per_ch_bytes = 128 * 3 / 2;
        let ch3 = &payload[3 * per_ch_bytes..4 * per_ch_bytes];
        let samples = crate::lartpc::unpack_samples(ch3, 128);
        assert!(*samples.iter().max().unwrap() > 1200);
        // A quiet channel stays near pedestal.
        let ch10 = &payload[10 * per_ch_bytes..11 * per_ch_bytes];
        let quiet = crate::lartpc::unpack_samples(ch10, 128);
        assert!(*quiet.iter().max().unwrap() < 1000);
    }

    #[test]
    fn records_decode_with_wire_crate() {
        let mut b = builder(true);
        let ev = event(vec![Hit {
            channel: 0,
            time_sample: 5,
            amplitude: 90,
            duration_samples: 4,
        }]);
        let (record, _) = b.build(&ev).remove(0);
        let encoded = record.encode().unwrap();
        assert_eq!(TriggerRecord::decode(&encoded).unwrap(), record);
    }

    #[test]
    fn build_all_from_generator() {
        let mut generator = EventGenerator::new(EventRates::background(), 1280, 9);
        let events = generator.events_until(Time::from_millis(200));
        let mut b = builder(false);
        let out = b.build_all(&events);
        assert!(!out.is_empty());
        // Emission times are the event times, non-decreasing.
        let mut last = Time::ZERO;
        for (at, rec, slice) in &out {
            assert!(*at >= last);
            last = *at;
            assert!(rec.payload.len() == b.record_payload_len());
            assert!(*slice < 4);
        }
    }

    #[test]
    #[should_panic(expected = "more slices than channels")]
    fn oversliced_map_panics() {
        let _ = SliceMap::even_split(4, 8);
    }
}
