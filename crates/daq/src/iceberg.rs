//! "ICEBERG-like" sample readout.
//!
//! The pilot's first data source is traffic captured from the ICEBERG
//! DUNE prototype at Fermilab; those captures are not public. This module
//! generates a deterministic, fully reproducible stand-in: a short run of
//! the LArTPC model under a beam-plus-background event mix, delivered as
//! encoded trigger records with emission timestamps — byte-for-byte
//! identical across platforms for a given seed, so experiments using "the
//! ICEBERG sample" are reproducible.

use crate::builder::{BuilderConfig, EventBuilder, SliceMap};
use crate::events::{EventGenerator, EventRates};
use crate::lartpc::{LArTpc, LArTpcConfig};
use mmt_netsim::Time;
use mmt_wire::daq::TriggerRecord;

/// A canned sample: records with their emission times.
#[derive(Debug, Clone)]
pub struct IcebergSample {
    /// `(emission time, encoded record bytes)` in time order.
    pub records: Vec<(Time, Vec<u8>)>,
}

impl IcebergSample {
    /// Generate the standard sample: `duration` of ICEBERG running with
    /// beam, deterministic in `seed`.
    pub fn generate(duration: Time, seed: u64) -> IcebergSample {
        let mut generator = EventGenerator::new(EventRates::beam_running(), 1280, seed);
        let events = generator.events_until(duration);
        let mut builder = EventBuilder::new(
            BuilderConfig {
                // Keep payloads real but small enough to generate quickly.
                samples_per_channel: 64,
                ..BuilderConfig::iceberg()
            },
            SliceMap::single(),
            LArTpc::new(LArTpcConfig::iceberg(), seed ^ 0xD00D),
        );
        let records = builder
            .build_all(&events)
            .into_iter()
            // mmt-lint: allow(P1, "encoding a record the builder itself produced; infallible")
            .map(|(at, rec, _)| (at, rec.encode().expect("valid record")))
            .collect();
        IcebergSample { records }
    }

    /// Total payload bytes in the sample.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|(_, r)| r.len() as u64).sum()
    }

    /// Decode every record (validation helper).
    pub fn decode_all(&self) -> Vec<(Time, TriggerRecord)> {
        self.records
            .iter()
            // mmt-lint: allow(P1, "decoding bytes this sample encoded itself; inverse pair")
            .map(|(at, bytes)| (*at, TriggerRecord::decode(bytes).expect("valid record")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_is_deterministic() {
        let a = IcebergSample::generate(Time::from_millis(100), 42);
        let b = IcebergSample::generate(Time::from_millis(100), 42);
        assert_eq!(a.records, b.records);
        let c = IcebergSample::generate(Time::from_millis(100), 43);
        assert_ne!(a.records, c.records);
    }

    #[test]
    fn sample_records_decode_and_are_ordered() {
        let s = IcebergSample::generate(Time::from_millis(200), 1);
        assert!(!s.records.is_empty());
        assert!(s.total_bytes() > 0);
        let decoded = s.decode_all();
        let mut last = Time::ZERO;
        for (at, rec) in &decoded {
            assert!(*at >= last);
            last = *at;
            assert_eq!(rec.timestamp_ns, at.as_nanos());
            assert!(!rec.payload.is_empty());
        }
    }
}
