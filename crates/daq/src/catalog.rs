//! The experiment catalog — Table 1 of the paper, as executable data.
//!
//! | Experiment   | DAQ rate  | Source                                    |
//! |--------------|-----------|-------------------------------------------|
//! | CMS L1       | 63 Tbps   | accelerator-driven collider trigger \[77\]  |
//! | DUNE         | 120 Tbps  | accelerator + natural neutrinos \[68\]      |
//! | ECCE         | 100 Tbps  | electron-ion collider detector \[13\]       |
//! | Mu2e         | 160 Gbps  | muon-conversion experiment \[29\]           |
//! | Vera Rubin   | 400 Gbps  | optical survey telescope \[38\]             |
//!
//! Record sizes and event rates are chosen so `rate × size ≈ DAQ rate`,
//! with sizes representative of each readout (jumbo-frame-friendly for the
//! Ethernet-based DAQs, §2.1).

use mmt_netsim::{Bandwidth, Time};
use mmt_wire::mmt::ExperimentId;

/// A large-instrument experiment and its DAQ traffic profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Experiment {
    /// Short name as used in the paper.
    pub name: &'static str,
    /// The MMT experiment number assigned in this deployment.
    pub experiment_no: u32,
    /// Aggregate data-acquisition rate (Table 1).
    pub daq_rate: Bandwidth,
    /// Typical trigger-record payload size in bytes.
    pub record_bytes: usize,
    /// Whether the DAQ network is Ethernet-based (Vera Rubin and DUNE are,
    /// §2; Mu2e runs directly over Ethernet frames, §4).
    pub ethernet_daq: bool,
    /// One-line description.
    pub about: &'static str,
}

impl Experiment {
    /// Records per second needed to sustain the DAQ rate.
    pub fn record_rate_hz(&self) -> f64 {
        self.daq_rate.as_bps() as f64 / (self.record_bytes as f64 * 8.0)
    }

    /// Mean inter-record gap at the full DAQ rate.
    pub fn record_interval(&self) -> Time {
        let ns = 1e9 / self.record_rate_hz();
        Time::from_nanos(ns.round().max(1.0) as u64)
    }

    /// The [`ExperimentId`] for a given slice of this instrument.
    pub fn id(&self, slice: u8) -> ExperimentId {
        ExperimentId::new(self.experiment_no, slice)
    }
}

/// CMS Level-1 trigger readout.
pub const CMS_L1: Experiment = Experiment {
    name: "CMS L1 Trigger",
    experiment_no: 1,
    daq_rate: Bandwidth::tbps(63),
    record_bytes: 8192,
    ethernet_daq: false,
    about: "high-energy physics; artificial collisions from the LHC",
};

/// DUNE far detector.
pub const DUNE: Experiment = Experiment {
    name: "DUNE",
    experiment_no: 2,
    daq_rate: Bandwidth::tbps(120),
    record_bytes: 8192,
    ethernet_daq: true,
    about: "accelerator neutrinos plus natural sources (sun, cosmic rays, supernovae)",
};

/// ECCE detector at the Electron-Ion Collider.
pub const ECCE: Experiment = Experiment {
    name: "ECCE detector",
    experiment_no: 3,
    daq_rate: Bandwidth::tbps(100),
    record_bytes: 8192,
    ethernet_daq: false,
    about: "electron-ion collider detector",
};

/// Mu2e muon-to-electron conversion experiment.
pub const MU2E: Experiment = Experiment {
    name: "Mu2e",
    experiment_no: 4,
    daq_rate: Bandwidth::gbps(160),
    record_bytes: 4096,
    ethernet_daq: true,
    about: "muon conversion; DAQ data carried directly over Ethernet frames",
};

/// Vera C. Rubin observatory.
pub const VERA_RUBIN: Experiment = Experiment {
    name: "Vera Rubin",
    experiment_no: 5,
    daq_rate: Bandwidth::gbps(400),
    record_bytes: 8192,
    ethernet_daq: true,
    about: "optical survey telescope; nightly 30 TB capture plus 5.4 Gbps alert bursts",
};

/// All Table 1 experiments, in the paper's order.
pub const EXPERIMENTS: [Experiment; 5] = [CMS_L1, DUNE, ECCE, MU2E, VERA_RUBIN];

/// Vera Rubin's alert-stream burst rate (§2.1: "expected to burst to
/// 5.4 Gbps").
pub const RUBIN_ALERT_BURST: Bandwidth = Bandwidth::mbps(5_400);

/// Vera Rubin's nightly capture volume in bytes (§2.1: 30 TB).
pub const RUBIN_NIGHTLY_BYTES: u64 = 30_000_000_000_000;

/// Look up an experiment by its MMT experiment number.
pub fn by_number(experiment_no: u32) -> Option<&'static Experiment> {
    EXPERIMENTS
        .iter()
        .find(|e| e.experiment_no == experiment_no)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rates_match_paper() {
        assert_eq!(CMS_L1.daq_rate, Bandwidth::tbps(63));
        assert_eq!(DUNE.daq_rate, Bandwidth::tbps(120));
        assert_eq!(ECCE.daq_rate, Bandwidth::tbps(100));
        assert_eq!(MU2E.daq_rate, Bandwidth::gbps(160));
        assert_eq!(VERA_RUBIN.daq_rate, Bandwidth::gbps(400));
    }

    #[test]
    fn record_rate_times_size_reproduces_daq_rate() {
        for exp in EXPERIMENTS {
            let reconstructed = exp.record_rate_hz() * exp.record_bytes as f64 * 8.0;
            let target = exp.daq_rate.as_bps() as f64;
            assert!(
                (reconstructed - target).abs() / target < 1e-9,
                "{}: {reconstructed} vs {target}",
                exp.name
            );
        }
    }

    #[test]
    fn record_interval_positive_even_at_extreme_rates() {
        for exp in EXPERIMENTS {
            assert!(exp.record_interval().as_nanos() >= 1, "{}", exp.name);
        }
        // DUNE at 120 Tbps with 8 KiB records ⇒ ~1.8 G records/s ⇒ sub-ns
        // mean gap, clamped to 1 ns (generation then proceeds in batches).
        assert_eq!(DUNE.record_interval().as_nanos(), 1);
        // Mu2e: 160 Gbps at 4 KiB ⇒ ≈4.88 M records/s ⇒ ≈205 ns.
        let gap = MU2E.record_interval().as_nanos();
        assert!((200..=210).contains(&gap), "{gap}");
    }

    #[test]
    fn lookup_and_ids() {
        assert_eq!(by_number(2).unwrap().name, "DUNE");
        assert!(by_number(99).is_none());
        let id = DUNE.id(3);
        assert_eq!(id.experiment(), 2);
        assert_eq!(id.slice(), 3);
    }

    #[test]
    fn unique_experiment_numbers() {
        let mut nums: Vec<u32> = EXPERIMENTS.iter().map(|e| e.experiment_no).collect();
        nums.sort_unstable();
        nums.dedup();
        assert_eq!(nums.len(), EXPERIMENTS.len());
    }

    #[test]
    fn rubin_constants() {
        assert_eq!(RUBIN_ALERT_BURST.as_bps(), 5_400_000_000);
        assert_eq!(RUBIN_NIGHTLY_BYTES, 30_000_000_000_000);
    }
}
