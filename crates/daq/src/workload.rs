//! Wire-level workload generators: the traffic shapes of §2.1.
//!
//! "Traffic consists of elephant flows with a regular shape (size and
//! arrival rate)" — [`RegularFlow`] produces exactly that. The Vera Rubin
//! alert stream "is expected to burst to 5.4 Gbps, and takes place
//! alongside the nightly 30 TB capture" — [`BurstFlow`] models the bursty
//! alert traffic; running both together reproduces the telescope's mix.
//!
//! Generators yield [`WorkloadMessage`]s (time + size + identity) rather
//! than full packets, so experiments can choose framing (MMT over
//! Ethernet, MMT over IP, TCP baseline) independently of the workload.

use mmt_netsim::{Bandwidth, Time};
use mmt_wire::mmt::ExperimentId;

/// One message to transmit: a discrete, timestamped DAQ unit (Req 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadMessage {
    /// Creation time at the source.
    pub at: Time,
    /// Payload size in bytes (excluding transport headers).
    pub payload_len: usize,
    /// Message index within its flow (source-assigned, 0-based).
    pub index: u64,
    /// Which experiment/slice produced it.
    pub experiment: ExperimentId,
}

/// A constant-rate, constant-size elephant flow.
#[derive(Debug, Clone)]
pub struct RegularFlow {
    experiment: ExperimentId,
    message_bytes: usize,
    interval: Time,
    start: Time,
    next_index: u64,
}

impl RegularFlow {
    /// A flow of `message_bytes` messages at `rate` starting at `start`.
    ///
    /// # Panics
    /// Panics if the rate or size produce a zero interval.
    pub fn new(
        experiment: ExperimentId,
        message_bytes: usize,
        rate: Bandwidth,
        start: Time,
    ) -> RegularFlow {
        let interval = rate.tx_time(message_bytes);
        assert!(interval > Time::ZERO, "rate too high for message size");
        RegularFlow {
            experiment,
            message_bytes,
            interval,
            start,
            next_index: 0,
        }
    }

    /// The constant inter-message gap.
    pub fn interval(&self) -> Time {
        self.interval
    }

    /// Messages with creation times `<= until`.
    pub fn take_until(&mut self, until: Time) -> Vec<WorkloadMessage> {
        let mut out = Vec::new();
        loop {
            let at = self.start + self.interval * self.next_index;
            if at > until {
                break;
            }
            out.push(WorkloadMessage {
                at,
                payload_len: self.message_bytes,
                index: self.next_index,
                experiment: self.experiment,
            });
            self.next_index += 1;
        }
        out
    }
}

impl Iterator for RegularFlow {
    type Item = WorkloadMessage;

    fn next(&mut self) -> Option<WorkloadMessage> {
        let at = self.start.checked_add(self.interval * self.next_index)?;
        let msg = WorkloadMessage {
            at,
            payload_len: self.message_bytes,
            index: self.next_index,
            experiment: self.experiment,
        };
        self.next_index += 1;
        Some(msg)
    }
}

/// An on/off burst flow: `burst_rate` for `burst_len`, silent until the
/// next period boundary. Vera Rubin's alert stream: a burst after each
/// exposure readout (~every 34 s), peaking at 5.4 Gbps (§2.1).
#[derive(Debug, Clone)]
pub struct BurstFlow {
    experiment: ExperimentId,
    message_bytes: usize,
    /// Gap between messages inside a burst.
    intra_gap: Time,
    /// Burst duration.
    burst_len: Time,
    /// Period between burst starts.
    period: Time,
    start: Time,
    next_index: u64,
    /// Messages emitted in the current burst.
    in_burst: u64,
    /// Index of the current burst.
    burst_no: u64,
}

impl BurstFlow {
    /// Create a burst flow.
    ///
    /// # Panics
    /// Panics if the burst is longer than the period or rates degenerate.
    pub fn new(
        experiment: ExperimentId,
        message_bytes: usize,
        burst_rate: Bandwidth,
        burst_len: Time,
        period: Time,
        start: Time,
    ) -> BurstFlow {
        assert!(burst_len <= period, "burst longer than its period");
        let intra_gap = burst_rate.tx_time(message_bytes);
        assert!(intra_gap > Time::ZERO, "burst rate too high for size");
        BurstFlow {
            experiment,
            message_bytes,
            intra_gap,
            burst_len,
            period,
            start,
            next_index: 0,
            in_burst: 0,
            burst_no: 0,
        }
    }

    /// The Vera Rubin alert profile: 8 KiB alert packets bursting at
    /// 5.4 Gbps for 1 s out of every 34 s exposure cadence.
    pub fn vera_rubin_alerts(start: Time) -> BurstFlow {
        BurstFlow::new(
            crate::catalog::VERA_RUBIN.id(0),
            8192,
            crate::catalog::RUBIN_ALERT_BURST,
            Time::from_secs(1),
            Time::from_secs(34),
            start,
        )
    }

    /// Messages with creation times `<= until`.
    pub fn take_until(&mut self, until: Time) -> Vec<WorkloadMessage> {
        let mut out = Vec::new();
        while let Some(msg) = self.peek_time().filter(|&t| t <= until).map(|t| {
            let m = WorkloadMessage {
                at: t,
                payload_len: self.message_bytes,
                index: self.next_index,
                experiment: self.experiment,
            };
            self.advance();
            m
        }) {
            out.push(msg);
        }
        out
    }

    fn peek_time(&self) -> Option<Time> {
        let burst_start = self.start.checked_add(self.period * self.burst_no)?;
        let offset = self.intra_gap * self.in_burst;
        burst_start.checked_add(offset)
    }

    fn advance(&mut self) {
        self.next_index += 1;
        self.in_burst += 1;
        // Past the burst window? Move to the next period.
        if self.intra_gap * self.in_burst >= self.burst_len {
            self.in_burst = 0;
            self.burst_no += 1;
        }
    }
}

impl Iterator for BurstFlow {
    type Item = WorkloadMessage;

    fn next(&mut self) -> Option<WorkloadMessage> {
        let at = self.peek_time()?;
        let msg = WorkloadMessage {
            at,
            payload_len: self.message_bytes,
            index: self.next_index,
            experiment: self.experiment,
        };
        self.advance();
        Some(msg)
    }
}

/// Offered load of a message batch over an interval, in bits per second.
pub fn offered_bps(messages: &[WorkloadMessage], over: Time) -> f64 {
    if over == Time::ZERO {
        return 0.0;
    }
    let bytes: u64 = messages.iter().map(|m| m.payload_len as u64).sum();
    bytes as f64 * 8.0 / over.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn regular_flow_has_constant_shape() {
        let mut flow = RegularFlow::new(catalog::DUNE.id(0), 8192, Bandwidth::gbps(10), Time::ZERO);
        let msgs = flow.take_until(Time::from_millis(1));
        // 8192 B at 10 Gb/s = 6.5536 µs per message → ~152 in 1 ms.
        assert!((150..=154).contains(&msgs.len()), "{}", msgs.len());
        // Perfectly regular gaps and sizes.
        let gap = msgs[1].at - msgs[0].at;
        assert_eq!(gap, flow.interval());
        for w in msgs.windows(2) {
            assert_eq!(w[1].at - w[0].at, gap);
            assert_eq!(w[0].payload_len, 8192);
        }
        // Indices are sequential.
        assert!(msgs.iter().enumerate().all(|(i, m)| m.index == i as u64));
        // Offered load reproduces the configured rate.
        let bps = offered_bps(&msgs, Time::from_millis(1));
        assert!((bps - 10e9).abs() / 10e9 < 0.02, "{bps}");
    }

    #[test]
    fn regular_flow_iterator_agrees_with_take_until() {
        let flow_a = RegularFlow::new(catalog::MU2E.id(0), 4096, Bandwidth::gbps(1), Time::ZERO);
        let mut flow_b = flow_a.clone();
        let from_iter: Vec<_> = flow_a.take(10).collect();
        let from_take = flow_b.take_until(from_iter.last().unwrap().at);
        assert_eq!(from_iter, from_take);
    }

    #[test]
    fn burst_flow_is_silent_between_bursts() {
        let mut flow = BurstFlow::new(
            catalog::VERA_RUBIN.id(0),
            8192,
            Bandwidth::gbps(5),
            Time::from_millis(10),
            Time::from_secs(1),
            Time::ZERO,
        );
        let msgs = flow.take_until(Time::from_secs(3));
        assert!(!msgs.is_empty());
        // All messages fall within [k, k + 10 ms) of some period k.
        for m in &msgs {
            let phase = m.at.as_nanos() % 1_000_000_000;
            assert!(phase < 10_000_000, "message outside burst window: {m:?}");
        }
        // Roughly: 10 ms at 5 Gb/s = 6.25 MB / 8 KiB ≈ 763 msgs per burst,
        // 4 burst starts in [0, 3] (t=0,1,2,3 — t=3 contributes 1 message).
        let per_burst = msgs.iter().filter(|m| m.at < Time::from_millis(10)).count();
        assert!((700..830).contains(&per_burst), "{per_burst}");
    }

    #[test]
    fn vera_rubin_profile_peaks_at_5_4_gbps() {
        let mut flow = BurstFlow::vera_rubin_alerts(Time::ZERO);
        let msgs = flow.take_until(Time::from_secs(1));
        let in_burst: Vec<_> = msgs
            .iter()
            .filter(|m| m.at < Time::from_secs(1))
            .copied()
            .collect();
        let bps = offered_bps(&in_burst, Time::from_secs(1));
        assert!((bps - 5.4e9).abs() / 5.4e9 < 0.02, "{bps}");
        // And silence until the next exposure at t = 34 s.
        let mut flow2 = BurstFlow::vera_rubin_alerts(Time::ZERO);
        let more = flow2.take_until(Time::from_secs(33));
        assert!(more
            .iter()
            .all(|m| m.at <= Time::from_secs(1) + Time::from_nanos(1)));
    }

    #[test]
    fn burst_iterator_monotone() {
        let flow = BurstFlow::vera_rubin_alerts(Time::from_secs(5));
        let msgs: Vec<_> = flow.take(2000).collect();
        assert!(msgs.windows(2).all(|w| w[1].at > w[0].at));
        assert!(msgs[0].at == Time::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "burst longer")]
    fn burst_longer_than_period_panics() {
        let _ = BurstFlow::new(
            catalog::VERA_RUBIN.id(0),
            1024,
            Bandwidth::gbps(1),
            Time::from_secs(2),
            Time::from_secs(1),
            Time::ZERO,
        );
    }

    #[test]
    fn offered_bps_zero_interval() {
        assert_eq!(offered_bps(&[], Time::ZERO), 0.0);
    }
}
