//! Property-based tests for wire-format invariants.
//!
//! Three classes of invariant are exercised:
//! 1. **Roundtrip**: `parse(emit(repr)) == repr` for arbitrary valid reprs.
//! 2. **No panic on garbage**: parsers return `Err`, never panic, on
//!    arbitrary byte soup (the property a border element needs to survive
//!    hostile campus traffic).
//! 3. **Semantic invariants**: age saturates and the aged flag latches;
//!    extension layout is monotone in the feature set.

use proptest::prelude::*;

use mmt_wire::daq::{DuneSubHeader, Mu2eSubHeader, SubHeader, TriggerRecord};
use mmt_wire::ethernet::{build_frame, EtherType, EthernetRepr, Frame};
use mmt_wire::ipv4::{Ipv4Repr, Packet as Ipv4Packet, Protocol};
use mmt_wire::mmt::{
    ControlRepr, CoreHeader, ExperimentId, Features, MmtRepr, NakRange, NakRepr,
};
use mmt_wire::udp::{Datagram, UdpRepr};
use mmt_wire::{EthernetAddress, Ipv4Address};

fn arb_ipv4() -> impl Strategy<Value = Ipv4Address> {
    any::<[u8; 4]>().prop_map(Ipv4Address::from)
}

fn arb_experiment() -> impl Strategy<Value = ExperimentId> {
    (0u32..(1 << 24), any::<u8>()).prop_map(|(e, s)| ExperimentId::new(e, s))
}

prop_compose! {
    fn arb_mmt_repr()(
        experiment in arb_experiment(),
        seq in proptest::option::of(any::<u64>()),
        rtx in proptest::option::of((arb_ipv4(), any::<u16>())),
        timeliness in proptest::option::of((any::<u64>(), arb_ipv4())),
        age in proptest::option::of((0u64..(1 << 56), any::<bool>())),
        pacing in proptest::option::of(any::<u32>()),
        bp in proptest::option::of(any::<u32>()),
        prio in proptest::option::of(any::<u8>()),
        dup in any::<bool>(),
        enc in any::<bool>(),
        nak in any::<bool>(),
    ) -> MmtRepr {
        let mut r = MmtRepr::data(experiment);
        if let Some(s) = seq { r = r.with_sequence(s); }
        if let Some((a, p)) = rtx { r = r.with_retransmit(a, p); }
        if let Some((d, n)) = timeliness { r = r.with_timeliness(d, n); }
        if let Some((a, f)) = age { r = r.with_age(a, f); }
        if let Some(p) = pacing { r = r.with_pacing(p); }
        if let Some(w) = bp { r = r.with_backpressure(w); }
        if let Some(c) = prio { r = r.with_priority(c); }
        if dup { r = r.with_flags(Features::DUPLICATED); }
        if enc { r = r.with_flags(Features::ENCRYPTED); }
        if nak { r = r.with_flags(Features::ACK_NAK); }
        r
    }
}

proptest! {
    #[test]
    fn mmt_repr_roundtrip(repr in arb_mmt_repr()) {
        let mut buf = vec![0u8; repr.header_len()];
        repr.emit(&mut buf).unwrap();
        let parsed = MmtRepr::parse(&buf).unwrap();
        prop_assert_eq!(parsed, repr);
    }

    #[test]
    fn mmt_view_agrees_with_repr(repr in arb_mmt_repr(), payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let buf = repr.emit_with_payload(&payload);
        let view = CoreHeader::new_checked(&buf[..]).unwrap();
        prop_assert_eq!(view.features(), repr.features);
        prop_assert_eq!(view.experiment(), repr.experiment);
        prop_assert_eq!(view.sequence(), repr.sequence());
        prop_assert_eq!(view.age(), repr.age());
        prop_assert_eq!(view.retransmit(), repr.retransmit());
        prop_assert_eq!(view.timeliness(), repr.timeliness());
        prop_assert_eq!(view.payload(), &payload[..]);
    }

    #[test]
    fn mmt_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = MmtRepr::parse(&bytes);
        let _ = CoreHeader::new_checked(&bytes[..]);
        let _ = ControlRepr::parse_packet(&bytes);
    }

    #[test]
    fn header_len_monotone_in_features(repr in arb_mmt_repr()) {
        // Removing any feature never grows the header.
        for f in [Features::SEQUENCE, Features::RETRANSMIT, Features::TIMELINESS,
                  Features::AGE, Features::PACING, Features::BACKPRESSURE, Features::PRIORITY] {
            let smaller = repr.without(f);
            prop_assert!(smaller.header_len() <= repr.header_len());
        }
    }

    #[test]
    fn age_update_latches(initial in 0u64..(1 << 50), delta in 0u64..(1 << 50), max in 0u64..(1 << 50)) {
        let repr = MmtRepr::data(ExperimentId::new(1, 0)).with_age(initial, false);
        let mut buf = vec![0u8; repr.header_len()];
        repr.emit(&mut buf).unwrap();
        let mut hdr = CoreHeader::new_unchecked(&mut buf[..]);
        let next = hdr.update_age(delta, max).unwrap();
        prop_assert_eq!(next.age_ns, initial + delta);
        prop_assert_eq!(next.aged, initial + delta > max);
        // A second update can only keep or set the flag, never clear it.
        let again = hdr.update_age(0, u64::MAX).unwrap();
        prop_assert!(again.aged == next.aged);
    }

    #[test]
    fn nak_roundtrip(
        requester in arb_ipv4(),
        port in any::<u16>(),
        raw_ranges in proptest::collection::vec((any::<u64>(), 0u64..1024), 0..32),
    ) {
        let ranges: Vec<NakRange> = raw_ranges
            .into_iter()
            .map(|(first, span)| NakRange { first, last: first.saturating_add(span) })
            .collect();
        let nak = NakRepr { requester, requester_port: port, ranges };
        let pkt = ControlRepr::Nak(nak.clone()).emit_packet(ExperimentId::new(5, 0));
        let (_, parsed) = ControlRepr::parse_packet(&pkt).unwrap();
        prop_assert_eq!(parsed, ControlRepr::Nak(nak));
    }

    #[test]
    fn ethernet_roundtrip(dst in any::<[u8; 6]>(), src in any::<[u8; 6]>(), et in any::<u16>(), payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let repr = EthernetRepr {
            dst: EthernetAddress(dst),
            src: EthernetAddress(src),
            ethertype: EtherType::from_u16(et),
        };
        let buf = build_frame(&repr, &payload);
        let frame = Frame::new_checked(&buf[..]).unwrap();
        prop_assert_eq!(EthernetRepr::parse(&frame).unwrap(), repr);
        prop_assert_eq!(frame.payload(), &payload[..]);
    }

    #[test]
    fn ipv4_roundtrip(src in arb_ipv4(), dst in arb_ipv4(), ttl in any::<u8>(), dscp in 0u8..64, len in 0usize..1024) {
        let repr = Ipv4Repr { src, dst, protocol: Protocol::Mmt, payload_len: len, ttl, dscp };
        let mut buf = vec![0u8; repr.total_len()];
        repr.emit(&mut buf).unwrap();
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        prop_assert!(pkt.verify_checksum());
        prop_assert_eq!(Ipv4Repr::parse(&pkt).unwrap(), repr);
    }

    #[test]
    fn ipv4_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Ipv4Packet::new_checked(&bytes[..]);
    }

    #[test]
    fn udp_checksum_detects_single_bit_flips(
        src in arb_ipv4(), dst in arb_ipv4(),
        sport in any::<u16>(), dport in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        flip_bit in 0usize..8,
    ) {
        let repr = UdpRepr { src_port: sport, dst_port: dport, payload_len: payload.len() };
        let mut buf = vec![0u8; repr.total_len()];
        repr.emit(&mut buf).unwrap();
        buf[8..].copy_from_slice(&payload);
        {
            let mut d = Datagram::new_checked(&mut buf[..]).unwrap();
            d.fill_checksum(&src, &dst);
        }
        let flip_byte = 8 + (payload.len() - 1);
        buf[flip_byte] ^= 1 << flip_bit;
        let d = Datagram::new_checked(&buf[..]).unwrap();
        prop_assert!(!d.verify_checksum(&src, &dst));
    }

    #[test]
    fn trigger_record_roundtrip(
        run in any::<u32>(),
        event in any::<u64>(),
        ts in any::<u64>(),
        kind in 0u8..3,
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let sub = match kind {
            0 => SubHeader::None,
            1 => SubHeader::Dune(DuneSubHeader {
                crate_no: 1, slot: 2, link: 3, first_channel: 0, last_channel: 63,
            }),
            _ => SubHeader::Mu2e(Mu2eSubHeader {
                dtc_id: 1, roc_id: 2, packet_type: 3, subsystem: 4,
            }),
        };
        let rec = TriggerRecord { run, event, timestamp_ns: ts, sub, payload };
        let buf = rec.encode().unwrap();
        prop_assert_eq!(TriggerRecord::decode(&buf).unwrap(), rec);
    }

    #[test]
    fn trigger_record_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = TriggerRecord::decode(&bytes);
    }
}
