//! Seeded randomized tests for wire-format invariants.
//!
//! Three classes of invariant are exercised, each over a few hundred
//! deterministic SplitMix64-generated cases (no external PRNG crates, so
//! failures replay exactly):
//! 1. **Roundtrip**: `parse(emit(repr)) == repr` for arbitrary valid reprs.
//! 2. **No panic on garbage**: parsers return `Err`, never panic, on
//!    arbitrary byte soup (the property a border element needs to survive
//!    hostile campus traffic).
//! 3. **Semantic invariants**: age saturates and the aged flag latches;
//!    extension layout is monotone in the feature set.

use mmt_wire::daq::{DuneSubHeader, Mu2eSubHeader, SubHeader, TriggerRecord};
use mmt_wire::ethernet::{build_frame, EtherType, EthernetRepr, Frame};
use mmt_wire::ipv4::{Ipv4Repr, Packet as Ipv4Packet, Protocol};
use mmt_wire::mmt::{
    ControlRepr, CoreHeader, ExperimentId, Features, MmtRepr, ModeChangeRepr, NakRange, NakRepr,
};
use mmt_wire::udp::{Datagram, UdpRepr};
use mmt_wire::{EthernetAddress, Ipv4Address};

/// SplitMix64 — the same generator the simulator uses, inlined because
/// `mmt-wire` sits below `mmt-netsim` in the dependency graph.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    fn flag(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    fn bytes(&mut self, max_len: u64) -> Vec<u8> {
        let len = self.below(max_len + 1) as usize;
        (0..len).map(|_| self.next_u64() as u8).collect()
    }
}

fn gen_ipv4(rng: &mut Rng) -> Ipv4Address {
    let b = rng.next_u64().to_be_bytes();
    Ipv4Address::from([b[0], b[1], b[2], b[3]])
}

fn gen_experiment(rng: &mut Rng) -> ExperimentId {
    ExperimentId::new(rng.below(1 << 24) as u32, rng.next_u64() as u8)
}

fn gen_mmt_repr(rng: &mut Rng) -> MmtRepr {
    let mut r = MmtRepr::data(gen_experiment(rng));
    if rng.flag() {
        r = r.with_sequence(rng.next_u64());
    }
    if rng.flag() {
        r = r.with_retransmit(gen_ipv4(rng), rng.next_u64() as u16);
    }
    if rng.flag() {
        r = r.with_timeliness(rng.next_u64(), gen_ipv4(rng));
    }
    if rng.flag() {
        r = r.with_age(rng.below(1 << 56), rng.flag());
    }
    if rng.flag() {
        r = r.with_pacing(rng.next_u64() as u32);
    }
    if rng.flag() {
        r = r.with_backpressure(rng.next_u64() as u32);
    }
    if rng.flag() {
        r = r.with_priority(rng.next_u64() as u8);
    }
    if rng.flag() {
        r = r.with_flags(Features::DUPLICATED);
    }
    if rng.flag() {
        r = r.with_flags(Features::ENCRYPTED);
    }
    if rng.flag() {
        r = r.with_flags(Features::ACK_NAK);
    }
    r
}

#[test]
fn mmt_repr_roundtrip() {
    let mut rng = Rng::new(0xA11C_E001);
    for _ in 0..500 {
        let repr = gen_mmt_repr(&mut rng);
        let mut buf = vec![0u8; repr.header_len()];
        repr.emit(&mut buf).unwrap();
        let parsed = MmtRepr::parse(&buf).unwrap();
        assert_eq!(parsed, repr);
    }
}

#[test]
fn mmt_view_agrees_with_repr() {
    let mut rng = Rng::new(0xA11C_E002);
    for _ in 0..500 {
        let repr = gen_mmt_repr(&mut rng);
        let payload = rng.bytes(63);
        let buf = repr.emit_with_payload(&payload);
        let view = CoreHeader::new_checked(&buf[..]).unwrap();
        assert_eq!(view.features(), repr.features);
        assert_eq!(view.experiment(), repr.experiment);
        assert_eq!(view.sequence(), repr.sequence());
        assert_eq!(view.age(), repr.age());
        assert_eq!(view.retransmit(), repr.retransmit());
        assert_eq!(view.timeliness(), repr.timeliness());
        assert_eq!(view.payload(), &payload[..]);
    }
}

#[test]
fn mmt_parse_never_panics() {
    let mut rng = Rng::new(0xA11C_E003);
    for _ in 0..2000 {
        let bytes = rng.bytes(127);
        let _ = MmtRepr::parse(&bytes);
        let _ = CoreHeader::new_checked(&bytes[..]);
        let _ = ControlRepr::parse_packet(&bytes);
    }
}

#[test]
fn header_len_monotone_in_features() {
    let mut rng = Rng::new(0xA11C_E004);
    for _ in 0..500 {
        let repr = gen_mmt_repr(&mut rng);
        // Removing any feature never grows the header.
        for f in [
            Features::SEQUENCE,
            Features::RETRANSMIT,
            Features::TIMELINESS,
            Features::AGE,
            Features::PACING,
            Features::BACKPRESSURE,
            Features::PRIORITY,
        ] {
            let smaller = repr.without(f);
            assert!(smaller.header_len() <= repr.header_len());
        }
    }
}

#[test]
fn age_update_latches() {
    let mut rng = Rng::new(0xA11C_E005);
    for _ in 0..500 {
        let initial = rng.below(1 << 50);
        let delta = rng.below(1 << 50);
        let max = rng.below(1 << 50);
        let repr = MmtRepr::data(ExperimentId::new(1, 0)).with_age(initial, false);
        let mut buf = vec![0u8; repr.header_len()];
        repr.emit(&mut buf).unwrap();
        let mut hdr = CoreHeader::new_unchecked(&mut buf[..]);
        let next = hdr.update_age(delta, max).unwrap();
        assert_eq!(next.age_ns, initial + delta);
        assert_eq!(next.aged, initial + delta > max);
        // A second update can only keep or set the flag, never clear it.
        let again = hdr.update_age(0, u64::MAX).unwrap();
        assert_eq!(again.aged, next.aged);
    }
}

#[test]
fn nak_roundtrip() {
    let mut rng = Rng::new(0xA11C_E006);
    for _ in 0..300 {
        let requester = gen_ipv4(&mut rng);
        let port = rng.next_u64() as u16;
        let n_ranges = rng.below(32) as usize;
        let ranges: Vec<NakRange> = (0..n_ranges)
            .map(|_| {
                let first = rng.next_u64();
                let span = rng.below(1024);
                NakRange {
                    first,
                    last: first.saturating_add(span),
                }
            })
            .collect();
        let nak = NakRepr {
            requester,
            requester_port: port,
            ranges,
        };
        let pkt = ControlRepr::Nak(nak.clone()).emit_packet(ExperimentId::new(5, 0));
        let (_, parsed) = ControlRepr::parse_packet(&pkt).unwrap();
        assert_eq!(parsed, ControlRepr::Nak(nak));
    }
}

#[test]
fn ethernet_roundtrip() {
    let mut rng = Rng::new(0xA11C_E007);
    for _ in 0..300 {
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        for b in dst.iter_mut().chain(src.iter_mut()) {
            *b = rng.next_u64() as u8;
        }
        let repr = EthernetRepr {
            dst: EthernetAddress(dst),
            src: EthernetAddress(src),
            ethertype: EtherType::from_u16(rng.next_u64() as u16),
        };
        let payload = rng.bytes(255);
        let buf = build_frame(&repr, &payload);
        let frame = Frame::new_checked(&buf[..]).unwrap();
        assert_eq!(EthernetRepr::parse(&frame).unwrap(), repr);
        assert_eq!(frame.payload(), &payload[..]);
    }
}

#[test]
fn ipv4_roundtrip() {
    let mut rng = Rng::new(0xA11C_E008);
    for _ in 0..300 {
        let repr = Ipv4Repr {
            src: gen_ipv4(&mut rng),
            dst: gen_ipv4(&mut rng),
            protocol: Protocol::Mmt,
            payload_len: rng.below(1024) as usize,
            ttl: rng.next_u64() as u8,
            dscp: rng.below(64) as u8,
        };
        let mut buf = vec![0u8; repr.total_len()];
        repr.emit(&mut buf).unwrap();
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(pkt.verify_checksum());
        assert_eq!(Ipv4Repr::parse(&pkt).unwrap(), repr);
    }
}

#[test]
fn ipv4_parse_never_panics() {
    let mut rng = Rng::new(0xA11C_E009);
    for _ in 0..2000 {
        let bytes = rng.bytes(63);
        let _ = Ipv4Packet::new_checked(&bytes[..]);
    }
}

#[test]
fn udp_checksum_detects_single_bit_flips() {
    let mut rng = Rng::new(0xA11C_E00A);
    for _ in 0..300 {
        let src = gen_ipv4(&mut rng);
        let dst = gen_ipv4(&mut rng);
        let sport = rng.next_u64() as u16;
        let dport = rng.next_u64() as u16;
        let payload_len = 1 + rng.below(127) as usize;
        let payload: Vec<u8> = (0..payload_len).map(|_| rng.next_u64() as u8).collect();
        let flip_bit = rng.below(8) as usize;
        let repr = UdpRepr {
            src_port: sport,
            dst_port: dport,
            payload_len: payload.len(),
        };
        let mut buf = vec![0u8; repr.total_len()];
        repr.emit(&mut buf).unwrap();
        buf[8..].copy_from_slice(&payload);
        {
            let mut d = Datagram::new_checked(&mut buf[..]).unwrap();
            d.fill_checksum(&src, &dst);
        }
        let flip_byte = 8 + (payload.len() - 1);
        buf[flip_byte] ^= 1 << flip_bit;
        let d = Datagram::new_checked(&buf[..]).unwrap();
        assert!(!d.verify_checksum(&src, &dst));
    }
}

#[test]
fn trigger_record_roundtrip() {
    let mut rng = Rng::new(0xA11C_E00B);
    for _ in 0..300 {
        let sub = match rng.below(3) {
            0 => SubHeader::None,
            1 => SubHeader::Dune(DuneSubHeader {
                crate_no: 1,
                slot: 2,
                link: 3,
                first_channel: 0,
                last_channel: 63,
            }),
            _ => SubHeader::Mu2e(Mu2eSubHeader {
                dtc_id: 1,
                roc_id: 2,
                packet_type: 3,
                subsystem: 4,
            }),
        };
        let rec = TriggerRecord {
            run: rng.next_u64() as u32,
            event: rng.next_u64(),
            timestamp_ns: rng.next_u64(),
            sub,
            payload: rng.bytes(511),
        };
        let buf = rec.encode().unwrap();
        assert_eq!(TriggerRecord::decode(&buf).unwrap(), rec);
    }
}

#[test]
fn trigger_record_decode_never_panics() {
    let mut rng = Rng::new(0xA11C_E00C);
    for _ in 0..2000 {
        let bytes = rng.bytes(255);
        let _ = TriggerRecord::decode(&bytes);
    }
}

// ---------------------------------------------------------------------------
// Mutation tests: start from a VALID frame, then truncate it or flip bits.
// Unlike the byte-soup tests above, these reach the deep parser paths (the
// valid prefix steers parsing into extension walks and body reads before the
// mutation bites). Invariants: parsers reject cleanly — truncation is always
// an `Err`, a flip is either an `Err` or a self-consistent repr — and never
// panic.
// ---------------------------------------------------------------------------

/// Every proper prefix of a valid MMT header must be rejected: the feature
/// bits declare the extension layout, so a short buffer is detectable.
#[test]
fn mmt_truncated_headers_reject_cleanly() {
    let mut rng = Rng::new(0xA11C_E00D);
    for _ in 0..300 {
        let repr = gen_mmt_repr(&mut rng);
        let mut buf = vec![0u8; repr.header_len()];
        repr.emit(&mut buf).unwrap();
        for cut in 0..buf.len() {
            assert!(
                MmtRepr::parse(&buf[..cut]).is_err(),
                "prefix of {cut}/{} bytes accepted",
                buf.len()
            );
            assert!(CoreHeader::new_checked(&buf[..cut]).is_err());
        }
    }
}

/// Bit flips in a valid MMT header either fail parsing or yield a repr that
/// is itself stable under emit/parse. Never a panic, never an inconsistent
/// half-parse.
#[test]
fn mmt_bit_flips_parse_cleanly_or_self_consistently() {
    let mut rng = Rng::new(0xA11C_E00E);
    for _ in 0..500 {
        let repr = gen_mmt_repr(&mut rng);
        let mut buf = vec![0u8; repr.header_len()];
        repr.emit(&mut buf).unwrap();
        let flips = 1 + rng.below(4);
        for _ in 0..flips {
            let byte = rng.below(buf.len() as u64) as usize;
            buf[byte] ^= 1 << rng.below(8);
        }
        if let Ok(mutant) = MmtRepr::parse(&buf) {
            let mut out = vec![0u8; mutant.header_len()];
            mutant.emit(&mut out).unwrap();
            assert_eq!(MmtRepr::parse(&out).unwrap(), mutant);
        }
    }
}

/// Every proper prefix of a valid control packet (header + NAK body) must be
/// rejected: the core header declares its extensions, the NAK body declares
/// its range count.
#[test]
fn control_truncation_rejects_cleanly() {
    let mut rng = Rng::new(0xA11C_E00F);
    for _ in 0..100 {
        let n_ranges = 1 + rng.below(8) as usize;
        let ranges: Vec<NakRange> = (0..n_ranges)
            .map(|_| {
                let first = rng.next_u64();
                NakRange {
                    first,
                    last: first.saturating_add(rng.below(64)),
                }
            })
            .collect();
        let nak = NakRepr {
            requester: gen_ipv4(&mut rng),
            requester_port: rng.next_u64() as u16,
            ranges,
        };
        let pkt = ControlRepr::Nak(nak).emit_packet(gen_experiment(&mut rng));
        for cut in 0..pkt.len() {
            assert!(
                ControlRepr::parse_packet(&pkt[..cut]).is_err(),
                "control prefix of {cut}/{} bytes accepted",
                pkt.len()
            );
        }
    }
}

/// Bit flips in a valid control packet never panic, and any flip that still
/// parses yields a packet that re-emits and re-parses to itself.
#[test]
fn control_bit_flips_never_panic() {
    let mut rng = Rng::new(0xA11C_E010);
    for _ in 0..500 {
        let nak = NakRepr {
            requester: gen_ipv4(&mut rng),
            requester_port: rng.next_u64() as u16,
            ranges: vec![NakRange {
                first: 10,
                last: 20,
            }],
        };
        let mut pkt = ControlRepr::Nak(nak).emit_packet(gen_experiment(&mut rng));
        let byte = rng.below(pkt.len() as u64) as usize;
        pkt[byte] ^= 1 << rng.below(8);
        if let Ok((exp, mutant)) = ControlRepr::parse_packet(&pkt) {
            let out = mutant.clone().emit_packet(exp);
            let (exp2, again) = ControlRepr::parse_packet(&out).unwrap();
            assert_eq!(exp2, exp);
            assert_eq!(again, mutant);
        }
    }
}

fn gen_mode_change(rng: &mut Rng) -> ModeChangeRepr {
    let mut features = Features::SEQUENCE;
    for f in [
        Features::RETRANSMIT,
        Features::TIMELINESS,
        Features::AGE,
        Features::BACKPRESSURE,
        Features::DUPLICATED,
        Features::ACK_NAK,
    ] {
        if rng.flag() {
            features |= f;
        }
    }
    ModeChangeRepr {
        config_id: rng.next_u64() as u8,
        features,
        retransmit_source: gen_ipv4(rng),
        retransmit_port: rng.next_u64() as u16,
        window: rng.next_u64() as u32,
    }
}

/// Roundtrip for arbitrary valid mode-change packets.
#[test]
fn mode_change_roundtrip_seeded() {
    let mut rng = Rng::new(0xA11C_E016);
    for _ in 0..300 {
        let mc = gen_mode_change(&mut rng);
        let exp = gen_experiment(&mut rng);
        let pkt = ControlRepr::ModeChange(mc).emit_packet(exp);
        let (got_exp, parsed) = ControlRepr::parse_packet(&pkt).unwrap();
        assert_eq!(got_exp, exp);
        assert_eq!(parsed, ControlRepr::ModeChange(mc));
    }
}

/// Every proper prefix of a valid mode-change packet is rejected.
#[test]
fn mode_change_truncation_rejects_cleanly() {
    let mut rng = Rng::new(0xA11C_E017);
    for _ in 0..100 {
        let pkt = ControlRepr::ModeChange(gen_mode_change(&mut rng))
            .emit_packet(gen_experiment(&mut rng));
        for cut in 0..pkt.len() {
            assert!(
                ControlRepr::parse_packet(&pkt[..cut]).is_err(),
                "mode-change prefix of {cut}/{} bytes accepted",
                pkt.len()
            );
        }
    }
}

/// Bit flips in a valid mode-change packet never panic; surviving mutants
/// are stable under emit/parse (unknown feature bits are truncated away).
#[test]
fn mode_change_bit_flips_parse_self_consistently() {
    let mut rng = Rng::new(0xA11C_E018);
    for _ in 0..500 {
        let mut pkt = ControlRepr::ModeChange(gen_mode_change(&mut rng))
            .emit_packet(gen_experiment(&mut rng));
        let flips = 1 + rng.below(4);
        for _ in 0..flips {
            let byte = rng.below(pkt.len() as u64) as usize;
            pkt[byte] ^= 1 << rng.below(8);
        }
        if let Ok((exp, mutant)) = ControlRepr::parse_packet(&pkt) {
            let out = mutant.clone().emit_packet(exp);
            let (exp2, again) = ControlRepr::parse_packet(&out).unwrap();
            assert_eq!(exp2, exp);
            assert_eq!(again, mutant);
        }
    }
}

/// A truncated Ethernet frame (shorter than the 14-byte header) is rejected.
#[test]
fn ethernet_truncated_frames_reject_cleanly() {
    let mut rng = Rng::new(0xA11C_E011);
    for _ in 0..100 {
        let repr = EthernetRepr {
            dst: EthernetAddress([rng.next_u64() as u8; 6]),
            src: EthernetAddress([rng.next_u64() as u8; 6]),
            ethertype: EtherType::Ipv4,
        };
        let buf = build_frame(&repr, &rng.bytes(63));
        for cut in 0..14.min(buf.len()) {
            assert!(Frame::new_checked(&buf[..cut]).is_err());
        }
    }
}

/// Any single-bit flip inside the IPv4 header of a valid packet is caught —
/// by a structural check or, failing that, by the header checksum. (Ones'
/// complement cannot alias a ±2^k perturbation of one header word.)
#[test]
fn ipv4_header_bit_flips_rejected() {
    let mut rng = Rng::new(0xA11C_E012);
    for _ in 0..500 {
        let repr = Ipv4Repr {
            src: gen_ipv4(&mut rng),
            dst: gen_ipv4(&mut rng),
            protocol: Protocol::Mmt,
            payload_len: rng.below(256) as usize,
            ttl: rng.next_u64() as u8,
            dscp: rng.below(64) as u8,
        };
        let mut buf = vec![0u8; repr.total_len()];
        repr.emit(&mut buf).unwrap();
        let byte = rng.below(20) as usize;
        buf[byte] ^= 1 << rng.below(8);
        let rejected = match Ipv4Packet::new_checked(&buf[..]) {
            Err(_) => true,
            Ok(pkt) => Ipv4Repr::parse(&pkt).is_err(),
        };
        assert!(
            rejected,
            "bit flip in IPv4 header byte {byte} went unnoticed"
        );
    }
}

/// A UDP datagram truncated below its declared length is rejected.
#[test]
fn udp_truncated_datagrams_reject_cleanly() {
    let mut rng = Rng::new(0xA11C_E013);
    for _ in 0..100 {
        let payload_len = 1 + rng.below(64) as usize;
        let repr = UdpRepr {
            src_port: rng.next_u64() as u16,
            dst_port: rng.next_u64() as u16,
            payload_len,
        };
        let mut buf = vec![0u8; repr.total_len()];
        repr.emit(&mut buf).unwrap();
        for cut in 0..buf.len() {
            assert!(
                Datagram::new_checked(&buf[..cut]).is_err(),
                "UDP prefix of {cut}/{} bytes accepted",
                buf.len()
            );
        }
    }
}

/// Every proper prefix of an encoded trigger record is rejected: the top
/// header declares the full record length.
#[test]
fn trigger_record_truncation_rejects_cleanly() {
    let mut rng = Rng::new(0xA11C_E014);
    for _ in 0..100 {
        let rec = TriggerRecord {
            run: rng.next_u64() as u32,
            event: rng.next_u64(),
            timestamp_ns: rng.next_u64(),
            sub: SubHeader::Dune(DuneSubHeader {
                crate_no: 1,
                slot: 2,
                link: 3,
                first_channel: 0,
                last_channel: 63,
            }),
            payload: rng.bytes(127),
        };
        let buf = rec.encode().unwrap();
        for cut in 0..buf.len() {
            assert!(
                TriggerRecord::decode(&buf[..cut]).is_err(),
                "record prefix of {cut}/{} bytes accepted",
                buf.len()
            );
        }
    }
}

/// Bit flips in a valid encoded trigger record never panic; surviving
/// mutants are stable under encode/decode.
#[test]
fn trigger_record_bit_flips_never_panic() {
    let mut rng = Rng::new(0xA11C_E015);
    for _ in 0..500 {
        let rec = TriggerRecord {
            run: rng.next_u64() as u32,
            event: rng.next_u64(),
            timestamp_ns: rng.next_u64(),
            sub: SubHeader::Mu2e(Mu2eSubHeader {
                dtc_id: 1,
                roc_id: 2,
                packet_type: 3,
                subsystem: 4,
            }),
            payload: rng.bytes(127),
        };
        let mut buf = rec.encode().unwrap();
        let byte = rng.below(buf.len() as u64) as usize;
        buf[byte] ^= 1 << rng.below(8);
        if let Ok(mutant) = TriggerRecord::decode(&buf) {
            let out = mutant.encode().unwrap();
            assert_eq!(TriggerRecord::decode(&out).unwrap(), mutant);
        }
    }
}
