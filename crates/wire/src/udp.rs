//! UDP datagrams.
//!
//! UDP is one of today's DAQ transports (DUNE carries DAQ data over UDP,
//! paper §4) and serves as a baseline in the evaluation. MMT can also be
//! tunnelled over UDP to traverse networks that drop unknown IP protocols.

use crate::checksum;
use crate::error::{check_emit_len, check_len};
use crate::field::{read_u16, write_u16};
use crate::{Error, Ipv4Address, Result};

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// The well-known (locally chosen) UDP port for MMT-over-UDP tunnelling.
pub const MMT_TUNNEL_PORT: u16 = 47_000;

mod field {
    use crate::field::Field;
    pub const SRC_PORT: Field = 0..2;
    pub const DST_PORT: Field = 2..4;
    pub const LENGTH: Field = 4..6;
    pub const CHECKSUM: Field = 6..8;
    pub const PAYLOAD: usize = 8;
}

/// A read/write view of a UDP datagram.
#[derive(Debug, Clone)]
pub struct Datagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Datagram<T> {
    /// Wrap a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Datagram<T> {
        Datagram { buffer }
    }

    /// Wrap a buffer, validating header and length fields.
    pub fn new_checked(buffer: T) -> Result<Datagram<T>> {
        let dgram = Datagram { buffer };
        dgram.check()?;
        Ok(dgram)
    }

    fn check(&self) -> Result<()> {
        let buf = self.buffer.as_ref();
        check_len(buf, HEADER_LEN)?;
        let len = self.len() as usize;
        if len < HEADER_LEN {
            return Err(Error::Malformed("UDP length below header length"));
        }
        check_len(buf, len)?;
        Ok(())
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::SRC_PORT.start)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::DST_PORT.start)
    }

    /// Length field (header + payload).
    pub fn len(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::LENGTH.start)
    }

    /// Whether the datagram has zero payload bytes.
    pub fn is_empty(&self) -> bool {
        self.len() as usize == HEADER_LEN
    }

    /// Checksum field (0 = not computed).
    pub fn checksum_field(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::CHECKSUM.start)
    }

    /// The datagram payload.
    pub fn payload(&self) -> &[u8] {
        let len = self.len() as usize;
        &self.buffer.as_ref()[field::PAYLOAD..len]
    }

    /// Verify the checksum given the IPv4 pseudo-header addresses. A zero
    /// checksum field means "not computed" and verifies trivially (legal for
    /// UDP over IPv4).
    pub fn verify_checksum(&self, src: &Ipv4Address, dst: &Ipv4Address) -> bool {
        if self.checksum_field() == 0 {
            return true;
        }
        let len = self.len();
        let acc = checksum::pseudo_header(src, dst, crate::ipv4::Protocol::Udp.as_u8(), len);
        checksum::finish(checksum::sum(acc, &self.buffer.as_ref()[..len as usize])) == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Datagram<T> {
    /// Set the source port.
    pub fn set_src_port(&mut self, v: u16) {
        write_u16(self.buffer.as_mut(), field::SRC_PORT.start, v);
    }

    /// Set the destination port.
    pub fn set_dst_port(&mut self, v: u16) {
        write_u16(self.buffer.as_mut(), field::DST_PORT.start, v);
    }

    /// Set the length field.
    pub fn set_len(&mut self, v: u16) {
        write_u16(self.buffer.as_mut(), field::LENGTH.start, v);
    }

    /// Mutable payload access.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let len = self.len() as usize;
        &mut self.buffer.as_mut()[field::PAYLOAD..len]
    }

    /// Compute and store the checksum using the IPv4 pseudo-header.
    pub fn fill_checksum(&mut self, src: &Ipv4Address, dst: &Ipv4Address) {
        write_u16(self.buffer.as_mut(), field::CHECKSUM.start, 0);
        let len = self.len();
        let acc = checksum::pseudo_header(src, dst, crate::ipv4::Protocol::Udp.as_u8(), len);
        let mut csum = checksum::finish(checksum::sum(acc, &self.buffer.as_ref()[..len as usize]));
        // A computed checksum of zero is transmitted as all-ones (RFC 768).
        if csum == 0 {
            csum = 0xffff;
        }
        write_u16(self.buffer.as_mut(), field::CHECKSUM.start, csum);
    }
}

/// Owned representation of a UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl UdpRepr {
    /// Parse a datagram into an owned representation.
    pub fn parse<T: AsRef<[u8]>>(dgram: &Datagram<T>) -> Result<UdpRepr> {
        dgram.check()?;
        Ok(UdpRepr {
            src_port: dgram.src_port(),
            dst_port: dgram.dst_port(),
            payload_len: dgram.len() as usize - HEADER_LEN,
        })
    }

    /// Bytes of header emitted (always [`HEADER_LEN`]).
    pub const fn header_len(&self) -> usize {
        HEADER_LEN
    }

    /// Total datagram length.
    pub fn total_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emit the header into the front of `buf` (checksum left at zero; call
    /// [`Datagram::fill_checksum`] after writing the payload).
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        check_emit_len(buf, HEADER_LEN)?;
        let total = self.total_len();
        if total > usize::from(u16::MAX) {
            return Err(Error::ValueOutOfRange("UDP length"));
        }
        let mut d = Datagram::new_unchecked(buf);
        d.set_src_port(self.src_port);
        d.set_dst_port(self.dst_port);
        d.set_len(total as u16);
        write_u16(d.buffer, field::CHECKSUM.start, 0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let repr = UdpRepr {
            src_port: 50_000,
            dst_port: MMT_TUNNEL_PORT,
            payload_len: 5,
        };
        let mut buf = vec![0u8; repr.total_len()];
        repr.emit(&mut buf).unwrap();
        buf[HEADER_LEN..].copy_from_slice(b"hello");
        buf
    }

    #[test]
    fn roundtrip() {
        let buf = sample();
        let d = Datagram::new_checked(&buf[..]).unwrap();
        assert_eq!(d.src_port(), 50_000);
        assert_eq!(d.dst_port(), MMT_TUNNEL_PORT);
        assert_eq!(d.payload(), b"hello");
        assert!(!d.is_empty());
        let repr = UdpRepr::parse(&d).unwrap();
        assert_eq!(repr.payload_len, 5);
    }

    #[test]
    fn checksum_roundtrip_and_corruption() {
        let mut buf = sample();
        let src = Ipv4Address::new(10, 0, 0, 1);
        let dst = Ipv4Address::new(10, 0, 0, 2);
        {
            let mut d = Datagram::new_checked(&mut buf[..]).unwrap();
            d.fill_checksum(&src, &dst);
        }
        let d = Datagram::new_checked(&buf[..]).unwrap();
        assert!(d.verify_checksum(&src, &dst));
        // Corrupt one payload byte: checksum must fail.
        let mut bad = buf.clone();
        bad[HEADER_LEN] ^= 0x01;
        let d = Datagram::new_checked(&bad[..]).unwrap();
        assert!(!d.verify_checksum(&src, &dst));
        // Wrong pseudo-header also fails.
        let d = Datagram::new_checked(&buf[..]).unwrap();
        assert!(!d.verify_checksum(&src, &Ipv4Address::new(10, 0, 0, 3)));
    }

    #[test]
    fn zero_checksum_verifies_trivially() {
        let buf = sample();
        let d = Datagram::new_checked(&buf[..]).unwrap();
        assert_eq!(d.checksum_field(), 0);
        assert!(d.verify_checksum(&Ipv4Address::new(1, 2, 3, 4), &Ipv4Address::new(5, 6, 7, 8)));
    }

    #[test]
    fn bad_length_field_rejected() {
        let mut buf = sample();
        buf[4] = 0;
        buf[5] = 4; // length 4 < 8
        assert!(matches!(
            Datagram::new_checked(&buf[..]),
            Err(Error::Malformed(_))
        ));
        let mut buf2 = sample();
        buf2[4] = 0xff;
        buf2[5] = 0xff; // length exceeds buffer
        assert!(matches!(
            Datagram::new_checked(&buf2[..]),
            Err(Error::Truncated { .. })
        ));
    }

    #[test]
    fn payload_mut_respects_length() {
        let mut buf = sample();
        buf.push(0xEE); // trailing byte beyond UDP length
        let mut d = Datagram::new_checked(&mut buf[..]).unwrap();
        assert_eq!(d.payload_mut().len(), 5);
        assert_eq!(d.payload().len(), 5);
    }
}
