//! The Multi-Modal Transport (MMT) protocol wire format (paper §5.2).
//!
//! The core header is deliberately tiny — instrument sensors emit it directly
//! (§5.2: "We envision instrument sensors supporting this protocol from
//! source, therefore the core header is kept very simple"):
//!
//! ```text
//!  0               1               2               3
//!  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |   config id   |           configuration data (24 bits)       |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |                      experiment id (32 bits)                  |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |        optional extension fields, fixed size, fixed order     |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! ```
//!
//! * **config id** — "essentially a version field for interpreting the
//!   values of the next field". Config id [`CONFIG_DATA_V0`] marks data
//!   packets; [`CONFIG_CONTROL_V0`] marks control messages (NAK,
//!   deadline-exceeded, backpressure).
//! * **configuration data** — for data packets, a 24-bit feature bitmap (the
//!   transport *mode*): which features are active on the current network
//!   segment. See [`Features`].
//! * **experiment id** — identifies the experiment; the top byte carries the
//!   instrument *slice* for partitioned detectors (Req 8). See
//!   [`ExperimentId`].
//!
//! After the core header comes "a variable number of fixed-size, optional
//! fields (in a fixed order) that depend on the activated features". The
//! order is the feature-bit order; layouts live in the `ext` module.
//!
//! The protocol transports discrete datagrams, not bytestreams (Req 7), and
//! on-path programmable elements may rewrite the header — activate features,
//! update the age field, add sequence numbers — which is exactly the
//! "pragmatic layering violation" the paper proposes.

mod control;
mod ext;
mod features;
mod header;
mod repr;

pub use control::{
    BackpressureRepr, ControlRepr, ControlType, DeadlineExceededRepr, ModeChangeRepr, NakRange,
    NakRepr,
};
pub use ext::{AgeExt, ExtLayout, RetransmitExt, TimelinessExt};
pub use features::Features;
pub use header::{CoreHeader, CORE_HEADER_LEN};
pub use repr::MmtRepr;

/// Config id for data packets, profile version 0.
pub const CONFIG_DATA_V0: u8 = 0;

/// Config id for control messages, profile version 0.
pub const CONFIG_CONTROL_V0: u8 = 1;

/// The experiment id field: 24-bit experiment number plus an 8-bit
/// instrument-slice id in the top byte (Req 8: "the protocol must indicate
/// which 'slice' of the instrument produced the data").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExperimentId(u32);

impl ExperimentId {
    /// Build from an experiment number (low 24 bits) and slice id.
    ///
    /// # Panics
    /// Panics if `experiment` does not fit in 24 bits.
    pub fn new(experiment: u32, slice: u8) -> ExperimentId {
        assert!(experiment < (1 << 24), "experiment number must fit 24 bits");
        ExperimentId((u32::from(slice) << 24) | experiment)
    }

    /// Reconstruct from the raw 32-bit wire value.
    pub const fn from_raw(raw: u32) -> ExperimentId {
        ExperimentId(raw)
    }

    /// The raw 32-bit wire value.
    pub const fn raw(&self) -> u32 {
        self.0
    }

    /// The 24-bit experiment number.
    pub const fn experiment(&self) -> u32 {
        self.0 & 0x00ff_ffff
    }

    /// The 8-bit instrument slice.
    pub const fn slice(&self) -> u8 {
        (self.0 >> 24) as u8
    }

    /// The same experiment on a different slice.
    pub fn with_slice(&self, slice: u8) -> ExperimentId {
        ExperimentId::new(self.experiment(), slice)
    }
}

impl core::fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "exp:{}/slice:{}", self.experiment(), self.slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_id_packing() {
        let id = ExperimentId::new(0x00_1234, 7);
        assert_eq!(id.experiment(), 0x1234);
        assert_eq!(id.slice(), 7);
        assert_eq!(id.raw(), 0x0700_1234);
        assert_eq!(ExperimentId::from_raw(id.raw()), id);
        assert_eq!(id.to_string(), "exp:4660/slice:7");
    }

    #[test]
    fn with_slice_preserves_experiment() {
        let id = ExperimentId::new(99, 0);
        let sliced = id.with_slice(3);
        assert_eq!(sliced.experiment(), 99);
        assert_eq!(sliced.slice(), 3);
    }

    #[test]
    #[should_panic(expected = "24 bits")]
    fn oversized_experiment_panics() {
        let _ = ExperimentId::new(1 << 24, 0);
    }
}
