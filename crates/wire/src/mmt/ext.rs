//! Extension-field layout.
//!
//! "After the core header, there is a variable number of fixed-size,
//! optional fields (in a fixed order) that depend on the activated features
//! (configuration bits)" (§5.2). The order is feature-bit order; each
//! feature that carries configuration values has a fixed-size slot:
//!
//! | feature        | size | contents                                        |
//! |----------------|------|-------------------------------------------------|
//! | `SEQUENCE`     | 8    | u64 sequence number                             |
//! | `RETRANSMIT`   | 6    | IPv4 retransmission source + u16 port           |
//! | `TIMELINESS`   | 12   | u64 delivery deadline (ns) + IPv4 notify addr   |
//! | `AGE`          | 8    | u56 accumulated age (ns) + u8 flags (bit0=aged) |
//! | `PACING`       | 4    | u32 pacing rate (Mbit/s)                        |
//! | `BACKPRESSURE` | 4    | u32 granted window (messages in flight)         |
//! | `PRIORITY`     | 4    | u8 class + 3 reserved bytes                     |
//!
//! `DUPLICATED`, `ENCRYPTED` and `ACK_NAK` are pure flags with no slot.

use super::features::Features;
use crate::Ipv4Address;

/// Extension sizes, in feature-bit order. `None` = flag-only feature.
const SLOTS: [(Features, usize); 10] = [
    (Features::SEQUENCE, 8),
    (Features::RETRANSMIT, 6),
    (Features::TIMELINESS, 12),
    (Features::AGE, 8),
    (Features::PACING, 4),
    (Features::BACKPRESSURE, 4),
    (Features::DUPLICATED, 0),
    (Features::ENCRYPTED, 0),
    (Features::ACK_NAK, 0),
    (Features::PRIORITY, 4),
];

/// Byte offsets (relative to the end of the core header) of each present
/// extension, computed from a feature set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExtLayout {
    /// Offset of the sequence-number slot, if present.
    pub sequence: Option<usize>,
    /// Offset of the retransmission-source slot, if present.
    pub retransmit: Option<usize>,
    /// Offset of the timeliness slot, if present.
    pub timeliness: Option<usize>,
    /// Offset of the age slot, if present.
    pub age: Option<usize>,
    /// Offset of the pacing slot, if present.
    pub pacing: Option<usize>,
    /// Offset of the backpressure slot, if present.
    pub backpressure: Option<usize>,
    /// Offset of the priority slot, if present.
    pub priority: Option<usize>,
    /// Total bytes of extensions.
    pub total: usize,
}

impl ExtLayout {
    /// Compute the layout implied by `features`.
    pub fn of(features: Features) -> ExtLayout {
        let mut layout = ExtLayout::default();
        let mut off = 0usize;
        for (bit, size) in SLOTS {
            if !features.contains(bit) {
                continue;
            }
            match bit {
                b if b == Features::SEQUENCE => layout.sequence = Some(off),
                b if b == Features::RETRANSMIT => layout.retransmit = Some(off),
                b if b == Features::TIMELINESS => layout.timeliness = Some(off),
                b if b == Features::AGE => layout.age = Some(off),
                b if b == Features::PACING => layout.pacing = Some(off),
                b if b == Features::BACKPRESSURE => layout.backpressure = Some(off),
                b if b == Features::PRIORITY => layout.priority = Some(off),
                _ => {}
            }
            off += size;
        }
        layout.total = off;
        layout
    }
}

/// The retransmission-source extension: where to send a NAK to recover lost
/// packets. "If the mode supports retransmission then there is a field that
/// specifies the IP address where to send request for retransmission"
/// (§5.2). This is what makes recovery *hop-by-hop*: the address names the
/// nearest upstream buffer (e.g. DTN 1), not the original source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RetransmitExt {
    /// IPv4 address of the retransmission buffer.
    pub source: Ipv4Address,
    /// UDP/MMT port on that buffer.
    pub port: u16,
}

/// The timeliness extension: "a field that specifies the delivery deadline
/// and where (IP address) to send a notification if that deadline is
/// exceeded" (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimelinessExt {
    /// Absolute delivery deadline, in nanoseconds of experiment time.
    pub deadline_ns: u64,
    /// Where to send the deadline-exceeded notification.
    pub notify: Ipv4Address,
}

/// The age extension: accumulated in-network age plus the "aged" flag.
/// "An element updates an 'age' field, and it additionally updates an
/// 'aged' flag if a maximum age threshold was exceeded by the time the
/// packet reached that network element" (§5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AgeExt {
    /// Accumulated age in nanoseconds (56-bit wire field: ≈2.3 years).
    pub age_ns: u64,
    /// Set once the packet exceeded the maximum-age threshold.
    pub aged: bool,
}

impl AgeExt {
    /// Maximum value the 56-bit wire field can carry.
    pub const MAX_AGE_NS: u64 = (1 << 56) - 1;

    /// Add `delta_ns` to the age, saturating at the wire maximum.
    #[must_use]
    pub fn aged_by(&self, delta_ns: u64) -> AgeExt {
        AgeExt {
            age_ns: self.age_ns.saturating_add(delta_ns).min(Self::MAX_AGE_NS),
            aged: self.aged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_layout_is_zero() {
        let l = ExtLayout::of(Features::EMPTY);
        assert_eq!(l.total, 0);
        assert_eq!(l.sequence, None);
        assert_eq!(l.age, None);
    }

    #[test]
    fn single_feature_offsets() {
        let l = ExtLayout::of(Features::AGE);
        assert_eq!(l.age, Some(0));
        assert_eq!(l.total, 8);
    }

    #[test]
    fn fixed_order_is_bit_order() {
        // Age (bit 3) always comes after retransmit (bit 1) regardless of
        // how the set was assembled.
        let l = ExtLayout::of(Features::AGE | Features::RETRANSMIT);
        assert_eq!(l.retransmit, Some(0));
        assert_eq!(l.age, Some(6));
        assert_eq!(l.total, 14);
    }

    #[test]
    fn full_wan_mode_layout() {
        let mode = Features::SEQUENCE
            | Features::RETRANSMIT
            | Features::TIMELINESS
            | Features::AGE
            | Features::ACK_NAK;
        let l = ExtLayout::of(mode);
        assert_eq!(l.sequence, Some(0));
        assert_eq!(l.retransmit, Some(8));
        assert_eq!(l.timeliness, Some(14));
        assert_eq!(l.age, Some(26));
        assert_eq!(l.total, 34);
        // Flag-only ACK_NAK adds no bytes.
        let without = ExtLayout::of(mode - Features::ACK_NAK);
        assert_eq!(without.total, l.total);
    }

    #[test]
    fn all_features_layout() {
        let l = ExtLayout::of(Features::ALL_KNOWN);
        assert_eq!(l.total, 8 + 6 + 12 + 8 + 4 + 4 + 4);
        assert_eq!(l.priority, Some(42));
    }

    #[test]
    fn age_saturates() {
        let a = AgeExt {
            age_ns: AgeExt::MAX_AGE_NS - 1,
            aged: false,
        };
        assert_eq!(a.aged_by(100).age_ns, AgeExt::MAX_AGE_NS);
        let b = AgeExt::default().aged_by(250);
        assert_eq!(b.age_ns, 250);
        assert!(!b.aged);
    }
}
