//! The 24-bit feature bitmap carried in the configuration-data field.
//!
//! "The configuration data bits activate protocol features such as flow or
//! congestion control, or describe the acknowledgement scheme — if any —
//! used in a network segment" (§5.2). The combination of config id and these
//! bits *is* the transport's mode.

use crate::{Error, Result};

/// Feature bits active on the current network segment.
///
/// Feature bits both activate behaviour and, for some features, imply a
/// fixed-size extension field after the core header (in bit order — the
/// paper's "fixed order"). A hand-rolled bitflags type keeps us free of
/// extra dependencies and lets us enforce the 24-bit width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Features(u32);

impl Features {
    /// No features: mode 0, pure experiment identification (§5.3).
    pub const EMPTY: Features = Features(0);

    /// Packets carry a 64-bit sequence number (extension: 8 bytes).
    /// "Network elements add a sequence number to loss-recoverable
    /// streams" (§5.4).
    pub const SEQUENCE: Features = Features(1 << 0);

    /// Loss is recoverable: the header names the address to request
    /// retransmission from (extension: 6 bytes, IPv4 + port). The
    /// hop-by-hop generalization of X.25 behaviour (§5.3).
    pub const RETRANSMIT: Features = Features(1 << 1);

    /// Delivery deadline plus notification address for "deadline exceeded"
    /// messages (extension: 12 bytes) — Req 3 timeliness.
    pub const TIMELINESS: Features = Features(1 << 2);

    /// Age tracking: accumulated in-network age and an "aged" flag updated
    /// by network elements (extension: 8 bytes) — §5.4 age-sensitivity.
    pub const AGE: Features = Features(1 << 3);

    /// Sender pacing rate hint (extension: 4 bytes, Mbit/s).
    pub const PACING: Features = Features(1 << 4);

    /// Backpressure-responsive: carries the downstream-granted window
    /// (extension: 4 bytes, messages in flight) — §5.1 back-pressure signal
    /// support.
    pub const BACKPRESSURE: Features = Features(1 << 5);

    /// Stream was duplicated in-network to reach additional consumers
    /// (no extension) — §5.1 stream duplication.
    pub const DUPLICATED: Features = Features(1 << 6);

    /// Payload is encrypted by third-party software/hardware (no
    /// extension) — Req 5.
    pub const ENCRYPTED: Features = Features(1 << 7);

    /// The acknowledgement scheme of this segment is NAK-based (no
    /// extension; NAKs go to the retransmit source).
    pub const ACK_NAK: Features = Features(1 << 8);

    /// Priority class for age-sensitive data (extension: 4 bytes:
    /// class byte + 3 reserved).
    pub const PRIORITY: Features = Features(1 << 9);

    /// Mask of all currently defined bits.
    pub const ALL_KNOWN: Features = Features(0x3ff);

    /// Mask of the full 24-bit field.
    pub const WIRE_MASK: u32 = 0x00ff_ffff;

    /// Construct from raw bits, rejecting reserved or out-of-range bits.
    pub fn from_bits(bits: u32) -> Result<Features> {
        if bits & !Self::WIRE_MASK != 0 {
            return Err(Error::Malformed("feature bits beyond 24-bit field"));
        }
        if bits & !Self::ALL_KNOWN.0 != 0 {
            return Err(Error::Malformed("reserved feature bit set"));
        }
        Ok(Features(bits))
    }

    /// Construct from raw bits, keeping only known bits (lenient parse used
    /// by forwarding elements that must not drop packets with features from
    /// newer deployments).
    pub fn from_bits_truncate(bits: u32) -> Features {
        Features(bits & Self::ALL_KNOWN.0)
    }

    /// The raw 24-bit value.
    pub const fn bits(&self) -> u32 {
        self.0
    }

    /// Whether every bit in `other` is set in `self`.
    pub const fn contains(&self, other: Features) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether any bit in `other` is set in `self`.
    pub const fn intersects(&self, other: Features) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether no features are active (mode 0).
    pub const fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Union.
    #[must_use]
    pub const fn union(&self, other: Features) -> Features {
        Features(self.0 | other.0)
    }

    /// Set difference.
    #[must_use]
    pub const fn difference(&self, other: Features) -> Features {
        Features(self.0 & !other.0)
    }

    /// Intersection.
    #[must_use]
    pub const fn intersection(&self, other: Features) -> Features {
        Features(self.0 & other.0)
    }
}

impl core::ops::BitOr for Features {
    type Output = Features;
    fn bitor(self, rhs: Features) -> Features {
        self.union(rhs)
    }
}

impl core::ops::BitOrAssign for Features {
    fn bitor_assign(&mut self, rhs: Features) {
        self.0 |= rhs.0;
    }
}

impl core::ops::BitAnd for Features {
    type Output = Features;
    fn bitand(self, rhs: Features) -> Features {
        self.intersection(rhs)
    }
}

impl core::ops::Sub for Features {
    type Output = Features;
    fn sub(self, rhs: Features) -> Features {
        self.difference(rhs)
    }
}

impl core::fmt::Display for Features {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_empty() {
            return write!(f, "none");
        }
        let names = [
            (Features::SEQUENCE, "seq"),
            (Features::RETRANSMIT, "rtx"),
            (Features::TIMELINESS, "deadline"),
            (Features::AGE, "age"),
            (Features::PACING, "pacing"),
            (Features::BACKPRESSURE, "bp"),
            (Features::DUPLICATED, "dup"),
            (Features::ENCRYPTED, "enc"),
            (Features::ACK_NAK, "nak"),
            (Features::PRIORITY, "prio"),
        ];
        let mut first = true;
        for (bit, name) in names {
            if self.contains(bit) {
                if !first {
                    write!(f, "+")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_operations() {
        let a = Features::SEQUENCE | Features::AGE;
        assert!(a.contains(Features::SEQUENCE));
        assert!(a.contains(Features::AGE));
        assert!(!a.contains(Features::SEQUENCE | Features::RETRANSMIT));
        assert!(a.intersects(Features::SEQUENCE | Features::RETRANSMIT));
        assert_eq!(a - Features::AGE, Features::SEQUENCE);
        assert_eq!(a & Features::AGE, Features::AGE);
        assert!(Features::EMPTY.is_empty());
        let mut b = Features::EMPTY;
        b |= Features::PRIORITY;
        assert!(b.contains(Features::PRIORITY));
    }

    #[test]
    fn from_bits_validation() {
        assert_eq!(
            Features::from_bits(0b11).unwrap(),
            Features::SEQUENCE | Features::RETRANSMIT
        );
        // Reserved bit 10 rejected strictly, kept off leniently.
        assert!(Features::from_bits(1 << 10).is_err());
        assert_eq!(Features::from_bits_truncate(1 << 10), Features::EMPTY);
        // Beyond 24 bits always rejected.
        assert!(Features::from_bits(1 << 24).is_err());
        assert_eq!(
            Features::from_bits_truncate((1 << 0) | (1 << 23)),
            Features::SEQUENCE
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(Features::EMPTY.to_string(), "none");
        let m = Features::SEQUENCE | Features::RETRANSMIT | Features::AGE | Features::ACK_NAK;
        assert_eq!(m.to_string(), "seq+rtx+age+nak");
    }

    #[test]
    fn all_known_covers_each_flag() {
        for bit in [
            Features::SEQUENCE,
            Features::RETRANSMIT,
            Features::TIMELINESS,
            Features::AGE,
            Features::PACING,
            Features::BACKPRESSURE,
            Features::DUPLICATED,
            Features::ENCRYPTED,
            Features::ACK_NAK,
            Features::PRIORITY,
        ] {
            assert!(Features::ALL_KNOWN.contains(bit));
        }
    }
}
