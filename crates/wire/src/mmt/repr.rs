//! Owned representation of an MMT header — the type mode-transition
//! elements manipulate when they re-emit a header with a different feature
//! set.

use super::ext::{AgeExt, ExtLayout, RetransmitExt, TimelinessExt};
use super::features::Features;
use super::header::{CoreHeader, CORE_HEADER_LEN};
use super::{ExperimentId, CONFIG_CONTROL_V0, CONFIG_DATA_V0};
use crate::error::check_emit_len;
use crate::{Error, Ipv4Address, Result};

/// Owned, structured form of an MMT header.
///
/// Invariant: a configuration-value field is `Some` *iff* the corresponding
/// feature bit is set — enforced by construction (the `with_*` builders set
/// both) and validated by [`MmtRepr::parse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmtRepr {
    /// The configuration id ([`CONFIG_DATA_V0`] for data packets).
    pub config_id: u8,
    /// Active features (the mode, together with `config_id`).
    pub features: Features,
    /// Experiment and slice.
    pub experiment: ExperimentId,
    sequence: Option<u64>,
    retransmit: Option<RetransmitExt>,
    timeliness: Option<TimelinessExt>,
    age: Option<AgeExt>,
    pacing_mbps: Option<u32>,
    backpressure_window: Option<u32>,
    priority_class: Option<u8>,
    /// For control messages (`config_id == CONFIG_CONTROL_V0`) the
    /// config-data field carries the message type instead of feature bits.
    control_type_raw: Option<u8>,
}

impl MmtRepr {
    /// A mode-0 data header: pure experiment identification (§5.3).
    pub fn data(experiment: ExperimentId) -> MmtRepr {
        MmtRepr {
            config_id: CONFIG_DATA_V0,
            features: Features::EMPTY,
            experiment,
            sequence: None,
            retransmit: None,
            timeliness: None,
            age: None,
            pacing_mbps: None,
            backpressure_window: None,
            priority_class: None,
            control_type_raw: None,
        }
    }

    /// A control-message header (the control body follows as payload).
    pub fn control(experiment: ExperimentId, control_type: u8) -> MmtRepr {
        let mut r = MmtRepr::data(experiment);
        r.config_id = CONFIG_CONTROL_V0;
        // For control messages the config-data field carries the message
        // type rather than feature bits.
        r.features = Features::from_bits_truncate(0);
        r.control_type_raw = Some(control_type);
        r
    }

    // Control messages reuse the config-data field for their type; this is
    // modelled as a separate optional to keep `features` meaningful for data
    // packets only.
    #[doc(hidden)]
    pub fn control_type(&self) -> Option<u8> {
        self.control_type_raw
    }

    /// Activate `SEQUENCE` with the given sequence number.
    #[must_use]
    pub fn with_sequence(mut self, seq: u64) -> MmtRepr {
        self.features |= Features::SEQUENCE;
        self.sequence = Some(seq);
        self
    }

    /// Activate `RETRANSMIT` pointing at the given buffer.
    #[must_use]
    pub fn with_retransmit(mut self, source: Ipv4Address, port: u16) -> MmtRepr {
        self.features |= Features::RETRANSMIT;
        self.retransmit = Some(RetransmitExt { source, port });
        self
    }

    /// Activate `TIMELINESS` with a deadline and notification address.
    #[must_use]
    pub fn with_timeliness(mut self, deadline_ns: u64, notify: Ipv4Address) -> MmtRepr {
        self.features |= Features::TIMELINESS;
        self.timeliness = Some(TimelinessExt {
            deadline_ns,
            notify,
        });
        self
    }

    /// Activate `AGE` with an initial age and aged flag.
    #[must_use]
    pub fn with_age(mut self, age_ns: u64, aged: bool) -> MmtRepr {
        self.features |= Features::AGE;
        self.age = Some(AgeExt { age_ns, aged });
        self
    }

    /// Activate `PACING` with a rate in Mbit/s.
    #[must_use]
    pub fn with_pacing(mut self, mbps: u32) -> MmtRepr {
        self.features |= Features::PACING;
        self.pacing_mbps = Some(mbps);
        self
    }

    /// Activate `BACKPRESSURE` with a granted window.
    #[must_use]
    pub fn with_backpressure(mut self, window: u32) -> MmtRepr {
        self.features |= Features::BACKPRESSURE;
        self.backpressure_window = Some(window);
        self
    }

    /// Activate `PRIORITY` with a class.
    #[must_use]
    pub fn with_priority(mut self, class: u8) -> MmtRepr {
        self.features |= Features::PRIORITY;
        self.priority_class = Some(class);
        self
    }

    /// Set flag-only features (`DUPLICATED`, `ENCRYPTED`, `ACK_NAK`).
    ///
    /// # Panics
    /// Debug-panics if a slot-carrying feature is passed; those must go
    /// through their typed `with_*` builder so the value is provided.
    #[must_use]
    pub fn with_flags(mut self, flags: Features) -> MmtRepr {
        debug_assert_eq!(
            ExtLayout::of(flags).total,
            0,
            "use the typed with_* builder for slot-carrying features"
        );
        self.features |= flags;
        self
    }

    /// Deactivate features, dropping their configuration values. This is
    /// what a WAN→DAQ-style *downgrade* transition does.
    #[must_use]
    pub fn without(mut self, features: Features) -> MmtRepr {
        self.features = self.features - features;
        if !self.features.contains(Features::SEQUENCE) {
            self.sequence = None;
        }
        if !self.features.contains(Features::RETRANSMIT) {
            self.retransmit = None;
        }
        if !self.features.contains(Features::TIMELINESS) {
            self.timeliness = None;
        }
        if !self.features.contains(Features::AGE) {
            self.age = None;
        }
        if !self.features.contains(Features::PACING) {
            self.pacing_mbps = None;
        }
        if !self.features.contains(Features::BACKPRESSURE) {
            self.backpressure_window = None;
        }
        if !self.features.contains(Features::PRIORITY) {
            self.priority_class = None;
        }
        self
    }

    /// Sequence number, if active.
    pub fn sequence(&self) -> Option<u64> {
        self.sequence
    }

    /// Retransmission source, if active.
    pub fn retransmit(&self) -> Option<RetransmitExt> {
        self.retransmit
    }

    /// Timeliness configuration, if active.
    pub fn timeliness(&self) -> Option<TimelinessExt> {
        self.timeliness
    }

    /// Age state, if active.
    pub fn age(&self) -> Option<AgeExt> {
        self.age
    }

    /// Pacing rate, if active.
    pub fn pacing_mbps(&self) -> Option<u32> {
        self.pacing_mbps
    }

    /// Backpressure window, if active.
    pub fn backpressure_window(&self) -> Option<u32> {
        self.backpressure_window
    }

    /// Priority class, if active.
    pub fn priority_class(&self) -> Option<u8> {
        self.priority_class
    }

    /// Total header length this representation emits.
    pub fn header_len(&self) -> usize {
        CORE_HEADER_LEN + ExtLayout::of(self.features).total
    }

    /// Parse a header (and its extensions) from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<MmtRepr> {
        let hdr = CoreHeader::new_checked(buf)?;
        match hdr.config_id() {
            CONFIG_DATA_V0 => {
                // Strict feature validation for end hosts.
                let features = Features::from_bits(hdr.config_data())?;
                let mut repr = MmtRepr::data(hdr.experiment());
                repr.features = features;
                repr.sequence = hdr.sequence();
                repr.retransmit = hdr.retransmit();
                repr.timeliness = hdr.timeliness();
                repr.age = hdr.age();
                repr.pacing_mbps = hdr.pacing_mbps();
                repr.backpressure_window = hdr.backpressure_window();
                repr.priority_class = hdr.priority_class();
                Ok(repr)
            }
            CONFIG_CONTROL_V0 => {
                let control_type = (hdr.config_data() & 0xff) as u8;
                Ok(MmtRepr::control(hdr.experiment(), control_type))
            }
            other => Err(Error::UnknownVersion(other)),
        }
    }

    /// Emit the header into the front of `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        let len = self.header_len();
        check_emit_len(buf, len)?;
        buf[..len].fill(0);
        let mut hdr = CoreHeader::new_unchecked(buf);
        hdr.set_config_id(self.config_id);
        match self.config_id {
            CONFIG_CONTROL_V0 => {
                hdr.set_config_data(u32::from(self.control_type_raw.unwrap_or(0)));
            }
            _ => hdr.set_config_data(self.features.bits()),
        }
        hdr.set_experiment(self.experiment);
        if let Some(seq) = self.sequence {
            hdr.set_sequence(seq);
        }
        if let Some(r) = self.retransmit {
            hdr.set_retransmit(r);
        }
        if let Some(t) = self.timeliness {
            hdr.set_timeliness(t);
        }
        if let Some(a) = self.age {
            hdr.set_age(a);
        }
        if let Some(p) = self.pacing_mbps {
            hdr.set_pacing_mbps(p);
        }
        if let Some(w) = self.backpressure_window {
            hdr.set_backpressure_window(w);
        }
        if let Some(c) = self.priority_class {
            hdr.set_priority_class(c);
        }
        Ok(())
    }

    /// Zero-copy emit: write the header into the front of a
    /// caller-owned buffer (typically a `PacketArena` slot) and return
    /// the offset where the payload region begins. The bytes at
    /// `buf[returned..]` are left untouched, so a payload already in
    /// place survives and nothing is allocated.
    ///
    /// Returns [`Error::BufferTooSmall`] (never panics) when `buf`
    /// cannot hold the header.
    pub fn encode_into(&self, buf: &mut [u8]) -> Result<usize> {
        self.emit(buf)?;
        Ok(self.header_len())
    }

    /// Zero-copy parse: read the header from the front of `buf` and
    /// return it together with the borrowed payload slice. No
    /// allocation; malformed or truncated input returns `Err` exactly
    /// like [`MmtRepr::parse`].
    pub fn decode_from(buf: &[u8]) -> Result<(MmtRepr, &[u8])> {
        let repr = MmtRepr::parse(buf)?;
        Ok((repr, &buf[repr.header_len()..]))
    }

    /// Emit header + payload into a fresh buffer.
    // mmt-lint: cold
    pub fn emit_with_payload(&self, payload: &[u8]) -> Vec<u8> {
        let hlen = self.header_len();
        let mut buf = vec![0u8; hlen + payload.len()];
        self.emit(&mut buf).expect("sized above"); // mmt-lint: allow(P1, "buffer sized with header_len one line above")
        buf[hlen..].copy_from_slice(payload);
        buf
    }

    // -- private --
    #[doc(hidden)]
    pub fn is_control(&self) -> bool {
        self.config_id == CONFIG_CONTROL_V0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_extensions() {
        let repr = MmtRepr::data(ExperimentId::new(5, 2))
            .with_sequence(0xDEAD)
            .with_retransmit(Ipv4Address::new(192, 168, 1, 1), 9000)
            .with_timeliness(123_456_789, Ipv4Address::new(192, 168, 1, 2))
            .with_age(777, true)
            .with_pacing(100_000)
            .with_backpressure(64)
            .with_priority(3)
            .with_flags(Features::ACK_NAK | Features::ENCRYPTED);
        let mut buf = vec![0u8; repr.header_len()];
        repr.emit(&mut buf).unwrap();
        let parsed = MmtRepr::parse(&buf).unwrap();
        assert_eq!(parsed, repr);
    }

    #[test]
    fn mode0_is_just_core_header() {
        let repr = MmtRepr::data(ExperimentId::new(1, 0));
        assert_eq!(repr.header_len(), CORE_HEADER_LEN);
        let buf = repr.emit_with_payload(b"payload");
        assert_eq!(buf.len(), CORE_HEADER_LEN + 7);
        let parsed = MmtRepr::parse(&buf).unwrap();
        assert_eq!(parsed.features, Features::EMPTY);
    }

    #[test]
    fn without_drops_values() {
        let repr = MmtRepr::data(ExperimentId::new(1, 0))
            .with_sequence(1)
            .with_age(10, false);
        let down = repr.without(Features::AGE);
        assert_eq!(down.age(), None);
        assert_eq!(down.sequence(), Some(1));
        assert_eq!(down.header_len(), CORE_HEADER_LEN + 8);
    }

    #[test]
    fn strict_parse_rejects_reserved_bits() {
        let repr = MmtRepr::data(ExperimentId::new(1, 0));
        let mut buf = vec![0u8; repr.header_len()];
        repr.emit(&mut buf).unwrap();
        // Config data occupies bytes 1..4 big-endian; reserved bit 10 sits
        // in the middle byte (bits 8..16) at mask 0x04.
        buf[2] |= 0x04;
        assert!(matches!(MmtRepr::parse(&buf), Err(Error::Malformed(_))));
    }

    #[test]
    fn unknown_config_id_rejected() {
        let repr = MmtRepr::data(ExperimentId::new(1, 0));
        let mut buf = vec![0u8; repr.header_len()];
        repr.emit(&mut buf).unwrap();
        buf[0] = 0x7F;
        assert_eq!(MmtRepr::parse(&buf), Err(Error::UnknownVersion(0x7F)));
    }

    #[test]
    fn control_roundtrip() {
        let repr = MmtRepr::control(ExperimentId::new(2, 0), 3);
        assert!(repr.is_control());
        let mut buf = vec![0u8; repr.header_len()];
        repr.emit(&mut buf).unwrap();
        let parsed = MmtRepr::parse(&buf).unwrap();
        assert!(parsed.is_control());
        assert_eq!(parsed.control_type(), Some(3));
        assert_eq!(parsed.experiment, ExperimentId::new(2, 0));
    }

    #[test]
    fn emit_buffer_too_small() {
        let repr = MmtRepr::data(ExperimentId::new(1, 0)).with_sequence(0);
        let mut buf = vec![0u8; repr.header_len() - 1];
        assert!(matches!(
            repr.emit(&mut buf),
            Err(Error::BufferTooSmall { .. })
        ));
    }

    #[test]
    fn mode_upgrade_preserves_payload_semantics() {
        // What a DAQ→WAN border element does: parse, add features, re-emit.
        let payload = b"trigger-record";
        let sensor = MmtRepr::data(ExperimentId::new(2, 0));
        let pkt = sensor.emit_with_payload(payload);
        let parsed = MmtRepr::parse(&pkt).unwrap();
        let upgraded = parsed
            .with_sequence(1)
            .with_retransmit(Ipv4Address::new(10, 0, 0, 5), 47_000)
            .with_age(0, false)
            .with_flags(Features::ACK_NAK);
        let out = upgraded.emit_with_payload(&pkt[parsed.header_len()..]);
        let reparsed = MmtRepr::parse(&out).unwrap();
        assert_eq!(reparsed.experiment, ExperimentId::new(2, 0));
        assert_eq!(&out[reparsed.header_len()..], payload);
        assert!(out.len() > pkt.len());
    }
}
