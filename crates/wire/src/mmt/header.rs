//! The zero-copy MMT header view.

use super::ext::{AgeExt, ExtLayout, RetransmitExt, TimelinessExt};
use super::features::Features;
use super::ExperimentId;
use crate::error::check_len;
use crate::field::{read_u16, write_u16};
use crate::field::{
    read_u24, read_u32, read_u56, read_u64, write_u24, write_u32, write_u56, write_u64,
};
use crate::{Ipv4Address, Result};

/// Length of the fixed core header: config id (1) + config data (3) +
/// experiment id (4).
pub const CORE_HEADER_LEN: usize = 8;

mod field {
    use crate::field::Field;
    pub const CONFIG_ID: usize = 0;
    pub const CONFIG_DATA: Field = 1..4;
    pub const EXPERIMENT: Field = 4..8;
    pub const EXT: usize = 8;
}

/// A read/write view of an MMT packet (core header + extensions + payload).
///
/// The view supports the in-place header updates that on-path programmable
/// elements perform: updating age, setting the aged flag, writing sequence
/// numbers into an already-present slot, rewriting the retransmission
/// source. *Adding* a feature changes the header length and therefore
/// requires re-emitting via [`super::MmtRepr`] — exactly the operation a
/// mode-transition element performs.
#[derive(Debug, Clone)]
pub struct CoreHeader<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> CoreHeader<T> {
    /// Wrap a buffer without validation.
    pub fn new_unchecked(buffer: T) -> CoreHeader<T> {
        CoreHeader { buffer }
    }

    /// Wrap a buffer, validating that the core header and all extensions
    /// declared by its feature bits are present.
    pub fn new_checked(buffer: T) -> Result<CoreHeader<T>> {
        let hdr = CoreHeader { buffer };
        hdr.check()?;
        Ok(hdr)
    }

    fn check(&self) -> Result<()> {
        let buf = self.buffer.as_ref();
        check_len(buf, CORE_HEADER_LEN)?;
        check_len(buf, CORE_HEADER_LEN + self.layout().total)?;
        Ok(())
    }

    /// Consume the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// The configuration id.
    pub fn config_id(&self) -> u8 {
        self.buffer.as_ref()[field::CONFIG_ID]
    }

    /// The raw 24-bit configuration data.
    pub fn config_data(&self) -> u32 {
        read_u24(self.buffer.as_ref(), field::CONFIG_DATA.start)
    }

    /// The feature set (lenient: unknown bits ignored, as a forwarding
    /// element must tolerate newer deployments).
    ///
    /// Control packets repurpose the config-data field for the message
    /// type, so they report an empty feature set — their header is just the
    /// fixed core header.
    pub fn features(&self) -> Features {
        if self.config_id() == super::CONFIG_DATA_V0 {
            Features::from_bits_truncate(self.config_data())
        } else {
            Features::EMPTY
        }
    }

    /// The experiment id.
    pub fn experiment(&self) -> ExperimentId {
        ExperimentId::from_raw(read_u32(self.buffer.as_ref(), field::EXPERIMENT.start))
    }

    /// The extension layout implied by the feature bits.
    pub fn layout(&self) -> ExtLayout {
        ExtLayout::of(self.features())
    }

    /// Total header length (core + extensions).
    pub fn header_len(&self) -> usize {
        CORE_HEADER_LEN + self.layout().total
    }

    /// The payload following the header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len()..]
    }

    fn ext_off(&self, slot: Option<usize>) -> Option<usize> {
        slot.map(|o| field::EXT + o)
    }

    /// Sequence number, if the `SEQUENCE` feature is active.
    pub fn sequence(&self) -> Option<u64> {
        self.ext_off(self.layout().sequence)
            .map(|o| read_u64(self.buffer.as_ref(), o))
    }

    /// Retransmission source, if the `RETRANSMIT` feature is active.
    pub fn retransmit(&self) -> Option<RetransmitExt> {
        self.ext_off(self.layout().retransmit).map(|o| {
            let buf = self.buffer.as_ref();
            RetransmitExt {
                source: Ipv4Address::from_bytes(&buf[o..o + 4]),
                port: read_u16(buf, o + 4),
            }
        })
    }

    /// Timeliness configuration, if the `TIMELINESS` feature is active.
    pub fn timeliness(&self) -> Option<TimelinessExt> {
        self.ext_off(self.layout().timeliness).map(|o| {
            let buf = self.buffer.as_ref();
            TimelinessExt {
                deadline_ns: read_u64(buf, o),
                notify: Ipv4Address::from_bytes(&buf[o + 8..o + 12]),
            }
        })
    }

    /// Age state, if the `AGE` feature is active.
    pub fn age(&self) -> Option<AgeExt> {
        self.ext_off(self.layout().age).map(|o| {
            let buf = self.buffer.as_ref();
            AgeExt {
                age_ns: read_u56(buf, o),
                aged: buf[o + 7] & 0x01 != 0,
            }
        })
    }

    /// Pacing rate in Mbit/s, if the `PACING` feature is active.
    pub fn pacing_mbps(&self) -> Option<u32> {
        self.ext_off(self.layout().pacing)
            .map(|o| read_u32(self.buffer.as_ref(), o))
    }

    /// Granted backpressure window, if the `BACKPRESSURE` feature is active.
    pub fn backpressure_window(&self) -> Option<u32> {
        self.ext_off(self.layout().backpressure)
            .map(|o| read_u32(self.buffer.as_ref(), o))
    }

    /// Priority class, if the `PRIORITY` feature is active.
    pub fn priority_class(&self) -> Option<u8> {
        self.ext_off(self.layout().priority)
            .map(|o| self.buffer.as_ref()[o])
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> CoreHeader<T> {
    /// Set the configuration id.
    pub fn set_config_id(&mut self, v: u8) {
        self.buffer.as_mut()[field::CONFIG_ID] = v;
    }

    /// Set the raw configuration data. **Note**: changing feature bits in
    /// place does not move extension bytes; use [`super::MmtRepr`] to change
    /// modes. This accessor exists for flag-only bits (e.g. `DUPLICATED`).
    pub fn set_config_data(&mut self, v: u32) {
        write_u24(self.buffer.as_mut(), field::CONFIG_DATA.start, v);
    }

    /// Set a flag-only feature bit in place (panics in debug builds if the
    /// bit carries an extension slot, which would desynchronize the layout).
    pub fn set_flag(&mut self, flag: Features) {
        debug_assert_eq!(
            ExtLayout::of(flag).total,
            0,
            "in-place set_flag only valid for flag-only features"
        );
        let bits = self.config_data() | flag.bits();
        self.set_config_data(bits);
    }

    /// Set the experiment id.
    pub fn set_experiment(&mut self, id: ExperimentId) {
        write_u32(self.buffer.as_mut(), field::EXPERIMENT.start, id.raw());
    }

    /// Write the sequence number. Returns `false` if the slot is absent.
    pub fn set_sequence(&mut self, seq: u64) -> bool {
        match self.ext_off(self.layout().sequence) {
            Some(o) => {
                write_u64(self.buffer.as_mut(), o, seq);
                true
            }
            None => false,
        }
    }

    /// Write the retransmission source. Returns `false` if absent.
    pub fn set_retransmit(&mut self, ext: RetransmitExt) -> bool {
        match self.ext_off(self.layout().retransmit) {
            Some(o) => {
                let buf = self.buffer.as_mut();
                buf[o..o + 4].copy_from_slice(ext.source.as_bytes());
                write_u16(buf, o + 4, ext.port);
                true
            }
            None => false,
        }
    }

    /// Write the timeliness configuration. Returns `false` if absent.
    pub fn set_timeliness(&mut self, ext: TimelinessExt) -> bool {
        match self.ext_off(self.layout().timeliness) {
            Some(o) => {
                let buf = self.buffer.as_mut();
                write_u64(buf, o, ext.deadline_ns);
                buf[o + 8..o + 12].copy_from_slice(ext.notify.as_bytes());
                true
            }
            None => false,
        }
    }

    /// Write the age state. Returns `false` if absent.
    pub fn set_age(&mut self, ext: AgeExt) -> bool {
        match self.ext_off(self.layout().age) {
            Some(o) => {
                let buf = self.buffer.as_mut();
                write_u56(buf, o, ext.age_ns.min(AgeExt::MAX_AGE_NS));
                buf[o + 7] = (buf[o + 7] & !0x01) | u8::from(ext.aged);
                true
            }
            None => false,
        }
    }

    /// The in-place age update a network element performs (§5.4): add
    /// `delta_ns` to the age and set the aged flag if the new age exceeds
    /// `max_age_ns`. Returns the updated state, or `None` if the feature is
    /// inactive.
    pub fn update_age(&mut self, delta_ns: u64, max_age_ns: u64) -> Option<AgeExt> {
        let current = self.age()?;
        let mut next = current.aged_by(delta_ns);
        if next.age_ns > max_age_ns {
            next.aged = true;
        }
        self.set_age(next);
        Some(next)
    }

    /// Write the pacing rate. Returns `false` if absent.
    pub fn set_pacing_mbps(&mut self, rate: u32) -> bool {
        match self.ext_off(self.layout().pacing) {
            Some(o) => {
                write_u32(self.buffer.as_mut(), o, rate);
                true
            }
            None => false,
        }
    }

    /// Write the backpressure window. Returns `false` if absent.
    pub fn set_backpressure_window(&mut self, window: u32) -> bool {
        match self.ext_off(self.layout().backpressure) {
            Some(o) => {
                write_u32(self.buffer.as_mut(), o, window);
                true
            }
            None => false,
        }
    }

    /// Write the priority class. Returns `false` if absent.
    pub fn set_priority_class(&mut self, class: u8) -> bool {
        match self.ext_off(self.layout().priority) {
            Some(o) => {
                let buf = self.buffer.as_mut();
                buf[o] = class;
                buf[o + 1] = 0;
                buf[o + 2] = 0;
                buf[o + 3] = 0;
                true
            }
            None => false,
        }
    }

    /// Mutable payload access.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let off = self.header_len();
        &mut self.buffer.as_mut()[off..]
    }
}

#[cfg(test)]
mod tests {
    use super::super::{MmtRepr, CONFIG_DATA_V0};
    use super::*;

    fn wan_packet() -> Vec<u8> {
        let repr = MmtRepr::data(ExperimentId::new(2, 1))
            .with_sequence(7)
            .with_retransmit(Ipv4Address::new(10, 0, 0, 5), 47_000)
            .with_timeliness(1_000_000, Ipv4Address::new(10, 0, 0, 9))
            .with_age(500, false)
            .with_flags(Features::ACK_NAK);
        let mut buf = vec![0u8; repr.header_len() + 4];
        repr.emit(&mut buf).unwrap();
        buf[repr.header_len()..].copy_from_slice(&[9, 9, 9, 9]);
        buf
    }

    #[test]
    fn view_reads_all_fields() {
        let buf = wan_packet();
        let hdr = CoreHeader::new_checked(&buf[..]).unwrap();
        assert_eq!(hdr.config_id(), CONFIG_DATA_V0);
        assert_eq!(hdr.experiment(), ExperimentId::new(2, 1));
        assert_eq!(hdr.sequence(), Some(7));
        assert_eq!(
            hdr.retransmit(),
            Some(RetransmitExt {
                source: Ipv4Address::new(10, 0, 0, 5),
                port: 47_000
            })
        );
        assert_eq!(
            hdr.timeliness(),
            Some(TimelinessExt {
                deadline_ns: 1_000_000,
                notify: Ipv4Address::new(10, 0, 0, 9)
            })
        );
        assert_eq!(
            hdr.age(),
            Some(AgeExt {
                age_ns: 500,
                aged: false
            })
        );
        assert_eq!(hdr.payload(), &[9, 9, 9, 9]);
        assert!(hdr.features().contains(Features::ACK_NAK));
        assert_eq!(hdr.pacing_mbps(), None);
    }

    #[test]
    fn truncated_extension_rejected() {
        let buf = wan_packet();
        let hdr_len = CoreHeader::new_checked(&buf[..]).unwrap().header_len();
        // Cut inside the extension area.
        assert!(CoreHeader::new_checked(&buf[..hdr_len - 2]).is_err());
        // Core-only truncation also rejected.
        assert!(CoreHeader::new_checked(&buf[..4]).is_err());
    }

    #[test]
    fn in_place_age_update() {
        let mut buf = wan_packet();
        let mut hdr = CoreHeader::new_checked(&mut buf[..]).unwrap();
        let updated = hdr.update_age(1_000, 10_000).unwrap();
        assert_eq!(updated.age_ns, 1_500);
        assert!(!updated.aged);
        // Exceed the threshold: aged flag latches.
        let updated = hdr.update_age(20_000, 10_000).unwrap();
        assert!(updated.aged);
        assert!(hdr.age().unwrap().aged);
        // Aged flag stays set even when later elements see slack.
        let updated = hdr.update_age(1, u64::MAX).unwrap();
        assert!(updated.aged);
    }

    #[test]
    fn setters_fail_for_absent_slots() {
        let repr = MmtRepr::data(ExperimentId::new(1, 0));
        let mut buf = vec![0u8; repr.header_len()];
        repr.emit(&mut buf).unwrap();
        let mut hdr = CoreHeader::new_checked(&mut buf[..]).unwrap();
        assert!(!hdr.set_sequence(1));
        assert!(!hdr.set_age(AgeExt::default()));
        assert!(!hdr.set_pacing_mbps(100));
        assert!(!hdr.set_backpressure_window(10));
        assert!(!hdr.set_priority_class(1));
        assert!(!hdr.set_retransmit(RetransmitExt {
            source: Ipv4Address::UNSPECIFIED,
            port: 0
        }));
        assert!(!hdr.set_timeliness(TimelinessExt {
            deadline_ns: 0,
            notify: Ipv4Address::UNSPECIFIED
        }));
        assert_eq!(hdr.sequence(), None);
    }

    #[test]
    fn flag_only_feature_set_in_place() {
        let mut buf = wan_packet();
        let before_len = CoreHeader::new_checked(&buf[..]).unwrap().header_len();
        let mut hdr = CoreHeader::new_unchecked(&mut buf[..]);
        hdr.set_flag(Features::DUPLICATED);
        assert!(hdr.features().contains(Features::DUPLICATED));
        assert_eq!(hdr.header_len(), before_len);
        // Payload is unchanged.
        assert_eq!(hdr.payload(), &[9, 9, 9, 9]);
    }

    #[test]
    fn payload_mut_writes_through() {
        let mut buf = wan_packet();
        let mut hdr = CoreHeader::new_checked(&mut buf[..]).unwrap();
        hdr.payload_mut()[0] = 0x42;
        assert_eq!(hdr.payload()[0], 0x42);
    }

    #[test]
    fn sequence_rewrite_in_place() {
        let mut buf = wan_packet();
        let mut hdr = CoreHeader::new_checked(&mut buf[..]).unwrap();
        assert!(hdr.set_sequence(u64::MAX));
        assert_eq!(hdr.sequence(), Some(u64::MAX));
    }
}
