//! MMT control messages.
//!
//! Control messages are MMT packets whose config id is
//! [`super::CONFIG_CONTROL_V0`]; the config-data field carries the message
//! type and the payload carries the typed body. Three messages realize the
//! paper's control signalling:
//!
//! * **NAK** — sent by a receiver to the retransmission source named in the
//!   data header, listing lost sequence ranges (§5.4: "DTN 2 then uses this
//!   information to detect loss, and to prepare a NAK to restore the missing
//!   packets").
//! * **Deadline exceeded** — sent to the timeliness notify address when a
//!   packet's deadline passes (§5.3: "providing an IP address to which
//!   'deadline exceeded' messages are sent, to alert the source").
//! * **Backpressure** — relayed upstream toward the sender when an element
//!   observes downstream congestion or loss (§5.1).
//! * **Mode change** — pushed by the control plane to a border element when
//!   the mode controller shifts a flow's shape mid-transfer (§4: "the
//!   infrastructure adapts the transport modality to the conditions"); it
//!   names the new feature bitmap and, for failover, the new retransmission
//!   source so NAKs re-home to a live buffer.

use super::{ExperimentId, Features, MmtRepr};
use crate::error::{check_emit_len, check_len};
use crate::field::{read_u16, read_u32, read_u64, write_u16, write_u32, write_u64};
use crate::{Error, Ipv4Address, Result};

/// Control message types (carried in the low byte of config data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ControlType {
    /// Negative acknowledgement requesting retransmission of lost ranges.
    Nak = 1,
    /// A packet missed its delivery deadline.
    DeadlineExceeded = 2,
    /// Downstream congestion/loss backpressure signal.
    Backpressure = 3,
    /// Control-plane order to shift a flow's mode mid-transfer.
    ModeChange = 4,
}

impl ControlType {
    /// Parse a raw control type.
    pub fn from_u8(v: u8) -> Result<ControlType> {
        match v {
            1 => Ok(ControlType::Nak),
            2 => Ok(ControlType::DeadlineExceeded),
            3 => Ok(ControlType::Backpressure),
            4 => Ok(ControlType::ModeChange),
            // mmt-lint: allow(W1, "decode boundary over a raw byte: the other 251 values are all equally malformed")
            _ => Err(Error::Malformed("unknown control message type")),
        }
    }
}

/// An inclusive range of lost sequence numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NakRange {
    /// First missing sequence number.
    pub first: u64,
    /// Last missing sequence number (inclusive).
    pub last: u64,
}

impl NakRange {
    /// Number of sequence numbers covered.
    pub fn len(&self) -> u64 {
        self.last.saturating_sub(self.first) + 1
    }

    /// Always false: a range covers at least one sequence number.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// NAK body: who is asking, and which ranges are missing.
///
/// Wire layout: requester IPv4 (4) + requester port (2) + range count (2) +
/// count × (first u64 + last u64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NakRepr {
    /// Address the retransmissions should be sent to.
    pub requester: Ipv4Address,
    /// Port on the requester.
    pub requester_port: u16,
    /// Missing sequence ranges (each inclusive).
    pub ranges: Vec<NakRange>,
}

impl NakRepr {
    const FIXED: usize = 8;

    /// Body length in bytes.
    pub fn body_len(&self) -> usize {
        Self::FIXED + self.ranges.len() * 16
    }

    /// Total number of sequence numbers requested.
    pub fn requested_count(&self) -> u64 {
        self.ranges.iter().map(NakRange::len).sum()
    }

    /// Parse a NAK body.
    pub fn parse(buf: &[u8]) -> Result<NakRepr> {
        check_len(buf, Self::FIXED)?;
        let requester = Ipv4Address::from_bytes(&buf[0..4]);
        let requester_port = read_u16(buf, 4);
        let count = read_u16(buf, 6) as usize;
        check_len(buf, Self::FIXED + count * 16)?;
        let mut ranges = Vec::with_capacity(count);
        for i in 0..count {
            let off = Self::FIXED + i * 16;
            let first = read_u64(buf, off);
            let last = read_u64(buf, off + 8);
            if last < first {
                return Err(Error::Malformed("NAK range with last < first"));
            }
            ranges.push(NakRange { first, last });
        }
        Ok(NakRepr {
            requester,
            requester_port,
            ranges,
        })
    }

    /// Emit the body into `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        check_emit_len(buf, self.body_len())?;
        if self.ranges.len() > usize::from(u16::MAX) {
            return Err(Error::ValueOutOfRange("too many NAK ranges"));
        }
        buf[0..4].copy_from_slice(self.requester.as_bytes());
        write_u16(buf, 4, self.requester_port);
        write_u16(buf, 6, self.ranges.len() as u16);
        for (i, r) in self.ranges.iter().enumerate() {
            let off = Self::FIXED + i * 16;
            write_u64(buf, off, r.first);
            write_u64(buf, off + 8, r.last);
        }
        Ok(())
    }
}

/// Deadline-exceeded body: which packet, by how much, observed where.
///
/// Wire layout: sequence u64 + deadline_ns u64 + observed_age_ns u64 +
/// reporter IPv4 (4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineExceededRepr {
    /// Sequence number of the late packet (0 if the stream is unsequenced).
    pub sequence: u64,
    /// The deadline that was missed.
    pub deadline_ns: u64,
    /// The age observed when the miss was detected.
    pub observed_age_ns: u64,
    /// The network element that detected the miss.
    pub reporter: Ipv4Address,
}

impl DeadlineExceededRepr {
    /// Body length in bytes.
    pub const BODY_LEN: usize = 28;

    /// Parse a deadline-exceeded body.
    pub fn parse(buf: &[u8]) -> Result<DeadlineExceededRepr> {
        check_len(buf, Self::BODY_LEN)?;
        Ok(DeadlineExceededRepr {
            sequence: read_u64(buf, 0),
            deadline_ns: read_u64(buf, 8),
            observed_age_ns: read_u64(buf, 16),
            reporter: Ipv4Address::from_bytes(&buf[24..28]),
        })
    }

    /// Emit the body into `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        check_emit_len(buf, Self::BODY_LEN)?;
        write_u64(buf, 0, self.sequence);
        write_u64(buf, 8, self.deadline_ns);
        write_u64(buf, 16, self.observed_age_ns);
        buf[24..28].copy_from_slice(self.reporter.as_bytes());
        Ok(())
    }
}

/// Backpressure body: severity and the granted window.
///
/// Wire layout: level u8 + 3 reserved + window u32 + origin IPv4 (4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackpressureRepr {
    /// Severity: 0 = cleared, higher = more urgent.
    pub level: u8,
    /// Messages-in-flight window the sender should respect.
    pub window: u32,
    /// Element that originated the signal.
    pub origin: Ipv4Address,
}

impl BackpressureRepr {
    /// Body length in bytes.
    pub const BODY_LEN: usize = 12;

    /// Parse a backpressure body.
    pub fn parse(buf: &[u8]) -> Result<BackpressureRepr> {
        check_len(buf, Self::BODY_LEN)?;
        Ok(BackpressureRepr {
            level: buf[0],
            window: read_u32(buf, 4),
            origin: Ipv4Address::from_bytes(&buf[8..12]),
        })
    }

    /// Emit the body into `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        check_emit_len(buf, Self::BODY_LEN)?;
        buf[0] = self.level;
        buf[1] = 0;
        buf[2] = 0;
        buf[3] = 0;
        write_u32(buf, 4, self.window);
        buf[8..12].copy_from_slice(self.origin.as_bytes());
        Ok(())
    }
}

/// Mode-change body: the shape the flow should take from now on.
///
/// Wire layout mirrors the core header's config word: a u32 whose top byte
/// is the new config id and whose low 24 bits are the new feature bitmap,
/// followed by the new retransmission source IPv4 (4) + port (2), 2 reserved
/// bytes (zeroed on emit, ignored on parse), and the backpressure window u32
/// (0 = leave the window alone). Unknown feature bits are truncated on
/// parse, so a bit-flipped-but-parsable packet is stable under emit/parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeChangeRepr {
    /// Config id the rewritten data packets should carry.
    pub config_id: u8,
    /// The new feature bitmap (known bits only).
    pub features: Features,
    /// Where NAKs should be sent after the change.
    pub retransmit_source: Ipv4Address,
    /// Port on the retransmission source.
    pub retransmit_port: u16,
    /// Messages-in-flight window to engage when `features` includes
    /// `BACKPRESSURE`; 0 means "unchanged".
    pub window: u32,
}

impl ModeChangeRepr {
    /// Body length in bytes.
    pub const BODY_LEN: usize = 16;

    /// Parse a mode-change body.
    pub fn parse(buf: &[u8]) -> Result<ModeChangeRepr> {
        check_len(buf, Self::BODY_LEN)?;
        let word = read_u32(buf, 0);
        Ok(ModeChangeRepr {
            config_id: (word >> 24) as u8,
            features: Features::from_bits_truncate(word & 0x00FF_FFFF),
            retransmit_source: Ipv4Address::from_bytes(&buf[4..8]),
            retransmit_port: read_u16(buf, 8),
            window: read_u32(buf, 12),
        })
    }

    /// Emit the body into `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        check_emit_len(buf, Self::BODY_LEN)?;
        let word = (u32::from(self.config_id) << 24) | (self.features.bits() & 0x00FF_FFFF);
        write_u32(buf, 0, word);
        buf[4..8].copy_from_slice(self.retransmit_source.as_bytes());
        write_u16(buf, 8, self.retransmit_port);
        buf[10] = 0;
        buf[11] = 0;
        write_u32(buf, 12, self.window);
        Ok(())
    }
}

/// A parsed control message (header + typed body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlRepr {
    /// Retransmission request.
    Nak(NakRepr),
    /// Deadline-miss notification.
    DeadlineExceeded(DeadlineExceededRepr),
    /// Backpressure signal.
    Backpressure(BackpressureRepr),
    /// Mode-change order from the control plane.
    ModeChange(ModeChangeRepr),
}

impl ControlRepr {
    /// The control type tag for this message.
    pub fn control_type(&self) -> ControlType {
        match self {
            ControlRepr::Nak(_) => ControlType::Nak,
            ControlRepr::DeadlineExceeded(_) => ControlType::DeadlineExceeded,
            ControlRepr::Backpressure(_) => ControlType::Backpressure,
            ControlRepr::ModeChange(_) => ControlType::ModeChange,
        }
    }

    /// Body length in bytes.
    pub fn body_len(&self) -> usize {
        match self {
            ControlRepr::Nak(n) => n.body_len(),
            ControlRepr::DeadlineExceeded(_) => DeadlineExceededRepr::BODY_LEN,
            ControlRepr::Backpressure(_) => BackpressureRepr::BODY_LEN,
            ControlRepr::ModeChange(_) => ModeChangeRepr::BODY_LEN,
        }
    }

    /// Parse a full control packet (MMT header + body).
    pub fn parse_packet(buf: &[u8]) -> Result<(ExperimentId, ControlRepr)> {
        let hdr = MmtRepr::parse(buf)?;
        let Some(raw_type) = hdr.control_type() else {
            return Err(Error::Malformed("not a control packet"));
        };
        let body = &buf[hdr.header_len()..];
        let repr = match ControlType::from_u8(raw_type)? {
            ControlType::Nak => ControlRepr::Nak(NakRepr::parse(body)?),
            ControlType::DeadlineExceeded => {
                ControlRepr::DeadlineExceeded(DeadlineExceededRepr::parse(body)?)
            }
            ControlType::Backpressure => ControlRepr::Backpressure(BackpressureRepr::parse(body)?),
            ControlType::ModeChange => ControlRepr::ModeChange(ModeChangeRepr::parse(body)?),
        };
        Ok((hdr.experiment, repr))
    }

    /// Emit a full control packet (MMT header + body) for `experiment`.
    pub fn emit_packet(&self, experiment: ExperimentId) -> Vec<u8> {
        let hdr = MmtRepr::control(experiment, self.control_type() as u8);
        let hlen = hdr.header_len();
        let mut buf = vec![0u8; hlen + self.body_len()];
        hdr.emit(&mut buf).expect("sized above"); // mmt-lint: allow(P1, "buffer sized with header_len + body_len above")
        match self {
            ControlRepr::Nak(n) => n.emit(&mut buf[hlen..]).expect("sized above"), // mmt-lint: allow(P1, "buffer sized with body_len above")
            ControlRepr::DeadlineExceeded(d) => d.emit(&mut buf[hlen..]).expect("sized above"), // mmt-lint: allow(P1, "buffer sized with body_len above")
            ControlRepr::Backpressure(b) => b.emit(&mut buf[hlen..]).expect("sized above"), // mmt-lint: allow(P1, "buffer sized with body_len above")
            ControlRepr::ModeChange(m) => m.emit(&mut buf[hlen..]).expect("sized above"), // mmt-lint: allow(P1, "buffer sized with body_len above")
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nak_roundtrip() {
        let nak = NakRepr {
            requester: Ipv4Address::new(10, 0, 0, 8),
            requester_port: 47_000,
            ranges: vec![
                NakRange { first: 5, last: 5 },
                NakRange { first: 9, last: 20 },
            ],
        };
        assert_eq!(nak.requested_count(), 1 + 12);
        let exp = ExperimentId::new(2, 0);
        let pkt = ControlRepr::Nak(nak.clone()).emit_packet(exp);
        let (got_exp, parsed) = ControlRepr::parse_packet(&pkt).unwrap();
        assert_eq!(got_exp, exp);
        assert_eq!(parsed, ControlRepr::Nak(nak));
    }

    #[test]
    fn nak_rejects_inverted_range() {
        let nak = NakRepr {
            requester: Ipv4Address::UNSPECIFIED,
            requester_port: 0,
            ranges: vec![NakRange { first: 10, last: 2 }],
        };
        let pkt = ControlRepr::Nak(nak).emit_packet(ExperimentId::new(1, 0));
        assert!(matches!(
            ControlRepr::parse_packet(&pkt),
            Err(Error::Malformed(_))
        ));
    }

    #[test]
    fn deadline_exceeded_roundtrip() {
        let d = DeadlineExceededRepr {
            sequence: 42,
            deadline_ns: 1_000_000,
            observed_age_ns: 1_400_000,
            reporter: Ipv4Address::new(10, 1, 0, 1),
        };
        let pkt = ControlRepr::DeadlineExceeded(d).emit_packet(ExperimentId::new(3, 1));
        let (exp, parsed) = ControlRepr::parse_packet(&pkt).unwrap();
        assert_eq!(exp, ExperimentId::new(3, 1));
        assert_eq!(parsed, ControlRepr::DeadlineExceeded(d));
    }

    #[test]
    fn backpressure_roundtrip() {
        let b = BackpressureRepr {
            level: 2,
            window: 16,
            origin: Ipv4Address::new(10, 2, 0, 1),
        };
        let pkt = ControlRepr::Backpressure(b).emit_packet(ExperimentId::new(1, 0));
        let (_, parsed) = ControlRepr::parse_packet(&pkt).unwrap();
        assert_eq!(parsed, ControlRepr::Backpressure(b));
    }

    #[test]
    fn mode_change_roundtrip() {
        let m = ModeChangeRepr {
            config_id: 0,
            features: Features::SEQUENCE
                | Features::RETRANSMIT
                | Features::ACK_NAK
                | Features::DUPLICATED,
            retransmit_source: Ipv4Address::new(10, 0, 0, 6),
            retransmit_port: 47_001,
            window: 32,
        };
        let pkt = ControlRepr::ModeChange(m).emit_packet(ExperimentId::new(2, 0));
        let (exp, parsed) = ControlRepr::parse_packet(&pkt).unwrap();
        assert_eq!(exp, ExperimentId::new(2, 0));
        assert_eq!(parsed, ControlRepr::ModeChange(m));
    }

    #[test]
    fn mode_change_truncated_body_rejected() {
        let m = ModeChangeRepr {
            config_id: 0,
            features: Features::SEQUENCE,
            retransmit_source: Ipv4Address::UNSPECIFIED,
            retransmit_port: 0,
            window: 0,
        };
        let pkt = ControlRepr::ModeChange(m).emit_packet(ExperimentId::new(1, 0));
        for cut in 0..pkt.len() {
            assert!(ControlRepr::parse_packet(&pkt[..cut]).is_err());
        }
    }

    #[test]
    fn mode_change_masks_unknown_feature_bits() {
        // Forge a body whose feature word has bits beyond ALL_KNOWN set; the
        // parser truncates them, so re-emitting yields a stable packet.
        let m = ModeChangeRepr {
            config_id: 3,
            features: Features::SEQUENCE,
            retransmit_source: Ipv4Address::new(10, 0, 0, 6),
            retransmit_port: 9,
            window: 0,
        };
        let mut pkt = ControlRepr::ModeChange(m).emit_packet(ExperimentId::new(1, 0));
        let body_at = pkt.len() - ModeChangeRepr::BODY_LEN;
        pkt[body_at + 2] |= 0x80; // an unknown bit inside the 24-bit bitmap
        let (exp, parsed) = ControlRepr::parse_packet(&pkt).unwrap();
        assert_eq!(parsed, ControlRepr::ModeChange(m));
        let again = parsed.emit_packet(exp);
        assert_eq!(ControlRepr::parse_packet(&again).unwrap().1, parsed);
    }

    #[test]
    fn truncated_body_rejected() {
        let b = BackpressureRepr {
            level: 1,
            window: 1,
            origin: Ipv4Address::UNSPECIFIED,
        };
        let pkt = ControlRepr::Backpressure(b).emit_packet(ExperimentId::new(1, 0));
        assert!(ControlRepr::parse_packet(&pkt[..pkt.len() - 1]).is_err());
    }

    #[test]
    fn data_packet_is_not_control() {
        let data = MmtRepr::data(ExperimentId::new(1, 0)).emit_with_payload(b"x");
        assert!(matches!(
            ControlRepr::parse_packet(&data),
            Err(Error::Malformed(_))
        ));
    }

    #[test]
    fn unknown_control_type_rejected() {
        let hdr = MmtRepr::control(ExperimentId::new(1, 0), 200);
        let mut buf = vec![0u8; hdr.header_len() + 4];
        hdr.emit(&mut buf).unwrap();
        assert!(matches!(
            ControlRepr::parse_packet(&buf),
            Err(Error::Malformed(_))
        ));
    }

    #[test]
    fn nak_range_len() {
        assert_eq!(NakRange { first: 3, last: 3 }.len(), 1);
        assert_eq!(NakRange { first: 0, last: 9 }.len(), 10);
        assert!(!NakRange { first: 0, last: 0 }.is_empty());
    }
}
