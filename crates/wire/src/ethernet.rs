//! Ethernet II frames.
//!
//! DAQ networks are commodity Ethernet (paper §2), and the MMT protocol must
//! run *directly* over layer 2 inside the DAQ network (Req 1). Jumbo frames
//! are the norm for DAQ elephant flows (§2.1): every hop's MTU is configured
//! so that no fragmentation occurs, so this type accepts payloads up to the
//! 9000-byte jumbo MTU (and beyond — the limit is policy, not format).

use crate::error::{check_emit_len, check_len};
use crate::field::{read_u16, write_u16};
use crate::{Error, EthernetAddress, Result};

/// EtherType values used by this system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// MMT carried directly over Ethernet (Req 1). We use the IEEE
    /// "local experimental" EtherType 0x88B5.
    Mmt,
    /// Anything else.
    Unknown(u16),
}

impl EtherType {
    /// The raw 16-bit EtherType.
    pub fn as_u16(&self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Mmt => 0x88B5,
            EtherType::Unknown(v) => *v,
        }
    }

    /// Parse a raw EtherType.
    pub fn from_u16(v: u16) -> EtherType {
        match v {
            0x0800 => EtherType::Ipv4,
            0x88B5 => EtherType::Mmt,
            other => EtherType::Unknown(other),
        }
    }
}

/// Length of the Ethernet II header: dst(6) + src(6) + ethertype(2).
pub const HEADER_LEN: usize = 14;

/// Standard Ethernet payload MTU.
pub const MTU_STANDARD: usize = 1500;

/// Jumbo-frame payload MTU used throughout DAQ networks (§2.1).
pub const MTU_JUMBO: usize = 9000;

mod field {
    use crate::field::Field;
    pub const DESTINATION: Field = 0..6;
    pub const SOURCE: Field = 6..12;
    pub const ETHERTYPE: Field = 12..14;
    pub const PAYLOAD: usize = 14;
}

/// A read/write view of an Ethernet II frame.
#[derive(Debug, Clone)]
pub struct Frame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Frame<T> {
    /// Wrap a buffer without validating its length.
    pub fn new_unchecked(buffer: T) -> Frame<T> {
        Frame { buffer }
    }

    /// Wrap a buffer, ensuring it is long enough for the header.
    pub fn new_checked(buffer: T) -> Result<Frame<T>> {
        check_len(buffer.as_ref(), HEADER_LEN)?;
        Ok(Frame { buffer })
    }

    /// Consume the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Destination MAC address.
    pub fn destination(&self) -> EthernetAddress {
        EthernetAddress::from_bytes(&self.buffer.as_ref()[field::DESTINATION])
    }

    /// Source MAC address.
    pub fn source(&self) -> EthernetAddress {
        EthernetAddress::from_bytes(&self.buffer.as_ref()[field::SOURCE])
    }

    /// EtherType.
    pub fn ethertype(&self) -> EtherType {
        EtherType::from_u16(read_u16(self.buffer.as_ref(), field::ETHERTYPE.start))
    }

    /// The frame payload.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[field::PAYLOAD..]
    }

    /// Total frame length (header + payload).
    pub fn total_len(&self) -> usize {
        self.buffer.as_ref().len()
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Frame<T> {
    /// Set the destination MAC address.
    pub fn set_destination(&mut self, addr: EthernetAddress) {
        self.buffer.as_mut()[field::DESTINATION].copy_from_slice(addr.as_bytes());
    }

    /// Set the source MAC address.
    pub fn set_source(&mut self, addr: EthernetAddress) {
        self.buffer.as_mut()[field::SOURCE].copy_from_slice(addr.as_bytes());
    }

    /// Set the EtherType.
    pub fn set_ethertype(&mut self, value: EtherType) {
        write_u16(self.buffer.as_mut(), field::ETHERTYPE.start, value.as_u16());
    }

    /// Mutable access to the payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[field::PAYLOAD..]
    }
}

/// Owned representation of an Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetRepr {
    /// Destination MAC.
    pub dst: EthernetAddress,
    /// Source MAC.
    pub src: EthernetAddress,
    /// EtherType of the payload.
    pub ethertype: EtherType,
}

impl EthernetRepr {
    /// Parse a frame header into an owned representation.
    pub fn parse<T: AsRef<[u8]>>(frame: &Frame<T>) -> Result<EthernetRepr> {
        check_len(frame.buffer.as_ref(), HEADER_LEN)?;
        Ok(EthernetRepr {
            dst: frame.destination(),
            src: frame.source(),
            ethertype: frame.ethertype(),
        })
    }

    /// The header length this representation emits (always [`HEADER_LEN`]).
    pub const fn header_len(&self) -> usize {
        HEADER_LEN
    }

    /// Emit this header into the front of `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        check_emit_len(buf, HEADER_LEN)?;
        let mut frame = Frame::new_unchecked(buf);
        frame.set_destination(self.dst);
        frame.set_source(self.src);
        frame.set_ethertype(self.ethertype);
        Ok(())
    }
}

/// Build a complete frame: header followed by `payload`.
pub fn build_frame(repr: &EthernetRepr, payload: &[u8]) -> Vec<u8> {
    let mut buf = vec![0u8; HEADER_LEN + payload.len()];
    repr.emit(&mut buf).expect("sized above"); // mmt-lint: allow(P1, "buffer sized with HEADER_LEN one line above")
    buf[HEADER_LEN..].copy_from_slice(payload);
    buf
}

/// Validate that a frame's payload fits within the given MTU.
pub fn check_mtu(frame_len: usize, mtu: usize) -> Result<()> {
    if frame_len > HEADER_LEN + mtu {
        Err(Error::ValueOutOfRange("frame exceeds MTU"))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> Vec<u8> {
        let repr = EthernetRepr {
            dst: EthernetAddress([0x02, 0, 0, 0, 0, 2]),
            src: EthernetAddress([0x02, 0, 0, 0, 0, 1]),
            ethertype: EtherType::Mmt,
        };
        build_frame(&repr, &[0xAA, 0xBB, 0xCC])
    }

    #[test]
    fn parse_emitted_frame() {
        let buf = sample_frame();
        let frame = Frame::new_checked(&buf[..]).unwrap();
        assert_eq!(frame.destination(), EthernetAddress([0x02, 0, 0, 0, 0, 2]));
        assert_eq!(frame.source(), EthernetAddress([0x02, 0, 0, 0, 0, 1]));
        assert_eq!(frame.ethertype(), EtherType::Mmt);
        assert_eq!(frame.payload(), &[0xAA, 0xBB, 0xCC]);
        assert_eq!(frame.total_len(), HEADER_LEN + 3);
    }

    #[test]
    fn repr_roundtrip() {
        let buf = sample_frame();
        let frame = Frame::new_checked(&buf[..]).unwrap();
        let repr = EthernetRepr::parse(&frame).unwrap();
        let mut out = vec![0u8; HEADER_LEN];
        repr.emit(&mut out).unwrap();
        assert_eq!(&buf[..HEADER_LEN], &out[..]);
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(matches!(
            Frame::new_checked(&[0u8; 13][..]),
            Err(Error::Truncated {
                needed: 14,
                got: 13
            })
        ));
    }

    #[test]
    fn ethertype_mapping() {
        assert_eq!(EtherType::from_u16(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from_u16(0x88B5), EtherType::Mmt);
        assert_eq!(EtherType::from_u16(0x1234), EtherType::Unknown(0x1234));
        assert_eq!(EtherType::Unknown(0x1234).as_u16(), 0x1234);
    }

    #[test]
    fn payload_mutation() {
        let mut buf = sample_frame();
        let mut frame = Frame::new_checked(&mut buf[..]).unwrap();
        frame.payload_mut()[0] = 0x55;
        assert_eq!(frame.payload()[0], 0x55);
    }

    #[test]
    fn mtu_checks() {
        assert!(check_mtu(HEADER_LEN + MTU_JUMBO, MTU_JUMBO).is_ok());
        assert!(check_mtu(HEADER_LEN + MTU_JUMBO + 1, MTU_JUMBO).is_err());
        assert!(check_mtu(HEADER_LEN + MTU_STANDARD, MTU_STANDARD).is_ok());
    }

    #[test]
    fn emit_into_short_buffer_fails() {
        let repr = EthernetRepr {
            dst: EthernetAddress::BROADCAST,
            src: EthernetAddress([2, 0, 0, 0, 0, 1]),
            ethertype: EtherType::Ipv4,
        };
        let mut small = [0u8; 10];
        assert!(matches!(
            repr.emit(&mut small),
            Err(Error::BufferTooSmall { .. })
        ));
    }
}
