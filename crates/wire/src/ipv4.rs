//! IPv4 packets.
//!
//! MMT runs over IPv4 on WAN segments (paper §5.2 considered and rejected
//! IPv6 hop-by-hop options because they are unreliably supported in hardware
//! and cannot be updated in flight; MMT instead rides above IP with its own
//! updatable header). Options are not supported — DAQ/ESnet paths do not use
//! them — and a packet with IHL > 5 parses with its options skipped.

use crate::checksum;
use crate::error::{check_emit_len, check_len};
use crate::field::{read_u16, write_u16};
use crate::{Error, Ipv4Address, Result};

/// Minimum (and, without options, actual) IPv4 header length.
pub const HEADER_LEN: usize = 20;

/// IP protocol numbers used by this system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// UDP (17).
    Udp,
    /// TCP (6) — used by the baseline transport models.
    Tcp,
    /// MMT directly over IP. We use 0xFD (253), reserved for experimentation
    /// by RFC 3692.
    Mmt,
    /// Anything else.
    Unknown(u8),
}

impl Protocol {
    /// Raw protocol number.
    pub fn as_u8(&self) -> u8 {
        match self {
            Protocol::Udp => 17,
            Protocol::Tcp => 6,
            Protocol::Mmt => 253,
            Protocol::Unknown(v) => *v,
        }
    }

    /// Parse a raw protocol number.
    pub fn from_u8(v: u8) -> Protocol {
        match v {
            17 => Protocol::Udp,
            6 => Protocol::Tcp,
            253 => Protocol::Mmt,
            other => Protocol::Unknown(other),
        }
    }
}

mod field {
    use crate::field::Field;
    pub const VER_IHL: usize = 0;
    pub const DSCP_ECN: usize = 1;
    pub const LENGTH: Field = 2..4;
    pub const IDENT: Field = 4..6;
    pub const FLAGS_FRAG: Field = 6..8;
    pub const TTL: usize = 8;
    pub const PROTOCOL: usize = 9;
    pub const CHECKSUM: Field = 10..12;
    pub const SRC: Field = 12..16;
    pub const DST: Field = 16..20;
}

/// A read/write view of an IPv4 packet.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Packet<T> {
        Packet { buffer }
    }

    /// Wrap a buffer, validating version, header length and total length.
    pub fn new_checked(buffer: T) -> Result<Packet<T>> {
        let packet = Packet { buffer };
        packet.check()?;
        Ok(packet)
    }

    fn check(&self) -> Result<()> {
        let buf = self.buffer.as_ref();
        check_len(buf, HEADER_LEN)?;
        if self.version() != 4 {
            return Err(Error::UnknownVersion(self.version()));
        }
        let ihl = self.header_len();
        if ihl < HEADER_LEN {
            return Err(Error::Malformed("IHL below minimum"));
        }
        check_len(buf, ihl)?;
        let total = self.total_len() as usize;
        if total < ihl {
            return Err(Error::Malformed("total length below header length"));
        }
        check_len(buf, total)?;
        Ok(())
    }

    /// Consume the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// IP version (must be 4).
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[field::VER_IHL] >> 4
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[field::VER_IHL] & 0x0f) * 4
    }

    /// DSCP (top 6 bits of the traffic-class byte).
    pub fn dscp(&self) -> u8 {
        self.buffer.as_ref()[field::DSCP_ECN] >> 2
    }

    /// Total packet length (header + payload).
    pub fn total_len(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::LENGTH.start)
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::IDENT.start)
    }

    /// Time-to-live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[field::TTL]
    }

    /// Payload protocol.
    pub fn protocol(&self) -> Protocol {
        Protocol::from_u8(self.buffer.as_ref()[field::PROTOCOL])
    }

    /// Header checksum field.
    pub fn header_checksum(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::CHECKSUM.start)
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv4Address {
        Ipv4Address::from_bytes(&self.buffer.as_ref()[field::SRC])
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv4Address {
        Ipv4Address::from_bytes(&self.buffer.as_ref()[field::DST])
    }

    /// Verify the header checksum.
    pub fn verify_checksum(&self) -> bool {
        let ihl = self.header_len();
        checksum::checksum(&self.buffer.as_ref()[..ihl]) == 0
    }

    /// The packet payload (after any options, bounded by total length).
    pub fn payload(&self) -> &[u8] {
        let ihl = self.header_len();
        let total = self.total_len() as usize;
        &self.buffer.as_ref()[ihl..total]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Set version and IHL for an option-less header.
    pub fn set_ver_ihl_basic(&mut self) {
        self.buffer.as_mut()[field::VER_IHL] = 0x45;
    }

    /// Set the DSCP code point.
    pub fn set_dscp(&mut self, dscp: u8) {
        let b = &mut self.buffer.as_mut()[field::DSCP_ECN];
        *b = (dscp << 2) | (*b & 0x03);
    }

    /// Set the total length field.
    pub fn set_total_len(&mut self, len: u16) {
        write_u16(self.buffer.as_mut(), field::LENGTH.start, len);
    }

    /// Set the identification field.
    pub fn set_ident(&mut self, v: u16) {
        write_u16(self.buffer.as_mut(), field::IDENT.start, v);
    }

    /// Set flags to "don't fragment" and clear the fragment offset — DAQ
    /// paths are MTU-engineered so fragmentation never happens (§2.1).
    pub fn set_no_fragment(&mut self) {
        write_u16(self.buffer.as_mut(), field::FLAGS_FRAG.start, 0x4000);
    }

    /// Set the TTL.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[field::TTL] = ttl;
    }

    /// Decrement the TTL, returning the new value (saturating at zero).
    pub fn decrement_ttl(&mut self) -> u8 {
        let b = &mut self.buffer.as_mut()[field::TTL];
        *b = b.saturating_sub(1);
        let new = *b;
        self.fill_checksum();
        new
    }

    /// Set the payload protocol.
    pub fn set_protocol(&mut self, p: Protocol) {
        self.buffer.as_mut()[field::PROTOCOL] = p.as_u8();
    }

    /// Set the source address.
    pub fn set_src_addr(&mut self, a: Ipv4Address) {
        self.buffer.as_mut()[field::SRC].copy_from_slice(a.as_bytes());
    }

    /// Set the destination address.
    pub fn set_dst_addr(&mut self, a: Ipv4Address) {
        self.buffer.as_mut()[field::DST].copy_from_slice(a.as_bytes());
    }

    /// Recompute and store the header checksum.
    pub fn fill_checksum(&mut self) {
        write_u16(self.buffer.as_mut(), field::CHECKSUM.start, 0);
        let ihl = self.header_len();
        let csum = checksum::checksum(&self.buffer.as_ref()[..ihl]);
        write_u16(self.buffer.as_mut(), field::CHECKSUM.start, csum);
    }

    /// Mutable payload access.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let ihl = self.header_len();
        let total = self.total_len() as usize;
        &mut self.buffer.as_mut()[ihl..total]
    }
}

/// Owned representation of an (option-less) IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Repr {
    /// Source address.
    pub src: Ipv4Address,
    /// Destination address.
    pub dst: Ipv4Address,
    /// Payload protocol.
    pub protocol: Protocol,
    /// Payload length in bytes (excluding the IPv4 header).
    pub payload_len: usize,
    /// Time-to-live.
    pub ttl: u8,
    /// DSCP code point (used for alert prioritization, Req 3).
    pub dscp: u8,
}

impl Ipv4Repr {
    /// Parse a packet into an owned representation, verifying the checksum.
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Result<Ipv4Repr> {
        packet.check()?;
        if !packet.verify_checksum() {
            return Err(Error::BadChecksum);
        }
        Ok(Ipv4Repr {
            src: packet.src_addr(),
            dst: packet.dst_addr(),
            protocol: packet.protocol(),
            payload_len: packet.total_len() as usize - packet.header_len(),
            ttl: packet.ttl(),
            dscp: packet.dscp(),
        })
    }

    /// Bytes of header this representation emits.
    pub const fn header_len(&self) -> usize {
        HEADER_LEN
    }

    /// Total packet length (header + payload).
    pub fn total_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emit this header into the front of `buf` and fill the checksum.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        check_emit_len(buf, HEADER_LEN)?;
        let total = self.total_len();
        if total > usize::from(u16::MAX) {
            return Err(Error::ValueOutOfRange("IPv4 total length"));
        }
        let mut p = Packet::new_unchecked(buf);
        p.set_ver_ihl_basic();
        p.set_dscp(self.dscp);
        p.set_total_len(total as u16);
        p.set_ident(0);
        p.set_no_fragment();
        p.set_ttl(self.ttl);
        p.set_protocol(self.protocol);
        p.set_src_addr(self.src);
        p.set_dst_addr(self.dst);
        p.fill_checksum();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Ipv4Repr, Vec<u8>) {
        let repr = Ipv4Repr {
            src: Ipv4Address::new(10, 0, 0, 1),
            dst: Ipv4Address::new(10, 0, 0, 2),
            protocol: Protocol::Mmt,
            payload_len: 4,
            ttl: 64,
            dscp: 46,
        };
        let mut buf = vec![0u8; repr.total_len()];
        repr.emit(&mut buf).unwrap();
        buf[HEADER_LEN..].copy_from_slice(&[1, 2, 3, 4]);
        (repr, buf)
    }

    #[test]
    fn roundtrip() {
        let (repr, buf) = sample();
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert!(packet.verify_checksum());
        let parsed = Ipv4Repr::parse(&packet).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(packet.payload(), &[1, 2, 3, 4]);
    }

    #[test]
    fn bad_version_rejected() {
        let (_, mut buf) = sample();
        buf[0] = 0x65; // version 6
        assert!(matches!(
            Packet::new_checked(&buf[..]),
            Err(Error::UnknownVersion(6))
        ));
    }

    #[test]
    fn corrupted_checksum_detected() {
        let (_, mut buf) = sample();
        buf[12] ^= 0xff; // flip src byte
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert!(!packet.verify_checksum());
        assert_eq!(Ipv4Repr::parse(&packet), Err(Error::BadChecksum));
    }

    #[test]
    fn ttl_decrement_updates_checksum() {
        let (_, mut buf) = sample();
        let mut packet = Packet::new_checked(&mut buf[..]).unwrap();
        let new = packet.decrement_ttl();
        assert_eq!(new, 63);
        assert!(packet.verify_checksum());
        // Saturation at zero.
        packet.set_ttl(0);
        packet.fill_checksum();
        assert_eq!(packet.decrement_ttl(), 0);
    }

    #[test]
    fn truncated_payload_rejected() {
        let (_, buf) = sample();
        // Claimed total length exceeds the buffer we pass in.
        assert!(matches!(
            Packet::new_checked(&buf[..HEADER_LEN + 2]),
            Err(Error::Truncated { .. })
        ));
    }

    #[test]
    fn total_length_below_header_rejected() {
        let (_, mut buf) = sample();
        buf[2] = 0;
        buf[3] = 10; // total length 10 < 20
        assert!(matches!(
            Packet::new_checked(&buf[..]),
            Err(Error::Malformed(_))
        ));
    }

    #[test]
    fn oversized_payload_rejected_on_emit() {
        let repr = Ipv4Repr {
            src: Ipv4Address::UNSPECIFIED,
            dst: Ipv4Address::BROADCAST,
            protocol: Protocol::Udp,
            payload_len: 70_000,
            ttl: 1,
            dscp: 0,
        };
        let mut buf = vec![0u8; HEADER_LEN];
        assert_eq!(
            repr.emit(&mut buf),
            Err(Error::ValueOutOfRange("IPv4 total length"))
        );
    }

    #[test]
    fn protocol_mapping() {
        assert_eq!(Protocol::from_u8(17), Protocol::Udp);
        assert_eq!(Protocol::from_u8(6), Protocol::Tcp);
        assert_eq!(Protocol::from_u8(253), Protocol::Mmt);
        assert_eq!(Protocol::from_u8(99), Protocol::Unknown(99));
        assert_eq!(Protocol::Unknown(99).as_u8(), 99);
    }

    #[test]
    fn dscp_set_and_get() {
        let (_, mut buf) = sample();
        let mut packet = Packet::new_checked(&mut buf[..]).unwrap();
        assert_eq!(packet.dscp(), 46);
        packet.set_dscp(0);
        assert_eq!(packet.dscp(), 0);
    }
}
