//! Error types shared by all wire formats.

/// Errors produced while parsing or emitting wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The buffer is too short for the header (or for the extensions the
    /// header's feature bits declare).
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// A field holds a value that is structurally invalid (bad version
    /// nibble, zero IHL, reserved feature bit set, ...).
    Malformed(&'static str),
    /// A checksum did not verify.
    BadChecksum,
    /// The configuration id (MMT) or version (IPv4) is not one this
    /// implementation understands.
    UnknownVersion(u8),
    /// The buffer provided to `emit` is too small.
    BufferTooSmall {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// A value does not fit the wire field it is being emitted into
    /// (e.g. a payload longer than 64 KiB for a 16-bit length field).
    ValueOutOfRange(&'static str),
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::Truncated { needed, got } => {
                write!(f, "truncated packet: need {needed} bytes, got {got}")
            }
            Error::Malformed(what) => write!(f, "malformed packet: {what}"),
            Error::BadChecksum => write!(f, "checksum verification failed"),
            Error::UnknownVersion(v) => write!(f, "unknown protocol version/config id {v}"),
            Error::BufferTooSmall { needed, got } => {
                write!(f, "emit buffer too small: need {needed} bytes, got {got}")
            }
            Error::ValueOutOfRange(what) => write!(f, "value out of range for field: {what}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the wire crate.
pub type Result<T> = core::result::Result<T, Error>;

/// Check that `buf` holds at least `needed` bytes, reporting a
/// [`Error::Truncated`] otherwise.
pub fn check_len(buf: &[u8], needed: usize) -> Result<()> {
    if buf.len() < needed {
        Err(Error::Truncated {
            needed,
            got: buf.len(),
        })
    } else {
        Ok(())
    }
}

/// Check that an emit target holds at least `needed` bytes, reporting a
/// [`Error::BufferTooSmall`] otherwise.
pub fn check_emit_len(buf: &[u8], needed: usize) -> Result<()> {
    if buf.len() < needed {
        Err(Error::BufferTooSmall {
            needed,
            got: buf.len(),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::Truncated { needed: 8, got: 3 };
        assert!(e.to_string().contains("need 8"));
        assert!(Error::BadChecksum.to_string().contains("checksum"));
        assert!(Error::UnknownVersion(9).to_string().contains('9'));
        let e = Error::BufferTooSmall { needed: 4, got: 0 };
        assert!(e.to_string().contains("emit"));
        assert!(Error::Malformed("zero ihl")
            .to_string()
            .contains("zero ihl"));
        assert!(Error::ValueOutOfRange("len").to_string().contains("len"));
    }

    #[test]
    fn check_len_boundaries() {
        assert!(check_len(&[0; 4], 4).is_ok());
        assert_eq!(
            check_len(&[0; 3], 4),
            Err(Error::Truncated { needed: 4, got: 3 })
        );
        assert!(check_emit_len(&[0; 4], 4).is_ok());
        assert_eq!(
            check_emit_len(&[0; 3], 4),
            Err(Error::BufferTooSmall { needed: 4, got: 3 })
        );
    }
}
