//! Big-endian field access helpers.
//!
//! All wire formats in this crate are network (big-endian) byte order. These
//! helpers centralize the unchecked slice arithmetic so the packet views stay
//! declarative; callers are expected to have validated lengths via
//! `check_len` first.

/// A byte range inside a header, `start..end`.
pub type Field = core::ops::Range<usize>;

/// Read a `u16` at `off`.
#[inline]
pub fn read_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([buf[off], buf[off + 1]])
}

/// Write a `u16` at `off`.
#[inline]
pub fn write_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_be_bytes());
}

/// Read a 24-bit unsigned value at `off` (stored in 3 bytes).
#[inline]
pub fn read_u24(buf: &[u8], off: usize) -> u32 {
    (u32::from(buf[off]) << 16) | (u32::from(buf[off + 1]) << 8) | u32::from(buf[off + 2])
}

/// Write the low 24 bits of `v` at `off` (3 bytes). High bits are discarded.
#[inline]
pub fn write_u24(buf: &mut [u8], off: usize, v: u32) {
    buf[off] = (v >> 16) as u8;
    buf[off + 1] = (v >> 8) as u8;
    buf[off + 2] = v as u8;
}

/// Read a `u32` at `off`.
#[inline]
pub fn read_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// Write a `u32` at `off`.
#[inline]
pub fn write_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_be_bytes());
}

/// Read a 48-bit unsigned value at `off` (stored in 6 bytes).
#[inline]
pub fn read_u48(buf: &[u8], off: usize) -> u64 {
    let mut v = 0u64;
    for b in &buf[off..off + 6] {
        v = (v << 8) | u64::from(*b);
    }
    v
}

/// Write the low 48 bits of `v` at `off` (6 bytes). High bits are discarded.
#[inline]
pub fn write_u48(buf: &mut [u8], off: usize, v: u64) {
    let bytes = v.to_be_bytes();
    buf[off..off + 6].copy_from_slice(&bytes[2..8]);
}

/// Read a 56-bit unsigned value at `off` (stored in 7 bytes).
#[inline]
pub fn read_u56(buf: &[u8], off: usize) -> u64 {
    let mut v = 0u64;
    for b in &buf[off..off + 7] {
        v = (v << 8) | u64::from(*b);
    }
    v
}

/// Write the low 56 bits of `v` at `off` (7 bytes). High bits are discarded.
#[inline]
pub fn write_u56(buf: &mut [u8], off: usize, v: u64) {
    let bytes = v.to_be_bytes();
    buf[off..off + 7].copy_from_slice(&bytes[1..8]);
}

/// Read a `u64` at `off`.
#[inline]
pub fn read_u64(buf: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    u64::from_be_bytes(b)
}

/// Write a `u64` at `off`.
#[inline]
pub fn write_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u16_roundtrip() {
        let mut buf = [0u8; 4];
        write_u16(&mut buf, 1, 0xBEEF);
        assert_eq!(buf, [0, 0xBE, 0xEF, 0]);
        assert_eq!(read_u16(&buf, 1), 0xBEEF);
    }

    #[test]
    fn u24_roundtrip_and_truncation() {
        let mut buf = [0u8; 3];
        write_u24(&mut buf, 0, 0x01_AB_CD_EF);
        // High byte (0x01) is discarded: only 24 bits are stored.
        assert_eq!(read_u24(&buf, 0), 0x00AB_CDEF);
    }

    #[test]
    fn u32_roundtrip() {
        let mut buf = [0u8; 6];
        write_u32(&mut buf, 2, 0xDEAD_BEEF);
        assert_eq!(read_u32(&buf, 2), 0xDEAD_BEEF);
    }

    #[test]
    fn u48_roundtrip_and_truncation() {
        let mut buf = [0u8; 6];
        write_u48(&mut buf, 0, 0xFFFF_1234_5678_9ABC);
        assert_eq!(read_u48(&buf, 0), 0x1234_5678_9ABC);
    }

    #[test]
    fn u56_roundtrip_and_truncation() {
        let mut buf = [0u8; 7];
        write_u56(&mut buf, 0, 0xFF_12_34_56_78_9A_BC_DE);
        assert_eq!(read_u56(&buf, 0), 0x12_34_56_78_9A_BC_DE);
    }

    #[test]
    fn u64_roundtrip() {
        let mut buf = [0u8; 10];
        write_u64(&mut buf, 1, u64::MAX - 5);
        assert_eq!(read_u64(&buf, 1), u64::MAX - 5);
    }
}
