//! # `mmt-wire` — wire formats for the multi-modal DAQ transport
//!
//! This crate provides zero-copy, typed views over byte buffers for every
//! protocol that appears on the wire in the Shape-shifting Elephants system
//! (HotNets '24):
//!
//! * [`ethernet`] — Ethernet II frames (including jumbo frames), the layer-2
//!   substrate DAQ networks use (Req 1 of the paper).
//! * [`ipv4`] / [`udp`] — the IP substrate used on WAN segments.
//! * [`mmt`] — the multi-modal transport protocol itself: the 8-byte core
//!   header (configuration id, 24 bits of configuration data, 32-bit
//!   experiment id, §5.2 of the paper), the fixed-order optional extension
//!   fields gated on feature bits, and the control messages (NAK,
//!   deadline-exceeded, backpressure).
//! * [`daq`] — DAQ payload formats: a shared top-level DAQ header with
//!   detector-specific sub-headers (DUNE-style and Mu2e-style), satisfying
//!   the paper's Req 9 reusability requirement.
//!
//! ## Design
//!
//! The API follows smoltcp's idioms: each protocol has a `Packet<T:
//! AsRef<[u8]>>`-style view with typed field accessors, a `check_len`
//! validation step, and a paired owned representation (`Repr`) with
//! `parse`/`emit`. Views never allocate; owned representations allocate only
//! for variable-size payload handling.
//!
//! ```
//! use mmt_wire::mmt::{CoreHeader, Features, MmtRepr, ExperimentId};
//!
//! // Build a header for DUNE (experiment 2, slice 0) in a WAN mode with
//! // sequencing and age tracking enabled.
//! let repr = MmtRepr::data(ExperimentId::new(2, 0))
//!     .with_sequence(42)
//!     .with_age(1_500, false);
//! let mut buf = vec![0u8; repr.header_len()];
//! repr.emit(&mut buf).unwrap();
//!
//! let view = CoreHeader::new_checked(&buf[..]).unwrap();
//! assert!(view.features().contains(Features::SEQUENCE));
//! let parsed = MmtRepr::parse(&buf).unwrap();
//! assert_eq!(parsed.sequence(), Some(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod daq;
pub mod error;
pub mod ethernet;
pub mod field;
pub mod ipv4;
pub mod mmt;
pub mod udp;

pub use error::{Error, Result};

/// A 48-bit Ethernet MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct EthernetAddress(pub [u8; 6]);

impl EthernetAddress {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: EthernetAddress = EthernetAddress([0xff; 6]);

    /// Construct from a byte slice.
    ///
    /// # Panics
    /// Panics if `bytes` is not exactly 6 bytes long.
    pub fn from_bytes(bytes: &[u8]) -> EthernetAddress {
        let mut addr = [0u8; 6];
        addr.copy_from_slice(bytes);
        EthernetAddress(addr)
    }

    /// The raw bytes of the address.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Whether this is a unicast (not broadcast/multicast) address.
    pub fn is_unicast(&self) -> bool {
        self.0[0] & 0x01 == 0
    }

    /// Whether this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }
}

impl core::fmt::Display for EthernetAddress {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let b = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// An IPv4 address.
///
/// A local newtype (rather than `std::net::Ipv4Addr`) so that wire types stay
/// `no_std`-portable and support in-place header arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Ipv4Address(pub [u8; 4]);

impl Ipv4Address {
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Ipv4Address = Ipv4Address([0; 4]);
    /// The limited broadcast address `255.255.255.255`.
    pub const BROADCAST: Ipv4Address = Ipv4Address([255; 4]);

    /// Construct from four octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Ipv4Address {
        Ipv4Address([a, b, c, d])
    }

    /// Construct from a byte slice.
    ///
    /// # Panics
    /// Panics if `bytes` is not exactly 4 bytes long.
    pub fn from_bytes(bytes: &[u8]) -> Ipv4Address {
        let mut addr = [0u8; 4];
        addr.copy_from_slice(bytes);
        Ipv4Address(addr)
    }

    /// The raw bytes of the address.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// The address as a big-endian `u32`.
    pub fn to_u32(&self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// Construct from a big-endian `u32`.
    pub fn from_u32(v: u32) -> Ipv4Address {
        Ipv4Address(v.to_be_bytes())
    }

    /// Whether this is the unspecified address.
    pub fn is_unspecified(&self) -> bool {
        *self == Self::UNSPECIFIED
    }
}

impl core::fmt::Display for Ipv4Address {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let b = &self.0;
        write!(f, "{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }
}

impl From<[u8; 4]> for Ipv4Address {
    fn from(v: [u8; 4]) -> Self {
        Ipv4Address(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethernet_address_display_and_flags() {
        let a = EthernetAddress([0x02, 0, 0, 0, 0, 0x01]);
        assert_eq!(a.to_string(), "02:00:00:00:00:01");
        assert!(a.is_unicast());
        assert!(!a.is_broadcast());
        assert!(EthernetAddress::BROADCAST.is_broadcast());
        assert!(!EthernetAddress::BROADCAST.is_unicast());
    }

    #[test]
    fn ethernet_address_from_bytes_roundtrip() {
        let bytes = [1, 2, 3, 4, 5, 6];
        let a = EthernetAddress::from_bytes(&bytes);
        assert_eq!(a.as_bytes(), &bytes);
    }

    #[test]
    fn ipv4_address_u32_roundtrip() {
        let a = Ipv4Address::new(10, 0, 1, 200);
        assert_eq!(a.to_string(), "10.0.1.200");
        assert_eq!(Ipv4Address::from_u32(a.to_u32()), a);
        assert!(!a.is_unspecified());
        assert!(Ipv4Address::UNSPECIFIED.is_unspecified());
    }

    #[test]
    fn ipv4_address_ordering_matches_numeric() {
        let lo = Ipv4Address::new(10, 0, 0, 1);
        let hi = Ipv4Address::new(10, 0, 0, 2);
        assert!(lo < hi);
        assert!(lo.to_u32() < hi.to_u32());
    }
}
