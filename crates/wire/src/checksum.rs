//! RFC 1071 Internet checksum, used by IPv4 and UDP.

/// Compute the ones-complement sum over `data`, folding carries.
///
/// Returns the *unfinalised* sum; call [`finish`] (or use [`checksum`]) to
/// obtain the checksum field value.
pub fn sum(mut acc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        acc += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Fold carries and complement: finalize an accumulated [`sum`].
pub fn finish(mut acc: u32) -> u16 {
    while acc >> 16 != 0 {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    !(acc as u16)
}

/// Compute the Internet checksum of `data` in one call.
pub fn checksum(data: &[u8]) -> u16 {
    finish(sum(0, data))
}

/// The IPv4 pseudo-header contribution used by UDP (and TCP) checksums.
pub fn pseudo_header(
    src: &crate::Ipv4Address,
    dst: &crate::Ipv4Address,
    protocol: u8,
    length: u16,
) -> u32 {
    let mut acc = 0u32;
    acc = sum(acc, src.as_bytes());
    acc = sum(acc, dst.as_bytes());
    acc += u32::from(protocol);
    acc += u32::from(length);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ipv4Address;

    #[test]
    fn rfc1071_reference_example() {
        // The classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let acc = sum(0, &data);
        assert_eq!(acc, 0x2_ddf0);
        assert_eq!(finish(acc), !0xddf2u16);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), checksum(&[0xab, 0x00]));
    }

    #[test]
    fn checksum_of_valid_header_is_zero_sum() {
        // A header with a correct checksum re-sums to 0xffff before complement.
        let mut hdr = vec![
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        let csum = checksum(&hdr);
        hdr[10] = (csum >> 8) as u8;
        hdr[11] = csum as u8;
        assert_eq!(checksum(&hdr), 0);
    }

    #[test]
    fn pseudo_header_commutes_with_payload_sum() {
        let src = Ipv4Address::new(10, 0, 0, 1);
        let dst = Ipv4Address::new(10, 0, 0, 2);
        let payload = [1u8, 2, 3, 4];
        let a = finish(sum(pseudo_header(&src, &dst, 17, 4), &payload));
        // Changing any pseudo-header input changes the checksum.
        let b = finish(sum(pseudo_header(&src, &dst, 6, 4), &payload));
        assert_ne!(a, b);
    }
}
