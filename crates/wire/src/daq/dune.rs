//! DUNE-style detector sub-header.
//!
//! Modelled on the DUNE Ethernet readout (\[68\]): each Warm Interface Board
//! (WIB) link is identified by crate / slot / link, and a record covers a
//! contiguous span of electronics channels.

use crate::error::{check_emit_len, check_len};
use crate::field::{read_u16, write_u16};
use crate::Result;

/// DUNE sub-header: crate (1) + slot (1) + link (1) + reserved (1) +
/// first channel (2) + last channel (2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DuneSubHeader {
    /// WIB crate number.
    pub crate_no: u8,
    /// Slot within the crate.
    pub slot: u8,
    /// Fibre link within the slot.
    pub link: u8,
    /// First electronics channel covered by this record.
    pub first_channel: u16,
    /// Last electronics channel covered (inclusive).
    pub last_channel: u16,
}

impl DuneSubHeader {
    /// Wire length of this sub-header.
    pub const LEN: usize = 8;

    /// Number of channels this record covers.
    pub fn channel_count(&self) -> u16 {
        self.last_channel.saturating_sub(self.first_channel) + 1
    }

    /// Parse from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<DuneSubHeader> {
        check_len(buf, Self::LEN)?;
        Ok(DuneSubHeader {
            crate_no: buf[0],
            slot: buf[1],
            link: buf[2],
            first_channel: read_u16(buf, 4),
            last_channel: read_u16(buf, 6),
        })
    }

    /// Emit into the front of `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        check_emit_len(buf, Self::LEN)?;
        buf[0] = self.crate_no;
        buf[1] = self.slot;
        buf[2] = self.link;
        buf[3] = 0;
        write_u16(buf, 4, self.first_channel);
        write_u16(buf, 6, self.last_channel);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = DuneSubHeader {
            crate_no: 3,
            slot: 5,
            link: 1,
            first_channel: 256,
            last_channel: 511,
        };
        let mut buf = [0u8; DuneSubHeader::LEN];
        h.emit(&mut buf).unwrap();
        assert_eq!(DuneSubHeader::parse(&buf).unwrap(), h);
        assert_eq!(h.channel_count(), 256);
    }

    #[test]
    fn single_channel_record() {
        let h = DuneSubHeader {
            crate_no: 0,
            slot: 0,
            link: 0,
            first_channel: 7,
            last_channel: 7,
        };
        assert_eq!(h.channel_count(), 1);
    }

    #[test]
    fn short_buffer() {
        assert!(DuneSubHeader::parse(&[0u8; 7]).is_err());
        let h = DuneSubHeader {
            crate_no: 0,
            slot: 0,
            link: 0,
            first_channel: 0,
            last_channel: 0,
        };
        assert!(h.emit(&mut [0u8; 7]).is_err());
    }
}
