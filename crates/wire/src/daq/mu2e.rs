//! Mu2e-style detector sub-header.
//!
//! Modelled on the Mu2e DAQ (\[29\]): readout is organized around Data
//! Transfer Controllers (DTCs) that aggregate Readout Controllers (ROCs),
//! and Mu2e carries DAQ data directly over Ethernet frames (paper §4) —
//! which is why MMT must run at layer 2 (Req 1).

use crate::error::{check_emit_len, check_len};
use crate::field::{read_u16, write_u16};
use crate::Result;

/// Mu2e sub-header: DTC id (1) + ROC id (1) + packet type (1) + reserved
/// (1) + subsystem (2) + reserved (2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mu2eSubHeader {
    /// Data Transfer Controller id.
    pub dtc_id: u8,
    /// Readout Controller id under that DTC.
    pub roc_id: u8,
    /// DTC packet type (data request / data reply / ...).
    pub packet_type: u8,
    /// Subsystem (tracker, calorimeter, ...).
    pub subsystem: u16,
}

impl Mu2eSubHeader {
    /// Wire length of this sub-header.
    pub const LEN: usize = 8;

    /// Parse from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Mu2eSubHeader> {
        check_len(buf, Self::LEN)?;
        Ok(Mu2eSubHeader {
            dtc_id: buf[0],
            roc_id: buf[1],
            packet_type: buf[2],
            subsystem: read_u16(buf, 4),
        })
    }

    /// Emit into the front of `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        check_emit_len(buf, Self::LEN)?;
        buf[0] = self.dtc_id;
        buf[1] = self.roc_id;
        buf[2] = self.packet_type;
        buf[3] = 0;
        write_u16(buf, 4, self.subsystem);
        write_u16(buf, 6, 0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = Mu2eSubHeader {
            dtc_id: 2,
            roc_id: 9,
            packet_type: 1,
            subsystem: 3,
        };
        let mut buf = [0u8; Mu2eSubHeader::LEN];
        h.emit(&mut buf).unwrap();
        assert_eq!(Mu2eSubHeader::parse(&buf).unwrap(), h);
    }

    #[test]
    fn reserved_bytes_zeroed() {
        let h = Mu2eSubHeader {
            dtc_id: 1,
            roc_id: 1,
            packet_type: 1,
            subsystem: 1,
        };
        let mut buf = [0xffu8; Mu2eSubHeader::LEN];
        h.emit(&mut buf).unwrap();
        assert_eq!(buf[3], 0);
        assert_eq!(buf[6], 0);
        assert_eq!(buf[7], 0);
    }

    #[test]
    fn short_buffer() {
        assert!(Mu2eSubHeader::parse(&[0u8; 3]).is_err());
    }
}
