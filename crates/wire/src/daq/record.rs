//! Owned trigger records: the discrete, time-stamped messages MMT carries.

use super::dune::DuneSubHeader;
use super::header::{DetectorKind, TopHeader, TOP_HEADER_LEN};
use super::mu2e::Mu2eSubHeader;
use crate::{Error, Result};

/// Detector-specific sub-header, selected by [`DetectorKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubHeader {
    /// No sub-header (generic detectors).
    None,
    /// DUNE WIB sub-header.
    Dune(DuneSubHeader),
    /// Mu2e DTC sub-header.
    Mu2e(Mu2eSubHeader),
}

impl SubHeader {
    /// Wire length of this sub-header.
    pub fn len(&self) -> usize {
        match self {
            SubHeader::None => 0,
            SubHeader::Dune(_) => DuneSubHeader::LEN,
            SubHeader::Mu2e(_) => Mu2eSubHeader::LEN,
        }
    }

    /// Whether there is no sub-header.
    pub fn is_empty(&self) -> bool {
        matches!(self, SubHeader::None)
    }
}

/// A complete DAQ trigger record: top header, sub-header, and the raw ADC
/// payload. This is the unit of transfer — one record maps to one or more
/// MMT datagrams (Req 7: message-based abstraction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriggerRecord {
    /// Run number.
    pub run: u32,
    /// Trigger / event number within the run.
    pub event: u64,
    /// Observation timestamp, nanoseconds of experiment time.
    pub timestamp_ns: u64,
    /// Detector-specific sub-header.
    pub sub: SubHeader,
    /// Raw digitized payload (ADC samples, packed externally).
    pub payload: Vec<u8>,
}

impl TriggerRecord {
    /// The detector kind implied by the sub-header. DUNE module defaults
    /// to 1 when only the sub-header is known.
    fn detector(&self) -> DetectorKind {
        match self.sub {
            SubHeader::None => DetectorKind::Generic,
            SubHeader::Dune(_) => DetectorKind::DuneFarDetector(1),
            SubHeader::Mu2e(_) => DetectorKind::Mu2e,
        }
    }

    /// Total encoded length.
    pub fn encoded_len(&self) -> usize {
        TOP_HEADER_LEN + self.sub.len() + self.payload.len()
    }

    /// Encode into a fresh buffer (the MMT payload).
    pub fn encode(&self) -> Result<Vec<u8>> {
        if self.payload.len() > u32::MAX as usize {
            return Err(Error::ValueOutOfRange("DAQ payload length"));
        }
        let top = TopHeader {
            version: 0,
            detector: self.detector(),
            subheader_len: self.sub.len() as u16,
            run: self.run,
            event: self.event,
            timestamp_ns: self.timestamp_ns,
            payload_len: self.payload.len() as u32,
        };
        let mut buf = vec![0u8; self.encoded_len()];
        top.emit(&mut buf)?;
        match &self.sub {
            SubHeader::None => {}
            SubHeader::Dune(h) => h.emit(&mut buf[TOP_HEADER_LEN..])?,
            SubHeader::Mu2e(h) => h.emit(&mut buf[TOP_HEADER_LEN..])?,
        }
        let off = TOP_HEADER_LEN + self.sub.len();
        buf[off..].copy_from_slice(&self.payload);
        Ok(buf)
    }

    /// Decode a record from the front of `buf`.
    pub fn decode(buf: &[u8]) -> Result<TriggerRecord> {
        let top = TopHeader::parse(buf)?;
        let total = top.record_len();
        crate::error::check_len(buf, total)?;
        let sub_buf = &buf[TOP_HEADER_LEN..TOP_HEADER_LEN + usize::from(top.subheader_len)];
        let sub = match top.detector {
            DetectorKind::Generic => {
                if top.subheader_len != 0 {
                    return Err(Error::Malformed("generic detector with sub-header"));
                }
                SubHeader::None
            }
            DetectorKind::DuneFarDetector(_) => {
                if usize::from(top.subheader_len) != DuneSubHeader::LEN {
                    return Err(Error::Malformed("bad DUNE sub-header length"));
                }
                SubHeader::Dune(DuneSubHeader::parse(sub_buf)?)
            }
            DetectorKind::Mu2e => {
                if usize::from(top.subheader_len) != Mu2eSubHeader::LEN {
                    return Err(Error::Malformed("bad Mu2e sub-header length"));
                }
                SubHeader::Mu2e(Mu2eSubHeader::parse(sub_buf)?)
            }
            DetectorKind::Unknown(_) => return Err(Error::Malformed("unknown detector kind")),
        };
        let off = TOP_HEADER_LEN + usize::from(top.subheader_len);
        Ok(TriggerRecord {
            run: top.run,
            event: top.event,
            timestamp_ns: top.timestamp_ns,
            sub,
            payload: buf[off..total].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dune_record() -> TriggerRecord {
        TriggerRecord {
            run: 42,
            event: 1_000_001,
            timestamp_ns: 5_000_000_000,
            sub: SubHeader::Dune(DuneSubHeader {
                crate_no: 1,
                slot: 2,
                link: 3,
                first_channel: 0,
                last_channel: 63,
            }),
            payload: (0..128u8).collect(),
        }
    }

    #[test]
    fn dune_roundtrip() {
        let rec = dune_record();
        let buf = rec.encode().unwrap();
        assert_eq!(buf.len(), rec.encoded_len());
        assert_eq!(TriggerRecord::decode(&buf).unwrap(), rec);
    }

    #[test]
    fn mu2e_roundtrip() {
        let rec = TriggerRecord {
            run: 7,
            event: 9,
            timestamp_ns: 11,
            sub: SubHeader::Mu2e(Mu2eSubHeader {
                dtc_id: 1,
                roc_id: 2,
                packet_type: 3,
                subsystem: 4,
            }),
            payload: vec![0xAB; 16],
        };
        let buf = rec.encode().unwrap();
        assert_eq!(TriggerRecord::decode(&buf).unwrap(), rec);
    }

    #[test]
    fn generic_roundtrip_empty_payload() {
        let rec = TriggerRecord {
            run: 1,
            event: 2,
            timestamp_ns: 3,
            sub: SubHeader::None,
            payload: vec![],
        };
        let buf = rec.encode().unwrap();
        assert_eq!(buf.len(), TOP_HEADER_LEN);
        assert_eq!(TriggerRecord::decode(&buf).unwrap(), rec);
    }

    #[test]
    fn truncated_payload_rejected() {
        let buf = dune_record().encode().unwrap();
        assert!(TriggerRecord::decode(&buf[..buf.len() - 1]).is_err());
    }

    #[test]
    fn mismatched_subheader_length_rejected() {
        let mut buf = dune_record().encode().unwrap();
        buf[3] = 4; // subheader_len low byte: 4 instead of 8
        assert!(matches!(
            TriggerRecord::decode(&buf),
            Err(Error::Malformed(_))
        ));
    }

    #[test]
    fn unknown_detector_rejected() {
        let mut buf = dune_record().encode().unwrap();
        buf[1] = 99;
        assert!(matches!(
            TriggerRecord::decode(&buf),
            Err(Error::Malformed(_))
        ));
    }

    #[test]
    fn subheader_len_accessors() {
        assert_eq!(SubHeader::None.len(), 0);
        assert!(SubHeader::None.is_empty());
        assert!(!SubHeader::Mu2e(Mu2eSubHeader {
            dtc_id: 0,
            roc_id: 0,
            packet_type: 0,
            subsystem: 0
        })
        .is_empty());
    }
}
