//! The shared top-level DAQ header.

use crate::error::{check_emit_len, check_len};
use crate::field::{read_u16, read_u32, read_u64, write_u16, write_u32, write_u64};
use crate::{Error, Result};

/// Length of the top-level DAQ header.
///
/// Layout: version (1) + detector (1) + sub-header length (2) + run (4) +
/// trigger/event number (8) + timestamp_ns (8) + payload length (4).
pub const TOP_HEADER_LEN: usize = 28;

/// Which detector (or detector family) produced a record.
///
/// DUNE's far detector has four modules, each with its own sub-header
/// format but sharing the top-level header (Req 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorKind {
    /// A generic detector with no sub-header.
    Generic,
    /// A DUNE far-detector module (1–4).
    DuneFarDetector(u8),
    /// The Mu2e tracker/calorimeter readout.
    Mu2e,
    /// Unknown detector code (forward compatibility).
    Unknown(u8),
}

impl DetectorKind {
    /// Raw wire code.
    pub fn as_u8(&self) -> u8 {
        match self {
            DetectorKind::Generic => 0,
            DetectorKind::DuneFarDetector(module) => {
                debug_assert!((1..=4).contains(module));
                *module
            }
            DetectorKind::Mu2e => 16,
            DetectorKind::Unknown(v) => *v,
        }
    }

    /// Parse a raw wire code.
    pub fn from_u8(v: u8) -> DetectorKind {
        match v {
            0 => DetectorKind::Generic,
            1..=4 => DetectorKind::DuneFarDetector(v),
            16 => DetectorKind::Mu2e,
            other => DetectorKind::Unknown(other),
        }
    }
}

/// The shared top-level DAQ header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopHeader {
    /// Format version (currently 0).
    pub version: u8,
    /// Which detector produced this record.
    pub detector: DetectorKind,
    /// Length of the detector-specific sub-header that follows.
    pub subheader_len: u16,
    /// Run number.
    pub run: u32,
    /// Trigger / event number within the run.
    pub event: u64,
    /// Timestamp of the observation, nanoseconds of experiment time.
    pub timestamp_ns: u64,
    /// Length of the ADC payload after the sub-header.
    pub payload_len: u32,
}

impl TopHeader {
    /// Parse from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<TopHeader> {
        check_len(buf, TOP_HEADER_LEN)?;
        let version = buf[0];
        if version != 0 {
            return Err(Error::UnknownVersion(version));
        }
        Ok(TopHeader {
            version,
            detector: DetectorKind::from_u8(buf[1]),
            subheader_len: read_u16(buf, 2),
            run: read_u32(buf, 4),
            event: read_u64(buf, 8),
            timestamp_ns: read_u64(buf, 16),
            payload_len: read_u32(buf, 24),
        })
    }

    /// Emit into the front of `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        check_emit_len(buf, TOP_HEADER_LEN)?;
        buf[0] = self.version;
        buf[1] = self.detector.as_u8();
        write_u16(buf, 2, self.subheader_len);
        write_u32(buf, 4, self.run);
        write_u64(buf, 8, self.event);
        write_u64(buf, 16, self.timestamp_ns);
        write_u32(buf, 24, self.payload_len);
        Ok(())
    }

    /// Total record length: top header + sub-header + payload.
    pub fn record_len(&self) -> usize {
        TOP_HEADER_LEN + usize::from(self.subheader_len) + self.payload_len as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = TopHeader {
            version: 0,
            detector: DetectorKind::DuneFarDetector(2),
            subheader_len: 8,
            run: 1234,
            event: 567_890,
            timestamp_ns: 9_876_543_210,
            payload_len: 4096,
        };
        let mut buf = vec![0u8; TOP_HEADER_LEN];
        h.emit(&mut buf).unwrap();
        assert_eq!(TopHeader::parse(&buf).unwrap(), h);
        assert_eq!(h.record_len(), 28 + 8 + 4096);
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = vec![0u8; TOP_HEADER_LEN];
        buf[0] = 3;
        assert_eq!(TopHeader::parse(&buf), Err(Error::UnknownVersion(3)));
    }

    #[test]
    fn detector_kind_codes() {
        assert_eq!(DetectorKind::from_u8(0), DetectorKind::Generic);
        for m in 1..=4 {
            assert_eq!(DetectorKind::from_u8(m), DetectorKind::DuneFarDetector(m));
            assert_eq!(DetectorKind::DuneFarDetector(m).as_u8(), m);
        }
        assert_eq!(DetectorKind::from_u8(16), DetectorKind::Mu2e);
        assert_eq!(DetectorKind::from_u8(99), DetectorKind::Unknown(99));
        assert_eq!(DetectorKind::Unknown(99).as_u8(), 99);
    }

    #[test]
    fn truncated_rejected() {
        assert!(TopHeader::parse(&[0u8; TOP_HEADER_LEN - 1]).is_err());
    }
}
