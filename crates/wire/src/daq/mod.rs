//! DAQ payload formats.
//!
//! "Large instruments can also require reusability across their
//! components — for example, DUNE's four detectors each have specific
//! headers but they all share a top-level DAQ header" (Req 9, §3). This
//! module models exactly that structure:
//!
//! * [`TopHeader`] — the shared top-level DAQ header every detector
//!   emits: detector kind, run number, trigger/event number, and the
//!   timestamp that makes DAQ data "discrete, time-stamped messages with
//!   well-defined boundaries" (§4.1).
//! * [`DuneSubHeader`] / [`Mu2eSubHeader`] — detector-specific sub-headers
//!   modelled on the DUNE WIB readout (\[68\]) and the Mu2e DTC packet
//!   format (\[29\]).
//! * [`TriggerRecord`] — an owned record (top header + sub-header + ADC
//!   payload) with encode/decode to the MMT payload area.

mod dune;
mod header;
mod mu2e;
mod record;

pub use dune::DuneSubHeader;
pub use header::{DetectorKind, TopHeader, TOP_HEADER_LEN};
pub use mu2e::Mu2eSubHeader;
pub use record::{SubHeader, TriggerRecord};
