//! End-to-end behavioural tests of the TCP model: transfer completion,
//! throughput ceilings, loss recovery, and head-of-line blocking — the
//! dynamics the paper's experiments compare against.

use mmt_netsim::{Bandwidth, LinkSpec, LossModel, NodeId, Simulator, Time};
use mmt_transport::{CcProfile, TcpReceiver, TcpSender};

const MSG: usize = 8192;

/// Sender and receiver joined by one bidirectional link.
fn pipe(
    profile: CcProfile,
    total_bytes: u64,
    link: LinkSpec,
    seed: u64,
) -> (Simulator, NodeId, NodeId) {
    let mut sim = Simulator::new(seed);
    let snd = sim.add_node(
        "snd",
        Box::new(TcpSender::bulk(profile, 1, total_bytes, MSG)),
    );
    let rcv = sim.add_node(
        "rcv",
        Box::new(TcpReceiver::new(1, MSG, profile.max_window_bytes)),
    );
    sim.connect(snd, 0, rcv, 0, link);
    (sim, snd, rcv)
}

#[test]
fn small_transfer_completes_with_handshake_and_slow_start() {
    let rtt_ms = 10;
    let link = LinkSpec::new(Bandwidth::gbps(10), Time::from_millis(rtt_ms / 2));
    let (mut sim, snd, rcv) = pipe(CcProfile::tuned_dtn(), 1_000_000, link, 1);
    sim.run();
    let s = sim.node_as::<TcpSender>(snd).unwrap();
    let fct = s.stats.completed_at.expect("must complete");
    // 1 MB at init window 10 × 8948 ≈ 87 KB: needs several RTT doublings
    // plus the handshake: at least 3 RTTs, and well under a second.
    assert!(fct >= Time::from_millis(30), "{fct}");
    assert!(fct < Time::from_millis(200), "{fct}");
    assert_eq!(s.stats.bytes_acked, 123 * MSG as u64); // rounded up to whole messages
    let r = sim.node_as::<TcpReceiver>(rcv).unwrap();
    assert_eq!(r.delivered().len(), 1_000_000usize.div_ceil(MSG));
    // In-order delivery indices.
    assert!(r
        .delivered()
        .windows(2)
        .all(|w| w[1].index == w[0].index + 1));
}

#[test]
fn throughput_respects_host_ceiling_not_link_rate() {
    // 100 Gb/s link, short RTT, tuned DTN host (~31 Gb/s ceiling).
    let link = LinkSpec::new(Bandwidth::gbps(100), Time::from_micros(500));
    let total = 400_000_000u64; // 400 MB
    let (mut sim, snd, _) = pipe(CcProfile::tuned_dtn(), total, link, 2);
    sim.run();
    let s = sim.node_as::<TcpSender>(snd).unwrap();
    let fct = s.stats.completed_at.unwrap();
    let gbps = total as f64 * 8.0 / fct.as_secs_f64() / 1e9;
    assert!(
        (24.0..32.0).contains(&gbps),
        "tuned DTN should sit near its ~31 Gb/s host ceiling, got {gbps:.1}"
    );
    // The 2024-kernel profile pushes past 40 Gb/s on the same path.
    let (mut sim, snd, _) = pipe(CcProfile::tuned_dtn_2024(), total, link, 2);
    sim.run();
    let s = sim.node_as::<TcpSender>(snd).unwrap();
    let fct = s.stats.completed_at.unwrap();
    let gbps2024 = total as f64 * 8.0 / fct.as_secs_f64() / 1e9;
    assert!(gbps2024 > 40.0, "{gbps2024:.1}");
    assert!(gbps2024 > gbps);
}

#[test]
fn untuned_window_caps_wan_throughput() {
    // 100 ms RTT: untuned 6 MiB window ⇒ ~0.5 Gb/s regardless of the
    // 100 Gb/s link.
    let link = LinkSpec::new(Bandwidth::gbps(100), Time::from_millis(50));
    let total = 60_000_000u64; // 60 MB
    let (mut sim, snd, _) = pipe(CcProfile::untuned(), total, link, 3);
    sim.run();
    let s = sim.node_as::<TcpSender>(snd).unwrap();
    let fct = s.stats.completed_at.unwrap();
    let gbps = total as f64 * 8.0 / fct.as_secs_f64() / 1e9;
    assert!(gbps < 0.7, "window-limited transfer ran at {gbps:.2} Gb/s");
}

#[test]
fn loss_triggers_recovery_and_transfer_still_completes() {
    let link = LinkSpec::new(Bandwidth::gbps(10), Time::from_millis(5))
        .with_loss(LossModel::Random(0.002));
    let total = 20_000_000u64;
    let (mut sim, snd, rcv) = pipe(CcProfile::tuned_dtn(), total, link, 4);
    sim.run_until(Time::from_secs(300));
    let s = sim.node_as::<TcpSender>(snd).unwrap();
    assert!(s.is_complete(), "transfer must finish despite loss");
    assert!(
        s.stats.fast_retransmits + s.stats.rto_retransmits > 0,
        "0.2% loss on ~2200 segments must trigger recovery"
    );
    let r = sim.node_as::<TcpReceiver>(rcv).unwrap();
    assert_eq!(r.delivered().len(), (total as usize).div_ceil(MSG));
}

#[test]
fn loss_causes_head_of_line_blocking() {
    // Measurable HOL: messages that arrived complete but waited for an
    // earlier retransmission before delivery.
    let link = LinkSpec::new(Bandwidth::gbps(10), Time::from_millis(10))
        .with_loss(LossModel::Random(0.005));
    let total = 20_000_000u64;
    let (mut sim, snd, rcv) = pipe(CcProfile::tuned_dtn(), total, link, 5);
    sim.run_until(Time::from_secs(300));
    assert!(sim.node_as::<TcpSender>(snd).unwrap().is_complete());
    let r = sim.node_as::<TcpReceiver>(rcv).unwrap();
    let blocked: Vec<_> = r
        .delivered()
        .iter()
        .filter(|d| d.delivered_at > d.arrived_at)
        .collect();
    assert!(
        !blocked.is_empty(),
        "with loss on an ordered bytestream some messages must block"
    );
    // Blocking delays are on the order of the recovery RTT (≥ ~10 ms for
    // at least one message).
    let worst = blocked
        .iter()
        .map(|d| d.delivered_at - d.arrived_at)
        .max()
        .unwrap();
    assert!(worst >= Time::from_millis(10), "worst HOL {worst}");
}

#[test]
fn no_loss_means_no_head_of_line_blocking() {
    let link = LinkSpec::new(Bandwidth::gbps(10), Time::from_millis(5));
    let (mut sim, snd, rcv) = pipe(CcProfile::tuned_dtn(), 10_000_000, link, 6);
    sim.run();
    assert!(sim.node_as::<TcpSender>(snd).unwrap().is_complete());
    let r = sim.node_as::<TcpReceiver>(rcv).unwrap();
    assert!(r.delivered().iter().all(|d| d.delivered_at == d.arrived_at));
    assert_eq!(r.duplicate_bytes, 0);
}

#[test]
fn fct_grows_with_rtt() {
    let total = 5_000_000u64;
    let mut fcts = Vec::new();
    for rtt_ms in [10u64, 50, 100] {
        let link = LinkSpec::new(Bandwidth::gbps(100), Time::from_millis(rtt_ms / 2));
        let (mut sim, snd, _) = pipe(CcProfile::tuned_dtn(), total, link, 7);
        sim.run();
        let fct = sim
            .node_as::<TcpSender>(snd)
            .unwrap()
            .stats
            .completed_at
            .unwrap();
        fcts.push(fct);
    }
    assert!(fcts[0] < fcts[1] && fcts[1] < fcts[2], "{fcts:?}");
    // Slow-start dominated: FCT scales roughly with RTT.
    assert!(fcts[2] > fcts[0] * 4, "{fcts:?}");
}

#[test]
fn streaming_schedule_paces_the_sender() {
    // Messages created every 100 µs; the sender cannot run ahead of the
    // application.
    let schedule: Vec<Time> = (0..100).map(|i| Time::from_micros(i * 100)).collect();
    let mut sim = Simulator::new(8);
    let snd = sim.add_node(
        "snd",
        Box::new(TcpSender::new(CcProfile::tuned_dtn(), 1, MSG, schedule)),
    );
    let rcv = sim.add_node("rcv", Box::new(TcpReceiver::new(1, MSG, u64::MAX / 4)));
    sim.connect(
        snd,
        0,
        rcv,
        0,
        LinkSpec::new(Bandwidth::gbps(100), Time::from_micros(10)),
    );
    sim.run();
    let s = sim.node_as::<TcpSender>(snd).unwrap();
    let fct = s.stats.completed_at.expect("completes");
    // Last message is created at 9.9 ms; completion must be after that.
    assert!(fct > Time::from_micros(9_900));
    let r = sim.node_as::<TcpReceiver>(rcv).unwrap();
    assert_eq!(r.delivered().len(), 100);
}
