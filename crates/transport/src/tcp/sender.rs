//! The TCP sender state machine.

use super::profile::CcProfile;
use crate::segment::{Segment, SegmentFlags};
use mmt_netsim::{Context, Node, Packet, PortId, Time, TimerToken};
use std::collections::BTreeMap;

const TOKEN_RTO: TimerToken = 1;
const TOKEN_SEND: TimerToken = 2;

/// Integer cube root: the largest `r` with `r³ ≤ n`.
fn icbrt(n: u128) -> u64 {
    let mut lo: u128 = 0;
    let mut hi: u128 = 1 << 43;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        match mid.checked_mul(mid).and_then(|s| s.checked_mul(mid)) {
            Some(cube) if cube <= n => lo = mid,
            _ => hi = mid - 1,
        }
    }
    lo as u64
}

/// Counters and timings exposed after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TcpSenderStats {
    /// Data segments sent (including retransmissions).
    pub segments_sent: u64,
    /// Fast retransmissions triggered.
    pub fast_retransmits: u64,
    /// RTO retransmissions triggered.
    pub rto_retransmits: u64,
    /// Bytes acknowledged.
    pub bytes_acked: u64,
    /// When the last byte was acknowledged (flow-completion time).
    pub completed_at: Option<Time>,
    /// Smoothed RTT estimate at completion, ns.
    pub srtt_ns: u64,
}

/// A TCP sender transmitting a stream of application messages.
///
/// Messages become available at their scheduled creation times; the stream
/// is their concatenation (message delineation lives at the receiver,
/// §4.1 point 1a). For a bulk transfer, schedule every message at time
/// zero.
pub struct TcpSender {
    profile: CcProfile,
    flow: u64,
    message_len: usize,
    /// Creation time of each message, non-decreasing.
    schedule: Vec<Time>,
    total_bytes: u64,

    // Connection state. All congestion arithmetic is integer (bytes and
    // nanoseconds, kernel-style fixed point) so runs are bit-identical
    // across platforms — no float in the digest-critical path.
    established: bool,
    snd_una: u64,
    snd_nxt: u64,
    cwnd: u64,
    /// Reno congestion-avoidance remainder: accumulated `mss·acked`
    /// product not yet converted into window bytes (the integer
    /// equivalent of fractional cwnd growth, like the kernel's
    /// `snd_cwnd_cnt`).
    cwnd_acc: u64,
    ssthresh: u64,
    peer_window: u64,
    dup_acks: u32,
    /// Fast-recovery guard: ignore further dupack halvings until
    /// `snd_una` passes this point.
    recovery_until: u64,

    // CUBIC state (RFC 8312): window at the last loss, the epoch, and
    // the plateau time K in microseconds (0 when slow start exited
    // without loss).
    cubic_wmax: u64,
    cubic_epoch: Option<Time>,
    cubic_k_us: u64,

    // RTT estimation / RTO (integer ns, RFC 6298 shift arithmetic).
    srtt_ns: u64,
    rttvar_ns: u64,
    /// Minimum RTT observed (HyStart baseline).
    min_rtt_ns: u64,
    rto: Time,
    rto_deadline: Option<Time>,
    /// Send time of in-flight segments (seq → (sent_at, was_retransmitted)).
    sent_times: BTreeMap<u64, (Time, bool)>,
    /// SACK scoreboard: received ranges above `snd_una` reported by the
    /// receiver (start → end, merged).
    sacked: BTreeMap<u64, u64>,
    /// Segments already retransmitted in the current recovery epoch.
    hole_retx: std::collections::BTreeSet<u64>,

    // Host pacing.
    next_send_at: Time,
    send_timer_armed: bool,

    /// Index of the next message not yet fully enqueued (for wake-ups).
    next_msg: usize,

    /// Counters.
    pub stats: TcpSenderStats,
}

impl TcpSender {
    /// A sender for `message_count` messages of `message_len` bytes, each
    /// created at the given schedule time. Use [`TcpSender::bulk`] for a
    /// one-shot transfer.
    pub fn new(
        profile: CcProfile,
        flow: u64,
        message_len: usize,
        schedule: Vec<Time>,
    ) -> TcpSender {
        assert!(message_len > 0 && !schedule.is_empty());
        assert!(
            schedule.windows(2).all(|w| w[1] >= w[0]),
            "schedule must be non-decreasing"
        );
        let total_bytes = (message_len as u64) * (schedule.len() as u64);
        let cwnd = profile.mss as u64 * u64::from(profile.init_cwnd_segments);
        TcpSender {
            profile,
            flow,
            message_len,
            schedule,
            total_bytes,
            established: false,
            snd_una: 0,
            snd_nxt: 0,
            cwnd,
            cwnd_acc: 0,
            ssthresh: u64::MAX / 4,
            peer_window: profile.max_window_bytes,
            dup_acks: 0,
            recovery_until: 0,
            cubic_wmax: 0,
            cubic_epoch: None,
            cubic_k_us: 0,
            srtt_ns: 0,
            rttvar_ns: 0,
            min_rtt_ns: u64::MAX,
            rto: Time::from_millis(200),
            rto_deadline: None,
            sent_times: BTreeMap::new(),
            sacked: BTreeMap::new(),
            hole_retx: std::collections::BTreeSet::new(),
            next_send_at: Time::ZERO,
            send_timer_armed: false,
            next_msg: 0,
            stats: TcpSenderStats::default(),
        }
    }

    /// A bulk transfer of `total_bytes` (rounded up to whole messages of
    /// `message_len`), all available at time zero.
    pub fn bulk(profile: CcProfile, flow: u64, total_bytes: u64, message_len: usize) -> TcpSender {
        let messages = total_bytes.div_ceil(message_len as u64) as usize;
        TcpSender::new(profile, flow, message_len, vec![Time::ZERO; messages])
    }

    /// Whether every byte has been acknowledged.
    pub fn is_complete(&self) -> bool {
        self.stats.completed_at.is_some()
    }

    /// Bytes of application data available for sending at `now`.
    fn available_bytes(&self, now: Time) -> u64 {
        // Messages with creation time <= now. The schedule is sorted, so
        // scan from the cursor.
        let mut n = self.next_msg;
        while n < self.schedule.len() && self.schedule[n] <= now {
            n += 1;
        }
        (n as u64) * (self.message_len as u64)
    }

    fn effective_window(&self) -> u64 {
        self.cwnd
            .min(self.peer_window)
            .min(self.profile.max_window_bytes)
    }

    /// Bytes the SACK scoreboard says have left the network.
    fn sacked_bytes(&self) -> u64 {
        self.sacked.iter().map(|(&s, &e)| e - s).sum()
    }

    /// RFC 6675-style pipe estimate during recovery: bytes still believed
    /// in flight = data above the SACK high-water mark plus this epoch's
    /// retransmissions. UnSACKed holes below the mark count as lost, not
    /// in flight.
    fn pipe_estimate(&self) -> u64 {
        let high = self
            .sacked
            .iter()
            .next_back()
            .map(|(_, &e)| e)
            .unwrap_or(self.snd_una)
            .max(self.snd_una);
        let tail = self.snd_nxt.saturating_sub(high);
        tail + (self.hole_retx.len() as u64) * (self.profile.mss as u64)
    }

    fn arm_rto(&mut self, ctx: &mut Context<'_>) {
        let deadline = ctx.now() + self.rto;
        self.rto_deadline = Some(deadline);
        ctx.set_timer(self.rto, TOKEN_RTO);
    }

    fn send_segment(&mut self, ctx: &mut Context<'_>, seq: u64, len: u32, retransmit: bool) {
        let seg = Segment::data(self.flow, seq, len);
        ctx.send(0, Packet::with_flow(seg.encode(), self.flow));
        self.stats.segments_sent += 1;
        self.sent_times
            .entry(seq)
            .and_modify(|e| *e = (ctx.now(), true))
            .or_insert((ctx.now(), retransmit));
        if self.rto_deadline.is_none() {
            self.arm_rto(ctx);
        }
    }

    /// Send as much new data as the window, pacing, and available bytes
    /// allow.
    fn try_send(&mut self, ctx: &mut Context<'_>) {
        if !self.established {
            return;
        }
        let now = ctx.now();
        let available = self.available_bytes(now);
        // Advance the message cursor for wake-up scheduling.
        while self.next_msg < self.schedule.len() && self.schedule[self.next_msg] <= now {
            self.next_msg += 1;
        }
        loop {
            // In recovery the RFC 6675 pipe governs; otherwise plain
            // outstanding bytes.
            let inflight = if self.snd_una < self.recovery_until {
                self.pipe_estimate()
            } else {
                (self.snd_nxt - self.snd_una).saturating_sub(self.sacked_bytes())
            };
            if inflight >= self.effective_window() {
                break;
            }
            if self.snd_nxt >= available {
                // Nothing to send yet; wake when the next message arrives.
                if self.next_msg < self.schedule.len() {
                    let wake = self.schedule[self.next_msg];
                    if wake > now {
                        ctx.set_timer(wake - now, TOKEN_SEND);
                        self.send_timer_armed = true;
                    }
                }
                break;
            }
            // Host pacing: one segment per overhead interval.
            if self.next_send_at > now {
                if !self.send_timer_armed {
                    ctx.set_timer(self.next_send_at - now, TOKEN_SEND);
                    self.send_timer_armed = true;
                }
                break;
            }
            let window_room = self.effective_window() - inflight;
            let len = (self.profile.mss as u64)
                .min(available - self.snd_nxt)
                .min(window_room) as u32;
            if len == 0 {
                break;
            }
            let seq = self.snd_nxt;
            self.snd_nxt += u64::from(len);
            self.send_segment(ctx, seq, len, false);
            // Pacing: host cost per segment, plus (once an RTT estimate
            // exists) a Linux-sch_fq-style rate cap of 2·cwnd/srtt in slow
            // start and 1.2·cwnd/srtt afterwards, which keeps window
            // growth from dumping multi-megabyte bursts into drop-tail
            // queues.
            let mut gap_ns = self.profile.per_segment_overhead_ns;
            if self.srtt_ns > 0 {
                // pace_ns = len·srtt / (factor·cwnd), factor 2 in slow
                // start and 6/5 afterwards, computed in u128 so the
                // len·srtt product cannot overflow.
                let num = u128::from(len) * u128::from(self.srtt_ns);
                let cwnd = u128::from(self.cwnd.max(1));
                let pace_ns = if self.cwnd < self.ssthresh {
                    num / (2 * cwnd)
                } else {
                    num * 5 / (6 * cwnd)
                } as u64;
                gap_ns = gap_ns.max(pace_ns);
            }
            self.next_send_at = now.max(self.next_send_at) + Time::from_nanos(gap_ns);
        }
    }

    /// Congestion-avoidance growth after `newly` acked bytes.
    fn grow_window(&mut self, now: Time, newly: u64) {
        let mss = self.profile.mss as u64;
        if self.cwnd < self.ssthresh {
            self.cwnd += newly; // slow start (ABC-style)
            return;
        }
        match self.profile.cc {
            super::profile::CcAlgo::Reno => {
                // cwnd += mss²/cwnd per mss acked, i.e. mss·newly/cwnd
                // bytes per ack. The sub-byte remainder accumulates in
                // `cwnd_acc` so growth is exact over time (the kernel's
                // `snd_cwnd_cnt` in byte units).
                self.cwnd_acc += mss * newly;
                let add = self.cwnd_acc / self.cwnd.max(1);
                self.cwnd_acc -= add * self.cwnd.max(1);
                self.cwnd += add;
            }
            super::profile::CcAlgo::Cubic => {
                // W(t) = C(t-K)³ + Wmax with C = 0.4, windows in bytes and
                // t in integer microseconds:
                //   target = Wmax + 2·mss·d_us³ / (5·10¹⁸),  d_us = t - K.
                if self.cubic_wmax == 0 {
                    // Slow start exited without a loss (HyStart): there is
                    // no plateau to approach — start convex growth from
                    // here immediately (K = 0, RFC 8312 §4.8 behaviour).
                    self.cubic_wmax = self.cwnd;
                    self.cubic_epoch = Some(now);
                    self.cubic_k_us = 0;
                }
                let epoch = *self.cubic_epoch.get_or_insert(now);
                let t_us = (now - epoch).as_nanos() / 1_000;
                let d_us = t_us as i128 - i128::from(self.cubic_k_us);
                let cubic = 2 * i128::from(mss) * d_us.pow(3) / 5_000_000_000_000_000_000;
                let target = (i128::from(self.cubic_wmax) + cubic).max(i128::from(2 * mss));
                // Never shrink here and never more than double per update.
                let capped = target.min(i128::from(self.cwnd * 2)) as u64;
                self.cwnd = self.cwnd.max(capped);
            }
        }
    }

    /// Multiplicative decrease on loss detection.
    fn on_loss_event(&mut self, now: Time, flight: u64) {
        let mss = self.profile.mss as u64;
        match self.profile.cc {
            super::profile::CcAlgo::Reno => {
                self.ssthresh = (flight / 2).max(2 * mss);
            }
            super::profile::CcAlgo::Cubic => {
                // β = 0.7, C = 0.4 (RFC 8312). W_max = congestion window
                // at loss detection; the plateau time in microseconds is
                //   K = cbrt(Wmax·(1-β)/(C·mss)) s
                //     = cbrt(3·Wmax·10¹⁸ / (4·mss)) µs.
                let _ = flight;
                self.cubic_wmax = self.cwnd.max(2 * mss);
                self.cubic_epoch = Some(now);
                self.cubic_k_us = icbrt(
                    u128::from(self.cubic_wmax) * 3_000_000_000_000_000_000 / u128::from(4 * mss),
                );
                self.ssthresh = (self.cubic_wmax * 7 / 10).max(2 * mss);
            }
        }
        self.cwnd = self.ssthresh;
        self.cwnd_acc = 0;
    }

    /// The un-backed-off RTO from current estimates (RFC 6298).
    fn base_rto(&self) -> Time {
        if self.srtt_ns == 0 {
            return Time::from_millis(200);
        }
        let rto_ns = (self.srtt_ns + 4 * self.rttvar_ns).max(1_000_000);
        Time::from_nanos(rto_ns)
    }

    fn update_rtt(&mut self, sample: Time) {
        let s = sample.as_nanos();
        self.min_rtt_ns = self.min_rtt_ns.min(s);
        // HyStart-style delay-based slow-start exit (what CUBIC kernels
        // ship): once queueing delay builds visibly above the propagation
        // floor (25% + 4 ms), stop doubling — long before the drop-tail
        // queue overflows catastrophically.
        if self.cwnd < self.ssthresh
            && self.min_rtt_ns < u64::MAX
            && s > self.min_rtt_ns + self.min_rtt_ns / 4 + 4_000_000
        {
            self.ssthresh = self.cwnd;
        }
        if self.srtt_ns == 0 {
            self.srtt_ns = s;
            self.rttvar_ns = s / 2;
        } else {
            // RFC 6298 shift arithmetic: rttvar ← ¾·rttvar + ¼·|err|,
            // srtt ← ⅞·srtt + ⅛·sample.
            let err = self.srtt_ns.abs_diff(s);
            self.rttvar_ns = (3 * self.rttvar_ns + err) / 4;
            self.srtt_ns = (7 * self.srtt_ns + s) / 8;
        }
        let rto_ns = (self.srtt_ns + 4 * self.rttvar_ns).max(1_000_000); // ≥1 ms
        self.rto = Time::from_nanos(rto_ns);
    }

    /// Merge a SACK block into the scoreboard.
    fn merge_sack(&mut self, start: u64, end: u64) {
        if end <= start {
            return;
        }
        let mut start = start;
        let mut end = end;
        // Absorb overlapping/adjacent ranges.
        let overlapping: Vec<u64> = self
            .sacked
            .range(..=end)
            .filter(|&(&_s, &e)| e >= start)
            .map(|(&s, _)| s)
            .collect();
        for s in overlapping {
            let Some(e) = self.sacked.remove(&s) else {
                continue; // unreachable: keys collected from the map above
            };
            start = start.min(s);
            end = end.max(e);
        }
        self.sacked.insert(start, end);
    }

    fn is_sacked(&self, seq: u64) -> bool {
        self.sacked
            .range(..=seq)
            .next_back()
            .is_some_and(|(&s, &e)| seq >= s && seq < e)
    }

    /// Retransmit every known hole (unSACKed in-flight segment below the
    /// highest SACKed byte) that has not been retransmitted this epoch.
    fn retransmit_holes(&mut self, ctx: &mut Context<'_>) {
        let Some((_, &max_sacked)) = self.sacked.iter().next_back() else {
            return;
        };
        // Self-clocked recovery: only retransmit while the pipe estimate
        // leaves window room, so recovery never re-floods the queue that
        // just overflowed. Incoming SACKs shrink the pipe and release the
        // next batch.
        let mss = self.profile.mss as u64;
        let room = self.effective_window().saturating_sub(self.pipe_estimate());
        let budget = ((room / mss) as usize).min(64);
        if budget == 0 {
            return;
        }
        let holes: Vec<u64> = self
            .sent_times
            .range(self.snd_una..max_sacked)
            .map(|(&seq, _)| seq)
            .filter(|&seq| !self.is_sacked(seq) && !self.hole_retx.contains(&seq))
            .take(budget)
            .collect();
        for seq in holes {
            let len = (self.profile.mss as u64).min(self.total_bytes - seq) as u32;
            self.send_segment(ctx, seq, len, true);
            self.hole_retx.insert(seq);
        }
    }

    fn on_ack(&mut self, ctx: &mut Context<'_>, seg: Segment) {
        self.peer_window = u64::from(seg.window).max(1);
        let blocks: Vec<(u64, u64)> = seg.sack_blocks().collect();
        for (s, e) in blocks {
            self.merge_sack(s, e);
        }
        // Retransmissions confirmed delivered (SACKed or cum-acked) leave
        // the pipe; forgetting them here keeps the pipe estimate honest.
        let snd_una = self.snd_una.max(seg.ack);
        let mut hr = std::mem::take(&mut self.hole_retx);
        hr.retain(|&s| s >= snd_una && !self.is_sacked(s));
        self.hole_retx = hr;
        if seg.ack > self.snd_una {
            // New data acknowledged.
            let newly = seg.ack - self.snd_una;
            // RTT sample from the oldest segment this ack covers (skip
            // retransmitted segments — Karn's algorithm).
            if let Some((&seq, &(sent_at, retx))) = self.sent_times.iter().next() {
                if seq < seg.ack && !retx {
                    self.update_rtt(ctx.now() - sent_at);
                }
            }
            let acked_keys: Vec<u64> = self.sent_times.range(..seg.ack).map(|(&k, _)| k).collect();
            for k in acked_keys {
                self.sent_times.remove(&k);
            }
            self.snd_una = seg.ack;
            self.stats.bytes_acked = self.snd_una;
            self.dup_acks = 0;
            // Progress resumed: RTO backoff resets (RFC 6298 §5.7).
            self.rto = self.base_rto();
            // Drop scoreboard state below the cumulative ack.
            let stale: Vec<u64> = self
                .sacked
                .iter()
                .filter(|&(_, &e)| e <= self.snd_una)
                .map(|(&s, _)| s)
                .collect();
            for s in stale {
                self.sacked.remove(&s);
            }
            if self.snd_una < self.recovery_until {
                // Still in recovery. After an RTO the window restarts from
                // one segment and must slow-start back up or recovery
                // crawls at one segment per RTT; the multiplicative part
                // of congestion avoidance stays frozen.
                if self.cwnd < self.ssthresh {
                    self.cwnd += newly;
                }
                // Retransmit the holes the scoreboard exposes (SACK-based),
                // plus the cumulative hole itself if unSACKed (NewReno
                // partial ack).
                if !self.is_sacked(self.snd_una) && !self.hole_retx.contains(&self.snd_una) {
                    let len = (self.profile.mss as u64).min(self.total_bytes - self.snd_una) as u32;
                    let seq = self.snd_una;
                    self.send_segment(ctx, seq, len, true);
                    self.hole_retx.insert(seq);
                }
                self.retransmit_holes(ctx);
                self.arm_rto(ctx);
            } else {
                self.hole_retx.clear();
                self.grow_window(ctx.now(), newly);
            }
            // Completion?
            if self.snd_una >= self.total_bytes && self.stats.completed_at.is_none() {
                self.stats.completed_at = Some(ctx.now());
                self.stats.srtt_ns = self.srtt_ns;
                self.rto_deadline = None;
                return;
            }
            // Re-arm RTO for remaining in-flight data.
            if self.snd_una < self.snd_nxt {
                self.arm_rto(ctx);
            } else {
                self.rto_deadline = None;
            }
        } else if seg.ack == self.snd_una && self.snd_una < self.snd_nxt {
            // Duplicate ACK.
            self.dup_acks += 1;
            if self.dup_acks == 3 && self.snd_una >= self.recovery_until {
                // Fast retransmit + multiplicative decrease.
                let flight = self.snd_nxt - self.snd_una;
                self.on_loss_event(ctx.now(), flight);
                self.recovery_until = self.snd_nxt;
                self.stats.fast_retransmits += 1;
                self.hole_retx.clear();
                let len = (self.profile.mss as u64).min(self.total_bytes - self.snd_una) as u32;
                let seq = self.snd_una;
                self.send_segment(ctx, seq, len, true);
                self.hole_retx.insert(seq);
                // SACK-based recovery of the rest of the burst.
                self.retransmit_holes(ctx);
            } else if self.dup_acks > 3 && self.snd_una < self.recovery_until {
                // Fresh SACK information keeps arriving on duplicate ACKs;
                // keep draining newly exposed holes.
                self.retransmit_holes(ctx);
            }
        }
        self.try_send(ctx);
    }
}

impl Node for TcpSender {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        // Handshake: SYN, wait for SYN-ACK.
        let syn = Segment {
            flow: self.flow,
            seq: 0,
            ack: 0,
            flags: SegmentFlags {
                syn: true,
                ack: false,
                fin: false,
            },
            window: 0,
            len: 0,
            sack: [(0, 0); crate::segment::MAX_SACK],
        };
        ctx.send(0, Packet::with_flow(syn.encode(), self.flow));
        self.arm_rto(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, _port: PortId, pkt: Packet) {
        let Some(seg) = Segment::decode(&pkt.bytes) else {
            return;
        };
        if seg.flow != self.flow {
            return;
        }
        if seg.flags.syn && seg.flags.ack {
            if !self.established {
                self.established = true;
                self.rto_deadline = None;
                self.try_send(ctx);
            }
            return;
        }
        if seg.flags.ack {
            self.on_ack(ctx, seg);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: TimerToken) {
        match token {
            TOKEN_SEND => {
                self.send_timer_armed = false;
                self.try_send(ctx);
            }
            TOKEN_RTO => {
                let Some(deadline) = self.rto_deadline else {
                    return;
                };
                if ctx.now() < deadline {
                    return; // stale timer
                }
                if !self.established {
                    // Re-send SYN.
                    let syn = Segment {
                        flow: self.flow,
                        seq: 0,
                        ack: 0,
                        flags: SegmentFlags {
                            syn: true,
                            ack: false,
                            fin: false,
                        },
                        window: 0,
                        len: 0,
                        sack: [(0, 0); crate::segment::MAX_SACK],
                    };
                    ctx.send(0, Packet::with_flow(syn.encode(), self.flow));
                    self.rto = self.rto * 2;
                    self.arm_rto(ctx);
                    return;
                }
                if self.snd_una < self.snd_nxt {
                    // Timeout: retransmit the first unacked segment and
                    // collapse the window. Only a *fresh* congestion event
                    // (outside the current recovery epoch) resets the
                    // CUBIC anchor — an RTO while already recovering must
                    // not ratchet W_max down again.
                    let mss = self.profile.mss as u64;
                    let flight = self.snd_nxt - self.snd_una;
                    if self.snd_una >= self.recovery_until {
                        self.on_loss_event(ctx.now(), flight);
                    }
                    self.cwnd = mss;
                    self.cwnd_acc = 0;
                    self.dup_acks = 0;
                    self.recovery_until = self.snd_nxt;
                    self.stats.rto_retransmits += 1;
                    // The timeout is evidence that earlier retransmissions
                    // were lost too: reset the epoch so holes are eligible
                    // for retransmission again.
                    self.hole_retx.clear();
                    let len = (self.profile.mss as u64).min(self.total_bytes - self.snd_una) as u32;
                    let seq = self.snd_una;
                    self.send_segment(ctx, seq, len, true);
                    self.hole_retx.insert(seq);
                    self.retransmit_holes(ctx);
                    self.rto = self.rto * 2;
                    self.arm_rto(ctx);
                } else {
                    self.rto_deadline = None;
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
