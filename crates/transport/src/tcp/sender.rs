//! The TCP sender state machine.

use super::profile::CcProfile;
use crate::segment::{Segment, SegmentFlags};
use mmt_netsim::{Context, Node, Packet, PortId, Time, TimerToken};
use std::collections::BTreeMap;

const TOKEN_RTO: TimerToken = 1;
const TOKEN_SEND: TimerToken = 2;

/// Counters and timings exposed after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TcpSenderStats {
    /// Data segments sent (including retransmissions).
    pub segments_sent: u64,
    /// Fast retransmissions triggered.
    pub fast_retransmits: u64,
    /// RTO retransmissions triggered.
    pub rto_retransmits: u64,
    /// Bytes acknowledged.
    pub bytes_acked: u64,
    /// When the last byte was acknowledged (flow-completion time).
    pub completed_at: Option<Time>,
    /// Smoothed RTT estimate at completion, ns.
    pub srtt_ns: u64,
}

/// A TCP sender transmitting a stream of application messages.
///
/// Messages become available at their scheduled creation times; the stream
/// is their concatenation (message delineation lives at the receiver,
/// §4.1 point 1a). For a bulk transfer, schedule every message at time
/// zero.
pub struct TcpSender {
    profile: CcProfile,
    flow: u64,
    message_len: usize,
    /// Creation time of each message, non-decreasing.
    schedule: Vec<Time>,
    total_bytes: u64,

    // Connection state.
    established: bool,
    snd_una: u64,
    snd_nxt: u64,
    cwnd: f64,
    ssthresh: f64,
    peer_window: u64,
    dup_acks: u32,
    /// Fast-recovery guard: ignore further dupack halvings until
    /// `snd_una` passes this point.
    recovery_until: u64,

    // CUBIC state (RFC 8312): window at the last loss, the epoch, and
    // the plateau time K (0 when slow start exited without loss).
    cubic_wmax: f64,
    cubic_epoch: Option<Time>,
    cubic_k: f64,

    // RTT estimation / RTO.
    srtt_ns: f64,
    rttvar_ns: f64,
    /// Minimum RTT observed (HyStart baseline).
    min_rtt_ns: f64,
    rto: Time,
    rto_deadline: Option<Time>,
    /// Send time of in-flight segments (seq → (sent_at, was_retransmitted)).
    sent_times: BTreeMap<u64, (Time, bool)>,
    /// SACK scoreboard: received ranges above `snd_una` reported by the
    /// receiver (start → end, merged).
    sacked: BTreeMap<u64, u64>,
    /// Segments already retransmitted in the current recovery epoch.
    hole_retx: std::collections::BTreeSet<u64>,

    // Host pacing.
    next_send_at: Time,
    send_timer_armed: bool,

    /// Index of the next message not yet fully enqueued (for wake-ups).
    next_msg: usize,

    /// Counters.
    pub stats: TcpSenderStats,
}

impl TcpSender {
    /// A sender for `message_count` messages of `message_len` bytes, each
    /// created at the given schedule time. Use [`TcpSender::bulk`] for a
    /// one-shot transfer.
    pub fn new(
        profile: CcProfile,
        flow: u64,
        message_len: usize,
        schedule: Vec<Time>,
    ) -> TcpSender {
        assert!(message_len > 0 && !schedule.is_empty());
        assert!(
            schedule.windows(2).all(|w| w[1] >= w[0]),
            "schedule must be non-decreasing"
        );
        let total_bytes = (message_len as u64) * (schedule.len() as u64);
        let cwnd = (profile.mss as f64) * f64::from(profile.init_cwnd_segments);
        TcpSender {
            profile,
            flow,
            message_len,
            schedule,
            total_bytes,
            established: false,
            snd_una: 0,
            snd_nxt: 0,
            cwnd,
            ssthresh: f64::MAX / 4.0,
            peer_window: profile.max_window_bytes,
            dup_acks: 0,
            recovery_until: 0,
            cubic_wmax: 0.0,
            cubic_epoch: None,
            cubic_k: 0.0,
            srtt_ns: 0.0,
            rttvar_ns: 0.0,
            min_rtt_ns: f64::MAX,
            rto: Time::from_millis(200),
            rto_deadline: None,
            sent_times: BTreeMap::new(),
            sacked: BTreeMap::new(),
            hole_retx: std::collections::BTreeSet::new(),
            next_send_at: Time::ZERO,
            send_timer_armed: false,
            next_msg: 0,
            stats: TcpSenderStats::default(),
        }
    }

    /// A bulk transfer of `total_bytes` (rounded up to whole messages of
    /// `message_len`), all available at time zero.
    pub fn bulk(profile: CcProfile, flow: u64, total_bytes: u64, message_len: usize) -> TcpSender {
        let messages = total_bytes.div_ceil(message_len as u64) as usize;
        TcpSender::new(profile, flow, message_len, vec![Time::ZERO; messages])
    }

    /// Whether every byte has been acknowledged.
    pub fn is_complete(&self) -> bool {
        self.stats.completed_at.is_some()
    }

    /// Bytes of application data available for sending at `now`.
    fn available_bytes(&self, now: Time) -> u64 {
        // Messages with creation time <= now. The schedule is sorted, so
        // scan from the cursor.
        let mut n = self.next_msg;
        while n < self.schedule.len() && self.schedule[n] <= now {
            n += 1;
        }
        (n as u64) * (self.message_len as u64)
    }

    fn effective_window(&self) -> u64 {
        (self.cwnd as u64)
            .min(self.peer_window)
            .min(self.profile.max_window_bytes)
    }

    /// Bytes the SACK scoreboard says have left the network.
    fn sacked_bytes(&self) -> u64 {
        self.sacked.iter().map(|(&s, &e)| e - s).sum()
    }

    /// RFC 6675-style pipe estimate during recovery: bytes still believed
    /// in flight = data above the SACK high-water mark plus this epoch's
    /// retransmissions. UnSACKed holes below the mark count as lost, not
    /// in flight.
    fn pipe_estimate(&self) -> u64 {
        let high = self
            .sacked
            .iter()
            .next_back()
            .map(|(_, &e)| e)
            .unwrap_or(self.snd_una)
            .max(self.snd_una);
        let tail = self.snd_nxt.saturating_sub(high);
        tail + (self.hole_retx.len() as u64) * (self.profile.mss as u64)
    }

    fn arm_rto(&mut self, ctx: &mut Context<'_>) {
        let deadline = ctx.now() + self.rto;
        self.rto_deadline = Some(deadline);
        ctx.set_timer(self.rto, TOKEN_RTO);
    }

    fn send_segment(&mut self, ctx: &mut Context<'_>, seq: u64, len: u32, retransmit: bool) {
        let seg = Segment::data(self.flow, seq, len);
        ctx.send(0, Packet::with_flow(seg.encode(), self.flow));
        self.stats.segments_sent += 1;
        self.sent_times
            .entry(seq)
            .and_modify(|e| *e = (ctx.now(), true))
            .or_insert((ctx.now(), retransmit));
        if self.rto_deadline.is_none() {
            self.arm_rto(ctx);
        }
    }

    /// Send as much new data as the window, pacing, and available bytes
    /// allow.
    fn try_send(&mut self, ctx: &mut Context<'_>) {
        if !self.established {
            return;
        }
        let now = ctx.now();
        let available = self.available_bytes(now);
        // Advance the message cursor for wake-up scheduling.
        while self.next_msg < self.schedule.len() && self.schedule[self.next_msg] <= now {
            self.next_msg += 1;
        }
        loop {
            // In recovery the RFC 6675 pipe governs; otherwise plain
            // outstanding bytes.
            let inflight = if self.snd_una < self.recovery_until {
                self.pipe_estimate()
            } else {
                (self.snd_nxt - self.snd_una).saturating_sub(self.sacked_bytes())
            };
            if inflight >= self.effective_window() {
                break;
            }
            if self.snd_nxt >= available {
                // Nothing to send yet; wake when the next message arrives.
                if self.next_msg < self.schedule.len() {
                    let wake = self.schedule[self.next_msg];
                    if wake > now {
                        ctx.set_timer(wake - now, TOKEN_SEND);
                        self.send_timer_armed = true;
                    }
                }
                break;
            }
            // Host pacing: one segment per overhead interval.
            if self.next_send_at > now {
                if !self.send_timer_armed {
                    ctx.set_timer(self.next_send_at - now, TOKEN_SEND);
                    self.send_timer_armed = true;
                }
                break;
            }
            let window_room = self.effective_window() - inflight;
            let len = (self.profile.mss as u64)
                .min(available - self.snd_nxt)
                .min(window_room) as u32;
            if len == 0 {
                break;
            }
            let seq = self.snd_nxt;
            self.snd_nxt += u64::from(len);
            self.send_segment(ctx, seq, len, false);
            // Pacing: host cost per segment, plus (once an RTT estimate
            // exists) a Linux-sch_fq-style rate cap of 2·cwnd/srtt in slow
            // start and 1.2·cwnd/srtt afterwards, which keeps window
            // growth from dumping multi-megabyte bursts into drop-tail
            // queues.
            let mut gap_ns = self.profile.per_segment_overhead_ns;
            if self.srtt_ns > 0.0 {
                let factor = if self.cwnd < self.ssthresh { 2.0 } else { 1.2 };
                let rate_bps = factor * self.cwnd * 8.0 / (self.srtt_ns / 1e9);
                let pace_ns = (u64::from(len) * 8) as f64 * 1e9 / rate_bps;
                gap_ns = gap_ns.max(pace_ns as u64);
            }
            self.next_send_at = now.max(self.next_send_at) + Time::from_nanos(gap_ns);
        }
    }

    /// Congestion-avoidance growth after `newly` acked bytes.
    fn grow_window(&mut self, now: Time, newly: u64) {
        let mss = self.profile.mss as f64;
        if self.cwnd < self.ssthresh {
            self.cwnd += newly as f64; // slow start (ABC-style)
            return;
        }
        match self.profile.cc {
            super::profile::CcAlgo::Reno => {
                self.cwnd += mss * mss / self.cwnd * (newly as f64 / mss);
            }
            super::profile::CcAlgo::Cubic => {
                // W(t) = C(t-K)^3 + Wmax, windows in MSS, t in seconds.
                const C: f64 = 0.4;
                if self.cubic_wmax <= 0.0 {
                    // Slow start exited without a loss (HyStart): there is
                    // no plateau to approach — start convex growth from
                    // here immediately (K = 0, RFC 8312 §4.8 behaviour).
                    self.cubic_wmax = self.cwnd;
                    self.cubic_epoch = Some(now);
                    self.cubic_k = 0.0;
                }
                let epoch = *self.cubic_epoch.get_or_insert(now);
                let wmax_mss = self.cubic_wmax / mss;
                let t = (now - epoch).as_secs_f64();
                let target_mss = C * (t - self.cubic_k).powi(3) + wmax_mss;
                let target = (target_mss * mss).max(2.0 * mss);
                // Never shrink here and never more than double per update.
                self.cwnd = self.cwnd.max(target.min(self.cwnd * 2.0));
            }
        }
    }

    /// Multiplicative decrease on loss detection.
    fn on_loss_event(&mut self, now: Time, flight: f64) {
        let mss = self.profile.mss as f64;
        match self.profile.cc {
            super::profile::CcAlgo::Reno => {
                self.ssthresh = (flight / 2.0).max(2.0 * mss);
            }
            super::profile::CcAlgo::Cubic => {
                const C: f64 = 0.4;
                const BETA: f64 = 0.7;
                // W_max = congestion window at loss detection (RFC 8312).
                let _ = flight;
                self.cubic_wmax = self.cwnd.max(2.0 * mss);
                self.cubic_epoch = Some(now);
                self.cubic_k = (self.cubic_wmax / mss * (1.0 - BETA) / C).cbrt();
                self.ssthresh = (self.cubic_wmax * BETA).max(2.0 * mss);
            }
        }
        self.cwnd = self.ssthresh;
    }

    /// The un-backed-off RTO from current estimates (RFC 6298).
    fn base_rto(&self) -> Time {
        if self.srtt_ns == 0.0 {
            return Time::from_millis(200);
        }
        let rto_ns = (self.srtt_ns + 4.0 * self.rttvar_ns).max(1e6);
        Time::from_nanos(rto_ns as u64)
    }

    fn update_rtt(&mut self, sample: Time) {
        let s = sample.as_nanos() as f64;
        self.min_rtt_ns = self.min_rtt_ns.min(s);
        // HyStart-style delay-based slow-start exit (what CUBIC kernels
        // ship): once queueing delay builds visibly above the propagation
        // floor, stop doubling — long before the drop-tail queue
        // overflows catastrophically.
        if self.cwnd < self.ssthresh
            && self.min_rtt_ns < f64::MAX
            && s > self.min_rtt_ns * 1.25 + 4e6
        {
            self.ssthresh = self.cwnd;
        }
        if self.srtt_ns == 0.0 {
            self.srtt_ns = s;
            self.rttvar_ns = s / 2.0;
        } else {
            let err = (s - self.srtt_ns).abs();
            self.rttvar_ns = 0.75 * self.rttvar_ns + 0.25 * err;
            self.srtt_ns = 0.875 * self.srtt_ns + 0.125 * s;
        }
        let rto_ns = (self.srtt_ns + 4.0 * self.rttvar_ns).max(1e6); // ≥1 ms
        self.rto = Time::from_nanos(rto_ns as u64);
    }

    /// Merge a SACK block into the scoreboard.
    fn merge_sack(&mut self, start: u64, end: u64) {
        if end <= start {
            return;
        }
        let mut start = start;
        let mut end = end;
        // Absorb overlapping/adjacent ranges.
        let overlapping: Vec<u64> = self
            .sacked
            .range(..=end)
            .filter(|&(&_s, &e)| e >= start)
            .map(|(&s, _)| s)
            .collect();
        for s in overlapping {
            let Some(e) = self.sacked.remove(&s) else {
                continue; // unreachable: keys collected from the map above
            };
            start = start.min(s);
            end = end.max(e);
        }
        self.sacked.insert(start, end);
    }

    fn is_sacked(&self, seq: u64) -> bool {
        self.sacked
            .range(..=seq)
            .next_back()
            .is_some_and(|(&s, &e)| seq >= s && seq < e)
    }

    /// Retransmit every known hole (unSACKed in-flight segment below the
    /// highest SACKed byte) that has not been retransmitted this epoch.
    fn retransmit_holes(&mut self, ctx: &mut Context<'_>) {
        let Some((_, &max_sacked)) = self.sacked.iter().next_back() else {
            return;
        };
        // Self-clocked recovery: only retransmit while the pipe estimate
        // leaves window room, so recovery never re-floods the queue that
        // just overflowed. Incoming SACKs shrink the pipe and release the
        // next batch.
        let mss = self.profile.mss as u64;
        let room = self.effective_window().saturating_sub(self.pipe_estimate());
        let budget = ((room / mss) as usize).min(64);
        if budget == 0 {
            return;
        }
        let holes: Vec<u64> = self
            .sent_times
            .range(self.snd_una..max_sacked)
            .map(|(&seq, _)| seq)
            .filter(|&seq| !self.is_sacked(seq) && !self.hole_retx.contains(&seq))
            .take(budget)
            .collect();
        for seq in holes {
            let len = (self.profile.mss as u64).min(self.total_bytes - seq) as u32;
            self.send_segment(ctx, seq, len, true);
            self.hole_retx.insert(seq);
        }
    }

    fn on_ack(&mut self, ctx: &mut Context<'_>, seg: Segment) {
        self.peer_window = u64::from(seg.window).max(1);
        let blocks: Vec<(u64, u64)> = seg.sack_blocks().collect();
        for (s, e) in blocks {
            self.merge_sack(s, e);
        }
        // Retransmissions confirmed delivered (SACKed or cum-acked) leave
        // the pipe; forgetting them here keeps the pipe estimate honest.
        let snd_una = self.snd_una.max(seg.ack);
        let mut hr = std::mem::take(&mut self.hole_retx);
        hr.retain(|&s| s >= snd_una && !self.is_sacked(s));
        self.hole_retx = hr;
        if seg.ack > self.snd_una {
            // New data acknowledged.
            let newly = seg.ack - self.snd_una;
            // RTT sample from the oldest segment this ack covers (skip
            // retransmitted segments — Karn's algorithm).
            if let Some((&seq, &(sent_at, retx))) = self.sent_times.iter().next() {
                if seq < seg.ack && !retx {
                    self.update_rtt(ctx.now() - sent_at);
                }
            }
            let acked_keys: Vec<u64> = self.sent_times.range(..seg.ack).map(|(&k, _)| k).collect();
            for k in acked_keys {
                self.sent_times.remove(&k);
            }
            self.snd_una = seg.ack;
            self.stats.bytes_acked = self.snd_una;
            self.dup_acks = 0;
            // Progress resumed: RTO backoff resets (RFC 6298 §5.7).
            self.rto = self.base_rto();
            // Drop scoreboard state below the cumulative ack.
            let stale: Vec<u64> = self
                .sacked
                .iter()
                .filter(|&(_, &e)| e <= self.snd_una)
                .map(|(&s, _)| s)
                .collect();
            for s in stale {
                self.sacked.remove(&s);
            }
            if self.snd_una < self.recovery_until {
                // Still in recovery. After an RTO the window restarts from
                // one segment and must slow-start back up or recovery
                // crawls at one segment per RTT; the multiplicative part
                // of congestion avoidance stays frozen.
                if self.cwnd < self.ssthresh {
                    self.cwnd += newly as f64;
                }
                // Retransmit the holes the scoreboard exposes (SACK-based),
                // plus the cumulative hole itself if unSACKed (NewReno
                // partial ack).
                if !self.is_sacked(self.snd_una) && !self.hole_retx.contains(&self.snd_una) {
                    let len = (self.profile.mss as u64).min(self.total_bytes - self.snd_una) as u32;
                    let seq = self.snd_una;
                    self.send_segment(ctx, seq, len, true);
                    self.hole_retx.insert(seq);
                }
                self.retransmit_holes(ctx);
                self.arm_rto(ctx);
            } else {
                self.hole_retx.clear();
                self.grow_window(ctx.now(), newly);
            }
            // Completion?
            if self.snd_una >= self.total_bytes && self.stats.completed_at.is_none() {
                self.stats.completed_at = Some(ctx.now());
                self.stats.srtt_ns = self.srtt_ns as u64;
                self.rto_deadline = None;
                return;
            }
            // Re-arm RTO for remaining in-flight data.
            if self.snd_una < self.snd_nxt {
                self.arm_rto(ctx);
            } else {
                self.rto_deadline = None;
            }
        } else if seg.ack == self.snd_una && self.snd_una < self.snd_nxt {
            // Duplicate ACK.
            self.dup_acks += 1;
            if self.dup_acks == 3 && self.snd_una >= self.recovery_until {
                // Fast retransmit + multiplicative decrease.
                let flight = (self.snd_nxt - self.snd_una) as f64;
                self.on_loss_event(ctx.now(), flight);
                self.recovery_until = self.snd_nxt;
                self.stats.fast_retransmits += 1;
                self.hole_retx.clear();
                let len = (self.profile.mss as u64).min(self.total_bytes - self.snd_una) as u32;
                let seq = self.snd_una;
                self.send_segment(ctx, seq, len, true);
                self.hole_retx.insert(seq);
                // SACK-based recovery of the rest of the burst.
                self.retransmit_holes(ctx);
            } else if self.dup_acks > 3 && self.snd_una < self.recovery_until {
                // Fresh SACK information keeps arriving on duplicate ACKs;
                // keep draining newly exposed holes.
                self.retransmit_holes(ctx);
            }
        }
        self.try_send(ctx);
    }
}

impl Node for TcpSender {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        // Handshake: SYN, wait for SYN-ACK.
        let syn = Segment {
            flow: self.flow,
            seq: 0,
            ack: 0,
            flags: SegmentFlags {
                syn: true,
                ack: false,
                fin: false,
            },
            window: 0,
            len: 0,
            sack: [(0, 0); crate::segment::MAX_SACK],
        };
        ctx.send(0, Packet::with_flow(syn.encode(), self.flow));
        self.arm_rto(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, _port: PortId, pkt: Packet) {
        let Some(seg) = Segment::decode(&pkt.bytes) else {
            return;
        };
        if seg.flow != self.flow {
            return;
        }
        if seg.flags.syn && seg.flags.ack {
            if !self.established {
                self.established = true;
                self.rto_deadline = None;
                self.try_send(ctx);
            }
            return;
        }
        if seg.flags.ack {
            self.on_ack(ctx, seg);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: TimerToken) {
        match token {
            TOKEN_SEND => {
                self.send_timer_armed = false;
                self.try_send(ctx);
            }
            TOKEN_RTO => {
                let Some(deadline) = self.rto_deadline else {
                    return;
                };
                if ctx.now() < deadline {
                    return; // stale timer
                }
                if !self.established {
                    // Re-send SYN.
                    let syn = Segment {
                        flow: self.flow,
                        seq: 0,
                        ack: 0,
                        flags: SegmentFlags {
                            syn: true,
                            ack: false,
                            fin: false,
                        },
                        window: 0,
                        len: 0,
                        sack: [(0, 0); crate::segment::MAX_SACK],
                    };
                    ctx.send(0, Packet::with_flow(syn.encode(), self.flow));
                    self.rto = self.rto * 2;
                    self.arm_rto(ctx);
                    return;
                }
                if self.snd_una < self.snd_nxt {
                    // Timeout: retransmit the first unacked segment and
                    // collapse the window. Only a *fresh* congestion event
                    // (outside the current recovery epoch) resets the
                    // CUBIC anchor — an RTO while already recovering must
                    // not ratchet W_max down again.
                    let mss = self.profile.mss as f64;
                    let flight = (self.snd_nxt - self.snd_una) as f64;
                    if self.snd_una >= self.recovery_until {
                        self.on_loss_event(ctx.now(), flight);
                    }
                    self.cwnd = mss;
                    self.dup_acks = 0;
                    self.recovery_until = self.snd_nxt;
                    self.stats.rto_retransmits += 1;
                    // The timeout is evidence that earlier retransmissions
                    // were lost too: reset the epoch so holes are eligible
                    // for retransmission again.
                    self.hole_retx.clear();
                    let len = (self.profile.mss as u64).min(self.total_bytes - self.snd_una) as u32;
                    let seq = self.snd_una;
                    self.send_segment(ctx, seq, len, true);
                    self.hole_retx.insert(seq);
                    self.retransmit_holes(ctx);
                    self.rto = self.rto * 2;
                    self.arm_rto(ctx);
                } else {
                    self.rto_deadline = None;
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
