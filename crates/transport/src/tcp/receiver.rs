//! The TCP receiver: reassembly, cumulative ACKs, message delineation.

use crate::segment::{Segment, SegmentFlags};
use mmt_netsim::{Context, Node, Packet, PortId, Time};
use std::collections::BTreeMap;

/// One application message's delivery record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveredMessage {
    /// Message index in the stream.
    pub index: u64,
    /// When the message's last byte first *arrived* (possibly out of
    /// order).
    pub arrived_at: Time,
    /// When the message was *delivered* in order to the application.
    /// `delivered_at - arrived_at` is pure head-of-line blocking (§4.1).
    pub delivered_at: Time,
}

/// A TCP receiver that reassembles the bytestream and carves it back into
/// fixed-size messages — the "message delineation in the bytestream" the
/// paper points out DAQ peers are forced to implement (§4.1).
pub struct TcpReceiver {
    flow: u64,
    message_len: u64,
    window: u32,
    rcv_nxt: u64,
    /// Out-of-order byte ranges received: start → end (exclusive), merged.
    ooo: BTreeMap<u64, u64>,
    /// Per-message bytes still missing (only for messages not yet fully
    /// arrived).
    missing: BTreeMap<u64, u64>,
    /// Completed arrival times awaiting in-order delivery.
    arrived: BTreeMap<u64, Time>,
    /// Most-recently-touched received ranges, for SACK block selection
    /// (RFC 2018: the first block SHOULD cover the most recent arrival).
    recent_blocks: std::collections::VecDeque<u64>,
    /// Delivery log.
    delivered: Vec<DeliveredMessage>,
    /// Highest message index delivered + 1.
    next_deliver: u64,
    /// Total duplicate bytes received (retransmission overlap).
    pub duplicate_bytes: u64,
    /// ACKs sent.
    pub acks_sent: u64,
}

impl TcpReceiver {
    /// A receiver for `flow` carving the stream into `message_len`-byte
    /// messages and advertising `window` bytes.
    pub fn new(flow: u64, message_len: usize, window: u64) -> TcpReceiver {
        assert!(message_len > 0);
        TcpReceiver {
            flow,
            message_len: message_len as u64,
            window: window.min(u64::from(u32::MAX)) as u32,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            missing: BTreeMap::new(),
            recent_blocks: std::collections::VecDeque::new(),
            arrived: BTreeMap::new(),
            delivered: Vec::new(),
            next_deliver: 0,
            duplicate_bytes: 0,
            acks_sent: 0,
        }
    }

    /// Messages delivered so far, in order.
    pub fn delivered(&self) -> &[DeliveredMessage] {
        &self.delivered
    }

    /// The next expected in-order byte.
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Insert `[start, end)` into the received-range set, returning the
    /// sub-ranges that are genuinely new.
    fn insert_range(&mut self, start: u64, end: u64) -> Vec<(u64, u64)> {
        debug_assert!(start < end);
        let mut new_parts = Vec::new();
        let mut cursor = start;
        // Walk existing ranges overlapping [start, end).
        let overlapping: Vec<(u64, u64)> = self
            .ooo
            .range(..end)
            .filter(|&(&_s, &e)| e > start)
            .map(|(&s, &e)| (s, e))
            .collect();
        for (s, e) in &overlapping {
            if cursor < *s {
                new_parts.push((cursor, *s));
            }
            cursor = cursor.max(*e);
        }
        if cursor < end {
            new_parts.push((cursor, end));
        }
        // Merge: remove overlapped ranges, insert the union.
        let union_start = overlapping.first().map_or(start, |&(s, _)| s.min(start));
        let union_end = overlapping.last().map_or(end, |&(_, e)| e.max(end));
        for (s, _) in overlapping {
            self.ooo.remove(&s);
        }
        // Also coalesce with immediately adjacent ranges.
        let mut union_start = union_start;
        let mut union_end = union_end;
        if let Some((&s, &e)) = self.ooo.range(..union_start).next_back() {
            if e == union_start {
                self.ooo.remove(&s);
                union_start = s;
            }
        }
        if let Some(&e) = self.ooo.get(&union_end) {
            self.ooo.remove(&union_end);
            union_end = e;
        }
        self.ooo.insert(union_start, union_end);
        new_parts
    }

    /// Credit newly arrived bytes to their messages; record completion.
    fn credit_messages(&mut self, parts: &[(u64, u64)], now: Time) {
        for &(s, e) in parts {
            let first_msg = s / self.message_len;
            let last_msg = (e - 1) / self.message_len;
            for m in first_msg..=last_msg {
                let m_start = m * self.message_len;
                let m_end = m_start + self.message_len;
                let overlap = e.min(m_end) - s.max(m_start);
                let remaining = self.missing.entry(m).or_insert(self.message_len);
                *remaining -= overlap;
                if *remaining == 0 {
                    self.missing.remove(&m);
                    self.arrived.insert(m, now);
                }
            }
        }
    }

    /// Deliver messages whose bytes are all below `rcv_nxt`, in order.
    fn deliver_ready(&mut self, now: Time) {
        while self.arrived.contains_key(&self.next_deliver) {
            let m = self.next_deliver;
            let m_end = (m + 1) * self.message_len;
            if m_end > self.rcv_nxt {
                break; // bytes arrived but stream not contiguous yet
            }
            let Some(arrived_at) = self.arrived.remove(&m) else {
                break; // unreachable: contains_key checked above
            };
            self.delivered.push(DeliveredMessage {
                index: m,
                arrived_at,
                delivered_at: now,
            });
            self.next_deliver += 1;
        }
    }
}

impl Node for TcpReceiver {
    fn on_packet(&mut self, ctx: &mut Context<'_>, _port: PortId, pkt: Packet) {
        let Some(seg) = Segment::decode(&pkt.bytes) else {
            return;
        };
        if seg.flow != self.flow {
            return;
        }
        if seg.flags.syn {
            let synack = Segment {
                flow: self.flow,
                seq: 0,
                ack: 0,
                flags: SegmentFlags {
                    syn: true,
                    ack: true,
                    fin: false,
                },
                window: self.window,
                len: 0,
                sack: [(0, 0); crate::segment::MAX_SACK],
            };
            ctx.send(0, Packet::with_flow(synack.encode(), self.flow));
            return;
        }
        if seg.len == 0 {
            return; // pure control, nothing to do
        }
        let now = ctx.now();
        let start = seg.seq;
        let end = seg.seq.saturating_add(u64::from(seg.len));
        let new_parts = self.insert_range(start, end);
        let new_bytes: u64 = new_parts.iter().map(|&(s, e)| e - s).sum();
        self.duplicate_bytes += (end - start) - new_bytes;
        self.credit_messages(&new_parts, now);
        // Advance rcv_nxt across the contiguous prefix.
        if let Some((&s, &e)) = self.ooo.iter().next() {
            if s <= self.rcv_nxt && e > self.rcv_nxt {
                self.rcv_nxt = e;
            }
        }
        self.deliver_ready(now);
        // Cumulative ACK for every data segment, with SACK blocks. Per
        // RFC 2018 the first block covers the most recent arrival; older
        // touched ranges fill the remaining slots, so the sender's
        // scoreboard converges even when the gap count exceeds the block
        // budget.
        let containing = self
            .ooo
            .range(..=start)
            .next_back()
            .map(|(&s, _)| s)
            .filter(|&s| s > self.rcv_nxt);
        if let Some(s) = containing {
            self.recent_blocks.retain(|&b| b != s);
            self.recent_blocks.push_front(s);
            self.recent_blocks.truncate(8);
        }
        // Drop stale starts (merged away or below the cumulative point).
        let ooo_ref = &self.ooo;
        let rcv_nxt = self.rcv_nxt;
        self.recent_blocks
            .retain(|&b| b > rcv_nxt && ooo_ref.contains_key(&b));
        let mut ack = Segment::pure_ack(self.flow, self.rcv_nxt, self.window);
        for (i, &s) in self
            .recent_blocks
            .iter()
            .take(crate::segment::MAX_SACK)
            .enumerate()
        {
            ack.sack[i] = (s, self.ooo[&s]);
        }
        ctx.send(0, Packet::with_flow(ack.encode(), self.flow));
        self.acks_sent += 1;
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_set_merging() {
        let mut r = TcpReceiver::new(1, 100, 1 << 20);
        assert_eq!(r.insert_range(0, 10), vec![(0, 10)]);
        // Disjoint.
        assert_eq!(r.insert_range(20, 30), vec![(20, 30)]);
        // Overlapping both.
        assert_eq!(r.insert_range(5, 25), vec![(10, 20)]);
        assert_eq!(r.ooo.len(), 1);
        assert_eq!(r.ooo.get(&0), Some(&30));
        // Fully contained: nothing new.
        assert!(r.insert_range(3, 7).is_empty());
        // Adjacent coalescing.
        assert_eq!(r.insert_range(30, 40), vec![(30, 40)]);
        assert_eq!(r.ooo.len(), 1);
        assert_eq!(r.ooo.get(&0), Some(&40));
    }
}
