//! The message-level TCP model.
//!
//! See the crate docs for scope. The split:
//!
//! * [`CcProfile`] — congestion-control and host-stack parameters,
//!   including the per-segment host overhead that creates the single-
//!   stream throughput ceilings the paper cites (§4.1: ~30 Gbps tuned
//!   \[46\], 55 Gbps on a testbed with recent kernels \[66\]).
//! * [`TcpSender`] — window-based sender: slow start with HyStart exit,
//!   Reno or CUBIC congestion avoidance, fast retransmit, SACK-driven
//!   recovery, rate pacing, and RTO backoff.
//! * [`TcpReceiver`] — reassembly, cumulative ACKs with SACK blocks, and
//!   message delineation so experiments can observe head-of-line
//!   blocking.

mod profile;
mod receiver;
mod sender;

pub use profile::CcProfile;
pub use receiver::{DeliveredMessage, TcpReceiver};
pub use sender::{TcpSender, TcpSenderStats};
