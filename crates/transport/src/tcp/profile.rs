//! Host and congestion-control profiles.

use mmt_netsim::Bandwidth;

/// Window-growth algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcAlgo {
    /// Classic AIMD (RFC 5681): +1 MSS per RTT in congestion avoidance.
    /// Known to starve on long fat networks — the reason tuned stacks
    /// moved on.
    Reno,
    /// CUBIC (RFC 8312): cubic window regrowth around the last loss
    /// point, RTT-independent — what tuned DTN kernels actually run.
    Cubic,
}

/// Parameters describing one TCP deployment flavour.
///
/// The `per_segment_overhead_ns` term models the end-system cost per
/// segment (syscalls, copies, interrupts, protocol processing) that caps
/// single-stream throughput no matter how fat the pipe — the effect §4.1
/// attributes to "processing overhead for concurrent TCP streams" and the
/// reason DTN operators tune so aggressively.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CcProfile {
    /// Human-readable profile name.
    pub name: &'static str,
    /// Maximum segment size, bytes (payload per segment).
    pub mss: usize,
    /// Initial congestion window, segments.
    pub init_cwnd_segments: u32,
    /// Receive-window / buffer limit, bytes (the tuning knob of
    /// fasterdata-style guides \[22, 43\]).
    pub max_window_bytes: u64,
    /// Host processing cost per segment, nanoseconds.
    pub per_segment_overhead_ns: u64,
    /// Window-growth algorithm.
    pub cc: CcAlgo,
}

impl CcProfile {
    /// Default, untuned stack: standard MTU, modest buffers. Over a
    /// 100 ms WAN this window caps a stream at ~0.5 Gb/s — the familiar
    /// "why is my transfer slow" configuration.
    pub fn untuned() -> CcProfile {
        CcProfile {
            name: "untuned",
            mss: 1448,
            init_cwnd_segments: 10,
            max_window_bytes: 6 * 1024 * 1024,
            per_segment_overhead_ns: 2_000,
            cc: CcAlgo::Reno,
        }
    }

    /// A heavily tuned DTN stack (jumbo frames, huge buffers): the
    /// ~30 Gb/s single-stream operating point reported for production
    /// DTNs \[46\].
    pub fn tuned_dtn() -> CcProfile {
        CcProfile {
            name: "tuned-dtn",
            mss: 8900,
            init_cwnd_segments: 10,
            max_window_bytes: 2 * 1024 * 1024 * 1024,
            per_segment_overhead_ns: 2_300,
            cc: CcAlgo::Cubic,
        }
    }

    /// A tuned stack on a recent kernel with the 2024 improvements \[66\]:
    /// ~55 Gb/s single stream in testbeds.
    pub fn tuned_dtn_2024() -> CcProfile {
        CcProfile {
            name: "tuned-dtn-2024",
            mss: 8900,
            init_cwnd_segments: 10,
            max_window_bytes: 4 * 1024 * 1024 * 1024,
            per_segment_overhead_ns: 1_300,
            cc: CcAlgo::Cubic,
        }
    }

    /// An idealized host with no processing ceiling (isolates protocol
    /// dynamics from host limits in ablations).
    pub fn ideal() -> CcProfile {
        CcProfile {
            name: "ideal",
            mss: 8900,
            init_cwnd_segments: 10,
            max_window_bytes: u64::MAX / 4,
            per_segment_overhead_ns: 0,
            cc: CcAlgo::Cubic,
        }
    }

    /// A copy of this profile with a large initial window — models a
    /// long-lived elephant stream that finished its ramp long ago (DAQ
    /// streams run for hours; slow start is a negligible prefix).
    #[must_use]
    pub fn warmed(mut self, init_segments: u32) -> CcProfile {
        self.init_cwnd_segments = init_segments;
        self
    }

    /// The throughput ceiling imposed by host overhead alone.
    pub fn host_ceiling(&self) -> Bandwidth {
        if self.per_segment_overhead_ns == 0 {
            return Bandwidth::bps(u64::MAX);
        }
        let bits = (self.mss as u64) * 8;
        Bandwidth::bps(bits * 1_000_000_000 / self.per_segment_overhead_ns)
    }

    /// The throughput ceiling imposed by the window over a given RTT.
    pub fn window_ceiling(&self, rtt: mmt_netsim::Time) -> Bandwidth {
        if rtt == mmt_netsim::Time::ZERO {
            return Bandwidth::bps(u64::MAX);
        }
        let bits = (self.max_window_bytes as u128) * 8 * 1_000_000_000;
        Bandwidth::bps((bits / rtt.as_nanos() as u128).min(u64::MAX as u128) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_netsim::Time;

    #[test]
    fn host_ceilings_match_cited_operating_points() {
        // Tuned DTN ≈ 31 Gb/s (the ~30 Gb/s of [46]).
        let g = CcProfile::tuned_dtn().host_ceiling().as_gbps_f64();
        assert!((29.0..33.0).contains(&g), "{g}");
        // 2024 kernel ≈ 55 Gb/s [66].
        let g = CcProfile::tuned_dtn_2024().host_ceiling().as_gbps_f64();
        assert!((52.0..58.0).contains(&g), "{g}");
        // Untuned ≈ 5.8 Gb/s host-side even before window limits.
        let g = CcProfile::untuned().host_ceiling().as_gbps_f64();
        assert!((5.0..7.0).contains(&g), "{g}");
        assert!(CcProfile::ideal().host_ceiling().as_bps() == u64::MAX);
    }

    #[test]
    fn window_ceiling_over_wan() {
        // Untuned 6 MiB window over 100 ms: ~0.5 Gb/s.
        let g = CcProfile::untuned()
            .window_ceiling(Time::from_millis(100))
            .as_gbps_f64();
        assert!((0.4..0.6).contains(&g), "{g}");
        // Tuned 2 GiB window over 100 ms: ~172 Gb/s (not binding next to
        // the 31 Gb/s host ceiling).
        let g = CcProfile::tuned_dtn()
            .window_ceiling(Time::from_millis(100))
            .as_gbps_f64();
        assert!(g > 100.0, "{g}");
        assert_eq!(
            CcProfile::untuned().window_ceiling(Time::ZERO).as_bps(),
            u64::MAX
        );
    }
}
