//! Fire-and-forget datagram endpoints — today's DAQ-network transport
//! (DUNE carries DAQ data over UDP, §4): no retransmission, no pacing
//! beyond the schedule, loss is silent.

use mmt_netsim::{Context, Node, Packet, PortId, Time, TimerToken};

/// A UDP-style sender: emits one datagram per scheduled message.
pub struct UdpSender {
    flow: u64,
    message_len: usize,
    schedule: Vec<Time>,
    next: usize,
    /// Datagrams sent.
    pub sent: u64,
}

impl UdpSender {
    /// A sender emitting `message_len`-byte datagrams at the scheduled
    /// times.
    pub fn new(flow: u64, message_len: usize, schedule: Vec<Time>) -> UdpSender {
        assert!(
            schedule.windows(2).all(|w| w[1] >= w[0]),
            "schedule must be non-decreasing"
        );
        UdpSender {
            flow,
            message_len,
            schedule,
            next: 0,
            sent: 0,
        }
    }

    fn pump(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        while self.next < self.schedule.len() && self.schedule[self.next] <= now {
            // Encode the message index in the first 8 bytes so receivers
            // can detect loss and reordering.
            let mut bytes = vec![0u8; self.message_len.max(8)];
            bytes[..8].copy_from_slice(&(self.next as u64).to_be_bytes());
            ctx.send(0, Packet::with_flow(bytes, self.flow));
            self.sent += 1;
            self.next += 1;
        }
        if self.next < self.schedule.len() {
            let wake = self.schedule[self.next] - now;
            ctx.set_timer(wake, 1);
        }
    }
}

impl Node for UdpSender {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.pump(ctx);
    }

    fn on_packet(&mut self, _ctx: &mut Context<'_>, _port: PortId, _pkt: Packet) {}

    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: TimerToken) {
        self.pump(ctx);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A UDP-style receiver: records arrivals, detects gaps.
pub struct UdpReceiver {
    flow: u64,
    /// `(message index, arrival time)` in arrival order.
    pub received: Vec<(u64, Time)>,
    /// Highest index seen + 1 (for loss accounting against the sender).
    pub highest_seen: u64,
}

impl UdpReceiver {
    /// A receiver for `flow`.
    pub fn new(flow: u64) -> UdpReceiver {
        UdpReceiver {
            flow,
            received: Vec::new(),
            highest_seen: 0,
        }
    }

    /// Number of datagrams received.
    pub fn count(&self) -> usize {
        self.received.len()
    }

    /// Indices never received, assuming `sent` datagrams were emitted.
    pub fn missing(&self, sent: u64) -> Vec<u64> {
        let mut seen = vec![false; sent as usize];
        for &(idx, _) in &self.received {
            if (idx as usize) < seen.len() {
                seen[idx as usize] = true;
            }
        }
        seen.iter()
            .enumerate()
            .filter(|(_, &s)| !s)
            .map(|(i, _)| i as u64)
            .collect()
    }
}

impl Node for UdpReceiver {
    fn on_packet(&mut self, ctx: &mut Context<'_>, _port: PortId, pkt: Packet) {
        if pkt.meta.flow != self.flow || pkt.bytes.len() < 8 {
            return;
        }
        let Ok(prefix) = pkt.bytes[..8].try_into() else {
            return; // unreachable: length checked above
        };
        let idx = u64::from_be_bytes(prefix);
        self.received.push((idx, ctx.now()));
        self.highest_seen = self.highest_seen.max(idx + 1);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_netsim::{Bandwidth, LinkSpec, LossModel, Simulator};

    #[test]
    fn lossless_delivery_in_order() {
        let mut sim = Simulator::new(1);
        let schedule: Vec<Time> = (0..50).map(|i| Time::from_micros(i * 10)).collect();
        let s = sim.add_node("s", Box::new(UdpSender::new(1, 1000, schedule)));
        let r = sim.add_node("r", Box::new(UdpReceiver::new(1)));
        sim.add_oneway(
            s,
            0,
            r,
            0,
            LinkSpec::new(Bandwidth::gbps(10), Time::from_micros(5)),
        );
        sim.run();
        let rx = sim.node_as::<UdpReceiver>(r).unwrap();
        assert_eq!(rx.count(), 50);
        assert!(rx.missing(50).is_empty());
        // In-order, indices 0..50.
        assert!(rx.received.windows(2).all(|w| w[1].0 == w[0].0 + 1));
    }

    #[test]
    fn loss_is_silent_and_detected_by_gap() {
        let mut sim = Simulator::new(3);
        let schedule: Vec<Time> = (0..1000).map(Time::from_micros).collect();
        let s = sim.add_node("s", Box::new(UdpSender::new(1, 1000, schedule)));
        let r = sim.add_node("r", Box::new(UdpReceiver::new(1)));
        sim.add_oneway(
            s,
            0,
            r,
            0,
            LinkSpec::new(Bandwidth::gbps(100), Time::ZERO).with_loss(LossModel::Random(0.05)),
        );
        sim.run();
        let tx = sim.node_as::<UdpSender>(s).unwrap().sent;
        assert_eq!(tx, 1000);
        let rx = sim.node_as::<UdpReceiver>(r).unwrap();
        let missing = rx.missing(1000);
        assert_eq!(missing.len() + rx.count(), 1000);
        assert!(!missing.is_empty(), "5% loss must drop something");
        assert!((20..=90).contains(&missing.len()), "{}", missing.len());
    }

    #[test]
    fn schedule_timing_respected() {
        let mut sim = Simulator::new(1);
        let schedule = vec![Time::from_millis(1), Time::from_millis(5)];
        let s = sim.add_node("s", Box::new(UdpSender::new(1, 100, schedule)));
        let r = sim.add_node("r", Box::new(UdpReceiver::new(1)));
        sim.add_oneway(s, 0, r, 0, LinkSpec::new(Bandwidth::gbps(100), Time::ZERO));
        sim.run();
        let rx = sim.node_as::<UdpReceiver>(r).unwrap();
        assert_eq!(rx.count(), 2);
        assert!(rx.received[0].1 >= Time::from_millis(1));
        assert!(rx.received[1].1 >= Time::from_millis(5));
    }
}
