//! The simulated TCP segment wire format.
//!
//! A compact fixed header carried directly in Ethernet frames (the
//! simulator routes by topology, so IP addressing is unnecessary):
//! flow id (8) + seq (8) + ack (8) + flags (1) + SACK count (1) +
//! reserved (2) + window (4) + payload length (4) + 3 × SACK block
//! (first u64 + last u64) = 84 bytes, followed by `len` payload bytes
//! (zeros — content is irrelevant to transport dynamics). SACK blocks
//! let the tuned baseline recover burst losses in one RTT, as real DTN
//! stacks do.

/// Segment header length.
pub const HEADER_LEN: usize = 84;

/// Maximum SACK blocks carried per segment.
pub const MAX_SACK: usize = 3;

/// Segment flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentFlags {
    /// Connection-opening segment.
    pub syn: bool,
    /// Carries a valid ack number.
    pub ack: bool,
    /// Sender finished.
    pub fin: bool,
}

impl SegmentFlags {
    const SYN: u8 = 0x01;
    const ACK: u8 = 0x02;
    const FIN: u8 = 0x04;

    fn to_u8(self) -> u8 {
        (u8::from(self.syn) * Self::SYN)
            | (u8::from(self.ack) * Self::ACK)
            | (u8::from(self.fin) * Self::FIN)
    }

    fn from_u8(v: u8) -> SegmentFlags {
        SegmentFlags {
            syn: v & Self::SYN != 0,
            ack: v & Self::ACK != 0,
            fin: v & Self::FIN != 0,
        }
    }
}

/// A parsed (or to-be-emitted) segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Flow identifier (one per connection).
    pub flow: u64,
    /// First payload byte's stream offset.
    pub seq: u64,
    /// Cumulative acknowledgement (next expected byte).
    pub ack: u64,
    /// Flags.
    pub flags: SegmentFlags,
    /// Advertised receive window, bytes.
    pub window: u32,
    /// Payload length, bytes.
    pub len: u32,
    /// SACK blocks: received byte ranges `[start, end)` above `ack`.
    /// Zero-length blocks are absent.
    pub sack: [(u64, u64); MAX_SACK],
}

impl Segment {
    /// A data segment.
    pub fn data(flow: u64, seq: u64, len: u32) -> Segment {
        Segment {
            flow,
            seq,
            ack: 0,
            flags: SegmentFlags {
                syn: false,
                ack: false,
                fin: false,
            },
            window: 0,
            len,
            sack: [(0, 0); MAX_SACK],
        }
    }

    /// A pure ACK.
    pub fn pure_ack(flow: u64, ack: u64, window: u32) -> Segment {
        Segment {
            flow,
            seq: 0,
            ack,
            flags: SegmentFlags {
                syn: false,
                ack: true,
                fin: false,
            },
            window,
            len: 0,
            sack: [(0, 0); MAX_SACK],
        }
    }

    /// The SACK blocks actually present (non-empty ranges).
    pub fn sack_blocks(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.sack.iter().copied().filter(|&(s, e)| e > s)
    }

    /// Total frame payload length (header + data bytes).
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.len as usize
    }

    /// Encode into bytes (payload zero-filled).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.wire_len()];
        out[0..8].copy_from_slice(&self.flow.to_be_bytes());
        out[8..16].copy_from_slice(&self.seq.to_be_bytes());
        out[16..24].copy_from_slice(&self.ack.to_be_bytes());
        out[24] = self.flags.to_u8();
        out[25] = self.sack_blocks().count() as u8;
        out[28..32].copy_from_slice(&self.window.to_be_bytes());
        out[32..36].copy_from_slice(&self.len.to_be_bytes());
        for (i, (s, e)) in self.sack.iter().enumerate() {
            let off = 36 + i * 16;
            out[off..off + 8].copy_from_slice(&s.to_be_bytes());
            out[off + 8..off + 16].copy_from_slice(&e.to_be_bytes());
        }
        out
    }

    /// Decode from bytes (length-checked).
    pub fn decode(buf: &[u8]) -> Option<Segment> {
        if buf.len() < HEADER_LEN {
            return None;
        }
        let be_u64 = |off: usize| -> Option<u64> {
            Some(u64::from_be_bytes(buf.get(off..off + 8)?.try_into().ok()?))
        };
        let be_u32 = |off: usize| -> Option<u32> {
            Some(u32::from_be_bytes(buf.get(off..off + 4)?.try_into().ok()?))
        };
        let mut sack = [(0u64, 0u64); MAX_SACK];
        for (i, block) in sack.iter_mut().enumerate() {
            let off = 36 + i * 16;
            *block = (be_u64(off)?, be_u64(off + 8)?);
        }
        let seg = Segment {
            flow: be_u64(0)?,
            seq: be_u64(8)?,
            ack: be_u64(16)?,
            flags: SegmentFlags::from_u8(buf[24]),
            window: be_u32(28)?,
            len: be_u32(32)?,
            sack,
        };
        if buf.len() < seg.wire_len() {
            return None;
        }
        Some(seg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let seg = Segment {
            flow: 7,
            seq: 1_000_000,
            ack: 42,
            flags: SegmentFlags {
                syn: true,
                ack: true,
                fin: false,
            },
            window: 1 << 20,
            len: 1448,
            sack: [(100, 200), (300, 400), (0, 0)],
        };
        let bytes = seg.encode();
        assert_eq!(bytes.len(), HEADER_LEN + 1448);
        assert_eq!(Segment::decode(&bytes), Some(seg));
        assert_eq!(seg.sack_blocks().count(), 2);
    }

    #[test]
    fn constructors() {
        let d = Segment::data(1, 100, 500);
        assert!(!d.flags.ack);
        assert_eq!(d.wire_len(), HEADER_LEN + 500);
        let a = Segment::pure_ack(1, 600, 4096);
        assert!(a.flags.ack);
        assert_eq!(a.len, 0);
        assert_eq!(a.wire_len(), HEADER_LEN);
    }

    #[test]
    fn truncated_rejected() {
        let seg = Segment::data(1, 0, 100);
        let bytes = seg.encode();
        assert!(Segment::decode(&bytes[..HEADER_LEN - 1]).is_none());
        assert!(Segment::decode(&bytes[..HEADER_LEN + 50]).is_none());
    }

    #[test]
    fn flag_bits_roundtrip() {
        for syn in [false, true] {
            for ack in [false, true] {
                for fin in [false, true] {
                    let f = SegmentFlags { syn, ack, fin };
                    assert_eq!(SegmentFlags::from_u8(f.to_u8()), f);
                }
            }
        }
    }
}
