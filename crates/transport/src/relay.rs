//! Relays: the plumbing between endpoints.
//!
//! [`Relay`] is a transparent bidirectional forwarder (a dumb wire/switch
//! hop). [`StoreAndForwardRelay`] models the TCP-terminating DTN stages of
//! Fig. 2: it receives a whole message on one side before re-emitting it
//! on the other, adding the staging latency the paper wants to avoid for
//! rapid inter-instrument coordination (§4.1 point 2).

use mmt_netsim::{Context, Node, Packet, PortId, Time, TimerToken};
use std::collections::BTreeMap;

/// Transparent bidirectional forwarder between port 0 and port 1.
pub struct Relay {
    /// Frames forwarded.
    pub forwarded: u64,
}

impl Relay {
    /// Create a relay.
    pub fn new() -> Relay {
        Relay { forwarded: 0 }
    }
}

impl Default for Relay {
    fn default() -> Self {
        Self::new()
    }
}

impl Node for Relay {
    fn on_packet(&mut self, ctx: &mut Context<'_>, port: PortId, pkt: Packet) {
        let out = if port == 0 { 1 } else { 0 };
        self.forwarded += 1;
        ctx.send(out, pkt);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A store-and-forward stage: holds each packet for a fixed staging delay
/// (buffering + termination processing) before re-emitting it on the
/// other side. A crude but honest model of a DTN that terminates one TCP
/// connection and opens the next (Fig. 2 ②/④).
pub struct StoreAndForwardRelay {
    staging_delay: Time,
    pending: BTreeMap<TimerToken, (PortId, Packet)>,
    next_token: TimerToken,
    /// Packets staged.
    pub staged: u64,
}

impl StoreAndForwardRelay {
    /// Create a stage with the given per-packet staging delay.
    pub fn new(staging_delay: Time) -> StoreAndForwardRelay {
        StoreAndForwardRelay {
            staging_delay,
            pending: BTreeMap::new(),
            next_token: 1,
            staged: 0,
        }
    }
}

impl Node for StoreAndForwardRelay {
    fn on_packet(&mut self, ctx: &mut Context<'_>, port: PortId, pkt: Packet) {
        let out = if port == 0 { 1 } else { 0 };
        self.staged += 1;
        let token = self.next_token;
        self.next_token += 1;
        self.pending.insert(token, (out, pkt));
        ctx.set_timer(self.staging_delay, token);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: TimerToken) {
        if let Some((port, pkt)) = self.pending.remove(&token) {
            ctx.send(port, pkt);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_netsim::{Bandwidth, LinkSpec, Simulator};

    struct Sink;
    impl Node for Sink {
        fn on_packet(&mut self, ctx: &mut Context<'_>, _: PortId, pkt: Packet) {
            ctx.deliver_local(pkt);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn relay_forwards_both_directions() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a", Box::new(Sink));
        let relay = sim.add_node("relay", Box::new(Relay::new()));
        let b = sim.add_node("b", Box::new(Sink));
        let spec = LinkSpec::new(Bandwidth::gbps(10), Time::from_micros(1));
        sim.connect(a, 0, relay, 0, spec);
        sim.connect(relay, 1, b, 0, spec);
        sim.inject(Time::ZERO, relay, 0, Packet::new(vec![0u8; 100]));
        sim.inject(Time::ZERO, relay, 1, Packet::new(vec![0u8; 100]));
        sim.run();
        assert_eq!(sim.local_deliveries(b).len(), 1);
        assert_eq!(sim.local_deliveries(a).len(), 1);
        assert_eq!(sim.node_as::<Relay>(relay).unwrap().forwarded, 2);
    }

    #[test]
    fn store_and_forward_adds_staging_delay() {
        let mut sim = Simulator::new(1);
        let stage = sim.add_node(
            "dtn",
            Box::new(StoreAndForwardRelay::new(Time::from_millis(2))),
        );
        let b = sim.add_node("b", Box::new(Sink));
        sim.add_oneway(
            stage,
            1,
            b,
            0,
            LinkSpec::new(Bandwidth::gbps(10), Time::ZERO),
        );
        sim.inject(Time::ZERO, stage, 0, Packet::new(vec![0u8; 1000]));
        sim.run();
        let got = sim.local_deliveries(b);
        assert_eq!(got.len(), 1);
        let tx = Bandwidth::gbps(10).tx_time(1000);
        assert_eq!(got[0].0, Time::from_millis(2) + tx);
        assert_eq!(
            sim.node_as::<StoreAndForwardRelay>(stage).unwrap().staged,
            1
        );
    }
}
