//! # `mmt-transport` — baseline transports: modelled TCP and UDP
//!
//! §4 of the paper describes how DAQ data is moved *today*: UDP (or raw
//! Ethernet) inside the DAQ network, then heavily tuned TCP across the WAN
//! and to campuses, with termination and buffering at each stage. Every
//! quantitative claim the paper makes is relative to that baseline, so
//! this crate implements it over the same simulator the MMT endpoints use:
//!
//! * [`tcp`] — a message-level TCP model: cumulative ACKs, slow start and
//!   AIMD congestion avoidance, fast retransmit on triple duplicate ACKs,
//!   RTO with exponential backoff, receiver reassembly with in-order
//!   delivery, and **message delineation in the bytestream** — which is
//!   what lets experiments measure the head-of-line blocking of §4.1
//!   directly. Host profiles ([`tcp::CcProfile`]) model the end-system
//!   ceiling: an untuned stack, the heavily tuned DTN stack (the
//!   ~30 Gbps single-stream operating point of \[46\], ~55 Gbps with recent
//!   kernels \[66\]), and an idealized unlimited host.
//! * [`udp`] — fire-and-forget datagram endpoints (today's DAQ-network
//!   transport; DUNE uses UDP, §4).
//! * [`relay`] — a store-and-forward relay node standing in for the
//!   TCP-terminating DTN stages of Fig. 2 (and a plain wire forwarder).
//!
//! The TCP model is *not* a full RFC 9293 implementation — no urgent
//! data and no window-scaling negotiation (windows are plain byte counts)
//! — but it does implement the mechanisms that decide long-fat-network
//! behaviour: SACK-based loss recovery with RFC 6675-style pipe gating,
//! CUBIC (RFC 8312) with HyStart delay-based slow-start exit, sch_fq-style
//! rate pacing, NewReno partial-ack retransmission, and RFC 6298 RTO
//! management. Those dynamics (window growth, recovery latency, HOL
//! blocking) are exactly what the experiments measure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod relay;
pub mod segment;
pub mod tcp;
pub mod udp;

pub use relay::Relay;
pub use segment::{Segment, SegmentFlags};
pub use tcp::{CcProfile, TcpReceiver, TcpSender, TcpSenderStats};
pub use udp::{UdpReceiver, UdpSender};
