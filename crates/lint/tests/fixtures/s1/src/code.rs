//! S1 fixture: bare sequence-number arithmetic.

pub fn advance(seq: u64) -> u64 {
    seq + 1
}

pub fn safe(seq: u64) -> u64 {
    seq.wrapping_add(1)
}

pub fn justified(next_seq: u64) -> u64 {
    // mmt-lint: allow(S1, "fixture: wraparound impossible here")
    next_seq - 1
}
