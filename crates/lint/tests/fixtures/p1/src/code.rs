//! P1 fixture: panics in library code.

pub fn bad(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn bad2(x: Option<u32>) -> u32 {
    x.expect("boom")
}

pub fn bad3() {
    panic!("no");
}

pub fn fine(x: Option<u32>) -> u32 {
    x.unwrap_or(7)
}

pub fn justified(x: Option<u32>) -> u32 {
    x.unwrap() // mmt-lint: allow(P1, "fixture: checked by caller")
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
