//! W1 fixture: wildcard arms over the wire control discriminant.

pub enum ControlRepr {
    Nak(u8),
    DeadlineExceeded(u8),
    Backpressure(u8),
    ModeChange(u8),
}

pub fn bad(c: &ControlRepr) -> u32 {
    match c {
        ControlRepr::Nak(_) => 1,
        _ => 0,
    }
}

pub fn good(c: &ControlRepr) -> u32 {
    match c {
        ControlRepr::Nak(_) => 1,
        ControlRepr::DeadlineExceeded(_) | ControlRepr::Backpressure(_) => 2,
        ControlRepr::ModeChange(_) => 3,
    }
}

pub fn unrelated(v: u8) -> u32 {
    match v {
        1 => 1,
        _ => 0,
    }
}

pub fn escaped(c: &ControlRepr) -> u32 {
    match c {
        ControlRepr::Nak(_) => 1,
        // mmt-lint: allow(W1, "fixture: decode boundary")
        _ => 0,
    }
}
