//! Binder fixture: a standalone escape covers the whole statement that
//! starts on the next line — token-aware, so a rustfmt rewrap that pushes
//! the violating call onto a later line cannot detach the escape. It does
//! NOT bleed past the statement's end.

pub fn rewrapped(v: Option<u32>) -> u32 {
    // mmt-lint: allow(P1, "fixture: the unwrap sits two lines below after a rewrap")
    v.map(|x| x + 1)
        .unwrap()
}

pub fn next_statement_not_covered(v: Option<u32>) -> u32 {
    // mmt-lint: allow(P1, "fixture: coverage must stop at the first statement")
    let w = v;
    w.unwrap()
}
