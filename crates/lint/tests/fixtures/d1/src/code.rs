//! D1 fixture: hash collections in a sim-critical crate.

use std::collections::BTreeMap;
use std::collections::HashMap;

pub fn counts() -> BTreeMap<u32, u32> {
    let set: std::collections::HashSet<u32> = Default::default();
    let _ = set;
    // mmt-lint: allow(D1, "fixture: justified use")
    let _m: HashMap<u32, u32> = HashMap::new();
    BTreeMap::new()
}
