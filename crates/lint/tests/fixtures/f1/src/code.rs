//! F1 fixture: float hazards in a digest-critical crate.

pub fn bad_literal() -> f64 {
    0.5
}

pub fn bad_cast_arith(n: u64) -> f64 {
    n as f64 / 2.0
}

pub fn bad_libm(x: f64) -> f64 {
    x.ln()
}

pub fn bad_format(x: f64) -> String {
    format!("{x:.3}")
}

pub fn ok_integer(n: u64) -> u64 {
    n / 2
}

pub fn ok_sqrt(x: f64) -> f64 {
    x.sqrt()
}

pub fn ok_escaped() -> f64 {
    // mmt-lint: allow(F1, "fixture: reporting-only constant")
    2.5
}
