//! E1 fixture: stale and unknown escapes.

pub fn stale_trailing() -> u32 {
    1 // mmt-lint: allow(P1, "nothing panics here any more")
}

pub fn live_escape(v: Option<u32>) -> u32 {
    v.unwrap() // mmt-lint: allow(P1, "fixture: the escape still suppresses this unwrap")
}

pub fn unknown_rule() -> u32 {
    // mmt-lint: allow(Z9, "no such rule")
    3
}

pub fn stale_standalone() -> u32 {
    // mmt-lint: allow(D1, "no hash map below any more")
    4
}
