//! D2 fixture: ambient nondeterminism in a sim-critical crate.

pub fn now_wall() -> u64 {
    let _t = std::time::Instant::now();
    let _s = std::time::SystemTime::now();
    let _v = std::env::var("HOME");
    // mmt-lint: allow(D2, "fixture: justified clock use")
    let _ok = std::time::Instant::now();
    0
}
