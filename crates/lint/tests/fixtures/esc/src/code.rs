//! ESC fixture: malformed escape comments.

pub fn f() {
    let x = 1; // mmt-lint: allow(P1)
    let y = 2; // mmt-lint: allow(P1, "")
    let z = 3; // mmt-lint: suppress everything
    let _ = (x, y, z);
}
