//! D2 io fixture: sockets and threads in a sim-critical crate.

pub fn real_io() -> u64 {
    let _s = std::net::UdpSocket::bind("127.0.0.1:0");
    let _c = std::net::TcpStream::connect("127.0.0.1:1");
    let _l = std::net::TcpListener::bind("127.0.0.1:0");
    std::thread::sleep(std::time::Duration::from_millis(1));
    let _h = std::thread::spawn(|| {});
    // mmt-lint: allow(D2, "fixture: justified thread use")
    let _ok = std::thread::spawn(|| {});
    0
}
