//! U1 fixture: crate root missing the forbid attribute.

pub fn x() {}
