//! U1 fixture: crate root carrying the forbid attribute.

#![forbid(unsafe_code)]

pub fn x() {}
