//! A1 fixture: allocation in hot code.

// mmt-lint: hot
pub fn hot_alloc() -> Vec<u8> {
    Vec::new()
}

// mmt-lint: hot
pub fn hot_vec_macro() -> Vec<u8> {
    vec![0u8; 4]
}

// mmt-lint: hot
pub fn hot_clone(s: &[u8]) -> Vec<u8> {
    s.to_vec()
}

pub fn cold_alloc() -> Vec<u8> {
    Vec::new()
}

// mmt-lint: hot
pub fn hot_escaped() -> Vec<u8> {
    // mmt-lint: allow(A1, "fixture: amortized growth path")
    Vec::new()
}
