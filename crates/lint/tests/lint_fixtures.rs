//! End-to-end tests of the `mmt-lint` binary: one fixture per rule
//! (positive + negative + escaped), exact rule/path/line assertions,
//! the exit-code contract, JSON output, and the workspace-clean gate.

use std::process::Command;

/// Run the built binary from the lint crate directory; returns
/// (exit code, stdout, stderr).
fn lint(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_mmt-lint"))
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .args(args)
        .output()
        .expect("spawn mmt-lint");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
    )
}

fn assert_has(out: &str, needle: &str) {
    assert!(out.contains(needle), "expected {needle:?} in:\n{out}");
}

#[test]
fn d1_fixture_exact_diagnostics() {
    let (code, out, _) = lint(&["--assume-crate", "core", "tests/fixtures/d1"]);
    assert_eq!(code, 1);
    assert_has(&out, "tests/fixtures/d1/src/code.rs:4: [D1]");
    assert_has(&out, "tests/fixtures/d1/src/code.rs:7: [D1]");
    assert_has(&out, "use `BTreeMap`");
    assert_has(&out, "use `BTreeSet`");
    assert_has(&out, "2 violation(s)");
}

#[test]
fn d2_fixture_exact_diagnostics() {
    let (code, out, _) = lint(&["--assume-crate", "netsim", "tests/fixtures/d2"]);
    assert_eq!(code, 1);
    assert_has(&out, "tests/fixtures/d2/src/code.rs:4: [D2]");
    assert_has(&out, "tests/fixtures/d2/src/code.rs:5: [D2]");
    assert_has(&out, "tests/fixtures/d2/src/code.rs:6: [D2]");
    assert_has(&out, "`Instant`");
    assert_has(&out, "`SystemTime`");
    assert_has(&out, "`std::env`");
    assert_has(&out, "3 violation(s)");
}

#[test]
fn d2_flags_sockets_and_threads_in_sim_critical_code() {
    // Pin the guarantee that keeps the sans-io refactor honest: if a
    // socket or thread import sneaks into mmt-core, the lint gains a
    // violation.
    let (code, out, _) = lint(&["--assume-crate", "core", "tests/fixtures/d2io"]);
    assert_eq!(code, 1);
    // `use std::net::X` lines fire both the path rule and the type rule.
    assert_has(&out, "tests/fixtures/d2io/src/code.rs:4: [D2]");
    assert_has(&out, "tests/fixtures/d2io/src/code.rs:5: [D2]");
    assert_has(&out, "tests/fixtures/d2io/src/code.rs:6: [D2]");
    assert_has(&out, "tests/fixtures/d2io/src/code.rs:7: [D2]");
    assert_has(&out, "tests/fixtures/d2io/src/code.rs:8: [D2]");
    assert_has(&out, "`UdpSocket`");
    assert_has(&out, "`TcpStream`");
    assert_has(&out, "`TcpListener`");
    assert_has(&out, "`std::net`");
    assert_has(&out, "`std::thread`");
    // 3 × (path + type) on the net lines + 2 thread paths; the escaped
    // spawn on line 10 stays exempt.
    assert_has(&out, "8 violation(s)");
}

#[test]
fn d2_io_crate_is_exempt_from_sans_io_rules() {
    // mmt-io is the one crate whose whole point is real I/O: the same
    // fixture must scan clean there.
    let (code, out, _) = lint(&["--assume-crate", "io", "tests/fixtures/d2io"]);
    assert_eq!(code, 0, "io crate must be D2-exempt, got:\n{out}");
}

#[test]
fn p1_fixture_exact_diagnostics() {
    let (code, out, _) = lint(&["--assume-crate", "core", "tests/fixtures/p1"]);
    assert_eq!(code, 1);
    assert_has(&out, "tests/fixtures/p1/src/code.rs:4: [P1]");
    assert_has(&out, "tests/fixtures/p1/src/code.rs:8: [P1]");
    assert_has(&out, "tests/fixtures/p1/src/code.rs:12: [P1]");
    // `unwrap_or` (line 16), the escaped unwrap (line 20), and the
    // #[cfg(test)] region must all be exempt.
    assert_has(&out, "3 violation(s)");
}

#[test]
fn p1_applies_outside_sim_critical_crates_too() {
    let (code, out, _) = lint(&["--assume-crate", "pilot", "tests/fixtures/p1"]);
    assert_eq!(code, 1);
    assert_has(&out, "3 violation(s)");
}

#[test]
fn s1_fixture_exact_diagnostics() {
    let (code, out, _) = lint(&["--assume-crate", "transport", "tests/fixtures/s1"]);
    assert_eq!(code, 1);
    assert_has(&out, "tests/fixtures/s1/src/code.rs:4: [S1]");
    assert_has(&out, "sequence number `seq`");
    assert_has(&out, "1 violation(s)");
}

#[test]
fn s1_is_scoped_to_sim_critical_crates() {
    let (code, out, _) = lint(&["--assume-crate", "pilot", "tests/fixtures/s1"]);
    assert_eq!(code, 0, "{out}");
}

#[test]
fn u1_fixture_positive_and_negative() {
    let (code, out, _) = lint(&["--assume-crate", "daq", "tests/fixtures/u1/bad"]);
    assert_eq!(code, 1);
    assert_has(&out, "tests/fixtures/u1/bad/src/lib.rs:1: [U1]");
    assert_has(&out, "#![forbid(unsafe_code)]");
    let (code, out, _) = lint(&["--assume-crate", "daq", "tests/fixtures/u1/good"]);
    assert_eq!(code, 0, "{out}");
}

#[test]
fn esc_fixture_reports_malformed_escapes() {
    let (code, out, _) = lint(&["--assume-crate", "core", "tests/fixtures/esc"]);
    assert_eq!(code, 1);
    assert_has(&out, "tests/fixtures/esc/src/code.rs:4: [ESC]");
    assert_has(&out, "tests/fixtures/esc/src/code.rs:5: [ESC]");
    assert_has(&out, "tests/fixtures/esc/src/code.rs:6: [ESC]");
    assert_has(&out, "3 violation(s)");
}

#[test]
fn f1_fixture_exact_diagnostics() {
    let (code, out, _) = lint(&["--assume-crate", "netsim", "tests/fixtures/f1"]);
    assert_eq!(code, 1);
    assert_has(&out, "tests/fixtures/f1/src/code.rs:4: [F1]");
    assert_has(&out, "tests/fixtures/f1/src/code.rs:8: [F1]");
    assert_has(&out, "tests/fixtures/f1/src/code.rs:12: [F1]");
    assert_has(&out, "tests/fixtures/f1/src/code.rs:16: [F1]");
    assert_has(&out, "float literal");
    assert_has(&out, "`as f64`/`as f32` cast");
    assert_has(&out, "`.ln()` is libm-backed");
    assert_has(&out, "float format spec `{:.3}`");
    // Integer division, IEEE-exact sqrt, and the escaped literal stay
    // silent: 5 findings (line 8 carries both a cast and a literal).
    assert_has(&out, "5 violation(s), 1 escape(s)");
}

#[test]
fn f1_is_scoped_to_digest_critical_crates() {
    let (code, out, _) = lint(&["--assume-crate", "telemetry", "tests/fixtures/f1"]);
    assert_eq!(code, 0, "{out}");
}

#[test]
fn a1_fixture_exact_diagnostics() {
    let (code, out, _) = lint(&["--assume-crate", "netsim", "tests/fixtures/a1"]);
    assert_eq!(code, 1);
    assert_has(&out, "tests/fixtures/a1/src/code.rs:5: [A1]");
    assert_has(&out, "tests/fixtures/a1/src/code.rs:10: [A1]");
    assert_has(&out, "tests/fixtures/a1/src/code.rs:15: [A1]");
    assert_has(&out, "`Vec::new` allocates in hot function `hot_alloc`");
    assert_has(&out, "`vec!` allocates in hot function `hot_vec_macro`");
    assert_has(&out, "`.to_vec()` allocates in hot function `hot_clone`");
    // The unmarked function and the escaped one are exempt.
    assert_has(&out, "3 violation(s), 1 escape(s)");
}

#[test]
fn w1_fixture_exact_diagnostics() {
    let (code, out, _) = lint(&["--assume-crate", "core", "tests/fixtures/w1"]);
    assert_eq!(code, 1);
    assert_has(&out, "tests/fixtures/w1/src/code.rs:13: [W1]");
    assert_has(&out, "wildcard arm");
    // The exhaustive match, the non-wire match, and the escaped wildcard
    // are all exempt: exactly one finding.
    assert_has(&out, "1 violation(s), 1 escape(s)");
}

#[test]
fn e1_fixture_exact_diagnostics() {
    let (code, out, _) = lint(&["--assume-crate", "core", "tests/fixtures/e1"]);
    assert_eq!(code, 1);
    assert_has(&out, "tests/fixtures/e1/src/code.rs:4: [E1]");
    assert_has(&out, "tests/fixtures/e1/src/code.rs:12: [E1]");
    assert_has(&out, "tests/fixtures/e1/src/code.rs:17: [E1]");
    assert_has(&out, "stale escape: no P1 violation fires");
    assert_has(&out, "unknown rule `Z9`");
    assert_has(&out, "stale escape: no D1 violation fires");
    // The live P1 escape on line 8 is not stale.
    assert_has(&out, "3 violation(s), 4 escape(s)");
}

/// The standalone-escape binder is token-aware: it covers the whole
/// statement beginning on the next line (surviving a rustfmt rewrap that
/// pushes the violation down), and stops at that statement's end.
#[test]
fn binder_fixture_covers_statement_not_line() {
    let (code, out, _) = lint(&["--assume-crate", "core", "tests/fixtures/binder"]);
    assert_eq!(code, 1);
    // `rewrapped`: the unwrap two lines below the escape is covered — no
    // P1 there, and the escape is live (no E1 either).
    assert!(!out.contains("code.rs:9:"), "{out}");
    assert!(!out.contains("code.rs:7:"), "{out}");
    // `next_statement_not_covered`: coverage ends at `let w = v;`, so the
    // unwrap on the following statement fires P1 and the escape is stale.
    assert_has(&out, "tests/fixtures/binder/src/code.rs:13: [E1]");
    assert_has(&out, "tests/fixtures/binder/src/code.rs:15: [P1]");
    assert_has(&out, "2 violation(s), 2 escape(s)");
}

#[test]
fn clean_fixture_exits_zero() {
    let (code, out, _) = lint(&["--assume-crate", "core", "tests/fixtures/clean"]);
    assert_eq!(code, 0, "{out}");
    assert_has(&out, "1 file(s) scanned, 0 violation(s)");
}

#[test]
fn json_format_is_machine_readable() {
    let (code, out, _) = lint(&[
        "--format",
        "json",
        "--assume-crate",
        "core",
        "tests/fixtures/d1",
    ]);
    assert_eq!(code, 1);
    assert_has(&out, "\"files_scanned\":1");
    assert_has(&out, "\"rule\":\"D1\"");
    assert_has(&out, "\"path\":\"tests/fixtures/d1/src/code.rs\"");
    assert_has(&out, "\"line\":4");
    assert_has(&out, "\"line\":7");
    // Whole payload is a single JSON object on one line.
    assert!(out.trim_start().starts_with('{') && out.trim_end().ends_with('}'));
    assert_eq!(out.trim_end().lines().count(), 1);
}

#[test]
fn exit_code_contract_usage_errors() {
    let (code, _, err) = lint(&["--bogus-flag"]);
    assert_eq!(code, 2);
    assert!(err.contains("usage"), "{err}");
    let (code, _, err) = lint(&["tests/fixtures/does-not-exist"]);
    assert_eq!(code, 2);
    assert!(err.contains("error"), "{err}");
    let (code, _, _) = lint(&["--format", "yaml"]);
    assert_eq!(code, 2);
    let (code, _, _) = lint(&["--assume-crate"]);
    assert_eq!(code, 2);
}

#[test]
fn help_exits_zero() {
    let (code, out, _) = lint(&["--help"]);
    assert_eq!(code, 0);
    assert_has(&out, "usage: mmt-lint");
}

/// The acceptance gate: the workspace itself must lint clean. Run from
/// the repository root so the scan covers every crate plus the facade.
#[test]
fn workspace_is_lint_clean() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let out = Command::new(env!("CARGO_BIN_EXE_mmt-lint"))
        .current_dir(root)
        .arg(".")
        .output()
        .expect("spawn mmt-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace has lint violations:\n{stdout}"
    );
    assert!(stdout.contains(", 0 violation(s)"), "{stdout}");
    // The summary carries the live escape count (the budget CI tracks);
    // E1 running clean means every one of them still suppresses a real
    // violation.
    assert!(stdout.contains(" escape(s)"), "{stdout}");
}
