//! Rule checks over the token stream of one file.

use crate::lexer::{lex, parse_escapes, Tok, TokKind};

/// Crates whose behavior feeds the deterministic simulation; D1/D2/S1
/// apply only here.
pub const SIM_CRITICAL: &[&str] = &[
    "netsim",
    "core",
    "dataplane",
    "wire",
    "transport",
    "telemetry",
];

/// How a file is classified for rule scoping.
#[derive(Debug, Clone, Default)]
pub struct FileClass {
    /// Workspace crate the file belongs to (`core`, `netsim`, `mmt`, ...).
    pub crate_name: String,
    /// True when the crate is in [`SIM_CRITICAL`].
    pub sim_critical: bool,
    /// True for test/bench/example code (path-based).
    pub is_test: bool,
    /// True for binary entry points (`src/main.rs`, `src/bin/*`).
    pub is_bin: bool,
    /// True for crate roots, which must carry `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
    /// True for the sim-clock / seeded-RNG modules that D2 exempts.
    pub d2_exempt: bool,
}

/// Classify a file by its (normalized, `/`-separated) path. When
/// `assume_crate` is set, the crate name is forced and the path-based
/// test/bin exemptions are bypassed (fixture files live under `tests/`
/// but must lint as library code); `#[cfg(test)]` regions are still
/// honored.
pub fn classify(path: &str, assume_crate: Option<&str>) -> FileClass {
    let norm = path.replace('\\', "/");
    let crate_name = match assume_crate {
        Some(n) => n.to_string(),
        None => crate_from_path(&norm),
    };
    let forced = assume_crate.is_some();
    let is_test = !forced
        && (norm.contains("/tests/")
            || norm.starts_with("tests/")
            || norm.contains("/benches/")
            || norm.contains("/examples/"));
    let is_bin = !forced && (norm.contains("src/bin/") || norm.ends_with("src/main.rs"));
    let is_crate_root =
        norm.ends_with("src/lib.rs") || norm.ends_with("src/main.rs") || norm.contains("src/bin/");
    let d2_exempt = norm.ends_with("src/rng.rs") || norm.ends_with("src/time.rs");
    FileClass {
        sim_critical: SIM_CRITICAL.contains(&crate_name.as_str()),
        crate_name,
        is_test,
        is_bin,
        is_crate_root,
        d2_exempt,
    }
}

fn crate_from_path(norm: &str) -> String {
    if let Some(idx) = norm.find("crates/") {
        let rest = norm.get(idx + "crates/".len()..).unwrap_or("");
        if let Some(end) = rest.find('/') {
            return rest.get(..end).unwrap_or("").to_string();
        }
    }
    // Root facade package (`src/`, `tests/`, `src/bin/mmt-sim.rs`).
    "mmt".to_string()
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Display path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule id (`D1`, `D2`, `P1`, `U1`, `S1`, `ESC`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// Compute `(start_line, end_line)` regions covered by a `#[test]` /
/// `#[cfg(test)]`-gated item (function or `mod tests { ... }` body).
pub fn test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !is_attr_start(toks, i) {
            i += 1;
            continue;
        }
        let start_line = toks.get(i).map(|t| t.line).unwrap_or(1);
        let (after, idents) = consume_attr(toks, i);
        let is_test_attr = idents.iter().any(|s| s == "test") && !idents.iter().any(|s| s == "not");
        if !is_test_attr {
            i = after;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut j = after;
        while is_attr_start(toks, j) {
            let (next, _) = consume_attr(toks, j);
            j = next;
        }
        let end_line = item_end_line(toks, j);
        regions.push((start_line, end_line));
        i = j;
    }
    regions
}

fn is_attr_start(toks: &[Tok], i: usize) -> bool {
    matches!(toks.get(i), Some(t) if t.kind == TokKind::Punct('#'))
        && (matches!(toks.get(i + 1), Some(t) if t.kind == TokKind::Punct('['))
            || (matches!(toks.get(i + 1), Some(t) if t.kind == TokKind::Punct('!'))
                && matches!(toks.get(i + 2), Some(t) if t.kind == TokKind::Punct('['))))
}

/// Consume an attribute starting at `i`; returns (index past `]`,
/// idents seen inside).
fn consume_attr(toks: &[Tok], i: usize) -> (usize, Vec<String>) {
    let mut j = i;
    // Skip '#' and optional '!'.
    while matches!(
        toks.get(j),
        Some(t) if matches!(t.kind, TokKind::Punct('#') | TokKind::Punct('!'))
    ) {
        j += 1;
    }
    let mut idents = Vec::new();
    if !matches!(toks.get(j), Some(t) if t.kind == TokKind::Punct('[')) {
        return (j, idents);
    }
    let mut depth = 0i32;
    while let Some(t) = toks.get(j) {
        match &t.kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, idents);
                }
            }
            TokKind::Ident(s) => idents.push(s.clone()),
            _ => {}
        }
        j += 1;
    }
    (j, idents)
}

/// Line on which the item starting at token `i` ends: the matching `}`
/// of its first depth-0 brace, or a depth-0 `;`, or the last token.
fn item_end_line(toks: &[Tok], i: usize) -> u32 {
    let mut depth = 0i32;
    let mut j = i;
    let mut in_body = false;
    while let Some(t) = toks.get(j) {
        match t.kind {
            TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => {
                if t.kind == TokKind::Punct('{') && depth == 0 {
                    in_body = true;
                }
                depth += 1;
            }
            TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']') => {
                depth -= 1;
                if in_body && depth == 0 {
                    return t.line;
                }
            }
            TokKind::Punct(';') if depth == 0 => return t.line,
            _ => {}
        }
        j += 1;
    }
    toks.last().map(|t| t.line).unwrap_or(1)
}

/// Run every rule over one file's source; returns escape-filtered,
/// line-ordered violations.
pub fn check_file(display_path: &str, class: &FileClass, src: &str) -> Vec<Violation> {
    let lexed = lex(src);
    let escapes = parse_escapes(&lexed.comments);
    let regions = test_regions(&lexed.toks);
    let in_test =
        |line: u32| class.is_test || regions.iter().any(|(a, b)| line >= *a && line <= *b);
    let suppressed = |rule: &str, line: u32| {
        escapes
            .valid
            .iter()
            .any(|e| e.rule == rule && (e.line == line || (e.standalone && e.line + 1 == line)))
    };

    let mut raw: Vec<Violation> = Vec::new();
    let mut push = |rule: &'static str, line: u32, message: String| {
        raw.push(Violation {
            path: display_path.to_string(),
            line,
            rule,
            message,
        });
    };

    // ESC: malformed escape comments are always reported.
    for &line in &escapes.malformed {
        push(
            "ESC",
            line,
            "malformed escape; use `// mmt-lint: allow(RULE, \"justification\")`".to_string(),
        );
    }

    // U1: crate roots must forbid unsafe code.
    if class.is_crate_root && !has_forbid_unsafe(&lexed.toks) {
        push(
            "U1",
            1,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }

    let lib_code = !class.is_test && !class.is_bin;
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        let TokKind::Ident(id) = &t.kind else {
            continue;
        };
        // D1 — nondeterministic-iteration collections in sim-critical crates.
        if class.sim_critical
            && lib_code
            && !in_test(t.line)
            && (id == "HashMap" || id == "HashSet")
        {
            let alt = if id == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            push(
                "D1",
                t.line,
                format!("`{id}` has nondeterministic iteration order; use `{alt}`"),
            );
        }
        // D2 — ambient nondeterminism outside the sim clock / seeded RNG.
        if class.sim_critical && lib_code && !class.d2_exempt && !in_test(t.line) {
            if id == "Instant" || id == "SystemTime" {
                push(
                    "D2",
                    t.line,
                    format!("`{id}` reads wall-clock time; use the sim clock"),
                );
            }
            if id == "std"
                && matches!(toks.get(i + 1), Some(t) if t.kind == TokKind::Punct(':'))
                && matches!(toks.get(i + 2), Some(t) if t.kind == TokKind::Punct(':'))
                && matches!(toks.get(i + 3), Some(t) if t.kind == TokKind::Ident("env".into()))
            {
                push(
                    "D2",
                    t.line,
                    "`std::env` makes behavior environment-dependent; plumb config explicitly"
                        .to_string(),
                );
            }
        }
        // P1 — panics in non-test library code.
        if lib_code && !in_test(t.line) {
            let called = (id == "unwrap" || id == "expect")
                && matches!(toks.get(i.wrapping_sub(1)), Some(t) if t.kind == TokKind::Punct('.'))
                && i > 0
                && matches!(toks.get(i + 1), Some(t) if t.kind == TokKind::Punct('('));
            if called {
                push(
                    "P1",
                    t.line,
                    format!("`{id}()` can panic; return a typed error or justify with an escape"),
                );
            }
            let macro_panic = matches!(id.as_str(), "panic" | "unimplemented" | "todo")
                && matches!(toks.get(i + 1), Some(t) if t.kind == TokKind::Punct('!'));
            if macro_panic {
                push(
                    "P1",
                    t.line,
                    format!(
                        "`{id}!` in library code; return a typed error or justify with an escape"
                    ),
                );
            }
        }
        // S1 — bare arithmetic on sequence numbers.
        if class.sim_critical && lib_code && !in_test(t.line) && seq_like(id) {
            if let Some(next) = toks.get(i + 1) {
                let minus_arrow = next.kind == TokKind::Punct('-')
                    && matches!(toks.get(i + 2), Some(t) if t.kind == TokKind::Punct('>'));
                if matches!(next.kind, TokKind::Punct('+') | TokKind::Punct('-')) && !minus_arrow {
                    push(
                        "S1",
                        t.line,
                        format!(
                            "bare arithmetic on sequence number `{id}`; use wrapping_/saturating_ helpers"
                        ),
                    );
                }
            }
        }
    }

    let mut out: Vec<Violation> = raw
        .into_iter()
        .filter(|v| v.rule == "ESC" || !suppressed(v.rule, v.line))
        .collect();
    out.sort();
    out.dedup();
    out
}

fn seq_like(id: &str) -> bool {
    id == "seq" || id == "sequence" || id.ends_with("_seq")
}

fn has_forbid_unsafe(toks: &[Tok]) -> bool {
    toks.windows(8).any(|w| {
        matches!(&w[0].kind, TokKind::Punct('#'))
            && matches!(&w[1].kind, TokKind::Punct('!'))
            && matches!(&w[2].kind, TokKind::Punct('['))
            && matches!(&w[3].kind, TokKind::Ident(s) if s == "forbid")
            && matches!(&w[4].kind, TokKind::Punct('('))
            && matches!(&w[5].kind, TokKind::Ident(s) if s == "unsafe_code")
            && matches!(&w[6].kind, TokKind::Punct(')'))
            && matches!(&w[7].kind, TokKind::Punct(']'))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class_sim() -> FileClass {
        classify("crates/core/src/x.rs", None)
    }

    #[test]
    fn classify_paths() {
        let c = classify("crates/netsim/src/link.rs", None);
        assert!(c.sim_critical && !c.is_test && !c.is_bin && !c.is_crate_root);
        let c = classify("crates/pilot/src/lib.rs", None);
        assert!(!c.sim_critical && c.is_crate_root);
        let c = classify("src/bin/mmt-sim.rs", None);
        assert!(c.is_bin && c.is_crate_root && c.crate_name == "mmt");
        let c = classify("crates/core/tests/roundtrip.rs", None);
        assert!(c.is_test);
        let c = classify("crates/lint/tests/fixtures/p1/src/code.rs", Some("core"));
        assert!(c.sim_critical && !c.is_test && !c.is_bin);
    }

    #[test]
    fn d1_flags_and_escapes() {
        let src = "use std::collections::HashMap;\nfn f() -> HashMap<u32, u32> { HashMap::new() } // mmt-lint: allow(D1, \"test helper\")\n";
        let v = check_file("x.rs", &class_sim(), src);
        // Line 1 flagged; line 2 escaped (both occurrences on that line).
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].rule, v[0].line), ("D1", 1));
    }

    #[test]
    fn cfg_test_region_exempts_p1() {
        let src = "\
pub fn lib_code(x: Option<u32>) -> u32 { x.unwrap() }

#[cfg(test)]
mod tests {
    #[test]
    fn ok() {
        let y: Option<u32> = Some(1);
        assert_eq!(y.unwrap(), 1);
    }
}
";
        let v = check_file("crates/core/src/x.rs", &class_sim(), src);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].rule, v[0].line), ("P1", 1));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let v = check_file("crates/core/src/x.rs", &class_sim(), src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "P1");
    }

    #[test]
    fn unwrap_or_not_flagged() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
        assert!(check_file("crates/core/src/x.rs", &class_sim(), src).is_empty());
    }

    #[test]
    fn s1_arrow_is_not_subtraction() {
        let src = "fn next_seq(x: u32) -> u32 { x.wrapping_add(1) }\n";
        assert!(check_file("crates/core/src/x.rs", &class_sim(), src).is_empty());
        let bad = "fn f(seq: u64) -> u64 { seq + 1 }\n";
        let v = check_file("crates/core/src/x.rs", &class_sim(), bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "S1");
    }

    #[test]
    fn standalone_escape_covers_next_line() {
        let src = "// mmt-lint: allow(P1, \"infallible by construction\")\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(check_file("crates/core/src/x.rs", &class_sim(), src).is_empty());
    }

    #[test]
    fn u1_missing_forbid() {
        let c = classify("crates/foo/src/lib.rs", None);
        let v = check_file("crates/foo/src/lib.rs", &c, "pub fn x() {}\n");
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].rule, v[0].line), ("U1", 1));
        let ok = "#![forbid(unsafe_code)]\npub fn x() {}\n";
        assert!(check_file("crates/foo/src/lib.rs", &c, ok).is_empty());
    }

    #[test]
    fn esc_reported_for_malformed() {
        let src = "fn f() {} // mmt-lint: allow(P1)\n";
        let v = check_file("crates/core/src/x.rs", &class_sim(), src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "ESC");
    }
}
